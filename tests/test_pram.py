"""Tests for the PRAM simulator: accounting, Brent scheduling and the
access-mode (EREW/CREW/CRCW) conflict checking."""

import numpy as np
import pytest

from repro.pram import (
    AccessConflictError,
    AccessMode,
    PRAM,
    StepUsageError,
    optimal_processor_count,
)


class TestAccounting:
    def test_single_step_counts(self):
        m = PRAM(num_processors=4)
        with m.step(active=8, label="demo"):
            pass
        assert m.rounds == 1
        assert m.work == 8
        assert m.time == 2  # ceil(8 / 4)

    def test_unbounded_processors_time_equals_rounds(self):
        m = PRAM()
        for _ in range(5):
            with m.step(active=1000):
                pass
        assert m.time == 5
        assert m.work == 5000

    def test_active_inferred_from_accesses(self):
        m = PRAM(num_processors=2)
        arr = m.array(10, name="x")
        with m.step(label="infer"):
            arr.scatter(np.arange(6), np.ones(6, dtype=np.int64))
        assert m.work == 6
        assert m.time == 3

    def test_time_for_processors_brent(self):
        m = PRAM()
        for active in (10, 3, 7):
            with m.step(active=active):
                pass
        assert m.time_for_processors(1) == 20
        assert m.time_for_processors(5) == 2 + 1 + 2
        assert m.time_for_processors(100) == 3

    def test_time_for_processors_rejects_zero(self):
        with pytest.raises(ValueError):
            PRAM().time_for_processors(0)

    def test_charge_channel_is_separate(self):
        m = PRAM()
        with m.step(active=4):
            pass
        m.charge("cited:sort", time=10, work=100)
        assert m.time == 1 and m.work == 4
        assert m.charged_time == 10 and m.charged_work == 100
        assert m.total_time == 11 and m.total_work == 104

    def test_reset(self):
        m = PRAM()
        with m.step(active=4):
            pass
        m.reset()
        assert m.rounds == 0 and m.work == 0 and m.time == 0

    def test_report_contents(self):
        m = PRAM(num_processors=2, record_steps=True)
        with m.step(active=4, label="alpha"):
            pass
        with m.step(active=2, label="alpha"):
            pass
        m.charge("beta", time=3, work=9)
        rep = m.report()
        assert rep.rounds == 2
        assert rep.by_label["alpha"].rounds == 2
        assert rep.by_label["beta"].charged
        assert rep.to_dict()["total_work"] == rep.total_work
        assert "alpha" in str(rep)

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            PRAM(num_processors=0)

    def test_optimal_processor_count(self):
        assert optimal_processor_count(2) == 1
        assert optimal_processor_count(1024) == 103  # ceil(1024/10)
        assert optimal_processor_count(8) == 3

    def test_erew_factory(self):
        m = PRAM.erew(1024)
        assert m.mode is AccessMode.EREW
        assert m.num_processors == optimal_processor_count(1024)

    def test_null_machine_never_checks(self):
        m = PRAM.null()
        arr = m.array(4)
        with m.step(active=2):
            arr.gather(np.array([1, 1]))  # concurrent read, but unchecked
        assert m.rounds == 1


class TestSharedArray:
    def test_array_from_length_and_data(self):
        m = PRAM()
        a = m.array(5)
        assert len(a) == 5 and a.data.sum() == 0
        b = m.array([1, 2, 3])
        assert list(b.copy_out()) == [1, 2, 3]

    def test_gather_scatter_roundtrip(self):
        m = PRAM()
        a = m.array(np.arange(10))
        with m.step(active=3):
            vals = a.gather(np.array([2, 4, 6]))
            a.scatter(np.array([0, 1, 3]), vals * 10)
        assert list(a.data[:4]) == [20, 40, 2, 60]

    def test_local_reads_do_not_count(self):
        m = PRAM()
        a = m.array(np.arange(4))
        with m.step(active=2) as ctx:
            a.local(np.array([1, 1]))
        assert ctx.n_reads == 0

    def test_access_outside_step_raises(self):
        m = PRAM()
        a = m.array(4)
        with pytest.raises(StepUsageError):
            a.gather(np.array([0]))
        with pytest.raises(StepUsageError):
            a.scatter(np.array([0]), 1)

    def test_nested_steps_rejected(self):
        m = PRAM()
        with pytest.raises(StepUsageError):
            with m.step(active=1):
                with m.step(active=1):
                    pass

    def test_fill(self):
        m = PRAM()
        a = m.array(3)
        a.fill(7)
        assert list(a.data) == [7, 7, 7]


class TestConflictChecking:
    def test_erew_concurrent_read_rejected(self):
        m = PRAM(mode=AccessMode.EREW)
        a = m.array(4)
        with pytest.raises(AccessConflictError, match="read"):
            with m.step(active=2):
                a.gather(np.array([1, 1]))

    def test_erew_concurrent_write_rejected(self):
        m = PRAM(mode=AccessMode.EREW)
        a = m.array(4)
        with pytest.raises(AccessConflictError):
            with m.step(active=2):
                a.scatter(np.array([2, 2]), np.array([1, 1]))

    def test_erew_disjoint_accesses_fine(self):
        m = PRAM(mode=AccessMode.EREW)
        a = m.array(4)
        with m.step(active=2):
            a.gather(np.array([0, 1]))
            a.scatter(np.array([2, 3]), np.array([5, 6]))

    def test_crew_allows_concurrent_reads(self):
        m = PRAM(mode=AccessMode.CREW)
        a = m.array(4)
        with m.step(active=3):
            a.gather(np.array([1, 1, 1]))

    def test_crew_rejects_concurrent_writes(self):
        m = PRAM(mode=AccessMode.CREW)
        a = m.array(4)
        with pytest.raises(AccessConflictError):
            with m.step(active=2):
                a.scatter(np.array([0, 0]), np.array([1, 1]))

    def test_crcw_common_allows_same_value(self):
        m = PRAM(mode=AccessMode.CRCW_COMMON)
        a = m.array(4)
        with m.step(active=3):
            a.scatter(np.array([2, 2, 2]), np.array([9, 9, 9]))
        assert a.data[2] == 9

    def test_crcw_common_rejects_different_values(self):
        m = PRAM(mode=AccessMode.CRCW_COMMON)
        a = m.array(4)
        with pytest.raises(AccessConflictError, match="common"):
            with m.step(active=2):
                a.scatter(np.array([2, 2]), np.array([1, 2]))

    def test_crcw_arbitrary_allows_anything(self):
        m = PRAM(mode=AccessMode.CRCW_ARBITRARY)
        a = m.array(4)
        with m.step(active=2):
            a.scatter(np.array([1, 1]), np.array([3, 4]))
        assert a.data[1] in (3, 4)

    def test_checking_can_be_disabled(self):
        m = PRAM(mode=AccessMode.EREW, check_conflicts=False)
        a = m.array(4)
        with m.step(active=2):
            a.gather(np.array([1, 1]))

    def test_mode_from_string(self):
        assert PRAM(mode="CREW").mode is AccessMode.CREW
        with pytest.raises(ValueError):
            PRAM(mode="nonsense")

    def test_conflicts_across_multiple_gathers_in_one_step(self):
        m = PRAM(mode=AccessMode.EREW)
        a = m.array(4)
        with pytest.raises(AccessConflictError):
            with m.step(active=2):
                a.gather(np.array([1]))
                a.gather(np.array([1]))

    def test_mode_properties(self):
        assert not AccessMode.EREW.allows_concurrent_reads
        assert AccessMode.CREW.allows_concurrent_reads
        assert not AccessMode.CREW.allows_concurrent_writes
        assert AccessMode.CRCW_COMMON.allows_concurrent_writes
