"""Tests for the Euler tour, tree numbering, ancestor aggregation and the
tree-contraction evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import log2ceil
from repro.cograph import (
    JOIN,
    LEAF,
    UNION,
    binarize_cotree,
    caterpillar_cotree,
    make_leftist,
    path_cover_sizes_per_node,
    random_cotree,
)
from repro.pram import PRAM, AccessMode
from repro.primitives import (
    NEG_INF,
    build_euler_tour,
    compute_tree_numbers,
    evaluate_max_plus_tree,
    mp_apply,
    mp_compose,
    mp_constant,
    mp_identity,
    topmost_marked_ancestor,
    topmost_marked_ancestor_jumping,
)


@pytest.fixture(scope="module")
def trees():
    out = []
    for n, seed in [(3, 0), (8, 1), (25, 2), (60, 3), (150, 4)]:
        out.append(make_leftist(binarize_cotree(random_cotree(n, seed=seed))))
    out.append(make_leftist(binarize_cotree(caterpillar_cotree(40))))
    return out


class TestEulerTour:
    def test_positions_are_a_permutation(self, trees):
        for b in trees:
            tour = build_euler_tour(PRAM(), b.left, b.right, b.parent, [b.root])
            assert sorted(tour.position) == list(range(2 * b.num_nodes))

    def test_enter_before_exit(self, trees):
        for b in trees:
            tour = build_euler_tour(PRAM(), b.left, b.right, b.parent, [b.root])
            nodes = np.arange(b.num_nodes)
            assert np.all(tour.enter_position(nodes) < tour.exit_position(nodes))

    def test_root_spans_whole_tour(self, trees):
        b = trees[0]
        tour = build_euler_tour(PRAM(), b.left, b.right, b.parent, [b.root])
        assert tour.enter_position([b.root])[0] == 0
        assert tour.exit_position([b.root])[0] == 2 * b.num_nodes - 1

    def test_parent_interval_contains_child_interval(self, trees):
        for b in trees[:3]:
            tour = build_euler_tour(PRAM(), b.left, b.right, b.parent, [b.root])
            for u in b.internal_nodes:
                for c in (int(b.left[u]), int(b.right[u])):
                    assert tour.enter_position([u])[0] < tour.enter_position([c])[0]
                    assert tour.exit_position([c])[0] < tour.exit_position([u])[0]

    def test_empty_forest(self):
        tour = build_euler_tour(PRAM(), [], [], [], [])
        assert tour.num_nodes == 0

    def test_prefix_over_tour(self, trees):
        b = trees[1]
        m = PRAM()
        tour = build_euler_tour(m, b.left, b.right, b.parent, [b.root])
        ones = np.ones(2 * b.num_nodes, dtype=np.int64)
        pref = tour.prefix_over_tour(m, ones, inclusive=True)
        # the prefix at an arc equals its position + 1
        assert np.array_equal(pref, tour.position + 1)


class TestTreeNumbering:
    def test_matches_sequential_reference(self, trees):
        for b in trees:
            nums = compute_tree_numbers(PRAM(), b.left, b.right, b.parent, [b.root])
            assert np.array_equal(nums.subtree_leaves, b.subtree_leaf_counts())
            assert np.array_equal(nums.depth, b.depth())
            pre_expected = np.empty(b.num_nodes, dtype=np.int64)
            for i, u in enumerate(b.preorder()):
                pre_expected[u] = i
            assert np.array_equal(nums.preorder, pre_expected)
            post_expected = np.empty(b.num_nodes, dtype=np.int64)
            for i, u in enumerate(b.postorder()):
                post_expected[u] = i
            assert np.array_equal(nums.postorder, post_expected)

    def test_inorder_of_leaves_matches_left_to_right(self, trees):
        for b in trees:
            nums = compute_tree_numbers(PRAM(), b.left, b.right, b.parent, [b.root])
            by_inorder = sorted(range(b.num_nodes), key=lambda u: nums.inorder[u])
            leaf_vertices = [int(b.leaf_vertex[u]) for u in by_inorder
                             if b.kind[u] == LEAF]
            assert leaf_vertices == b.inorder_leaves()

    def test_inorder_is_a_permutation(self, trees):
        for b in trees:
            nums = compute_tree_numbers(PRAM(), b.left, b.right, b.parent, [b.root])
            assert sorted(nums.inorder) == list(range(b.num_nodes))

    def test_subtree_size(self, trees):
        b = trees[2]
        nums = compute_tree_numbers(PRAM(), b.left, b.right, b.parent, [b.root])
        assert nums.subtree_size[b.root] == b.num_nodes
        for leaf in b.leaves:
            assert nums.subtree_size[leaf] == 1

    def test_forest_numbering(self):
        # two separate one-node "trees" plus one proper tree
        b = make_leftist(binarize_cotree(random_cotree(10, seed=5)))
        n = b.num_nodes
        left = np.concatenate([b.left, [-1, -1]])
        right = np.concatenate([b.right, [-1, -1]])
        parent = np.concatenate([b.parent, [-1, -1]])
        nums = compute_tree_numbers(PRAM(), left, right, parent,
                                    [b.root, n, n + 1])
        assert nums.subtree_size[n] == 1
        assert nums.subtree_size[n + 1] == 1
        # chained inorder: the singleton trees come after the first tree
        assert nums.inorder[n] == b.num_nodes
        assert nums.inorder[n + 1] == b.num_nodes + 1

    def test_rounds_logarithmic(self):
        b = make_leftist(binarize_cotree(random_cotree(512, seed=6)))
        m = PRAM()
        compute_tree_numbers(m, b.left, b.right, b.parent, [b.root])
        assert m.rounds <= 60 * log2ceil(b.num_nodes)

    def test_erew_clean(self, trees):
        for b in trees[:2]:
            compute_tree_numbers(PRAM(mode=AccessMode.EREW), b.left, b.right,
                                 b.parent, [b.root])


class TestTopmostMarkedAncestor:
    def brute(self, parent, marked):
        n = len(parent)
        out = np.full(n, -1, dtype=np.int64)
        for v in range(n):
            best = -1
            u = v
            while u != -1:
                if marked[u]:
                    best = u
                u = parent[u]
            out[v] = best
        return out

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, trees, seed):
        b = trees[seed % len(trees)]
        rng = np.random.default_rng(seed)
        marked = rng.random(b.num_nodes) < 0.25
        got = topmost_marked_ancestor(PRAM(), b.left, b.right, b.parent,
                                      [b.root], marked)
        assert np.array_equal(got, self.brute(b.parent, marked))

    def test_jumping_variant_matches(self, trees):
        b = trees[2]
        rng = np.random.default_rng(1)
        marked = rng.random(b.num_nodes) < 0.3
        a = topmost_marked_ancestor(PRAM(), b.left, b.right, b.parent,
                                    [b.root], marked)
        c = topmost_marked_ancestor_jumping(PRAM(mode=AccessMode.CREW),
                                            b.parent, marked)
        assert np.array_equal(a, c)

    def test_no_marks(self, trees):
        b = trees[0]
        marked = np.zeros(b.num_nodes, dtype=bool)
        got = topmost_marked_ancestor(PRAM(), b.left, b.right, b.parent,
                                      [b.root], marked)
        assert np.all(got == -1)

    def test_root_marked_owns_everything(self, trees):
        b = trees[0]
        marked = np.zeros(b.num_nodes, dtype=bool)
        marked[b.root] = True
        got = topmost_marked_ancestor(PRAM(), b.left, b.right, b.parent,
                                      [b.root], marked)
        assert np.all(got == b.root)

    def test_erew_tour_variant_is_erew_clean(self, trees):
        b = trees[1]
        marked = np.zeros(b.num_nodes, dtype=bool)
        marked[b.internal_nodes[:3]] = True
        topmost_marked_ancestor(PRAM(mode=AccessMode.EREW), b.left, b.right,
                                b.parent, [b.root], marked)

    def test_jumping_variant_needs_concurrent_reads(self, trees):
        from repro.pram import AccessConflictError
        b = trees[2]
        marked = np.zeros(b.num_nodes, dtype=bool)
        with pytest.raises(AccessConflictError):
            topmost_marked_ancestor_jumping(PRAM(mode=AccessMode.EREW),
                                            b.parent, marked)


class TestMaxPlusFunctions:
    int_vals = st.integers(min_value=-1000, max_value=1000)

    @settings(max_examples=100, deadline=None)
    @given(int_vals, int_vals, int_vals, int_vals, int_vals)
    def test_compose_is_function_composition(self, a1, b1, a2, b2, x):
        ca, cb = mp_compose(np.array([a1]), np.array([b1]),
                            np.array([a2]), np.array([b2]))
        direct = mp_apply(np.array([a2]), np.array([b2]),
                          mp_apply(np.array([a1]), np.array([b1]),
                                   np.array([x])))
        composed = mp_apply(ca, cb, np.array([x]))
        assert composed[0] == direct[0]

    @settings(max_examples=60, deadline=None)
    @given(int_vals, int_vals, int_vals, int_vals, int_vals, int_vals, int_vals)
    def test_compose_associative(self, a1, b1, a2, b2, a3, b3, x):
        f12 = mp_compose(np.array([a1]), np.array([b1]), np.array([a2]),
                         np.array([b2]))
        left = mp_compose(*f12, np.array([a3]), np.array([b3]))
        f23 = mp_compose(np.array([a2]), np.array([b2]), np.array([a3]),
                         np.array([b3]))
        right = mp_compose(np.array([a1]), np.array([b1]), *f23)
        lx = mp_apply(*left, np.array([x]))
        rx = mp_apply(*right, np.array([x]))
        assert lx[0] == rx[0]

    def test_identity(self):
        a, b = mp_identity(3)
        x = np.array([5, -2, 0])
        assert np.array_equal(mp_apply(a, b, x), x)

    def test_constant(self):
        a, b = mp_constant([7, 9])
        assert np.array_equal(mp_apply(a, b, np.array([0, 1000])), [7, 9])

    def test_neg_inf_saturates(self):
        a = np.array([NEG_INF])
        b = np.array([3])
        assert mp_apply(a, b, np.array([10 ** 15]))[0] == 3


class TestTreeContraction:
    def p_inputs(self, b):
        L = b.subtree_leaf_counts()
        jc = np.zeros(b.num_nodes, dtype=np.int64)
        jc[b.internal_nodes] = L[b.right[b.internal_nodes]]
        return jc, np.ones(b.num_nodes, dtype=np.int64)

    @pytest.mark.parametrize("n,seed", [(2, 0), (3, 1), (5, 2), (9, 3),
                                        (33, 4), (128, 5), (301, 6)])
    def test_matches_sequential_recurrence(self, n, seed):
        b = make_leftist(binarize_cotree(random_cotree(n, seed=seed)))
        jc, leafv = self.p_inputs(b)
        got = evaluate_max_plus_tree(PRAM(), b.left, b.right, b.parent, b.root,
                                     b.kind, jc, leafv)
        assert np.array_equal(got, path_cover_sizes_per_node(b))

    def test_caterpillar(self):
        b = make_leftist(binarize_cotree(caterpillar_cotree(200)))
        jc, leafv = self.p_inputs(b)
        got = evaluate_max_plus_tree(PRAM(), b.left, b.right, b.parent, b.root,
                                     b.kind, jc, leafv)
        assert np.array_equal(got, path_cover_sizes_per_node(b))

    def test_single_leaf(self):
        got = evaluate_max_plus_tree(PRAM(), [-1], [-1], [-1], 0, [LEAF], [0],
                                     [1])
        assert got[0] == 1

    def test_pure_union_tree_counts_leaves(self):
        from repro.cograph import independent_set
        b = binarize_cotree(independent_set(17))
        jc, leafv = self.p_inputs(b)
        got = evaluate_max_plus_tree(PRAM(), b.left, b.right, b.parent, b.root,
                                     b.kind, jc, leafv)
        assert got[b.root] == 17

    def test_erew_clean(self):
        b = make_leftist(binarize_cotree(random_cotree(200, seed=7)))
        jc, leafv = self.p_inputs(b)
        evaluate_max_plus_tree(PRAM(mode=AccessMode.EREW), b.left, b.right,
                               b.parent, b.root, b.kind, jc, leafv)

    def test_rounds_logarithmic_work_linear(self):
        b = make_leftist(binarize_cotree(random_cotree(2048, seed=8)))
        jc, leafv = self.p_inputs(b)
        m = PRAM()
        evaluate_max_plus_tree(m, b.left, b.right, b.parent, b.root, b.kind,
                               jc, leafv)
        assert m.rounds <= 8 * log2ceil(b.num_nodes)
        assert m.work <= 12 * b.num_nodes

    def test_accepts_precomputed_leaf_order(self):
        b = make_leftist(binarize_cotree(random_cotree(50, seed=9)))
        nums = compute_tree_numbers(None, b.left, b.right, b.parent, [b.root])
        jc, leafv = self.p_inputs(b)
        got = evaluate_max_plus_tree(PRAM(), b.left, b.right, b.parent, b.root,
                                     b.kind, jc, leafv,
                                     leaf_inorder=nums.inorder)
        assert np.array_equal(got, path_cover_sizes_per_node(b))
