"""Tests for prefix sums / prefix max and list ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import log2ceil
from repro.pram import PRAM, AccessMode
from repro.primitives import (
    prefix_max,
    prefix_sum,
    prefix_sum_hillis_steele,
    total_sum,
    work_efficient_list_ranking,
    wyllie_list_ranking,
)


def make_list(order):
    """Successor array of a list visiting ``order`` in sequence."""
    n = len(order)
    succ = np.full(n, -1, dtype=np.int64)
    for a, b in zip(order[:-1], order[1:]):
        succ[a] = b
    return succ


def expected_suffix_counts(order):
    n = len(order)
    out = np.empty(n, dtype=np.int64)
    for i, v in enumerate(order):
        out[v] = n - i
    return out


class TestScan:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 9, 100, 255, 256, 1000])
    def test_inclusive_matches_cumsum(self, n):
        rng = np.random.default_rng(n)
        x = rng.integers(-5, 10, size=n)
        assert np.array_equal(prefix_sum(PRAM(), x), np.cumsum(x))

    @pytest.mark.parametrize("n", [1, 5, 64, 321])
    def test_exclusive(self, n):
        x = np.arange(1, n + 1)
        expect = np.cumsum(x) - x
        assert np.array_equal(prefix_sum(PRAM(), x, inclusive=False), expect)

    def test_empty_input(self):
        assert len(prefix_sum(PRAM(), [])) == 0
        assert total_sum(PRAM(), []) == 0

    def test_boolean_input(self):
        got = prefix_sum(None, [True, False, True, True])
        assert list(got) == [1, 1, 2, 3]

    def test_rounds_are_logarithmic(self):
        m = PRAM()
        prefix_sum(m, np.ones(4096, dtype=np.int64))
        assert m.rounds <= 4 * log2ceil(4096) + 4

    def test_work_is_linear(self):
        m = PRAM()
        n = 4096
        prefix_sum(m, np.ones(n, dtype=np.int64))
        assert m.work <= 6 * n

    def test_erew_clean(self):
        m = PRAM(mode=AccessMode.EREW)
        prefix_sum(m, np.arange(500))
        prefix_max(m, np.arange(500))

    def test_hillis_steele_matches_but_costs_more_work(self):
        x = np.arange(1, 300)
        m1, m2 = PRAM(), PRAM()
        a = prefix_sum(m1, x)
        b = prefix_sum_hillis_steele(m2, x)
        assert np.array_equal(a, b)
        assert m2.work > m1.work

    def test_hillis_steele_exclusive(self):
        x = np.array([3, 1, 2])
        assert list(prefix_sum_hillis_steele(None, x, inclusive=False)) == [0, 3, 4]

    def test_prefix_max(self):
        x = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        assert np.array_equal(prefix_max(PRAM(), x), np.maximum.accumulate(x))

    def test_prefix_max_exclusive_first_is_identity(self):
        from repro.primitives import NEG_INF
        out = prefix_max(PRAM(), [5, 2, 7], inclusive=False)
        assert out[0] <= NEG_INF
        assert out[1] == 5 and out[2] == 5

    def test_total_sum(self):
        assert total_sum(PRAM(), np.arange(1000)) == 499500

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                    max_size=200))
    def test_scan_hypothesis(self, xs):
        assert np.array_equal(prefix_sum(None, xs), np.cumsum(xs))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1,
                    max_size=200))
    def test_prefix_max_hypothesis(self, xs):
        assert np.array_equal(prefix_max(None, xs), np.maximum.accumulate(xs))


class TestListRanking:
    @pytest.mark.parametrize("algo", [wyllie_list_ranking,
                                      work_efficient_list_ranking])
    def test_identity_order(self, algo):
        n = 50
        succ = make_list(list(range(n)))
        assert np.array_equal(algo(PRAM(), succ), np.arange(n, 0, -1))

    @pytest.mark.parametrize("algo", [wyllie_list_ranking,
                                      work_efficient_list_ranking])
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 64, 257, 1000])
    def test_random_permutation_lists(self, algo, n):
        rng = np.random.default_rng(n)
        order = list(rng.permutation(n))
        succ = make_list(order)
        assert np.array_equal(algo(PRAM(), succ), expected_suffix_counts(order))

    @pytest.mark.parametrize("algo", [wyllie_list_ranking,
                                      work_efficient_list_ranking])
    def test_weights(self, algo):
        order = [2, 0, 1]
        succ = make_list(order)
        w = np.array([10, 100, 1], dtype=np.int64)
        # suffix sums: rank[2] = 1+10+100, rank[0] = 10+100, rank[1] = 100
        assert list(algo(PRAM(), succ, w)) == [110, 100, 111]

    @pytest.mark.parametrize("algo", [wyllie_list_ranking,
                                      work_efficient_list_ranking])
    def test_multiple_disjoint_lists(self, algo):
        # two lists: 0 -> 1 -> 2 and 3 -> 4
        succ = np.array([1, 2, -1, 4, -1], dtype=np.int64)
        assert list(algo(PRAM(), succ)) == [3, 2, 1, 2, 1]

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            wyllie_list_ranking(PRAM(), [1, -1], [1])

    def test_empty(self):
        assert len(wyllie_list_ranking(PRAM(), [])) == 0
        assert len(work_efficient_list_ranking(PRAM(), [])) == 0

    def test_erew_clean(self):
        rng = np.random.default_rng(0)
        order = list(rng.permutation(300))
        succ = make_list(order)
        wyllie_list_ranking(PRAM(mode=AccessMode.EREW), succ)
        work_efficient_list_ranking(PRAM(mode=AccessMode.EREW), succ, seed=1)

    def test_rounds_logarithmic(self):
        n = 2048
        succ = make_list(list(range(n)))
        m = PRAM()
        wyllie_list_ranking(m, succ)
        assert m.rounds <= log2ceil(n) + 2

    def test_work_efficiency_gap(self):
        """Wyllie does Θ(n log n) work; the contraction variant stays near
        linear (A3 ablation's unit-level counterpart)."""
        n = 4096
        succ = make_list(list(range(n)))
        m_wyllie, m_we = PRAM(), PRAM()
        wyllie_list_ranking(m_wyllie, succ)
        work_efficient_list_ranking(m_we, succ, seed=0)
        assert m_wyllie.work > 0.8 * n * log2ceil(n)
        assert m_we.work < 0.7 * m_wyllie.work

    def test_seed_does_not_change_result(self):
        order = list(np.random.default_rng(5).permutation(200))
        succ = make_list(order)
        a = work_efficient_list_ranking(PRAM(), succ, seed=1)
        b = work_efficient_list_ranking(PRAM(), succ, seed=99)
        assert np.array_equal(a, b)

    @settings(max_examples=25, deadline=None)
    @given(st.permutations(list(range(40))))
    def test_list_ranking_hypothesis(self, order):
        succ = make_list(list(order))
        expect = expected_suffix_counts(list(order))
        assert np.array_equal(work_efficient_list_ranking(None, succ, seed=3),
                              expect)
