"""FlatCotree: round-trips, canonical form, canonical keys, pipeline parity.

The flat CSR representation is the canonical in-memory form of the hot
path, so these tests pin down three guarantees:

1. ``Cotree -> FlatCotree -> Cotree`` is the identity (same node ids, same
   child order) for every generator family;
2. the vectorized canonical-form kernel (``is_canonical`` /
   ``canonicalize`` / ``canonical_key``) agrees with the list-based
   implementation — including on arbitrarily deep trees, where the old
   recursive cache key used to blow the recursion limit;
3. the solver pipeline produces bit-identical covers whichever
   representation carries the instance, on both execution backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import solve
from repro.api.cache import SolutionCache, canonical_cotree_key
from repro.cograph import (
    BinaryCotree,
    Cotree,
    FlatCotree,
    balanced_cotree,
    binarize_cotree,
    canonical_key,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    random_cotree,
    threshold_cograph,
    union_of_cliques,
)
from repro.core import minimum_path_cover_parallel

FAMILIES = {
    "single": lambda: Cotree.single_vertex(3),
    "edge": lambda: clique(2),
    "I7": lambda: independent_set(7),
    "K6": lambda: clique(6),
    "K34": lambda: complete_bipartite(3, 4),
    "cliques": lambda: union_of_cliques([2, 4, 3]),
    "multipartite": lambda: join_of_independent_sets([4, 2, 3]),
    "caterpillar": lambda: caterpillar_cotree(21),
    "balanced": lambda: balanced_cotree(4),
    "threshold": lambda: threshold_cograph([1, 0, 1, 1, 0, 0, 1, 1]),
    "random-40": lambda: random_cotree(40, seed=3),
    "random-65-dense": lambda: random_cotree(65, seed=9, join_prob=0.8),
}


# --------------------------------------------------------------------------- #
# 1. round trips
# --------------------------------------------------------------------------- #

class TestRoundTrip:

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_cotree_flat_cotree_identity(self, name):
        tree = FAMILIES[name]()
        flat = FlatCotree.from_cotree(tree)
        back = flat.to_cotree()
        assert back == tree                       # ordered structural equality
        assert back.root == tree.root
        assert np.array_equal(back.kind, tree.kind)
        assert back.children == tree.children
        assert np.array_equal(back.leaf_vertex, tree.leaf_vertex)

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_flat_mirrors_cotree_properties(self, name):
        tree = FAMILIES[name]()
        flat = FlatCotree.from_cotree(tree)
        assert flat.num_nodes == tree.num_nodes
        assert flat.num_vertices == tree.num_vertices
        assert np.array_equal(flat.leaves, tree.leaves)
        assert np.array_equal(flat.vertices, tree.vertices)
        assert np.array_equal(flat.parent, tree.parent)
        for u in range(tree.num_nodes):
            assert list(flat.children_of(u)) == tree.children[u]

    def test_binary_cotree_conversion(self):
        binary = binarize_cotree(random_cotree(30, seed=5))
        flat = FlatCotree.from_cotree(binary)
        assert flat.to_cotree() == binary.to_cotree()

    def test_from_cotree_is_idempotent_on_flat(self):
        flat = FlatCotree.from_cotree(random_cotree(10, seed=0))
        assert FlatCotree.from_cotree(flat) is flat

    def test_cotree_to_flat_helper(self):
        tree = random_cotree(12, seed=2)
        assert tree.to_flat().to_cotree() == tree

    def test_rejects_non_tree(self):
        with pytest.raises(TypeError):
            FlatCotree.from_cotree([1, 2, 3])


# --------------------------------------------------------------------------- #
# 2. canonical form
# --------------------------------------------------------------------------- #

def _non_canonical_samples():
    # unary chain above the root
    unary_root = Cotree([1, 2, 0, 0], [[1], [2, 3], [], []],
                        [-1, -1, 0, 1], 0)
    # same-label child nesting
    nested = Cotree.from_nested(
        ("union", ("union", 0, 1), ("join", 2, ("join", 3, 4))))
    # unary node in the middle: join(union(leaf0), leaf1)
    mid_unary = Cotree([2, 1, 0, 0], [[1, 3], [2], [], []],
                       [-1, -1, 0, 1], 0)
    return {"unary-root": unary_root, "nested": nested,
            "mid-unary": mid_unary}


class TestCanonicalForm:

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_is_canonical_matches_cotree(self, name):
        tree = FAMILIES[name]()
        assert FlatCotree.from_cotree(tree).is_canonical() \
            == tree.is_canonical()

    @pytest.mark.parametrize("name", sorted(_non_canonical_samples()))
    def test_non_canonical_detected_and_fixed(self, name):
        tree = _non_canonical_samples()[name]
        flat = FlatCotree.from_cotree(tree)
        assert flat.is_canonical() == tree.is_canonical()
        fixed = flat.canonicalize()
        assert fixed.is_canonical()
        # same represented cograph as the list-based canonicalization
        assert canonical_key(fixed) == canonical_key(tree.canonicalize())
        assert canonical_key(fixed) == canonical_key(tree)

    def test_vectorized_is_canonical_agrees_on_generator_pool(self):
        for seed in range(10):
            tree = random_cotree(25, seed=seed)
            assert tree.is_canonical()
            assert FlatCotree.from_cotree(tree).is_canonical()


class TestCanonicalKey:

    def test_invariant_under_child_permutation(self):
        rng = np.random.default_rng(0)
        for seed in range(8):
            tree = random_cotree(50, seed=seed)
            children = [list(c) for c in tree.children]
            for c in children:
                rng.shuffle(c)
            shuffled = Cotree(tree.kind, children, tree.leaf_vertex,
                              tree.root)
            assert canonical_key(tree) == canonical_key(shuffled)

    def test_sensitive_to_vertex_labels(self):
        a = Cotree.from_nested(("join", 0, ("union", 1, 2)))
        b = Cotree.from_nested(("join", 0, ("union", 1, 3)))
        assert canonical_key(a) != canonical_key(b)

    def test_sensitive_to_structure(self):
        a = Cotree.from_nested(("join", 0, ("union", 1, 2)))
        b = Cotree.from_nested(("union", 0, ("join", 1, 2)))
        assert canonical_key(a) != canonical_key(b)

    def test_same_key_across_representations(self):
        tree = random_cotree(40, seed=4)
        flat = FlatCotree.from_cotree(tree)
        binary = binarize_cotree(tree)
        assert canonical_key(tree) == canonical_key(flat)
        # binarization only rewrites k-ary nodes into same-label chains,
        # which canonicalization undoes
        assert canonical_key(tree) == canonical_key(binary)

    def test_single_vertex(self):
        assert canonical_key(Cotree.single_vertex(5)) \
            == canonical_key(FlatCotree.from_cotree(Cotree.single_vertex(5)))
        assert canonical_key(Cotree.single_vertex(5)) \
            != canonical_key(Cotree.single_vertex(6))

    def test_depth_5000_caterpillar_no_recursion_error(self):
        # regression: the old recursive nested-tuple key blew RecursionError
        # past depth ~1000; the iterative kernel must not.
        spec = 0
        for i in range(1, 5001):
            spec = ("join" if i % 2 else "union", i, spec)
        deep = Cotree.from_nested(spec)
        assert deep.height() == 5000
        key = canonical_cotree_key(deep)
        assert key == canonical_cotree_key(deep.to_flat())
        # a relabelled twin must differ
        twin_spec = 0
        for i in range(1, 5001):
            twin_spec = ("join" if i % 2 else "union",
                         i if i != 4321 else 9999, twin_spec)
        assert key != canonical_cotree_key(Cotree.from_nested(twin_spec))

    def test_cache_key_unifies_flat_and_cotree_spellings(self):
        from repro.api import SolveOptions, as_problem
        cache = SolutionCache(maxsize=8)
        tree = random_cotree(24, seed=6)
        k1 = cache.key_for(as_problem(tree), "path_cover", SolveOptions())
        k2 = cache.key_for(as_problem(FlatCotree.from_cotree(tree)),
                           "path_cover", SolveOptions())
        assert k1 == k2

    def test_scipy_fallback_gives_identical_keys(self, monkeypatch):
        import repro.cograph.flat as flatmod
        trees = [random_cotree(30, seed=s) for s in range(4)]
        trees.append(caterpillar_cotree(15))
        with_scipy = [canonical_key(t) for t in trees]
        monkeypatch.setattr(flatmod, "_HAVE_SPARSE_DFS", False)
        without = [canonical_key(t) for t in trees]
        assert with_scipy == without

    def test_rejects_non_tree(self):
        with pytest.raises(TypeError):
            canonical_cotree_key({"not": "a tree"})


# --------------------------------------------------------------------------- #
# 3. pipeline parity across representations and backends
# --------------------------------------------------------------------------- #

class TestPipelineParity:

    @pytest.mark.parametrize("backend", ["fast", "pram"])
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_bit_identical_covers(self, name, backend):
        tree = FAMILIES[name]()
        flat = FlatCotree.from_cotree(tree)
        a = minimum_path_cover_parallel(tree, backend=backend)
        b = minimum_path_cover_parallel(flat, backend=backend)
        assert a.cover.paths == b.cover.paths
        assert a.num_paths == b.num_paths == b.p_root

    def test_solve_front_door_accepts_flat(self):
        tree = random_cotree(35, seed=8)
        flat = FlatCotree.from_cotree(tree)
        a = solve(tree, task="path_cover")
        b = solve(flat, task="path_cover")
        assert a.cover.paths == b.cover.paths
        assert b.provenance["source_format"] == "flat_cotree"

    def test_flat_input_solves_every_task(self):
        flat = FlatCotree.from_cotree(clique(6))
        assert solve(flat, task="path_cover_size").answer == 1
        assert solve(flat, task="hamiltonian_path").answer is not None
        assert solve(flat, task="recognition").answer is True

    def test_flat_round_trips_through_cache(self):
        cache = SolutionCache(maxsize=4)
        flat = FlatCotree.from_cotree(random_cotree(20, seed=12))
        first = solve(flat, task="path_cover", cache=cache)
        second = solve(flat.to_cotree(), task="path_cover", cache=cache)
        assert first.cache_status == "miss"
        assert second.cache_status == "hit"
        assert first.cover.paths == second.cover.paths


class TestEmptyAndSingleVertexEdgeCases:
    """PR-5 regressions: the degenerate trees must round-trip, not raise."""

    def empty_flat(self):
        return FlatCotree([], [0], [], [], [], -1)

    def test_empty_cotree_constructs_with_root_minus_one(self):
        empty = Cotree([], [], [], -1)
        assert empty.num_nodes == 0
        assert empty.num_vertices == 0
        assert list(empty.preorder()) == []
        assert list(empty.postorder()) == []
        assert empty.height() == 0

    def test_empty_cotree_rejects_a_real_root(self):
        with pytest.raises(Exception, match="root"):
            Cotree([], [], [], 0)

    def test_empty_round_trip(self):
        flat = self.empty_flat()
        back = flat.to_cotree()
        assert back.num_nodes == 0 and back.root == -1
        again = FlatCotree.from_cotree(back)
        assert again.num_nodes == 0
        assert again == flat

    def test_empty_canonical_key_and_canonicalize(self):
        flat = self.empty_flat()
        assert canonical_key(flat) == ("cotree", 0)
        assert canonical_key(Cotree([], [], [], -1)) == ("cotree", 0)
        assert flat.is_canonical()
        assert flat.canonicalize().num_nodes == 0
        assert hash(flat) == hash(self.empty_flat())

    def test_single_vertex_round_trip(self):
        one = Cotree.single_vertex(7)
        flat = FlatCotree.from_cotree(one)
        assert flat.num_nodes == 1 and flat.num_vertices == 1
        back = flat.to_cotree()
        assert int(back.leaf_vertex[back.root]) == 7
        assert FlatCotree.from_cotree(back) == flat

    def test_single_vertex_canonical_key_and_canonicalize(self):
        flat = FlatCotree.from_cotree(Cotree.single_vertex(3))
        assert canonical_key(flat) == ("cotree", 1, 3)
        assert flat.canonicalize().num_nodes == 1
        assert flat.is_canonical()

    def test_single_vertex_binary_cotree_round_trip(self):
        binary = binarize_cotree(Cotree.single_vertex(0))
        flat = FlatCotree.from_cotree(binary)
        assert flat.num_nodes == binary.num_nodes
        assert canonical_key(flat) == canonical_key(Cotree.single_vertex(0))

    def test_single_vertex_cache_key_stable(self):
        cache = SolutionCache(maxsize=2)
        first = solve(Cotree.single_vertex(0), task="path_cover_size",
                      cache=cache)
        second = solve(FlatCotree.from_cotree(Cotree.single_vertex(0)),
                       task="path_cover_size", cache=cache)
        assert first.answer == 1
        assert second.cache_status == "hit"
