"""Reproductions of the paper's worked figures (F1-F12 in DESIGN.md).

The paper contains no measurement tables; its figures are worked examples of
the constructions.  Each test below rebuilds one of them programmatically and
checks the properties the paper states about it.
"""

import numpy as np
import pytest

from repro.cograph import (
    CographAdjacencyOracle,
    Cotree,
    Graph,
    binarize_cotree,
    independent_set,
    join_cotrees,
    make_leftist,
    minimum_path_cover_size,
    single_vertex,
    union_cotrees,
    validate_binary_cotree,
    validate_cotree,
)
from repro.core import (
    VertexClass,
    binarize_parallel,
    build_pseudo_forest,
    expected_path_count,
    generate_brackets,
    leftist_reorder,
    legalize_forest,
    minimum_path_cover_parallel,
    or_instance_cotree,
    reduce_cotree,
    remove_dummies,
    render_brackets,
)
from repro.core.brackets import ROLE_L, ROLE_P, ROLE_R


def fig10_cotree() -> Cotree:
    """The Section-4 worked example: a, c primary; b, e, f insert; d bridge.

    Vertices: a=0, b=1, c=2, d=3, e=4, f=5.
    """
    ab = join_cotrees(single_vertex(0), single_vertex(1))
    left = union_cotrees(ab, single_vertex(2))
    right = independent_set(3).relabel_vertices({0: 3, 1: 4, 2: 5})
    return join_cotrees(left, right)


class TestFigure1CographAndCotree:
    def test_cotree_properties_4_to_6(self, paper_figure1_cotree):
        t = paper_figure1_cotree
        validate_cotree(t, Graph.from_cotree(t))
        assert t.is_canonical()

    def test_adjacency_iff_lca_is_join(self, paper_figure1_cotree):
        t = paper_figure1_cotree
        g = Graph.from_cotree(t)
        oracle = CographAdjacencyOracle(t)
        for u in range(t.num_vertices):
            for v in range(u + 1, t.num_vertices):
                assert oracle.adjacent(u, v) == g.has_edge(u, v)


class TestFigure2LowerBound:
    def test_paper_bit_vector(self):
        bits = [0, 0, 0, 0, 0, 1, 0, 1]
        inst = or_instance_cotree(bits)
        assert minimum_path_cover_size(inst.cotree) == expected_path_count(bits) == 8
        cover = minimum_path_cover_parallel(inst.cotree).cover
        y_path = next(p for p in cover.paths if inst.y in p)
        assert len(y_path) == 2 + sum(bits)


class TestFigure3Binarization:
    def test_chain_replaces_wide_node(self):
        t = Cotree.from_nested(("union", 0, 1, 2, 3, 4))
        b = binarize_cotree(t)
        assert b.num_nodes == 9
        # exactly k-1 = 4 internal nodes, all unions, forming a left chain
        internal = b.internal_nodes
        assert len(internal) == 4
        assert Graph.from_cotree(b.to_cotree()) == Graph.from_cotree(t)

    def test_parallel_binarizer_agrees(self):
        t = Cotree.from_nested(("join", 0, 1, ("union", 2, 3, 4), 5))
        a = binarize_cotree(t)
        b = binarize_parallel(None, t)
        assert Graph.from_cotree(a.to_cotree()) == Graph.from_cotree(b.to_cotree())


class TestFigure4Cases:
    def test_case1_bridging(self):
        """p(v) = 4 paths, L(w) = 2 bridge vertices -> 2 paths (Fig. 4 left)."""
        tree = join_cotrees(independent_set(4),
                            independent_set(2).relabel_vertices({0: 4, 1: 5}))
        assert minimum_path_cover_size(tree) == 2

    def test_case2_insertion(self):
        """p(v) = 4, L(w) = 7 >= p(v): Hamiltonian path (Fig. 4 right)."""
        tree = join_cotrees(independent_set(4),
                            independent_set(7).relabel_vertices(
                                {i: 4 + i for i in range(7)}))
        # leftist swaps the sides; the cover is still a single path
        assert minimum_path_cover_size(tree) == max(1, 7 - 4)


class TestFigure5ReducedCotree:
    def test_right_subtrees_of_joins_are_flattened(self):
        tree = fig10_cotree()
        lf = leftist_reorder(None, binarize_cotree(tree))
        red = reduce_cotree(None, lf)
        # vertices 3, 4, 5 belong to the flattened region of the root join
        assert set(np.flatnonzero(red.vertex_owner >= 0)) >= {3, 4, 5}
        # and are one bridge + two inserts
        classes = sorted(red.vertex_class[[3, 4, 5]])
        assert classes == [VertexClass.BRIDGE, VertexClass.INSERT,
                           VertexClass.INSERT]


class TestFigure6PathTrees:
    def test_inorder_of_path_tree_is_the_path(self):
        tree = fig10_cotree()
        result = minimum_path_cover_parallel(tree)
        assert result.num_paths == 1
        path = result.cover.paths[0]
        oracle = CographAdjacencyOracle(tree)
        assert oracle.path_is_valid(path)
        assert len(path) == 6


class TestFigures7And8Constructions:
    def test_case1_path_tree_has_bridges_between_subpaths(self):
        """join(I5, I2): the two G(w) vertices are interior on the long path."""
        tree = join_cotrees(independent_set(5),
                            independent_set(2).relabel_vertices({0: 5, 1: 6}))
        result = minimum_path_cover_parallel(tree)
        assert result.num_paths == 3
        long_path = max(result.cover.paths, key=len)
        assert len(long_path) == 5
        # bridge vertices 5, 6 are never endpoints of the long path
        assert long_path[0] not in (5, 6) and long_path[-1] not in (5, 6)

    def test_case2_every_gv_vertex_on_single_path(self):
        tree = join_cotrees(independent_set(3),
                            independent_set(5).relabel_vertices(
                                {i: 3 + i for i in range(5)}))
        result = minimum_path_cover_parallel(tree)
        assert result.num_paths == max(1, 5 - 3)


class TestFigure9And11IllegalVerticesAndDummies:
    def test_pseudo_tree_before_legalisation_can_be_invalid(self):
        """Fig. 9/10: without the exchange step the inorder may contain
        non-edges; with it the final cover is always valid (checked globally
        in the solver tests, spot-checked here on the worked example)."""
        tree = fig10_cotree()
        m = None
        lf = leftist_reorder(m, binarize_cotree(tree))
        red = reduce_cotree(m, lf)
        seq = generate_brackets(m, red)
        forest = build_pseudo_forest(m, seq)
        oracle = CographAdjacencyOracle(tree)

        # the number of dummies is 2 p(v) - 2 = 2 for the root join
        assert seq.num_dummies == 2

        forest_fixed, exchanges = legalize_forest(m, forest, red)
        final = remove_dummies(m, forest_fixed)
        from repro.core import extract_paths
        cover = extract_paths(m, final)
        cover.validate(oracle, expected_num_vertices=6, expected_num_paths=1)

    def test_exchanges_happen_on_some_instance(self):
        """Across a small sweep at least one instance actually exercises the
        illegal-insert exchange (otherwise Step 6 would be untested dead
        code)."""
        from repro.cograph import random_cotree
        total = 0
        for seed in range(20):
            tree = random_cotree(40, seed=seed, join_prob=0.35)
            total += minimum_path_cover_parallel(tree).exchanges
        assert total > 0


class TestFigure10BracketSequence:
    def test_bracket_pattern_matches_paper(self):
        tree = fig10_cotree()
        lf = leftist_reorder(None, binarize_cotree(tree))
        red = reduce_cotree(None, lf)
        seq = generate_brackets(None, red)

        # restrict to the real (non-dummy) brackets; the paper's displayed
        # sequence (before dummies are added) is
        #   a^p[ a^l( a^r( b^p) b^l( b^r( c^p[ c^l( c^r(
        #   d^r] d^l] d^p[ e^p) f^p) e^l( e^r( f^l( f^r(
        real = [i for i in range(len(seq)) if seq.vertex[i] < seq.num_real]
        observed = [(int(seq.vertex[i]), int(seq.role[i]),
                     bool(seq.is_square[i]), bool(seq.is_open[i]))
                    for i in real]
        a, b, c, d, e, f = range(6)
        expected = [
            (a, ROLE_P, True, True), (a, ROLE_L, False, True), (a, ROLE_R, False, True),
            (b, ROLE_P, False, False), (b, ROLE_L, False, True), (b, ROLE_R, False, True),
            (c, ROLE_P, True, True), (c, ROLE_L, False, True), (c, ROLE_R, False, True),
            (d, ROLE_R, True, False), (d, ROLE_L, True, False), (d, ROLE_P, True, True),
            (e, ROLE_P, False, False), (f, ROLE_P, False, False),
            (e, ROLE_L, False, True), (e, ROLE_R, False, True),
            (f, ROLE_L, False, True), (f, ROLE_R, False, True),
        ]
        assert observed == expected

    def test_square_matching_matches_paper(self):
        """The paper lists the square matches a^p[~d^l] and c^p[~d^r]."""
        tree = fig10_cotree()
        lf = leftist_reorder(None, binarize_cotree(tree))
        red = reduce_cotree(None, lf)
        seq = generate_brackets(None, red)
        forest = build_pseudo_forest(None, seq)
        a, b, c, d, e, f = range(6)
        assert forest.parent[a] == d
        assert forest.parent[c] == d
        assert forest.left[d] == a
        assert forest.right[d] == c
        # round match a^r( ~ b^p): b is the right child of a
        assert forest.parent[b] == a and forest.right[a] == b

    def test_rendered_sequence_mentions_all_vertices(self):
        tree = fig10_cotree()
        lf = leftist_reorder(None, binarize_cotree(tree))
        red = reduce_cotree(None, lf)
        seq = generate_brackets(None, red)
        text = render_brackets(seq, names=list("abcdef"))
        for name in "abcdef":
            assert f"{name}^p" in text


class TestFigure12CapacityArgument:
    def test_inserts_plus_dummies_fit_the_slots(self):
        """L(w) + p(v) - 1 <= L(v) + p(v) - 1 for every active Case-2 1-node
        (the counting argument at the end of Section 4)."""
        from repro.cograph import random_cotree
        for seed in range(10):
            tree = random_cotree(60, seed=seed, join_prob=0.4)
            lf = leftist_reorder(None, binarize_cotree(tree))
            red = reduce_cotree(None, lf)
            t = red.tree
            for u in red.active_join_nodes():
                p_v = red.p[t.left[u]]
                L_w = red.leaf_count[t.right[u]]
                L_v = red.leaf_count[t.left[u]]
                if p_v <= L_w:
                    demand = (L_w - p_v + 1) + (2 * p_v - 2)
                    assert demand <= L_v + p_v - 1
