"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.cograph import (
    Cotree,
    Graph,
    balanced_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    random_cotree,
    threshold_cograph,
    union_of_cliques,
)

# --------------------------------------------------------------------------- #
# deterministic example instances
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="session")
def paper_figure1_cotree() -> Cotree:
    """A small canonical cotree in the spirit of the paper's Fig. 1."""
    return Cotree.from_nested(
        ("join",
         ("union", 0, 1, ("join", 2, 3)),
         ("union", 4, ("join", 5, 6)),
         7))


@pytest.fixture(scope="session")
def small_named_cotrees():
    """A dictionary of small, structurally diverse cotrees."""
    return {
        "single": Cotree.single_vertex(0),
        "edge": clique(2),
        "two-isolated": independent_set(2),
        "triangle": clique(3),
        "I5": independent_set(5),
        "K5": clique(5),
        "K23": complete_bipartite(2, 3),
        "K44": complete_bipartite(4, 4),
        "cliques-234": union_of_cliques([2, 3, 4]),
        "multipartite-532": join_of_independent_sets([5, 3, 2]),
        "caterpillar-9": caterpillar_cotree(9),
        "balanced-3": balanced_cotree(3),
        "threshold": threshold_cograph([1, 0, 1, 1, 0, 0, 1]),
        "random-20": random_cotree(20, seed=7),
        "random-33-sparse": random_cotree(33, seed=11, join_prob=0.25),
        "random-33-dense": random_cotree(33, seed=11, join_prob=0.8),
    }


@pytest.fixture(scope="session")
def random_cotree_pool():
    """A pool of (cotree, graph) pairs reused by the heavier tests."""
    pool = []
    for n, seed, jp in [(6, 0, 0.5), (10, 1, 0.3), (14, 2, 0.7), (25, 3, 0.5),
                        (40, 4, 0.2), (40, 5, 0.8), (60, 6, 0.5)]:
        tree = random_cotree(n, seed=seed, join_prob=jp)
        pool.append((tree, Graph.from_cotree(tree)))
    return pool


# --------------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------------- #


def nested_cotree_specs(max_leaves: int = 10):
    """Hypothesis strategy producing nested cotree specs with ``1..max_leaves``
    leaves and vertex ids ``0..k-1`` (by construction)."""

    def _partition(leaf_ids):
        if len(leaf_ids) == 1:
            return st.just(leaf_ids[0])
        return st.integers(min_value=1, max_value=len(leaf_ids) - 1).flatmap(
            lambda cut: st.tuples(
                st.sampled_from(["union", "join"]),
                _partition(leaf_ids[:cut]),
                _partition(leaf_ids[cut:]),
            )
        )

    return st.integers(min_value=1, max_value=max_leaves).flatmap(
        lambda k: _partition(list(range(k))))


@pytest.fixture(scope="session")
def cotree_spec_strategy():
    return nested_cotree_specs


def small_graphs(max_n: int = 7):
    """Hypothesis strategy for arbitrary small graphs (adjacency by edge set)."""
    def make(n, edge_bools):
        g = Graph(n)
        k = 0
        for u in range(n):
            for v in range(u + 1, n):
                if k < len(edge_bools) and edge_bools[k]:
                    g.add_edge(u, v)
                k += 1
        return g
    return st.integers(min_value=1, max_value=max_n).flatmap(
        lambda n: st.lists(st.booleans(), min_size=n * (n - 1) // 2,
                           max_size=n * (n - 1) // 2).map(
            lambda bools: make(n, bools)))
