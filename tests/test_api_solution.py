"""Solution JSON round-trips, including through repro.io.save_json/load_json."""

from __future__ import annotations

import pytest

from repro.api import Solution, SolveOptions, solve
from repro.cograph import clique, random_cotree, union_of_cliques
from repro.io import load_json, save_json


def _round_trip(solution: Solution) -> Solution:
    return Solution.from_json_dict(solution.to_json_dict())


def test_path_cover_solution_round_trips():
    tree = random_cotree(30, seed=3)
    sol = solve(tree, backend="pram", record_steps=True)
    back = _round_trip(sol)
    assert back.task == sol.task
    assert back.answer.paths == sol.answer.paths
    assert back.cover.paths == sol.cover.paths
    assert back.num_paths == sol.num_paths
    assert back.backend == sol.backend
    assert back.options == sol.options
    assert back.stage_seconds == sol.stage_seconds
    assert back.provenance == sol.provenance
    assert back.machine is None  # the live machine never serialises


def test_report_round_trips_with_labels():
    sol = solve(union_of_cliques([3, 4]), backend="pram", record_steps=True)
    back = _round_trip(sol)
    assert back.report.rounds == sol.report.rounds
    assert back.report.work == sol.report.work
    assert back.report.num_processors == sol.report.num_processors
    assert back.report.mode == sol.report.mode
    assert set(back.report.by_label) == set(sol.report.by_label)
    label = next(iter(sol.report.by_label))
    assert back.report.by_label[label].work == sol.report.by_label[label].work


def test_fast_solution_round_trips_without_report():
    sol = solve(clique(5), backend="fast")
    back = _round_trip(sol)
    assert back.report is None and back.num_paths == 1


@pytest.mark.parametrize("task,problem", [
    ("hamiltonian_path", "(0 * (1 * 2))"),
    ("hamiltonian_cycle", "(0 + 1)"),
    ("recognition", "(0 + 1)"),
    ("lower_bound", [1, 0, 1]),
    ("path_cover_size", "(0 + (1 * 2))"),
])
def test_every_answer_shape_round_trips(task, problem):
    sol = solve(problem, task)
    back = _round_trip(sol)
    assert back.answer == sol.answer
    assert back.task == task


def test_save_and_load_json_dispatch(tmp_path):
    sol = solve(random_cotree(12, seed=9), backend="fast")
    path = tmp_path / "solution.json"
    save_json(sol, str(path))
    back = load_json(str(path))
    assert isinstance(back, Solution)
    assert back.cover.paths == sol.cover.paths
    assert back.options == sol.options


def test_from_json_dict_rejects_other_types():
    with pytest.raises(ValueError, match="not a serialised solution"):
        Solution.from_json_dict({"type": "cotree"})


def test_save_json_rejects_untagged_payloads(tmp_path):
    # CostReport also has to_json_dict, but its payload carries no 'type'
    # tag so load_json could never round-trip it
    report = solve(clique(3)).report
    with pytest.raises(TypeError, match="no 'type' tag"):
        save_json(report, str(tmp_path / "report.json"))


def test_without_machine_is_identity_when_machineless():
    sol = solve(clique(3), backend="fast")
    assert sol.without_machine() is sol


def test_without_machine_drops_only_the_machine():
    sol = solve(clique(3), backend="pram")
    assert sol.machine is not None
    stripped = sol.without_machine()
    assert stripped.machine is None
    assert stripped.report is sol.report
    assert stripped.cover is sol.cover
