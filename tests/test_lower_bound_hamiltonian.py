"""Tests for the lower-bound reduction (Section 2) and the Hamiltonicity
corollaries."""

import numpy as np
import pytest

from repro.baselines import (
    brute_force_has_hamiltonian_cycle,
    brute_force_has_hamiltonian_path,
)
from repro.cograph import (
    CographAdjacencyOracle,
    Graph,
    balanced_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    minimum_path_cover_size,
    random_cotree,
    union_of_cliques,
    validate_cotree,
)
from repro.core import (
    expected_path_count,
    hamiltonian_cycle,
    hamiltonian_path,
    hamiltonicity_report,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    minimum_path_cover_parallel,
    or_from_cover,
    or_from_path_count,
    or_instance_cotree,
    parallel_or_rounds,
)
from repro.pram import PRAM, AccessMode
from repro.analysis import log2ceil


class TestLowerBoundConstruction:
    @pytest.mark.parametrize("bits", [
        [0], [1], [0, 0, 0], [1, 1, 1], [0, 1, 0, 0], [0, 0, 0, 0, 0, 1, 0, 1],
        list(np.random.default_rng(1).integers(0, 2, 20)),
    ])
    def test_cover_size_formula(self, bits):
        inst = or_instance_cotree(bits)
        validate_cotree(inst.cotree, Graph.from_cotree(inst.cotree))
        n = len(bits)
        assert inst.cotree.num_vertices == n + 3
        p = minimum_path_cover_size(inst.cotree)
        assert p == expected_path_count(bits)
        assert or_from_path_count(p, n) == int(any(bits))

    def test_fig2_instance(self):
        """The paper's worked example: bits 0,0,0,0,0,1,0,1 (k = 2 ones)."""
        bits = [0, 0, 0, 0, 0, 1, 0, 1]
        inst = or_instance_cotree(bits)
        p = minimum_path_cover_size(inst.cotree)
        assert p == 8 - 2 + 2
        result = minimum_path_cover_parallel(inst.cotree)
        y_path = [path for path in result.cover.paths if inst.y in path][0]
        # "the path containing y has k + 2 vertices"
        assert len(y_path) == 4

    def test_or_from_cover(self):
        for bits in ([0, 0, 0], [0, 1, 0], [1, 1, 1, 1]):
            inst = or_instance_cotree(bits)
            result = minimum_path_cover_parallel(inst.cotree)
            assert or_from_cover(result.cover, inst) == int(any(bits))

    def test_all_zero_bits_give_isolated_bit_vertices(self):
        inst = or_instance_cotree([0, 0, 0, 0])
        result = minimum_path_cover_parallel(inst.cotree)
        singletons = [p for p in result.cover.paths if len(p) == 1]
        assert len(singletons) >= 4

    def test_rejects_invalid_bits(self):
        with pytest.raises(ValueError):
            or_instance_cotree([])
        with pytest.raises(ValueError):
            or_instance_cotree([0, 2])

    def test_reduction_construction_is_constant_depth(self):
        """The cotree has exactly two internal nodes regardless of n."""
        inst = or_instance_cotree([0, 1] * 50)
        assert len(inst.cotree.internal_nodes) == 2

    def test_or_from_cover_requires_y(self):
        inst = or_instance_cotree([0, 1])
        from repro.cograph import PathCover
        with pytest.raises(ValueError):
            or_from_cover(PathCover([[0], [1]]), inst)


class TestParallelOrRounds:
    def test_erew_fanin_matches_or(self):
        for bits in ([0, 0, 0, 0], [0, 0, 1, 0], [1] * 7):
            m = PRAM(mode=AccessMode.EREW)
            assert parallel_or_rounds(m, bits) == int(any(bits))
            assert m.rounds >= log2ceil(len(bits))

    def test_crcw_is_constant_rounds(self):
        bits = list(np.random.default_rng(0).integers(0, 2, 1000))
        m = PRAM(mode=AccessMode.CRCW_COMMON)
        assert parallel_or_rounds(m, bits) == int(any(bits))
        assert m.rounds == 1

    def test_erew_rounds_grow_with_n(self):
        rounds = []
        for n in (64, 4096):
            m = PRAM(mode=AccessMode.EREW)
            parallel_or_rounds(m, [0] * n)
            rounds.append(m.rounds)
        assert rounds[1] > rounds[0]


class TestHamiltonicity:
    def test_against_brute_force(self):
        for seed in range(25):
            tree = random_cotree(2 + seed % 7, seed=100 + seed)
            g = Graph.from_cotree(tree)
            assert has_hamiltonian_path(tree) == brute_force_has_hamiltonian_path(g)
            assert has_hamiltonian_cycle(tree) == brute_force_has_hamiltonian_cycle(g)

    def test_known_families(self):
        assert has_hamiltonian_path(clique(5))
        assert has_hamiltonian_cycle(clique(5))
        assert not has_hamiltonian_path(independent_set(3))
        assert has_hamiltonian_path(complete_bipartite(4, 4))
        assert has_hamiltonian_cycle(complete_bipartite(4, 4))
        assert has_hamiltonian_path(complete_bipartite(5, 4))
        assert not has_hamiltonian_cycle(complete_bipartite(5, 4))
        assert not has_hamiltonian_path(union_of_cliques([3, 3]))
        assert not has_hamiltonian_cycle(clique(2))

    def test_path_witness_is_valid(self):
        for tree in (clique(6), complete_bipartite(3, 4), balanced_cotree(3),
                     join_of_independent_sets([3, 2, 2])):
            path = hamiltonian_path(tree)
            assert path is not None
            oracle = CographAdjacencyOracle(tree)
            assert len(set(path)) == tree.num_vertices
            assert oracle.path_is_valid(path)

    def test_path_witness_absent(self):
        assert hamiltonian_path(independent_set(4)) is None

    def test_cycle_witness_is_valid(self):
        for tree in (clique(6), complete_bipartite(4, 4),
                     join_of_independent_sets([4, 2, 2]), balanced_cotree(3)):
            cycle = hamiltonian_cycle(tree)
            assert cycle is not None
            oracle = CographAdjacencyOracle(tree)
            assert len(set(cycle)) == tree.num_vertices
            assert oracle.path_is_valid(cycle)
            assert oracle.adjacent(cycle[0], cycle[-1])

    def test_cycle_witness_absent(self):
        assert hamiltonian_cycle(complete_bipartite(5, 3)) is None
        assert hamiltonian_cycle(clique(2)) is None
        assert hamiltonian_cycle(union_of_cliques([4, 4])) is None

    def test_cycle_witnesses_random(self):
        found = 0
        for seed in range(30):
            tree = random_cotree(3 + seed % 9, seed=500 + seed, join_prob=0.7)
            cycle = hamiltonian_cycle(tree)
            g = Graph.from_cotree(tree)
            assert (cycle is not None) == brute_force_has_hamiltonian_cycle(g)
            if cycle is not None:
                found += 1
                oracle = CographAdjacencyOracle(tree)
                assert oracle.path_is_valid(cycle)
                assert oracle.adjacent(cycle[0], cycle[-1])
                assert len(set(cycle)) == tree.num_vertices
        assert found > 3  # the sweep actually exercises the positive branch

    def test_report(self):
        rep = hamiltonicity_report(complete_bipartite(4, 4))
        assert rep.has_path and rep.has_cycle and rep.min_path_cover == 1
        rep2 = hamiltonicity_report(independent_set(5))
        assert not rep2.has_path and rep2.min_path_cover == 5
        assert rep2.num_vertices == 5
