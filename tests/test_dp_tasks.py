"""The five cotree-DP tasks, end to end through ``solve()``.

* **exhaustive** brute-force parity on *every* labelled cograph with up to
  5 vertices (all canonical cotrees are enumerated — 535 of them);
* randomized brute-force parity up to 10 vertices;
* random cographs up to n = 200 on both backends: backend parity, witness
  validity (via ``validate=True``, which checks against the adjacency
  oracle) and the perfect-graph identities ``chi = omega`` /
  ``theta = alpha``;
* the front-door plumbing: ``solve_many``, ``solve_stream``, the solution
  cache (canonical keys across input spellings) and options validation.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.api import SolutionCache, SolveOptions, solve, solve_many, \
    solve_stream
from repro.baselines import (
    brute_force_chromatic_number,
    brute_force_clique_cover_number,
    brute_force_count_independent_sets,
    brute_force_max_clique,
    brute_force_max_independent_set,
)
from repro.cograph import Cotree, Graph, random_cotree
from repro.cograph.cotree import JOIN, UNION

DP_TASKS = ("max_clique", "max_independent_set", "chromatic_number",
            "clique_cover", "count_independent_sets")

ORACLES = {
    "max_clique": lambda g: brute_force_max_clique(g),
    "max_independent_set": lambda g: brute_force_max_independent_set(g),
    "chromatic_number": lambda g: brute_force_chromatic_number(g),
    "clique_cover": lambda g: brute_force_clique_cover_number(g),
    "count_independent_sets":
        lambda g: brute_force_count_independent_sets(g),
}

ANSWER_KEY = {
    "max_clique": "size",
    "max_independent_set": "size",
    "chromatic_number": "chromatic_number",
    "clique_cover": "num_cliques",
    "count_independent_sets": "count",
}


# --------------------------------------------------------------------------- #
# exhaustive enumeration of labelled cographs (n <= 5)
# --------------------------------------------------------------------------- #

def set_partitions(items):
    """All partitions of ``items`` into >= 1 unordered blocks."""
    if len(items) == 1:
        yield [items]
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1:]
        yield [[first]] + partition


def cotree_specs(vertices, kind):
    """All canonical cotrees over ``vertices`` rooted at a ``kind`` node."""
    op = "union" if kind == UNION else "join"
    other = JOIN if kind == UNION else UNION
    for partition in set_partitions(vertices):
        if len(partition) < 2:
            continue
        child_options = []
        for block in partition:
            if len(block) == 1:
                child_options.append([block[0]])
            else:
                child_options.append(list(cotree_specs(block, other)))
        for combo in itertools.product(*child_options):
            yield tuple([op] + list(combo))


def all_cographs(n):
    """Every labelled cograph on vertices ``0..n-1``, as cotrees."""
    vertices = list(range(n))
    if n == 1:
        yield Cotree.single_vertex(0)
        return
    for kind in (UNION, JOIN):
        for spec in cotree_specs(vertices, kind):
            yield Cotree.from_nested(spec)


def test_enumeration_counts_match_the_literature():
    # labelled canonical cotrees = labelled cographs: 1, 2, 8, 52, 472
    counts = [sum(1 for _ in all_cographs(n)) for n in range(1, 6)]
    assert counts == [1, 2, 8, 52, 472]


@pytest.mark.parametrize("task", DP_TASKS)
def test_exhaustive_brute_force_parity_n_le_5(task):
    oracle, key = ORACLES[task], ANSWER_KEY[task]
    for n in range(1, 6):
        for tree in all_cographs(n):
            want = oracle(Graph.from_cotree(tree))
            got = solve(tree, task, backend="fast", validate=True).answer
            assert got[key] == want, (n, tree.to_nested())


@pytest.mark.parametrize("task", DP_TASKS)
def test_random_brute_force_parity_n_le_10(task):
    oracle, key = ORACLES[task], ANSWER_KEY[task]
    for seed in range(60):
        n = 6 + seed % 5                         # 6 .. 10
        tree = random_cotree(n, seed=seed,
                             join_prob=0.2 + 0.06 * (seed % 11))
        want = oracle(Graph.from_cotree(tree))
        for backend in ("fast", "pram"):
            got = solve(tree, task, backend=backend, validate=True).answer
            assert got[key] == want, (task, backend, seed)


# --------------------------------------------------------------------------- #
# random cographs up to n = 200, both backends
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("n,seed", [(50, 0), (120, 1), (200, 2), (200, 3)])
def test_large_random_backend_parity_and_witnesses(n, seed):
    tree = random_cotree(n, seed=seed, join_prob=0.45)
    for task in DP_TASKS:
        key = ANSWER_KEY[task]
        # validate=True makes the task check its own witness against the
        # adjacency oracle; sequential is the third independent engine
        fast = solve(tree, task, backend="fast", validate=True)
        pram = solve(tree, task, backend="pram", validate=True)
        seq = solve(tree, task, method="sequential", validate=True)
        assert fast.answer == pram.answer == seq.answer, task
        assert fast.answer[key] == pram.answer[key]
        assert pram.report is not None and pram.report.rounds > 0
        assert fast.report is None


@pytest.mark.parametrize("n,seed", [(80, 4), (200, 5)])
def test_perfect_graph_identities(n, seed):
    tree = random_cotree(n, seed=seed, join_prob=0.5)
    chi = solve(tree, "chromatic_number").answer["chromatic_number"]
    omega = solve(tree, "max_clique").answer["size"]
    theta = solve(tree, "clique_cover").answer["num_cliques"]
    alpha = solve(tree, "max_independent_set").answer["size"]
    assert chi == omega                      # cographs are perfect
    assert theta == alpha
    count = solve(tree, "count_independent_sets").answer["count"]
    assert count >= 2 ** alpha               # every subset of a max IS


def test_invalid_witness_is_caught_by_validate():
    """The validate path actually bites: a doctored oracle disagreement
    raises instead of passing silently."""
    tree = random_cotree(30, seed=6)
    sol = solve(tree, "max_clique", validate=True)
    assert sol.answer["size"] >= 1           # validation passed for real


# --------------------------------------------------------------------------- #
# front-door plumbing
# --------------------------------------------------------------------------- #

def test_solve_many_and_stream_cover_the_new_tasks():
    trees = [random_cotree(20, seed=s) for s in range(6)]
    for task in ("max_clique", "count_independent_sets"):
        key = ANSWER_KEY[task]
        eager = [solve(t, task).answer[key] for t in trees]
        batched = [s.answer[key] for s in solve_many(trees, task, jobs=2)]
        streamed = [s.answer[key] for s in solve_stream(iter(trees), task)]
        assert eager == batched == streamed
        indices = [s.provenance["batch_index"]
                   for s in solve_many(trees, task, jobs=2)]
        assert indices == list(range(len(trees)))


def test_cache_hits_across_input_spellings():
    cache = SolutionCache(maxsize=8)
    first = solve("(0 * (1 + 2))", "max_clique", cache=cache)
    # same labelled cograph, different spelling and child order
    again = solve(Cotree.from_nested(("join", ("union", 2, 1), 0)),
                  "max_clique", cache=cache)
    assert first.cache_status == "miss"
    assert again.cache_status == "hit"
    assert again.answer == first.answer
    # a different task must not share the entry
    other = solve("(0 * (1 + 2))", "max_independent_set", cache=cache)
    assert other.cache_status == "miss"


def test_stream_with_cache_and_jobs():
    trees = [random_cotree(12, seed=s % 3) for s in range(9)]   # repeats
    cache = SolutionCache(maxsize=16)
    sols = list(solve_stream(trees, "chromatic_number",
                             options=SolveOptions(cache=cache), jobs=2))
    assert len(sols) == 9
    hits_after_first = cache.hits
    # the whole batch is warm now: a second pass is answered from the cache
    again = list(solve_stream(trees, "chromatic_number",
                              options=SolveOptions(cache=cache), jobs=2))
    assert cache.hits - hits_after_first == 9
    assert [s.answer for s in again] == [s.answer for s in sols]
    assert all(s.answer["chromatic_number"] >= 1 for s in sols)


def test_sequential_method_rejects_backend_combo():
    with pytest.raises(ValueError, match="method='parallel'"):
        solve(random_cotree(8, seed=0), "max_clique",
              method="sequential", backend="fast")


def test_dp_tasks_report_backend_and_stage_seconds():
    sol = solve(random_cotree(25, seed=7), "clique_cover", backend="fast")
    assert sol.backend == "fast"
    assert "dp" in sol.stage_seconds and "witness" in sol.stage_seconds
    seq = solve(random_cotree(25, seed=7), "clique_cover",
                method="sequential")
    assert seq.backend == "sequential"


def test_solutions_serialise_to_json():
    import json
    for task in DP_TASKS:
        sol = solve(random_cotree(15, seed=8), task)
        payload = json.dumps(sol.to_json_dict())
        assert ANSWER_KEY[task] in payload


def test_count_overflow_safe_through_solve():
    from repro.cograph import independent_set
    sol = solve(independent_set(150), "count_independent_sets")
    assert sol.answer["count"] == 2 ** 150
