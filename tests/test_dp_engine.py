"""The cotree-DP engine: backend bit-parity, spec semantics, accounting.

Three guarantees are pinned here:

1. for **every** built-in :class:`~repro.core.CotreeDP` the fast backend,
   the PRAM backend and the generic sequential evaluator produce
   bit-identical per-node value arrays (and identical witnesses) on every
   generator family, including adversarially deep caterpillars;
2. the path-cover-size spec *is* the Lemma 2.4 recurrence: it agrees with
   ``minimum_path_cover_size`` (which now runs through it), with the
   pipeline's ``p_root`` and with the old left/right recurrence on
   leftist binary trees;
3. the engine accounts on the PRAM backend (rounds/work show up in the
   machine) and fails loudly on empty input and malformed specs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import make_backend
from repro.cograph import (
    Cotree,
    FlatCotree,
    balanced_cotree,
    binarize_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    make_leftist,
    minimum_path_cover_size,
    random_cotree,
    threshold_cograph,
    union_of_cliques,
)
from repro.core import minimum_path_cover_parallel
from repro.core.dp import (
    BUILTIN_DPS,
    CHROMATIC_NUMBER_DP,
    CLIQUE_COVER_DP,
    COUNT_INDEPENDENT_SETS_DP,
    MAX_CLIQUE_DP,
    MAX_INDEPENDENT_SET_DP,
    PATH_COVER_SIZE_DP,
    Combine,
    CotreeDP,
    run_cotree_dp,
    run_cotree_dp_sequential,
)


def family_trees():
    rng_seeds = [(7, 0), (23, 1), (60, 2), (145, 3)]
    trees = [
        Cotree.single_vertex(0),
        clique(6),
        independent_set(6),
        complete_bipartite(4, 7),
        union_of_cliques([3, 1, 4]),
        join_of_independent_sets([5, 2, 2]),
        balanced_cotree(3, branching=3),
        caterpillar_cotree(40),
        threshold_cograph([1, 0, 1, 1, 0, 0, 1]),
    ]
    trees += [random_cotree(n, seed=s, join_prob=0.3 + 0.1 * s)
              for n, s in rng_seeds]
    return trees


# --------------------------------------------------------------------------- #
# backend bit-parity for every built-in spec
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("dp", BUILTIN_DPS, ids=lambda d: d.name)
def test_pram_fast_sequential_bit_parity_per_spec(dp):
    for tree in family_trees():
        runs = {
            "fast": run_cotree_dp(dp, tree, "fast"),
            "pram": run_cotree_dp(dp, tree, "pram"),
            "sequential": run_cotree_dp_sequential(dp, tree),
        }
        for field in dp.fields:
            ref = runs["fast"].values[field]
            for name, run in runs.items():
                assert np.array_equal(run.values[field], ref), \
                    f"{dp.name}.{field} differs on {name}"
        if dp.witness is not None:
            ref_w = runs["fast"].witness()
            for name, run in runs.items():
                assert np.array_equal(run.witness(), ref_w), \
                    f"{dp.name} witness differs on {name}"


@pytest.mark.parametrize("dp", BUILTIN_DPS, ids=lambda d: d.name)
def test_representation_independence(dp):
    """Cotree / FlatCotree / BinaryCotree inputs give the same root value."""
    tree = random_cotree(31, seed=9)
    want = run_cotree_dp(dp, tree).root()
    assert run_cotree_dp(dp, FlatCotree.from_cotree(tree)).root() == want
    assert run_cotree_dp(dp, binarize_cotree(tree)).root() == want


# --------------------------------------------------------------------------- #
# the path-cover-size spec is Lemma 2.4
# --------------------------------------------------------------------------- #

def test_path_cover_size_dp_matches_reference_and_pipeline():
    for tree in family_trees():
        want = minimum_path_cover_size(tree)
        assert run_cotree_dp(PATH_COVER_SIZE_DP, tree).root("p") == want
        if tree.num_vertices > 1:
            result = minimum_path_cover_parallel(tree, backend="fast")
            assert result.p_root == want


def test_path_cover_size_dp_matches_leftist_binary_recurrence():
    """On leftist binary trees the symmetric multiway join rule collapses
    to the paper's ``max(p(v) - L(w), 1)`` left/right form."""
    for seed in range(8):
        binary = make_leftist(binarize_cotree(random_cotree(40, seed=seed)))
        run = run_cotree_dp(PATH_COVER_SIZE_DP, binary)
        p, L = run.values["p"], run.values["L"]
        assert np.array_equal(L, binary.subtree_leaf_counts())
        for u in binary.internal_nodes:
            v, w = binary.left[u], binary.right[u]
            if binary.kind[u] == 1:      # UNION
                assert p[u] == p[v] + p[w]
            else:                        # JOIN
                assert p[u] == max(p[v] - L[w], 1)


def test_deep_caterpillar_does_not_recurse():
    tree = caterpillar_cotree(5000)
    assert run_cotree_dp(PATH_COVER_SIZE_DP, tree).root("p") == \
        minimum_path_cover_size(tree)


# --------------------------------------------------------------------------- #
# spec semantics on known graphs
# --------------------------------------------------------------------------- #

def test_known_values_complete_multipartite():
    tree = join_of_independent_sets([5, 3, 2])       # total 10 vertices
    assert run_cotree_dp(MAX_CLIQUE_DP, tree).root() == 3
    assert run_cotree_dp(MAX_INDEPENDENT_SET_DP, tree).root() == 5
    assert run_cotree_dp(CHROMATIC_NUMBER_DP, tree).root() == 3
    assert run_cotree_dp(CLIQUE_COVER_DP, tree).root() == 5
    # IS count: product over nothing — 2^5 + 2^3 + 2^2 - 2 = 42
    assert run_cotree_dp(COUNT_INDEPENDENT_SETS_DP, tree).root() == 42


def test_count_independent_sets_is_arbitrary_precision():
    """n = 200 isolated vertices: 2^200 independent sets — far past int64."""
    tree = independent_set(200)
    assert run_cotree_dp(COUNT_INDEPENDENT_SETS_DP, tree).root() == 2 ** 200
    assert run_cotree_dp(COUNT_INDEPENDENT_SETS_DP, tree, "pram").root() \
        == 2 ** 200


def test_witnesses_realise_the_optimum():
    tree = union_of_cliques([3, 5, 2])
    run = run_cotree_dp(MAX_CLIQUE_DP, tree)
    assert len(run.witness()) == run.root() == 5
    run = run_cotree_dp(MAX_INDEPENDENT_SET_DP, tree)
    assert len(run.witness()) == run.root() == 3
    run = run_cotree_dp(CHROMATIC_NUMBER_DP, tree)
    coloring = run.witness()
    assert coloring.max() + 1 == run.root() == 5
    run = run_cotree_dp(CLIQUE_COVER_DP, tree)
    classes = run.witness()
    assert len(np.unique(classes)) == run.root() == 3


# --------------------------------------------------------------------------- #
# accounting and errors
# --------------------------------------------------------------------------- #

def test_pram_backend_accounts_rounds_and_work():
    ctx = make_backend("pram")
    run_cotree_dp(MAX_CLIQUE_DP, random_cotree(300, seed=5), ctx)
    assert ctx.machine.rounds > 0
    assert ctx.machine.work >= 300          # at least the leaf initialisation
    assert ctx.report() is not None


def test_level_count_bounds_pram_rounds():
    """A balanced tree needs O(height * log branching) reduction rounds."""
    tree = balanced_cotree(4, branching=2)   # 16 leaves, height 4
    ctx = make_backend("pram")
    run_cotree_dp(MAX_CLIQUE_DP, tree, ctx)
    assert ctx.machine.rounds <= 40


def test_empty_tree_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        run_cotree_dp(PATH_COVER_SIZE_DP, Cotree([], [], [], -1))
    with pytest.raises(ValueError, match="non-empty"):
        run_cotree_dp_sequential(PATH_COVER_SIZE_DP,
                                 FlatCotree([], [0], [], [], [], -1))


def test_unknown_reduction_op_rejected():
    with pytest.raises(ValueError, match="unknown reduction"):
        Combine(reduce=(("x", "median", "x"),))


def test_out_of_tree_spec_gets_both_backends():
    """The engine is public: a custom DP (here, number of leaves) runs on
    every backend unchanged."""
    leaf_count = CotreeDP(
        name="leaf_count",
        fields=("n",),
        leaf=lambda vs: {"n": np.ones(len(vs), dtype=np.int64)},
        union=Combine(reduce=(("n", "sum", "n"),)),
        join=Combine(reduce=(("n", "sum", "n"),)),
    )
    tree = random_cotree(77, seed=11)
    assert run_cotree_dp(leaf_count, tree).root() == 77
    assert run_cotree_dp(leaf_count, tree, "pram").root() == 77
    assert run_cotree_dp_sequential(leaf_count, tree).root() == 77
