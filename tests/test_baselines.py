"""Tests for the baseline algorithms (sequential, brute force, greedy, and the
emulated prior parallel algorithms)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines import (
    EmulatedCost,
    adhar_peng_path_cover,
    brute_force_path_cover,
    brute_force_path_cover_size,
    greedy_path_cover,
    lin_suboptimal_path_cover,
    naive_parallel_path_cover,
    sequential_path_cover,
)
from repro.cograph import (
    CographAdjacencyOracle,
    Cotree,
    Graph,
    balanced_cotree,
    binarize_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    minimum_path_cover_size,
    random_cotree,
    union_of_cliques,
)
from conftest import nested_cotree_specs


class TestSequential:
    def test_named_families(self, small_named_cotrees):
        for name, tree in small_named_cotrees.items():
            cover = sequential_path_cover(tree)
            cover.validate(CographAdjacencyOracle(tree),
                           expected_num_vertices=tree.num_vertices,
                           expected_num_paths=minimum_path_cover_size(tree))

    @pytest.mark.parametrize("n,seed,jp", [(10, 0, 0.3), (25, 1, 0.5),
                                           (60, 2, 0.7), (120, 3, 0.4),
                                           (250, 4, 0.6)])
    def test_random(self, n, seed, jp):
        tree = random_cotree(n, seed=seed, join_prob=jp)
        cover = sequential_path_cover(tree)
        cover.validate(CographAdjacencyOracle(tree),
                       expected_num_paths=minimum_path_cover_size(tree))

    def test_single_vertex(self):
        assert sequential_path_cover(Cotree.single_vertex(4)).paths == [[4]]

    def test_accepts_binary_input(self):
        tree = random_cotree(30, seed=5)
        cover = sequential_path_cover(binarize_cotree(tree))
        assert cover.num_paths == minimum_path_cover_size(tree)

    def test_stats_are_linear(self):
        """Total operation count grows linearly in n (Lemma 2.3)."""
        ops = {}
        for n in (256, 1024):
            tree = random_cotree(n, seed=n, join_prob=0.5)
            _, stats = sequential_path_cover(tree, return_stats=True)
            ops[n] = stats.total_operations
        assert ops[1024] < 6 * ops[256]

    def test_stats_fields(self):
        tree = join_of_independent_sets([3, 3])
        cover, stats = sequential_path_cover(tree, return_stats=True)
        assert stats.num_vertices == 6
        assert stats.bridge_operations + stats.insert_operations == 3
        assert stats.total_operations > 0

    @settings(max_examples=60, deadline=None)
    @given(nested_cotree_specs(max_leaves=9))
    def test_hypothesis_specs(self, spec):
        tree = (Cotree.single_vertex(spec) if isinstance(spec, int)
                else Cotree.from_nested(spec).canonicalize())
        cover = sequential_path_cover(tree)
        cover.validate(CographAdjacencyOracle(tree),
                       expected_num_vertices=tree.num_vertices,
                       expected_num_paths=minimum_path_cover_size(tree))

    def test_deep_caterpillar(self):
        tree = caterpillar_cotree(800)
        cover = sequential_path_cover(tree)
        assert cover.num_paths == minimum_path_cover_size(tree)


class TestBruteForce:
    def test_small_known(self):
        assert brute_force_path_cover_size(Graph.from_cotree(clique(4))) == 1
        assert brute_force_path_cover_size(Graph.from_cotree(independent_set(4))) == 4
        assert brute_force_path_cover_size(Graph(0)) == 0

    def test_non_cograph_input(self):
        # P5 (a path) has a Hamiltonian path trivially
        g = Graph(5, [(i, i + 1) for i in range(4)])
        assert brute_force_path_cover_size(g) == 1
        cover = brute_force_path_cover(g)
        cover.validate(g, expected_num_paths=1)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            brute_force_path_cover_size(Graph(17))

    def test_witness_matches_size(self):
        for seed in range(8):
            tree = random_cotree(6, seed=seed)
            g = Graph.from_cotree(tree)
            cover = brute_force_path_cover(g)
            cover.validate(g)
            assert cover.num_paths == brute_force_path_cover_size(g)


class TestGreedy:
    def test_valid_on_random_cographs(self):
        for seed in range(6):
            tree = random_cotree(30, seed=seed)
            g = Graph.from_cotree(tree)
            cover = greedy_path_cover(g)
            cover.validate(g)
            assert cover.num_paths >= minimum_path_cover_size(tree)

    def test_greedy_never_beats_the_optimum(self):
        """Sanity: the heuristic can never use fewer paths than the analytic
        minimum (and on these small instances the degree heuristic happens to
        do well — the point of the baseline is that it offers no guarantee,
        see the A1 ablation for the quantified gap of non-optimal orderings)."""
        gaps = []
        for seed in range(40):
            tree = random_cotree(12, seed=seed, join_prob=0.35)
            g = Graph.from_cotree(tree)
            gaps.append(greedy_path_cover(g).num_paths
                        - minimum_path_cover_size(tree))
        assert min(gaps) >= 0

    def test_empty_and_trivial(self):
        assert greedy_path_cover(Graph(0)).num_paths == 0
        assert greedy_path_cover(Graph(1)).paths == [[0]]


class TestEmulatedPriorParallel:
    def test_covers_are_optimal(self):
        tree = random_cotree(90, seed=3, join_prob=0.5)
        expect = minimum_path_cover_size(tree)
        for fn in (naive_parallel_path_cover, lin_suboptimal_path_cover,
                   adhar_peng_path_cover):
            cover, cost = fn(tree)
            assert cover.num_paths == expect
            assert isinstance(cost, EmulatedCost)
            assert cost.work >= cost.time
            assert cost.to_dict()["algorithm"] == cost.algorithm

    def test_naive_parallel_degenerates_on_caterpillars(self):
        _, deep = naive_parallel_path_cover(caterpillar_cotree(256))
        _, flat = naive_parallel_path_cover(balanced_cotree(8))
        assert deep.time > 10 * flat.time

    def test_adhar_peng_work_is_quadratic(self):
        _, small = adhar_peng_path_cover(random_cotree(64, seed=1))
        _, large = adhar_peng_path_cover(random_cotree(256, seed=1))
        assert large.work > 10 * small.work

    def test_lin_suboptimal_time_is_polylog(self):
        _, c = lin_suboptimal_path_cover(random_cotree(1024, seed=2))
        assert c.time <= 3 * (10 + 10 * 10)
        assert c.processors <= 1024
