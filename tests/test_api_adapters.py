"""Input adapters: every supported instance form reaches the same answer.

The headline property (ISSUE 2): every generator family round-trips through
the edge-list / adjacency / text / JSON adapters to an identical cover —
identical paths where the cotree survives verbatim (text, JSON), identical
size plus a validated cover where recognition rebuilds the canonical cotree
(edge list, adjacency).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.api import Problem, as_problem, solve
from repro.cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    Cotree,
    Graph,
    NotACographError,
    binarize_cotree,
    clique,
    minimum_path_cover_size,
)
from repro.core import LowerBoundInstance
from repro.io import cotree_to_json, cotree_to_text, graph_to_json, save_json

from conftest import nested_cotree_specs


def _all_forms(tree: Cotree, tmp_path):
    """(form, exact) pairs: exact forms must reproduce the very same cover."""
    graph = Graph.from_cotree(tree)
    json_path = tmp_path / "instance.json"
    save_json(tree, str(json_path))
    forms = [
        (tree, True),
        (cotree_to_text(tree), True),
        (str(json_path), True),
        (cotree_to_json(tree), True),
        (binarize_cotree(tree), False),
        (graph, False),
        (graph_to_json(graph), False),
        ({u: sorted(graph.neighbours(u)) for u in graph.vertices()}, False),
    ]
    if graph.num_edges() > 0:
        forms.append((list(graph.edges()), False))
        forms.append((np.array(list(graph.edges()), dtype=np.int64), False))
    return forms


def test_every_family_round_trips_through_every_adapter(small_named_cotrees,
                                                        tmp_path):
    for name, tree in small_named_cotrees.items():
        graph = Graph.from_cotree(tree)
        # edge lists cannot express isolated vertices; skip those forms there
        has_isolated = any(graph.degree(u) == 0 for u in graph.vertices())
        reference = solve(tree, backend="fast")
        oracle = CographAdjacencyOracle(tree)
        for form, exact in _all_forms(tree, tmp_path):
            if has_isolated and isinstance(form, (list, np.ndarray)):
                continue
            sol = solve(form, backend="fast")
            assert sol.num_paths == reference.num_paths, (name, type(form))
            if exact:
                assert sol.cover.paths == reference.cover.paths, name
            else:
                sol.cover.validate(oracle,
                                   expected_num_vertices=tree.num_vertices,
                                   expected_num_paths=reference.num_paths)


@settings(max_examples=40, deadline=None)
@given(spec=nested_cotree_specs(max_leaves=8))
def test_adapter_round_trip_property(spec):
    tree = (Cotree.single_vertex(spec) if isinstance(spec, int)
            else Cotree.from_nested(spec).canonicalize())
    expected = minimum_path_cover_size(tree)
    graph = Graph.from_cotree(tree)
    oracle = CographAdjacencyOracle(tree)

    exact = solve(cotree_to_text(tree), backend="fast")
    assert exact.cover.paths == solve(tree, backend="fast").cover.paths

    rebuilt = solve({u: sorted(graph.neighbours(u))
                     for u in graph.vertices()}, backend="fast")
    assert rebuilt.num_paths == expected
    rebuilt.cover.validate(oracle, expected_num_vertices=tree.num_vertices,
                           expected_num_paths=expected)


# --------------------------------------------------------------------------- #
# individual adapter behaviours
# --------------------------------------------------------------------------- #

def test_problem_passthrough_and_formats():
    prob = as_problem(clique(3))
    assert as_problem(prob) is prob
    assert prob.source_format == "cotree"
    assert as_problem(binarize_cotree(clique(3))).source_format == \
        "binary_cotree"
    assert as_problem("(0 + 1)").source_format == "text"
    assert as_problem("7").tree.num_vertices == 1
    assert as_problem([(0, 1)]).source_format == "edge_list"
    assert as_problem({0: [1], 1: [0]}).source_format == "adjacency"
    assert as_problem([1, 0], task="lower_bound").source_format == "bits"


def test_string_adapter_rejects_garbage():
    with pytest.raises(ValueError, match="neither cotree text"):
        as_problem("definitely/not/a/file.json")
    with pytest.raises(ValueError, match="empty string"):
        as_problem("   ")


def test_sequence_adapter_disambiguation():
    with pytest.raises(ValueError, match="ambiguous"):
        as_problem([])
    # flat ints are ONLY bits, and only for the lower_bound task: a graph
    # task can never silently solve the reduction gadget
    with pytest.raises(ValueError, match="lower_bound"):
        as_problem([0, 1])
    with pytest.raises(ValueError, match="only 0/1"):
        as_problem([2, 3, 4], task="lower_bound")
    with pytest.raises(ValueError, match="edge list"):
        as_problem([(0, 1), 5])          # mixed pairs and scalars
    assert as_problem(np.array([1, 0, 1]),
                      task="lower_bound").instance is not None
    with pytest.raises(ValueError, match="lower_bound"):
        as_problem(np.array([1, 0, 1]))  # 1-d array, graph task context
    with pytest.raises(ValueError, match="not a problem"):
        as_problem(np.zeros((2, 3), dtype=np.int64))


def test_edge_list_deduplicates_and_sizes():
    prob = as_problem([(0, 1), (1, 0), (1, 2)])
    assert prob.graph.n == 3 and prob.graph.num_edges() == 2


def test_adjacency_accepts_string_keys():
    prob = as_problem({"0": [1], "1": [0, 2], "2": [1]})
    assert prob.graph.num_edges() == 2


def test_adjacency_accepts_one_sided_listings():
    # vertices appearing only as neighbours still count (star K1,2)
    prob = as_problem({0: [1, 2]})
    assert prob.graph.n == 3 and prob.graph.num_edges() == 2
    assert solve(prob, backend="fast").num_paths == 1


def test_dict_adapter_rejects_result_payloads():
    with pytest.raises(ValueError, match="not a problem"):
        as_problem({"type": "path_cover", "paths": [[0]]})


def test_json_path_rejects_result_payloads(tmp_path):
    path = tmp_path / "cover.json"
    save_json(solve(clique(3)).cover, str(path))
    with pytest.raises(ValueError, match="not a problem"):
        as_problem(str(path))


def test_json_graph_file(tmp_path):
    graph = Graph.from_cotree(clique(4))
    path = tmp_path / "graph.json"
    save_json(graph, str(path))
    prob = as_problem(str(path))
    assert prob.source_format == "json" and prob.source == str(path)
    assert solve(prob).num_paths == 1


def test_unsupported_type_names_the_options():
    with pytest.raises(TypeError, match="adjacency dict"):
        as_problem(3.14)


def test_lower_bound_instance_passthrough():
    from repro.core import or_instance_cotree
    inst = or_instance_cotree([1, 0])
    prob = as_problem(inst)
    assert isinstance(prob.instance, LowerBoundInstance)
    assert solve(prob, "lower_bound").answer["or"] == 1


def test_non_cograph_is_lazy():
    p4 = Graph(4, [(0, 1), (1, 2), (2, 3)])
    prob = as_problem(p4)                      # no error yet
    assert solve(prob, "recognition").answer is False
    with pytest.raises(NotACographError):      # only when a task needs it
        solve(prob, "path_cover")


def test_provenance_reports_the_source():
    sol = solve("(0 * (1 + 2))")
    assert sol.provenance["source_format"] == "text"
    assert sol.provenance["num_vertices"] == 3


# --------------------------------------------------------------------------- #
# regression tests (ISSUE 3 satellite bugfixes)
# --------------------------------------------------------------------------- #

def test_empty_numpy_edge_array_gets_the_friendly_error():
    # used to crash with a raw ``max() arg is an empty sequence``
    with pytest.raises(ValueError, match="empty sequence is ambiguous"):
        as_problem(np.empty((0, 2), dtype=np.int64))


def test_empty_array_and_empty_list_raise_the_same_message():
    with pytest.raises(ValueError) as from_array:
        as_problem(np.empty((0, 2), dtype=np.int64))
    with pytest.raises(ValueError) as from_list:
        as_problem([])
    assert str(from_array.value) == str(from_list.value)


@pytest.mark.parametrize("edges", [
    [(-1, 0)],
    [(0, 1), (2, -3)],
    np.array([[-1, 0], [0, 1]], dtype=np.int64),
])
def test_negative_vertex_ids_are_rejected(edges):
    # used to silently build a bogus Graph via n = max(...) + 1
    with pytest.raises(ValueError, match="negative vertex id"):
        as_problem(edges)


def test_digit_named_json_file_is_loaded(tmp_path, monkeypatch):
    # used to be shadowed by the single-vertex cotree reading of "123"
    save_json(clique(5), str(tmp_path / "123"))
    monkeypatch.chdir(tmp_path)
    prob = as_problem("123")
    assert prob.source_format == "json"
    assert prob.num_vertices == 5


def test_digit_string_without_a_file_is_still_a_single_vertex(tmp_path,
                                                              monkeypatch):
    monkeypatch.chdir(tmp_path)  # guaranteed no file named "123"
    prob = as_problem("123")
    assert prob.source_format == "text"
    assert prob.num_vertices == 1


# --------------------------------------------------------------------------- #
# vectorized edge-list / adjacency adapters (no per-edge Python loop)
# --------------------------------------------------------------------------- #

class TestVectorizedGraphAdapters:
    """Parity regressions for the NumPy fast paths of the graph adapters."""

    @staticmethod
    def _random_edges(rng, n, p):
        rows, cols = np.triu_indices(n, k=1)
        keep = rng.random(len(rows)) < p
        return np.stack([rows[keep], cols[keep]], axis=1).astype(np.int64)

    @pytest.mark.parametrize("seed", range(6))
    def test_edge_array_matches_per_edge_construction(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 24))
        edges = self._random_edges(rng, n, 0.4)
        if len(edges) == 0:
            edges = np.array([[0, 1]], dtype=np.int64)
        reference = Graph(n, [(int(u), int(v)) for u, v in edges])
        fast = Graph.from_edge_array(n, edges)
        assert fast.n == reference.n
        assert fast.adj == reference.adj

    @pytest.mark.parametrize("seed", range(4))
    def test_ndarray_and_tuple_list_inputs_agree(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(3, 20))
        edges = self._random_edges(rng, n, 0.5)
        if len(edges) == 0:
            edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        from_array = as_problem(edges)
        from_tuples = as_problem([(int(u), int(v)) for u, v in edges])
        assert from_array.graph.adj == from_tuples.graph.adj
        # covers agree end to end whichever spelling arrived (cographs only)
        from repro.cograph import is_cograph
        if is_cograph(from_array.graph):
            a = solve(from_array, task="path_cover")
            b = solve(from_tuples, task="path_cover")
            assert a.cover.canonical().paths == b.cover.canonical().paths

    @pytest.mark.parametrize("seed", range(4))
    def test_adjacency_dict_matches_per_edge_construction(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(2, 18))
        edges = self._random_edges(rng, n, 0.5)
        adj = {u: [] for u in range(n)}
        for u, v in edges:
            adj[int(u)].append(int(v))
        reference = Graph(n, [(int(u), int(v)) for u, v in edges])
        assert Graph.from_adjacency(adj).adj == reference.adj

    def test_from_edge_array_validates(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edge_array(3, np.array([[0, 5]]))
        with pytest.raises(ValueError, match="self-loop"):
            Graph.from_edge_array(3, np.array([[1, 1]]))

    def test_from_edge_array_deduplicates(self):
        g = Graph.from_edge_array(3, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_edges() == 1
