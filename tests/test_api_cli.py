"""The ``python -m repro`` command line, driven in-process."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.api import task_names
from repro.cograph import Graph, clique
from repro.io import save_json


def test_tasks_subcommand_lists_everything(capsys):
    assert main(["tasks"]) == 0
    out = capsys.readouterr().out
    for name in task_names():
        assert name in out


def test_solve_text_input(capsys):
    assert main(["solve", "(0 + (1 * 2))"]) == 0
    out = capsys.readouterr().out
    assert "num_paths=2" in out
    assert "PRAM cost report" in out


def test_solve_json_output_parses(capsys):
    assert main(["solve", "(0 * (1 * 2))", "--task", "hamiltonian_cycle",
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["type"] == "solution"
    assert data["task"] == "hamiltonian_cycle"
    assert data["answer"] == [0, 1, 2]


def test_solve_json_file_input(tmp_path, capsys):
    path = tmp_path / "graph.json"
    save_json(Graph.from_cotree(clique(4)), str(path))
    assert main(["solve", str(path), "--backend", "fast"]) == 0
    assert "num_paths=1" in capsys.readouterr().out


def test_solve_lower_bound_prints_the_dict(capsys):
    assert main(["solve", "(0+1)", "--task", "path_cover_size"]) == 0
    assert "answer" not in capsys.readouterr().err


def test_lower_bound_takes_bit_strings(capsys):
    assert main(["solve", "1,0,1", "--task", "lower_bound", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["answer"]["or"] == 1 and data["answer"]["bits"] == [1, 0, 1]
    assert main(["solve", "0b2", "--task", "lower_bound"]) == 2
    assert "bit string" in capsys.readouterr().err


def test_incompatible_options_exit_2(capsys):
    assert main(["solve", "(0 + 1)", "--backend", "fast",
                 "--num-processors", "4"]) == 2
    assert "num_processors" in capsys.readouterr().err


def test_bad_input_exits_2(capsys):
    assert main(["solve", "no/such/file.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_sequential_method(capsys):
    assert main(["solve", "(0 + (1 * 2))", "--method", "sequential"]) == 0
    assert "backend=sequential" in capsys.readouterr().out


def test_unknown_task_rejected_by_argparse(capsys):
    with pytest.raises(SystemExit):
        main(["solve", "(0+1)", "--task", "nope"])
