"""The ``python -m repro`` command line, driven in-process."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.api import task_names
from repro.cograph import Graph, clique
from repro.io import save_json


def test_tasks_subcommand_lists_everything(capsys):
    assert main(["tasks"]) == 0
    out = capsys.readouterr().out
    for name in task_names():
        assert name in out


def test_solve_text_input(capsys):
    assert main(["solve", "(0 + (1 * 2))"]) == 0
    out = capsys.readouterr().out
    assert "num_paths=2" in out
    assert "PRAM cost report" in out


def test_solve_json_output_parses(capsys):
    assert main(["solve", "(0 * (1 * 2))", "--task", "hamiltonian_cycle",
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["type"] == "solution"
    assert data["task"] == "hamiltonian_cycle"
    assert data["answer"] == [0, 1, 2]


def test_solve_json_file_input(tmp_path, capsys):
    path = tmp_path / "graph.json"
    save_json(Graph.from_cotree(clique(4)), str(path))
    assert main(["solve", str(path), "--backend", "fast"]) == 0
    assert "num_paths=1" in capsys.readouterr().out


def test_solve_lower_bound_prints_the_dict(capsys):
    assert main(["solve", "(0+1)", "--task", "path_cover_size"]) == 0
    assert "answer" not in capsys.readouterr().err


def test_lower_bound_takes_bit_strings(capsys):
    assert main(["solve", "1,0,1", "--task", "lower_bound", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["answer"]["or"] == 1 and data["answer"]["bits"] == [1, 0, 1]
    assert main(["solve", "0b2", "--task", "lower_bound"]) == 2
    assert "bit string" in capsys.readouterr().err


def test_incompatible_options_exit_2(capsys):
    assert main(["solve", "(0 + 1)", "--backend", "fast",
                 "--num-processors", "4"]) == 2
    assert "num_processors" in capsys.readouterr().err


def test_bad_input_exits_2(capsys):
    assert main(["solve", "no/such/file.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_sequential_method(capsys):
    assert main(["solve", "(0 + (1 * 2))", "--method", "sequential"]) == 0
    assert "backend=sequential" in capsys.readouterr().out


def test_unknown_task_rejected_by_argparse(capsys):
    with pytest.raises(SystemExit):
        main(["solve", "(0+1)", "--task", "nope"])


# --------------------------------------------------------------------------- #
# --stream: JSONL in, solutions out (ISSUE 3)
# --------------------------------------------------------------------------- #

def _feed_stdin(monkeypatch, lines):
    import io
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))


def test_stream_reads_jsonl_and_preserves_order(monkeypatch, capsys):
    lines = [json.dumps("(0 + (1 * 2))"), json.dumps({"0": [1], "1": [0]}),
             "", json.dumps([[0, 1], [1, 2], [0, 2]])]
    _feed_stdin(monkeypatch, lines)
    assert main(["solve", "--stream", "--json"]) == 0
    captured = capsys.readouterr()
    solutions = [json.loads(line) for line in captured.out.splitlines()]
    assert [s["num_paths"] for s in solutions] == [2, 1, 1]
    assert [s["provenance"]["batch_index"] for s in solutions] == [0, 1, 2]
    assert "solved 3 instance(s)" in captured.err


def test_stream_accepts_bare_cotree_text_lines(monkeypatch, capsys):
    _feed_stdin(monkeypatch, ["(0 * 1)", "(0 + 1)"])
    assert main(["solve", "--stream", "--task", "path_cover_size"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert len(out) == 2
    assert "num_paths=1" in out[0] and "num_paths=2" in out[1]


def test_stream_with_jobs_and_cache(monkeypatch, capsys):
    _feed_stdin(monkeypatch, [json.dumps("(0 * (1 + 2))")] * 6)
    assert main(["solve", "--stream", "--jobs", "2", "--window", "2",
                 "--cache", "8", "--json"]) == 0
    captured = capsys.readouterr()
    solutions = [json.loads(line) for line in captured.out.splitlines()]
    assert len(solutions) == 6
    assert solutions[0]["provenance"]["cache"] == "miss"
    assert solutions[-1]["provenance"]["cache"] == "hit"
    assert "'hits':" in captured.err


def test_stream_lower_bound_bit_lines(monkeypatch, capsys):
    _feed_stdin(monkeypatch, ["101", json.dumps([0, 0])])
    assert main(["solve", "--stream", "--task", "lower_bound",
                 "--json"]) == 0
    solutions = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
    assert [s["answer"]["or"] for s in solutions] == [1, 0]


def test_stream_rejects_positional_input(capsys):
    assert main(["solve", "--stream", "(0 + 1)"]) == 2
    assert "drop the INPUT argument" in capsys.readouterr().err


def test_missing_input_without_stream_exits_2(capsys):
    assert main(["solve"]) == 2
    assert "INPUT is required" in capsys.readouterr().err


def test_jobs_without_stream_exits_2(capsys):
    assert main(["solve", "(0 + 1)", "--jobs", "2"]) == 2
    assert "--jobs/--window" in capsys.readouterr().err


def test_chunksize_without_stream_exits_2(capsys):
    assert main(["solve", "(0 + 1)", "--chunksize", "7"]) == 2
    assert "--chunksize" in capsys.readouterr().err


def test_cache_zero_is_rejected_not_ignored(monkeypatch, capsys):
    _feed_stdin(monkeypatch, ["(0 * 1)"])
    assert main(["solve", "--stream", "--cache", "0"]) == 2
    assert "maxsize" in capsys.readouterr().err


def test_cache_without_stream_exits_2(capsys):
    assert main(["solve", "(0 + 1)", "--cache", "64"]) == 2
    assert "--cache" in capsys.readouterr().err


def test_stream_garbage_line_prints_prefix_then_fails(monkeypatch, capsys):
    _feed_stdin(monkeypatch, ['"(0 * 1)"', '"(0 + 1)"', '"no/such/file"'])
    assert main(["solve", "--stream", "--jobs", "2", "--window", "8"]) == 2
    captured = capsys.readouterr()
    assert len(captured.out.splitlines()) == 2  # valid prefix delivered
    assert "error:" in captured.err


# --------------------------------------------------------------------------- #
# the cotree-DP tasks and the registry-derived help (PR 5)
# --------------------------------------------------------------------------- #

def test_dp_tasks_solve_from_the_cli(capsys):
    assert main(["solve", "(0 * (1 + 2))", "--task", "max_clique",
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["answer"] == {"size": 2, "vertices": [0, 1]} or \
        data["answer"]["size"] == 2
    assert main(["solve", "(0 * (1 + 2))", "--task", "chromatic_number",
                 "--backend", "fast", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["answer"]["chromatic_number"] == 2
    assert data["backend"] == "fast"
    assert main(["solve", "(0 + (1 + 2))", "--task",
                 "count_independent_sets", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["answer"]["count"] == 8


def test_dp_task_plain_output_prints_the_answer_dict(capsys):
    assert main(["solve", "(0 * (1 + 2))", "--task", "max_independent_set",
                 "--validate"]) == 0
    out = capsys.readouterr().out
    assert "size" in out and "vertices" in out


def test_task_choices_and_help_come_from_the_registry(capsys):
    from repro.api.registry import TASKS
    with pytest.raises(SystemExit):
        main(["solve", "--help"])
    out = capsys.readouterr().out
    for name, spec in TASKS.items():
        assert name in out              # the choice list and the epilog
        assert spec.summary.split()[0] in out


def test_unknown_task_names_the_new_tasks(capsys):
    # argparse rejects the choice itself and its message lists every
    # registered task (the choices tuple is read from the registry)
    with pytest.raises(SystemExit):
        main(["solve", "(0 + 1)", "--task", "nope"])
    err = capsys.readouterr().err
    assert "max_clique" in err and "count_independent_sets" in err


def test_stream_dp_task(monkeypatch, capsys):
    import io, sys
    lines = "\n".join(['"(0 * (1 + 2))"', "(0 + (1 * 2))", '"(0 * 1)"'])
    monkeypatch.setattr(sys, "stdin", io.StringIO(lines))
    assert main(["solve", "--stream", "--task", "clique_cover",
                 "--json"]) == 0
    out_lines = capsys.readouterr().out.strip().splitlines()
    assert len(out_lines) == 3
    answers = [json.loads(line)["answer"]["num_cliques"]
               for line in out_lines]
    assert answers == [2, 2, 1]


# --------------------------------------------------------------------------- #
# version plumbing and --on-error (PR 7)
# --------------------------------------------------------------------------- #

def test_version_flag_prints_the_package_version(capsys):
    from repro._version import __version__
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out.strip()
    # "repro 1.9.0 (backends: pram, fast, kernel[jit|fallback])" — the
    # suffix reports which kernel tier the numba probe selected
    assert out.startswith(f"repro {__version__} (backends: pram, fast, "
                          "kernel[")
    assert out.endswith("])")


def test_version_subcommand_matches_the_flag(capsys):
    from repro._version import __version__
    assert main(["version"]) == 0
    out = capsys.readouterr().out.strip()
    assert out.startswith(f"repro {__version__} (backends: ")


def test_stream_on_error_emit_interleaves_error_records(monkeypatch,
                                                        capsys):
    _feed_stdin(monkeypatch, ['"(0 * 1)"', '"((0+1)"', '"(0 + 1)"',
                              "{bad json that is not cotree text either"])
    assert main(["solve", "--stream", "--on-error", "emit",
                 "--json"]) == 0
    captured = capsys.readouterr()
    records = [json.loads(line) for line in captured.out.splitlines()]
    assert len(records) == 4
    # input order is preserved: solution, error, solution, trailing error
    assert records[0]["num_paths"] == 1
    assert records[1]["line"] == 2 and "error" in records[1]
    assert records[2]["num_paths"] == 2
    assert records[3]["line"] == 4 and "error" in records[3]
    assert "solved 2 instance(s), skipped 2 malformed line(s)" \
        in captured.err


def test_stream_on_error_emit_with_jobs_and_all_bad_lines(monkeypatch,
                                                          capsys):
    _feed_stdin(monkeypatch, ['"((0+1)"', '"no/such/file.json"'])
    assert main(["solve", "--stream", "--on-error", "emit", "--jobs", "2"]
                ) == 0
    captured = capsys.readouterr()
    records = [json.loads(line) for line in captured.out.splitlines()]
    assert [r["line"] for r in records] == [1, 2]
    assert "solved 0 instance(s), skipped 2 malformed line(s)" \
        in captured.err


def test_stream_on_error_fail_stays_the_default(monkeypatch, capsys):
    _feed_stdin(monkeypatch, ['"(0 * 1)"', '"((0+1)"', '"(0 + 1)"'])
    assert main(["solve", "--stream"]) == 2
    captured = capsys.readouterr()
    assert len(captured.out.splitlines()) == 1  # valid prefix only
    assert "error:" in captured.err


def test_on_error_without_stream_exits_2(capsys):
    assert main(["solve", "(0 + 1)", "--on-error", "emit"]) == 2
    assert "--on-error" in capsys.readouterr().err
