"""The C-level DFS numbering kernel must be bit-identical to the simulator.

``repro._dfs.binary_forest_numbering`` replaces the Euler-tour list ranking
on the throughput backend; every field of :class:`TreeNumbers` (and the
tour positions themselves) must match the PRAM-simulated computation
exactly — on single trees, chained multi-root forests (in arbitrary chain
order) and forests containing unary nodes (the dummy chains of Step 7).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._dfs import HAVE_SPARSE_DFS, binary_forest_numbering
from repro.cograph import (
    balanced_cotree,
    binarize_cotree,
    caterpillar_cotree,
    random_cotree,
)
from repro.pram import PRAM
from repro.primitives import build_euler_tour, compute_tree_numbers

NUMBER_FIELDS = ("preorder", "inorder", "postorder", "depth",
                 "subtree_size", "subtree_leaves")


def assert_numbers_match(left, right, parent, roots, tag=""):
    simulated = compute_tree_numbers(PRAM(), left, right, parent, roots)
    fast = compute_tree_numbers(None, left, right, parent, roots)
    for field in NUMBER_FIELDS:
        assert np.array_equal(getattr(simulated, field),
                              getattr(fast, field)), (tag, field)
    assert np.array_equal(simulated.tour.position, fast.tour.position), tag
    # the lazily materialised successor array matches the simulated one
    assert np.array_equal(simulated.tour.successor, fast.tour.successor), tag


def random_binary_forest(rng, n):
    """A random binary forest that may contain unary (right- or left-only)
    nodes and several roots."""
    parent = np.full(n, -1, dtype=np.int64)
    left = np.full(n, -1, dtype=np.int64)
    right = np.full(n, -1, dtype=np.int64)
    for v in range(1, n):
        p = int(rng.integers(0, v))
        if left[p] != -1 and right[p] != -1:
            continue                                # v stays a root
        if left[p] == -1 and (right[p] != -1 or rng.integers(0, 2) == 0):
            left[p] = v
        else:
            right[p] = v
        parent[v] = p
    roots = np.flatnonzero(parent == -1)
    rng.shuffle(roots)                              # arbitrary chain order
    return left, right, parent, roots


class TestKernelParity:

    @pytest.mark.parametrize("seed", range(6))
    def test_random_binary_trees(self, seed):
        b = binarize_cotree(random_cotree(50, seed=seed))
        assert_numbers_match(b.left, b.right, b.parent, [b.root],
                             f"tree-{seed}")

    def test_deep_caterpillar(self):
        b = binarize_cotree(caterpillar_cotree(80))
        assert_numbers_match(b.left, b.right, b.parent, [b.root], "cater")

    def test_balanced(self):
        b = binarize_cotree(balanced_cotree(4, branching=3))
        assert_numbers_match(b.left, b.right, b.parent, [b.root], "balanced")

    @pytest.mark.parametrize("trial", range(15))
    def test_random_forests_with_unary_nodes(self, trial):
        rng = np.random.default_rng(100 + trial)
        n = int(rng.integers(1, 60))
        left, right, parent, roots = random_binary_forest(rng, n)
        assert_numbers_match(left, right, parent, roots, f"forest-{trial}")

    def test_tour_positions_match_on_forests(self):
        rng = np.random.default_rng(5)
        for _ in range(5):
            n = int(rng.integers(2, 40))
            left, right, parent, roots = random_binary_forest(rng, n)
            sim = build_euler_tour(PRAM(), left, right, parent, roots)
            fast = build_euler_tour(None, left, right, parent, roots)
            assert np.array_equal(sim.position, fast.position)
            assert np.array_equal(sim.successor, fast.successor)


@pytest.mark.skipif(not HAVE_SPARSE_DFS, reason="scipy not installed")
class TestKernelContract:

    def test_rejects_roots_mismatch(self):
        b = binarize_cotree(random_cotree(10, seed=0))
        # missing root -> the kernel bails out (callers fall back to ranking)
        assert binary_forest_numbering(b.left, b.right, b.parent, []) is None
        wrong = [b.root, b.root]
        assert binary_forest_numbering(b.left, b.right, b.parent, wrong) \
            is None

    def test_numbering_values(self):
        #      0
        #    1   2
        #   3 4
        left = np.array([1, 3, -1, -1, -1])
        right = np.array([2, 4, -1, -1, -1])
        parent = np.array([-1, 0, 0, 1, 1])
        pre, post, depth, size = binary_forest_numbering(
            left, right, parent, [0])
        assert list(pre) == [0, 1, 4, 2, 3]
        assert list(post) == [4, 2, 3, 0, 1]
        assert list(depth) == [0, 1, 1, 2, 2]
        assert list(size) == [5, 3, 1, 1, 1]

    def test_fallback_when_scipy_disabled(self, monkeypatch):
        import repro._dfs as dfs
        monkeypatch.setattr(dfs, "HAVE_SPARSE_DFS", False)
        b = binarize_cotree(random_cotree(12, seed=1))
        assert dfs.binary_forest_numbering(
            b.left, b.right, b.parent, [b.root]) is None
        # the numbering entry point silently falls back to list ranking
        sim = compute_tree_numbers(PRAM(), b.left, b.right, b.parent,
                                   [b.root])
        fast = compute_tree_numbers(None, b.left, b.right, b.parent,
                                    [b.root])
        for field in NUMBER_FIELDS:
            assert np.array_equal(getattr(sim, field), getattr(fast, field))
