"""Tests for cograph recognition, the P4 certificate, and the LCA adjacency
oracle."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cograph import (
    CographAdjacencyOracle,
    Graph,
    NotACographError,
    binarize_cotree,
    clique,
    cotree_from_graph,
    find_induced_p4,
    independent_set,
    is_cograph,
    random_cotree,
    validate_cotree,
)
from conftest import small_graphs


def path_graph(n: int) -> Graph:
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


class TestRecognition:
    def test_roundtrip_random_cographs(self):
        for seed in range(8):
            t = random_cotree(25, seed=seed)
            g = Graph.from_cotree(t)
            rebuilt = cotree_from_graph(g)
            validate_cotree(rebuilt, g)

    def test_single_vertex(self):
        t = cotree_from_graph(Graph(1))
        assert t.num_vertices == 1

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            cotree_from_graph(Graph(0))

    def test_clique_and_independent(self):
        assert cotree_from_graph(Graph.from_cotree(clique(5))).edge_count() == 10
        assert cotree_from_graph(Graph.from_cotree(independent_set(5))).edge_count() == 0

    def test_p4_is_not_a_cograph(self):
        assert not is_cograph(path_graph(4))

    def test_p4_certificate(self):
        with pytest.raises(NotACographError) as err:
            cotree_from_graph(path_graph(4))
        cert = err.value.certificate
        assert cert is not None and len(cert) == 4

    def test_p3_is_a_cograph(self):
        assert is_cograph(path_graph(3))

    def test_c5_is_not_a_cograph(self):
        assert not is_cograph(cycle_graph(5))

    def test_c4_is_a_cograph(self):
        assert is_cograph(cycle_graph(4))

    def test_p5_is_not_a_cograph(self):
        assert not is_cograph(path_graph(5))

    def test_certificate_is_induced_p4(self):
        g = path_graph(6)
        a, b, c, d = find_induced_p4(g)
        assert g.has_edge(a, b) and g.has_edge(b, c) and g.has_edge(c, d)
        assert not g.has_edge(a, c) and not g.has_edge(a, d) and not g.has_edge(b, d)

    def test_find_induced_p4_absent_in_cograph(self):
        g = Graph.from_cotree(random_cotree(15, seed=2))
        assert find_induced_p4(g) is None

    @settings(max_examples=60, deadline=None)
    @given(small_graphs(max_n=6))
    def test_is_cograph_equals_p4_freeness(self, g):
        assert is_cograph(g) == (find_induced_p4(g) is None)

    @settings(max_examples=40, deadline=None)
    @given(small_graphs(max_n=6))
    def test_recognised_cotree_reproduces_graph(self, g):
        if not is_cograph(g):
            return
        t = cotree_from_graph(g)
        assert Graph.from_cotree(t) == g


class TestAdjacencyOracle:
    def test_matches_explicit_graph(self):
        t = random_cotree(40, seed=4)
        g = Graph.from_cotree(t)
        oracle = CographAdjacencyOracle(t)
        for u, v in itertools.combinations(range(40), 2):
            assert oracle.adjacent(u, v) == g.has_edge(u, v)

    def test_works_on_binary_cotree(self):
        t = random_cotree(30, seed=5)
        g = Graph.from_cotree(t)
        oracle = CographAdjacencyOracle(binarize_cotree(t))
        for u, v in itertools.combinations(range(30), 2):
            assert oracle.adjacent(u, v) == g.has_edge(u, v)

    def test_self_adjacency_false(self):
        oracle = CographAdjacencyOracle(clique(4))
        assert not oracle.adjacent(2, 2)

    def test_lca_of_same_vertex(self):
        t = random_cotree(10, seed=6)
        oracle = CographAdjacencyOracle(t)
        leaf = t.leaf_of_vertex(3)
        assert oracle.lca(3, 3) == leaf

    def test_path_is_valid(self):
        t = clique(4)
        oracle = CographAdjacencyOracle(t)
        assert oracle.path_is_valid([0, 1, 2, 3])
        t2 = independent_set(3)
        oracle2 = CographAdjacencyOracle(t2)
        assert not oracle2.path_is_valid([0, 1])
        assert oracle2.path_is_valid([2])

    def test_num_vertices(self):
        assert CographAdjacencyOracle(random_cotree(21, seed=0)).num_vertices == 21
