"""Modular decomposition trees and the MD-capable DP tasks (PR 8).

Four layers of evidence:

* **structure** — ``md_tree`` round-trips every labelled graph on up to 5
  vertices through ``graph_from_md_tree``, keeps cograph inputs
  *bit-identical* to the recognition path, and produces the expected prime
  shapes (P4 -> thin spider, C5 -> generic prime, bull -> spider + head);
* **exhaustive parity** — every MD-capable task (unweighted and weighted
  extremal sets) matches the subset-DP brute force on *all* graphs with
  ``n <= 5``, with feasible, value-matching witnesses;
* **randomized scale** — P4-sparse graphs up to ``n = 200`` agree across
  the fast, PRAM and sequential evaluators bit-for-bit;
* **guard rails** — cograph-only specs refuse primed trees, big generic
  primes refuse to run, primed trees refuse to forest-pack / canonicalize
  / convert to plain cotrees, and the cograph cache keys stay unchanged.
"""

import itertools

import numpy as np
import pytest

from repro.api import MD_GRAPH_CLASSES, SolutionCache, SolveOptions, solve
from repro.api.registry import TASKS
from repro.baselines import (
    brute_force_max_clique,
    brute_force_max_independent_set,
    brute_force_max_weight_clique,
    brute_force_max_weight_independent_set,
)
from repro.cograph import (
    Graph,
    NotACographError,
    PRIME,
    as_flat_cotree,
    canonical_key,
    cotree_from_graph,
    graph_from_md_tree,
    md_tree,
    pack,
    random_cotree,
    random_p4_sparse,
)
from repro.cograph.md import SPIDER_NONE, SPIDER_THICK, SPIDER_THIN
from repro.core.dp import (
    CHROMATIC_NUMBER_DP,
    MAX_CLIQUE_DP,
    MAX_GENERIC_PRIME,
    MAX_INDEPENDENT_SET_DP,
    max_weight_clique_dp,
    max_weight_independent_set_dp,
    run_cotree_dp,
    run_cotree_dp_sequential,
)


def all_graphs(n):
    """Every labelled graph on ``n`` vertices."""
    pairs = list(itertools.combinations(range(n), 2))
    for bits in range(1 << len(pairs)):
        yield Graph(n, [e for i, e in enumerate(pairs) if bits >> i & 1])


def graph_weights(n, salt=0):
    """A deterministic, collision-prone weight vector (ties exercised)."""
    return [(v * 7 + salt) % 5 for v in range(n)]


def check_set(graph, vertices, *, adjacent, label):
    vs = sorted(int(v) for v in vertices)
    assert len(set(vs)) == len(vs), label
    for u, v in itertools.combinations(vs, 2):
        assert graph.has_edge(u, v) == adjacent, (
            f"{label}: pair ({u}, {v}) breaks feasibility")


P4 = Graph(4, [(0, 1), (1, 2), (2, 3)])
C5 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
BULL = Graph(5, [(0, 1), (1, 2), (2, 3), (1, 4), (2, 4)])


# --------------------------------------------------------------------------- #
# structure
# --------------------------------------------------------------------------- #

class TestMDTreeStructure:

    def test_round_trip_all_graphs_up_to_5(self):
        for n in range(1, 6):
            for g in all_graphs(n):
                md = md_tree(g)
                back = graph_from_md_tree(md)
                assert back.n == g.n
                assert back.adj == g.adj

    def test_cograph_inputs_bit_identical_to_recognition_path(self):
        for seed in range(20):
            tree = random_cotree(30, seed=seed)
            g = Graph.from_adjacency(tree.adjacency_sets())
            md = md_tree(g)
            direct = as_flat_cotree(cotree_from_graph(g))
            assert not md.has_primes
            assert md == direct
            assert canonical_key(md) == canonical_key(direct)

    def test_p4_is_a_thin_spider(self):
        md = md_tree(P4)
        primes = md.prime_nodes
        assert len(primes) == 1
        node = int(primes[0])
        assert md.kind[node] == PRIME
        assert md.spider[node] == SPIDER_THIN
        eu, ev = md.quotient_of(node)
        # thin spider on 4 children, no head: s1-k1, s2-k2, k1-k2
        assert sorted(zip(eu.tolist(), ev.tolist())) == [(0, 2), (1, 3),
                                                         (2, 3)]

    def test_c5_is_a_generic_prime(self):
        md = md_tree(C5)
        primes = md.prime_nodes
        assert len(primes) == 1
        node = int(primes[0])
        assert md.spider[node] == SPIDER_NONE
        eu, _ = md.quotient_of(node)
        assert len(eu) == 5          # C5 quotient is C5 itself

    def test_bull_is_a_spider_with_head(self):
        md = md_tree(BULL)
        primes = md.prime_nodes
        assert len(primes) == 1
        node = int(primes[0])
        assert md.spider[node] in (SPIDER_THIN, SPIDER_THICK)
        lo, hi = md.child_offset[node], md.child_offset[node + 1]
        assert hi - lo == 5          # 2 feet + 2 body + 1 head

    def test_thick_spider_detected(self):
        # thick spider k=3, no head: feet 0..2, body 3..5, s_i ~ K \ {k_i}
        edges = [(3, 4), (3, 5), (4, 5),
                 (0, 4), (0, 5), (1, 3), (1, 5), (2, 3), (2, 4)]
        md = md_tree(Graph(6, edges))
        node = int(md.prime_nodes[0])
        assert md.spider[node] == SPIDER_THICK

    def test_p4_sparse_trees_are_all_spiders(self):
        for seed in range(10):
            g = random_p4_sparse(80, seed=seed)
            md = md_tree(g)
            assert np.all(md.spider[md.prime_nodes] != SPIDER_NONE)
            assert graph_from_md_tree(md).adj == g.adj

    def test_recognition_certificate_still_reported(self):
        solution = solve(P4, "recognition")
        assert solution.answer is False
        assert len(solution.provenance["certificate"]) == 4


# --------------------------------------------------------------------------- #
# exhaustive parity, all graphs n <= 5
# --------------------------------------------------------------------------- #

class TestExhaustiveParity:

    def test_all_graphs_all_md_tasks_match_brute_force(self):
        for n in range(1, 6):
            weights = graph_weights(n)
            warr = np.asarray(weights, dtype=np.int64)
            for g in all_graphs(n):
                md = md_tree(g)
                expect = {
                    "mis": brute_force_max_independent_set(g),
                    "mc": brute_force_max_clique(g),
                    "mwis": brute_force_max_weight_independent_set(
                        g, weights),
                    "mwc": brute_force_max_weight_clique(g, weights),
                }
                specs = {
                    "mis": (MAX_INDEPENDENT_SET_DP, False),
                    "mc": (MAX_CLIQUE_DP, True),
                    "mwis": (max_weight_independent_set_dp(warr), False),
                    "mwc": (max_weight_clique_dp(warr), True),
                }
                for key, (dp, adjacent) in specs.items():
                    run = run_cotree_dp(dp, md)
                    value = run.root(dp.fields[0])
                    assert value == expect[key], (key, n, sorted(
                        (u, v) for u in range(n) for v in g.adj[u] if u < v))
                    seq = run_cotree_dp_sequential(dp, md)
                    assert seq.root(dp.fields[0]) == value
                    chosen = run.witness()
                    check_set(g, chosen, adjacent=adjacent,
                              label=f"{key} n={n}")
                    if key in ("mis", "mc"):
                        assert len(chosen) == value
                    else:
                        total = int(warr[np.asarray(chosen)].sum()) \
                            if len(chosen) else 0
                        assert total == value

    def test_front_door_exhaustive_n4(self):
        weights = graph_weights(4, salt=1)
        for g in all_graphs(4):
            opts = SolveOptions(validate=True)
            a = solve(g, "max_independent_set", options=opts).answer
            assert a["size"] == brute_force_max_independent_set(g)
            b = solve(g, "max_clique", options=opts).answer
            assert b["size"] == brute_force_max_clique(g)
            w = solve(g, "max_weight_clique",
                      options=SolveOptions(validate=True,
                                           weights=weights)).answer
            assert w["weight"] == brute_force_max_weight_clique(g, weights)
            w = solve(g, "max_weight_independent_set",
                      options=SolveOptions(validate=True,
                                           weights=weights)).answer
            assert w["weight"] == brute_force_max_weight_independent_set(
                g, weights)


# --------------------------------------------------------------------------- #
# randomized P4-sparse, tri-backend bit-parity
# --------------------------------------------------------------------------- #

class TestP4SparseRandomized:

    @pytest.mark.parametrize("task,weighted", [
        ("max_independent_set", False),
        ("max_clique", False),
        ("max_weight_independent_set", True),
        ("max_weight_clique", True),
    ])
    def test_tri_backend_bit_parity_to_n200(self, task, weighted):
        rng = np.random.default_rng(hash(task) % (2 ** 32))
        for trial in range(8):
            n = int(rng.integers(5, 201))
            g = random_p4_sparse(n, seed=trial * 31 + 7)
            weights = [int(x) for x in rng.integers(0, 50, size=n)] \
                if weighted else None
            answers = []
            for conf in (dict(backend="fast"), dict(backend="pram"),
                         dict(method="sequential")):
                opts = SolveOptions(validate=True, weights=weights, **conf)
                answers.append(solve(g, task, options=opts).answer)
            assert answers[0] == answers[1] == answers[2]

    def test_small_p4_sparse_matches_brute_force(self):
        for seed in range(40):
            g = random_p4_sparse(int(np.random.default_rng(seed)
                                     .integers(4, 13)), seed=seed)
            assert solve(g, "max_independent_set").answer["size"] == \
                brute_force_max_independent_set(g)
            assert solve(g, "max_clique").answer["size"] == \
                brute_force_max_clique(g)


# --------------------------------------------------------------------------- #
# guard rails
# --------------------------------------------------------------------------- #

class TestGuardRails:

    def test_cograph_only_dp_refuses_primed_trees(self):
        md = md_tree(P4)
        with pytest.raises(ValueError, match="cographs only"):
            run_cotree_dp(CHROMATIC_NUMBER_DP, md)
        with pytest.raises(ValueError, match="cographs only"):
            run_cotree_dp_sequential(CHROMATIC_NUMBER_DP, md)

    def test_cograph_only_task_raises_not_a_cograph(self):
        with pytest.raises(NotACographError):
            solve(P4, "chromatic_number")
        with pytest.raises(NotACographError):
            solve(P4, "path_cover")

    def test_generic_prime_arity_cap(self):
        n = MAX_GENERIC_PRIME + 2
        cycle = Graph(n, [(i, (i + 1) % n) for i in range(n)])
        md = md_tree(cycle)
        assert md.has_primes
        with pytest.raises(ValueError, match=str(MAX_GENERIC_PRIME)):
            run_cotree_dp(MAX_INDEPENDENT_SET_DP, md)

    def test_primed_trees_refuse_forest_packing(self):
        md = md_tree(P4)
        with pytest.raises(ValueError, match="forest-packed"):
            pack([md])

    def test_primed_trees_have_no_plain_cotree_form(self):
        from repro.cograph import CotreeError
        md = md_tree(P4)
        with pytest.raises(CotreeError):
            md.to_cotree()

    def test_weights_rejected_without_weighted_task(self):
        with pytest.raises(ValueError, match="takes no vertex weights"):
            solve(P4, "max_clique", weights=[1, 2, 3, 4])

    def test_weights_required_by_weighted_task(self):
        with pytest.raises(ValueError, match="needs per-vertex weights"):
            solve(P4, "max_weight_clique")

    def test_weights_length_checked(self):
        with pytest.raises(ValueError, match="does not match"):
            solve(P4, "max_weight_clique", weights=[1, 2, 3])

    def test_negative_weights_rejected_at_options(self):
        with pytest.raises(ValueError, match="non-negative"):
            SolveOptions(weights=[1, -2])


# --------------------------------------------------------------------------- #
# plumbing: registry surface and the cache
# --------------------------------------------------------------------------- #

class TestPlumbing:

    def test_registry_reports_graph_classes(self):
        for name in ("max_clique", "max_independent_set",
                     "max_weight_clique", "max_weight_independent_set"):
            assert TASKS[name].graph_classes == MD_GRAPH_CLASSES
            assert TASKS[name].accepts_prime_modules
        assert TASKS["chromatic_number"].graph_classes == ("cograph",)
        assert not TASKS["chromatic_number"].accepts_prime_modules
        assert TASKS["max_weight_clique"].uses_weights
        assert not TASKS["max_clique"].uses_weights

    def test_cache_hits_on_md_inputs(self):
        cache = SolutionCache()
        g = random_p4_sparse(50, seed=11)
        first = solve(g, "max_independent_set", cache=cache)
        assert first.provenance["cache"] == "miss"
        again = solve(g, "max_independent_set", cache=cache)
        assert again.provenance["cache"] == "hit"
        assert again.answer == first.answer

    def test_cache_distinguishes_weight_vectors(self):
        cache = SolutionCache()
        g = random_p4_sparse(30, seed=5)
        a = solve(g, "max_weight_independent_set", cache=cache,
                  weights=[1] * 30)
        b = solve(g, "max_weight_independent_set", cache=cache,
                  weights=[3] * 30)
        assert b.provenance["cache"] == "miss"
        assert b.answer["weight"] == 3 * a.answer["weight"]

    def test_cache_still_bypasses_non_md_tasks_on_non_cographs(self):
        cache = SolutionCache()
        assert cache.key_for(
            __import__("repro.api", fromlist=["as_problem"])
            .as_problem(P4), "recognition", SolveOptions()) is None

    def test_cograph_canonical_keys_unchanged_by_md_support(self):
        # a cograph keys identically whether it arrives as a graph (through
        # recognition) or through md_tree — no "prime" suffix on either
        tree = random_cotree(25, seed=3)
        g = Graph.from_adjacency(tree.adjacency_sets())
        key_direct = canonical_key(as_flat_cotree(cotree_from_graph(g)))
        key_md = canonical_key(md_tree(g))
        assert key_direct == key_md
        assert all(part != "prime" for part in key_direct
                   if isinstance(part, str))

    def test_md_keys_carry_the_quotient(self):
        key = canonical_key(md_tree(P4))
        assert "prime" in [p for p in key if isinstance(p, str)]
        # P4 and its complement share the skeleton but not the quotient:
        # both are P4s, so instead compare against C5 (different quotient)
        assert key != canonical_key(md_tree(C5))
