"""Tests for binarisation and the BinaryCotree structure."""

import numpy as np
import pytest

from repro.cograph import (
    JOIN,
    LEAF,
    UNION,
    BinaryCotree,
    Cotree,
    CotreeError,
    Graph,
    binarize_cotree,
    clique,
    independent_set,
    make_leftist,
    random_cotree,
    validate_binary_cotree,
)


class TestBinarize:
    def test_node_count_is_2n_minus_1(self, small_named_cotrees):
        for name, t in small_named_cotrees.items():
            b = binarize_cotree(t)
            assert b.num_nodes == 2 * t.num_vertices - 1, name

    def test_binary_tree_preserves_graph(self, small_named_cotrees):
        for name, t in small_named_cotrees.items():
            b = binarize_cotree(t)
            assert Graph.from_cotree(b.to_cotree()) == Graph.from_cotree(t), name

    def test_wide_union_becomes_chain(self):
        b = binarize_cotree(independent_set(6))
        assert b.num_nodes == 11
        assert np.count_nonzero(b.kind == UNION) == 5

    def test_wide_join_becomes_chain(self):
        b = binarize_cotree(clique(5))
        assert np.count_nonzero(b.kind == JOIN) == 4

    def test_binary_input_unchanged_shape(self):
        t = Cotree.from_nested(("join", 0, ("union", 1, 2)))
        b = binarize_cotree(t)
        assert b.num_nodes == 5

    def test_single_vertex(self):
        b = binarize_cotree(Cotree.single_vertex(0))
        assert b.num_nodes == 1
        assert b.kind[b.root] == LEAF

    def test_unary_internal_node_rejected(self):
        bad = Cotree([UNION, LEAF], [[1], []], [-1, 0], 0)
        with pytest.raises(CotreeError):
            binarize_cotree(bad)

    def test_leaf_vertices_preserved(self, small_named_cotrees):
        for name, t in small_named_cotrees.items():
            b = binarize_cotree(t)
            assert sorted(b.leaf_vertex[b.leaves]) == sorted(t.vertices), name

    def test_deep_cotree_does_not_overflow_recursion(self):
        from repro.cograph import caterpillar_cotree
        t = caterpillar_cotree(3000)
        b = binarize_cotree(t)
        assert b.num_vertices == 3000


class TestBinaryCotreeStructure:
    @pytest.fixture(scope="class")
    def binary(self):
        return binarize_cotree(random_cotree(25, seed=3))

    def test_validate_passes(self, binary):
        binary.validate()

    def test_parent_child_consistency(self, binary):
        for u in binary.internal_nodes:
            assert binary.parent[binary.left[u]] == u
            assert binary.parent[binary.right[u]] == u

    def test_postorder_is_bottom_up(self, binary):
        pos = {u: i for i, u in enumerate(binary.postorder())}
        for u in binary.internal_nodes:
            assert pos[int(binary.left[u])] < pos[u]
            assert pos[int(binary.right[u])] < pos[u]

    def test_preorder_starts_at_root(self, binary):
        assert binary.preorder()[0] == binary.root

    def test_inorder_leaves_covers_all_vertices(self, binary):
        leaves = binary.inorder_leaves()
        assert sorted(leaves) == list(range(binary.num_vertices))

    def test_depth_root_zero(self, binary):
        assert binary.depth()[binary.root] == 0

    def test_height_at_least_log(self, binary):
        assert binary.height() >= np.ceil(np.log2(binary.num_vertices))

    def test_subtree_leaf_counts_root(self, binary):
        assert binary.subtree_leaf_counts()[binary.root] == binary.num_vertices

    def test_is_left_right_child(self, binary):
        u = int(binary.internal_nodes[0])
        assert binary.is_left_child(int(binary.left[u]))
        assert binary.is_right_child(int(binary.right[u]))
        assert not binary.is_left_child(binary.root)

    def test_vertex_to_leaf(self, binary):
        mapping = binary.vertex_to_leaf()
        for v, node in mapping.items():
            assert int(binary.leaf_vertex[node]) == v

    def test_copy_is_independent(self, binary):
        c = binary.copy()
        c.left[binary.root] = -99
        assert binary.left[binary.root] != -99

    def test_swap_children(self, binary):
        u = int(binary.internal_nodes[0])
        swapped = binary.swap_children([u])
        assert swapped.left[u] == binary.right[u]
        assert swapped.right[u] == binary.left[u]

    def test_validate_rejects_corrupted_parent(self, binary):
        bad = binary.copy()
        bad.parent[int(bad.left[bad.root])] = int(bad.left[bad.root])
        with pytest.raises(CotreeError):
            bad.validate()

    def test_validate_rejects_missing_child(self, binary):
        bad = binary.copy()
        bad.left[bad.root] = -1
        with pytest.raises(CotreeError):
            bad.validate()


class TestLeftist:
    def test_make_leftist_satisfies_invariant(self, small_named_cotrees):
        for name, t in small_named_cotrees.items():
            b = make_leftist(binarize_cotree(t))
            validate_binary_cotree(b, leftist=True)

    def test_make_leftist_preserves_graph(self, small_named_cotrees):
        for name, t in small_named_cotrees.items():
            b = make_leftist(binarize_cotree(t))
            assert Graph.from_cotree(b.to_cotree()) == Graph.from_cotree(t), name

    def test_leftist_violation_detected(self):
        # join(leaf, I3) binarized has L(left)=1 < L(right)=3 at the root
        t = Cotree.from_nested(("join", 0, ("union", 1, 2, 3)))
        b = binarize_cotree(t)
        if b.subtree_leaf_counts()[b.left[b.root]] >= \
                b.subtree_leaf_counts()[b.right[b.root]]:
            pytest.skip("binarizer already produced a leftist root")
        with pytest.raises(CotreeError):
            validate_binary_cotree(b, leftist=True)
