"""The ``repro.api`` front door: solve()/solve_many() parity with the legacy
entry points, SolveOptions validation, and the unified Solution shape."""

from __future__ import annotations

import pytest

from repro.api import (
    Problem,
    Solution,
    SolveOptions,
    as_problem,
    get_task,
    register_task,
    solve,
    solve_many,
    task_names,
)
from repro.baselines import sequential_path_cover
from repro.cograph import (
    CographAdjacencyOracle,
    Graph,
    clique,
    independent_set,
    minimum_path_cover_size,
)
from repro.core import (
    hamiltonian_cycle,
    hamiltonian_path,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    minimum_path_cover_parallel,
)
from repro.pram import AccessMode

BACKENDS = ("pram", "fast")
ALL_TASKS = ("path_cover", "path_cover_size", "hamiltonian_path",
             "hamiltonian_cycle", "recognition", "lower_bound",
             "max_clique", "max_independent_set", "chromatic_number",
             "clique_cover", "count_independent_sets",
             "max_weight_clique", "max_weight_independent_set")


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #

def test_all_builtin_tasks_registered():
    assert task_names() == tuple(sorted(ALL_TASKS))


def test_unknown_task_lists_the_known_ones():
    with pytest.raises(ValueError, match="path_cover"):
        solve(clique(3), task="make_coffee")


def test_register_task_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_task("path_cover")(lambda p, o: None)


def test_get_task_returns_spec():
    spec = get_task("recognition")
    assert spec.name == "recognition" and not spec.runs_pipeline


# --------------------------------------------------------------------------- #
# parity: solve() vs the legacy entry points, every task x backend x family
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("backend", BACKENDS)
def test_path_cover_parity_all_families(small_named_cotrees, backend):
    for name, tree in small_named_cotrees.items():
        legacy = minimum_path_cover_parallel(tree, backend=backend)
        new = solve(tree, "path_cover", backend=backend)
        assert new.cover.paths == legacy.cover.paths, name
        assert new.num_paths == legacy.num_paths == \
            minimum_path_cover_size(tree)
        assert new.backend == backend
        assert new.answer is new.cover


def test_path_cover_sequential_parity(small_named_cotrees):
    for name, tree in small_named_cotrees.items():
        legacy = sequential_path_cover(tree)
        new = solve(tree, "path_cover", method="sequential")
        assert new.cover.paths == legacy.paths, name
        assert new.backend == "sequential"
        assert new.report is None and new.machine is None


@pytest.mark.parametrize("backend", (None,) + BACKENDS)
def test_path_cover_size_parity(small_named_cotrees, backend):
    for name, tree in small_named_cotrees.items():
        new = solve(tree, "path_cover_size", backend=backend)
        assert new.answer == minimum_path_cover_size(tree), name
        assert new.backend == ("analytic" if backend is None else backend)


def test_path_cover_size_honours_every_non_default_knob():
    tree = independent_set(6)
    # any non-default option must run the engine, not the analytic shortcut
    traced = solve(tree, "path_cover_size", record_steps=True)
    assert traced.backend == "pram" and traced.report.by_label
    checked = solve(tree, "path_cover_size", validate=True)
    assert checked.backend == "pram" and checked.answer == 6
    seq = solve(tree, "path_cover_size", method="sequential")
    assert seq.backend == "sequential" and seq.answer == 6


@pytest.mark.parametrize("task,legacy_has,legacy_witness", [
    ("hamiltonian_path", has_hamiltonian_path, hamiltonian_path),
    ("hamiltonian_cycle", has_hamiltonian_cycle, hamiltonian_cycle),
])
@pytest.mark.parametrize("backend", BACKENDS)
def test_hamiltonian_parity(small_named_cotrees, task, legacy_has,
                            legacy_witness, backend):
    for name, tree in small_named_cotrees.items():
        new = solve(tree, task, backend=backend)
        assert (new.answer is not None) == legacy_has(tree), name
        assert new.ok == legacy_has(tree)
        legacy = legacy_witness(tree, backend=backend)
        assert new.answer == legacy, name


def test_hamiltonian_sequential_method(small_named_cotrees):
    for name, tree in small_named_cotrees.items():
        new = solve(tree, "hamiltonian_path", method="sequential")
        assert (new.answer is not None) == has_hamiltonian_path(tree), name
        if new.answer is not None:
            oracle = CographAdjacencyOracle(tree)
            for u, v in zip(new.answer, new.answer[1:]):
                assert oracle.adjacent(u, v)


def test_sequential_validate_is_honoured(small_named_cotrees):
    # validate=True must actually check sequential covers, not be dropped
    for tree in small_named_cotrees.values():
        sol = solve(tree, "path_cover", method="sequential", validate=True)
        assert sol.num_paths == minimum_path_cover_size(tree)


def test_recognition_parity(random_cotree_pool):
    for tree, graph in random_cotree_pool:
        assert solve(graph, "recognition").answer is True
    p4 = Graph(4, [(0, 1), (1, 2), (2, 3)])
    bad = solve(p4, "recognition")
    assert bad.answer is False and not bad.ok
    assert sorted(bad.provenance["certificate"]) == [0, 1, 2, 3]


def test_recognition_on_cotree_is_trivially_true():
    sol = solve(clique(4), "recognition")
    assert sol.answer is True
    assert sol.provenance["input_was_cotree"] is True


@pytest.mark.parametrize("bits", [[0], [1], [0, 0, 0], [1, 0, 1],
                                  [0, 1, 0, 0], [1] * 6])
@pytest.mark.parametrize("backend", BACKENDS)
def test_lower_bound_task(bits, backend):
    sol = solve(bits, "lower_bound", backend=backend)
    assert sol.answer["or"] == int(any(bits))
    assert sol.answer["num_paths"] == len(bits) - sum(bits) + 2
    assert sol.answer["num_paths"] == sol.answer["expected_num_paths"]
    assert sol.answer["bits"] == list(bits)


def test_lower_bound_rejects_plain_cographs():
    with pytest.raises(ValueError, match="bit vector"):
        solve(clique(3), "lower_bound")


# --------------------------------------------------------------------------- #
# the Solution shape
# --------------------------------------------------------------------------- #

def test_solution_carries_accounting_for_pram():
    tree = independent_set(6)
    sol = solve(tree, backend="pram", validate=True)
    assert sol.report is not None and sol.report.rounds > 0
    assert sol.machine is not None
    assert sol.stage_seconds  # the pipeline ran
    assert sol.provenance["p_root"] == 6
    assert sol.provenance["num_vertices"] == 6
    assert sol.provenance["source_format"] == "cotree"
    assert sol.provenance["repro_version"]
    assert "exchanges" in sol.provenance


def test_solution_fast_backend_has_no_accounting():
    sol = solve(independent_set(6), backend="fast")
    assert sol.report is None and sol.machine is None
    assert sol.stage_seconds


def test_solution_summary_mentions_the_essentials():
    text = solve(clique(5)).summary()
    assert "path_cover" in text and "num_paths=1" in text and "n=5" in text


# --------------------------------------------------------------------------- #
# solve_many
# --------------------------------------------------------------------------- #

def test_solve_many_matches_individual_solves(random_cotree_pool):
    trees = [tree for tree, _ in random_cotree_pool]
    batch = solve_many(trees, backend="fast")
    assert len(batch) == len(trees)
    for i, (sol, tree) in enumerate(zip(batch, trees)):
        assert sol.cover.paths == solve(tree, backend="fast").cover.paths
        assert sol.provenance["batch_index"] == i
        assert sol.machine is None


def test_solve_many_across_processes(random_cotree_pool):
    trees = [tree for tree, _ in random_cotree_pool[:4]]
    batch = solve_many(trees, backend="fast", jobs=2)
    assert [s.num_paths for s in batch] == \
        [minimum_path_cover_size(t) for t in trees]
    assert all(s.machine is None for s in batch)


def test_solve_many_strips_machines_even_in_process():
    batch = solve_many([clique(4)], backend="pram")
    assert batch[0].report is not None      # accounting survives
    assert batch[0].machine is None         # the live machine does not


def test_solve_many_mixed_tasks_fail_fast_on_unknown_task():
    with pytest.raises(ValueError, match="unknown task"):
        solve_many([clique(3)], task="nope")


def test_solve_many_accepts_mixed_input_forms():
    forms = [clique(3), "(0 * (1 * 2))", [(0, 1), (1, 2), (0, 2)],
             {0: [1, 2], 1: [0, 2], 2: [0, 1]}]
    batch = solve_many(forms, "path_cover", backend="fast")
    assert [s.num_paths for s in batch] == [1, 1, 1, 1]
    assert [s.provenance["source_format"] for s in batch] == \
        ["cotree", "text", "edge_list", "adjacency"]


# --------------------------------------------------------------------------- #
# SolveOptions validation — nothing is silently ignored
# --------------------------------------------------------------------------- #

def test_options_rejects_unknown_method():
    with pytest.raises(ValueError, match="unknown method"):
        SolveOptions(method="magic")


def test_options_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        SolveOptions(backend="gpu")


def test_options_rejects_sequential_with_backend():
    with pytest.raises(ValueError, match="method='parallel'"):
        SolveOptions(method="sequential", backend="fast")


def test_options_rejects_sequential_with_pram_knobs():
    with pytest.raises(ValueError, match="num_processors"):
        SolveOptions(method="sequential", num_processors=8)
    with pytest.raises(ValueError, match="work_efficient"):
        SolveOptions(method="sequential", work_efficient=False)


def test_options_rejects_fast_with_pram_knobs():
    with pytest.raises(ValueError, match="num_processors"):
        SolveOptions(backend="fast", num_processors=8)
    with pytest.raises(ValueError, match="record_steps"):
        SolveOptions(backend="fast", record_steps=True)
    with pytest.raises(ValueError, match="mode"):
        SolveOptions(backend="fast", mode="CREW")
    # the fast backend always takes its vectorized shortcuts, so
    # work_efficient=False would be silently meaningless — reject it
    with pytest.raises(ValueError, match="work_efficient"):
        SolveOptions(backend="fast", work_efficient=False)


def test_options_normalises_mode_strings():
    assert SolveOptions(mode="CREW").mode is AccessMode.CREW
    with pytest.raises(ValueError):
        SolveOptions(mode="SIMD")


def test_options_resolved_backend():
    assert SolveOptions().resolved_backend == "pram"
    assert SolveOptions(backend="fast").resolved_backend == "fast"
    assert SolveOptions(method="sequential").resolved_backend == "sequential"


def test_options_with_revalidates():
    options = SolveOptions(backend="fast")
    assert options.with_(backend="pram").backend == "pram"
    with pytest.raises(ValueError):
        options.with_(num_processors=4)


def test_options_dict_round_trip():
    options = SolveOptions(backend="pram", num_processors=8, mode="CREW",
                           validate=True)
    assert SolveOptions.from_dict(options.to_dict()) == options
    with pytest.raises(ValueError, match="unknown SolveOptions"):
        SolveOptions.from_dict({"turbo": True})


def test_solve_rejects_options_plus_kwargs():
    with pytest.raises(ValueError, match="not both"):
        solve(clique(3), options=SolveOptions(), backend="fast")


def test_solve_rejects_non_options_object():
    with pytest.raises(TypeError, match="SolveOptions"):
        solve(clique(3), options={"backend": "fast"})


def test_pipeline_free_task_rejects_pipeline_options():
    with pytest.raises(ValueError, match="does not run the solver pipeline"):
        solve(clique(3), "recognition", backend="fast")
    with pytest.raises(ValueError, match="does not run the solver pipeline"):
        solve(clique(3), "recognition",
              options=SolveOptions(method="sequential"))


def test_num_processors_honoured_through_solve():
    sol = solve(independent_set(8), backend="pram", num_processors=3)
    assert sol.report.num_processors == 3


def test_record_steps_honoured_through_solve():
    sol = solve(independent_set(8), backend="pram", record_steps=True)
    assert sol.report.by_label  # per-label breakdown recorded
