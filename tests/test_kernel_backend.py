"""The compiled-kernel execution tier (``repro.kernels`` +
:class:`~repro.backends.kernel_backend.KernelBackend`).

Three layers of guarantees:

* **registration** — ``"kernel"`` is a first-class backend name through
  ``make_backend`` / :class:`~repro.api.SolveOptions` / the CLI;
* **primitive semantics** — every kernel replicates the exact NumPy
  expression it fused (``ufunc.reduceat`` over the same segments,
  including the degenerate empty-segment rule), property-tested across
  ops, dtypes and adversarial segment shapes;
* **end-to-end parity** — bit-identical answers against the fast and PRAM
  backends on every registered task, across generator families and the
  forest batching route.

The whole file runs in either kernel mode: with numba installed the table
is jitted, without it the NumPy fallback tier answers — the assertions
are mode-independent by design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SolveOptions, as_problem, solve, solve_many, task_names
from repro.api.registry import TASKS
from repro.backends import (
    BACKEND_NAMES,
    FastBackend,
    KernelBackend,
    make_backend,
)
from repro.cograph import (
    as_flat_cotree,
    balanced_cotree,
    caterpillar_cotree,
    clique,
    independent_set,
    random_cotree,
    threshold_cograph,
)
from repro.io.wire import from_bytes, to_bytes
from repro.kernels import KERNELS, NUMBA_AVAILABLE, kernel_status
from repro.__main__ import main

OPS = ("sum", "max", "min", "prod")
_UFUNC = {"sum": np.add, "max": np.maximum, "min": np.minimum,
          "prod": np.multiply}


# --------------------------------------------------------------------------- #
# registration
# --------------------------------------------------------------------------- #

class TestRegistration:
    def test_kernel_is_a_registered_backend(self):
        assert "kernel" in BACKEND_NAMES
        backend = make_backend("kernel")
        assert isinstance(backend, KernelBackend)
        assert backend.name == "kernel"
        assert backend.simulates is False
        assert isinstance(backend, FastBackend)   # inherits the fast tier

    def test_kernel_backend_takes_no_configuration(self):
        with pytest.raises(TypeError, match="no configuration"):
            make_backend("kernel", processors=4)

    def test_backend_exposes_the_kernel_table(self):
        backend = KernelBackend()
        assert backend.kernels is KERNELS
        assert backend.kernel_mode in ("jit", "fallback")

    def test_status_report_is_consistent(self):
        status = kernel_status()
        assert set(status) == {"numba_available", "numba_version", "mode"}
        assert status["numba_available"] is NUMBA_AVAILABLE
        assert status["mode"] == KERNELS.mode
        if not NUMBA_AVAILABLE:
            assert status["mode"] == "fallback"
            assert status["numba_version"] is None

    def test_solve_options_accept_kernel(self):
        assert SolveOptions(backend="kernel").backend == "kernel"
        # PRAM-only knobs still refuse to combine with it
        with pytest.raises(ValueError, match="PRAM-only"):
            SolveOptions(backend="kernel", num_processors=4)

    def test_cli_accepts_kernel_backend(self, capsys):
        assert main(["solve", "(0 + (1 * 2))", "--backend", "kernel"]) == 0

    def test_version_reports_live_backends(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "backends:" in out and "kernel[" in out
        expected = "jit" if NUMBA_AVAILABLE else "fallback"
        assert f"kernel[{expected}" in out


# --------------------------------------------------------------------------- #
# primitive semantics vs the NumPy expressions they fuse
# --------------------------------------------------------------------------- #

def _random_segments(rng, n_values, n_segments):
    """Random offsets over ``n_values`` including empty segments."""
    cuts = np.sort(rng.integers(0, n_values, size=n_segments - 1))
    return np.concatenate(([0], cuts, [n_values])).astype(np.int64)


class TestPrimitives:
    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("dtype", [np.int64, np.float64])
    def test_segment_reduce_matches_reduceat(self, op, dtype):
        rng = np.random.default_rng(hash((op, str(dtype))) % 2 ** 32)
        for trial in range(10):
            n = int(rng.integers(1, 200))
            values = rng.integers(1, 7, size=n).astype(dtype)
            offsets = _random_segments(rng, n, int(rng.integers(2, 20)))
            got = KERNELS.segment_reduce(values, offsets, op)
            want = _UFUNC[op].reduceat(values, offsets[:-1])
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("op", OPS)
    def test_gather_reduce_matches_indexed_reduceat(self, op):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 100, size=50).astype(np.int64)
        index = rng.integers(0, 50, size=120).astype(np.int64)
        offsets = _random_segments(rng, 120, 9)
        got = KERNELS.gather_reduce(values, index, offsets, op)
        want = _UFUNC[op].reduceat(values[index], offsets[:-1])
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("op", OPS)
    def test_level_gather_reduce_matches_per_node_loop(self, op):
        tree = as_flat_cotree(random_cotree(150, seed=13))
        internal = np.flatnonzero(
            tree.child_offset[1:] > tree.child_offset[:-1]).astype(np.int64)
        values = np.random.default_rng(5).integers(
            1, 9, size=tree.num_nodes).astype(np.int64)
        got = KERNELS.level_gather_reduce(
            values, tree.child_offset, tree.child_index, internal, op)
        want = np.array([
            _UFUNC[op].reduce(
                values[tree.child_index[tree.child_offset[u]:
                                        tree.child_offset[u + 1]]])
            for u in internal])
        np.testing.assert_array_equal(got, want)

    def test_invert_permutation(self):
        rng = np.random.default_rng(2)
        for n in (0, 1, 17, 400):
            perm = rng.permutation(n).astype(np.int64)
            got = KERNELS.invert_permutation(perm)
            assert np.array_equal(perm[got], np.arange(n))

    def test_segment_arange(self):
        counts = np.array([3, 0, 1, 5, 0, 2], dtype=np.int64)
        got = KERNELS.segment_arange(counts)
        want = np.concatenate([np.arange(c) for c in counts])
        np.testing.assert_array_equal(got, want)

    def test_leftist_swap_matches_vectorized_swap(self):
        rng = np.random.default_rng(21)
        n = 60
        left = rng.integers(0, n, size=n).astype(np.int64)
        right = rng.integers(0, n, size=n).astype(np.int64)
        leaves = rng.integers(1, 40, size=n).astype(np.int64)
        internal = np.flatnonzero(rng.random(n) < 0.6).astype(np.int64)
        l2, r2 = left.copy(), right.copy()
        swaps = KERNELS.leftist_swap(left, right, leaves, internal)
        viol = internal[leaves[l2[internal]] < leaves[r2[internal]]]
        l2[viol], r2[viol] = r2[viol], l2[viol].copy()
        assert swaps == len(viol)
        np.testing.assert_array_equal(left, l2)
        np.testing.assert_array_equal(right, r2)


# --------------------------------------------------------------------------- #
# end-to-end parity: kernel == fast == pram, bit for bit
# --------------------------------------------------------------------------- #

def _instances():
    yield "caterpillar", caterpillar_cotree(60)
    yield "balanced", balanced_cotree(2, 6)
    yield "clique", clique(12)
    yield "independent", independent_set(9)
    yield "threshold", threshold_cograph([1, 0, 1, 1, 0, 0, 1])
    for seed in range(4):
        yield f"random-{seed}", random_cotree(80, seed=seed)


def _answers(problem, task, backend, **extra):
    if TASKS[task].uses_weights and "weights" not in extra:
        n = problem.num_vertices if hasattr(problem, "num_vertices") \
            else len(problem)
        extra["weights"] = [(i * 7 + 3) % 11 for i in range(n)]
    return solve(problem, task,
                 options=SolveOptions(backend=backend, **extra)).answer


class TestEndToEndParity:
    # every cotree task that runs the solver pipeline ("recognition"
    # rejects backend options: it never touches a backend)
    @pytest.mark.parametrize("task", [t for t in task_names()
                                      if TASKS[t].input_kind == "cotree"
                                      and t != "recognition"])
    def test_every_cotree_task_every_family(self, task):
        for label, tree in _instances():
            expect = _answers(tree, task, "fast")
            assert _answers(tree, task, "kernel") == expect, (task, label)

    @pytest.mark.parametrize("task", ["path_cover", "path_cover_size",
                                      "max_clique", "chromatic_number"])
    def test_kernel_matches_pram_too(self, task):
        tree = random_cotree(70, seed=42)
        assert (_answers(tree, task, "kernel")
                == _answers(tree, task, "pram"))

    def test_bits_task(self):
        bits = [1, 0, 1, 1, 0]
        assert (_answers(bits, "lower_bound", "kernel")
                == _answers(bits, "lower_bound", "fast"))

    def test_forest_route_parity(self):
        trees = [random_cotree(n, seed=n) for n in (3, 5, 8, 13, 21)]
        fast = solve_many(trees, "path_cover_size",
                          options=SolveOptions(backend="fast",
                                               batch_small=50))
        kern = solve_many(trees, "path_cover_size",
                          options=SolveOptions(backend="kernel",
                                               batch_small=50))
        assert [s.answer for s in kern] == [s.answer for s in fast]

    def test_wire_loaded_trees_solve_on_kernel_backend(self):
        # read-only zero-copy views straight into the kernel hot path
        tree = as_flat_cotree(random_cotree(90, seed=3))
        loaded = from_bytes(to_bytes(tree))
        assert loaded.pre_validated is True
        assert (_answers(loaded, "path_cover", "kernel")
                == _answers(tree, "path_cover", "fast"))

    def test_solution_names_the_backend(self):
        sol = solve(random_cotree(20, seed=1), "path_cover_size",
                    options=SolveOptions(backend="kernel"))
        assert sol.to_json_dict()["backend"] == "kernel"


# --------------------------------------------------------------------------- #
# pre_validated: trusted routes skip the redundant re-scan
# --------------------------------------------------------------------------- #

class TestPreValidated:
    def test_fresh_trees_are_not_pre_validated(self):
        assert as_flat_cotree(clique(4)).pre_validated is False

    def test_canonicalize_marks_its_output(self):
        tree = as_flat_cotree(random_cotree(30, seed=7))
        assert tree.canonicalize().pre_validated is True

    def test_wire_load_marks_its_output(self):
        tree = as_flat_cotree(random_cotree(30, seed=8))
        assert from_bytes(to_bytes(tree)).pre_validated is True
