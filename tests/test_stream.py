"""The streaming scale-out layer: WorkerPool, stream_out, solve_stream and
the canonical-form solution cache."""

from __future__ import annotations

import itertools

import pytest

from repro.api import (
    SolutionCache,
    SolveOptions,
    canonical_cotree_key,
    solve,
    solve_many,
    solve_stream,
)
from repro.cograph import (
    Cotree,
    clique,
    minimum_path_cover_size,
    random_cotree,
)
from repro.core import Resolved, WorkerPool, fan_out, solve_batch, stream_out
from repro.core.batch import resolve_jobs
from repro.io import cotree_from_text


def _square(x):
    """Module-level worker (must pickle under multiprocessing)."""
    return x * x


# --------------------------------------------------------------------------- #
# WorkerPool
# --------------------------------------------------------------------------- #

class TestWorkerPool:
    def test_jobs_resolution(self):
        assert WorkerPool(1).serial
        assert WorkerPool(None).serial
        assert WorkerPool(0).jobs >= 1
        assert WorkerPool(3).jobs == 3
        with pytest.raises(ValueError):
            WorkerPool(-2)

    def test_serial_pool_never_spawns(self):
        with WorkerPool(1) as pool:
            assert pool.executor is None
            assert fan_out(_square, [1, 2, 3], pool=pool) == [1, 4, 9]

    def test_executor_is_lazy_and_reused(self):
        with WorkerPool(2) as pool:
            assert pool._executor is None  # nothing spawned yet
            first = pool.executor
            assert first is not None
            assert pool.executor is first  # reused across calls

    def test_close_is_idempotent_and_final(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError):
            _ = pool.executor

    def test_warm_up_chains_and_serves(self):
        with WorkerPool(2).warm_up() as pool:
            assert fan_out(_square, list(range(8)), pool=pool) == \
                [i * i for i in range(8)]

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(5) == 5
        with pytest.raises(ValueError):
            resolve_jobs(-1)


# --------------------------------------------------------------------------- #
# stream_out: ordering, laziness, backpressure
# --------------------------------------------------------------------------- #

class TestStreamOut:
    def test_serial_is_fully_lazy(self):
        drawn = []

        def infinite():
            for i in itertools.count():
                drawn.append(i)
                yield i

        out = list(itertools.islice(stream_out(_square, infinite()), 5))
        assert out == [0, 1, 4, 9, 16]
        assert len(drawn) == 5  # nothing beyond what was consumed

    @pytest.mark.parametrize("chunksize", [1, 2, 7])
    def test_pooled_preserves_order(self, chunksize):
        out = list(stream_out(_square, range(100), jobs=2,
                              window=10, chunksize=chunksize))
        assert out == [i * i for i in range(100)]

    def test_pooled_backpressure_bounded(self):
        window = 8
        state = {"drawn": 0, "done": 0, "peak": 0}

        def counting():
            for i in range(200):
                state["drawn"] += 1
                state["peak"] = max(state["peak"],
                                    state["drawn"] - state["done"])
                yield i

        for result in stream_out(_square, counting(), jobs=2,
                                 window=window, chunksize=2):
            state["done"] += 1
        assert state["done"] == 200
        assert state["peak"] <= window

    def test_resolved_payloads_bypass_the_worker(self):
        payloads = [1, Resolved("a"), 2, Resolved("b"), 3]
        assert list(stream_out(_square, payloads, jobs=2,
                               window=2)) == [1, "a", 4, "b", 9]
        assert list(stream_out(_square, payloads)) == [1, "a", 4, "b", 9]

    def test_empty_stream(self):
        assert list(stream_out(_square, [], jobs=2)) == []

    def test_runs_on_a_persistent_pool(self):
        with WorkerPool(2) as pool:
            a = list(stream_out(_square, range(10), pool=pool))
            b = list(stream_out(_square, range(10), pool=pool))
        assert a == b == [i * i for i in range(10)]


# --------------------------------------------------------------------------- #
# fan_out: the eager wrapper (chunksize / ordering under jobs > 1)
# --------------------------------------------------------------------------- #

class TestFanOut:
    @pytest.mark.parametrize("chunksize", [None, 1, 5, 100])
    def test_chunksize_never_changes_results(self, chunksize):
        expected = [i * i for i in range(23)]
        assert fan_out(_square, range(23), jobs=2,
                       chunksize=chunksize) == expected

    def test_serial_matches_parallel(self):
        serial = fan_out(_square, range(17), jobs=1)
        parallel = fan_out(_square, range(17), jobs=3)
        assert serial == parallel

    def test_single_payload_stays_in_process(self):
        assert fan_out(_square, [6], jobs=8) == [36]


# --------------------------------------------------------------------------- #
# solve_batch on a pool
# --------------------------------------------------------------------------- #

class TestSolveBatchPool:
    def test_pool_reuse_matches_per_call(self):
        trees = [random_cotree(25, seed=s) for s in range(6)]
        per_call = solve_batch(trees, jobs=2)
        with WorkerPool(2) as pool:
            pooled_a = solve_batch(trees, pool=pool)
            pooled_b = solve_batch(trees, pool=pool)  # warm second call
        for results in (pooled_a, pooled_b):
            assert [r.num_paths for r in results] == \
                [r.num_paths for r in per_call]
            assert [r.index for r in results] == list(range(6))


# --------------------------------------------------------------------------- #
# solve_stream
# --------------------------------------------------------------------------- #

class TestSolveStream:
    def test_streams_in_order_and_matches_solve_many(self):
        trees = [random_cotree(20, seed=s) for s in range(10)]
        streamed = list(solve_stream(trees, jobs=2, window=4))
        eager = solve_many(trees, jobs=2)
        assert [s.num_paths for s in streamed] == \
            [s.num_paths for s in eager] == \
            [int(minimum_path_cover_size(t)) for t in trees]
        assert [s.provenance["batch_index"] for s in streamed] == \
            list(range(10))

    def test_consumes_lazily_in_process(self):
        drawn = []

        def instances():
            for i in itertools.count():
                drawn.append(i)
                yield clique(3)

        stream = solve_stream(instances(), "path_cover_size")
        first = [next(stream) for _ in range(4)]
        assert [s.answer for s in first] == [1] * 4
        assert len(drawn) == 4

    def test_bounded_in_flight_with_pool(self):
        window = 6
        state = {"drawn": 0, "done": 0, "peak": 0}

        def instances():
            for i in range(60):
                state["drawn"] += 1
                state["peak"] = max(state["peak"],
                                    state["drawn"] - state["done"])
                yield random_cotree(10, seed=i)

        for _ in solve_stream(instances(), "path_cover_size",
                              jobs=2, window=window, chunksize=2):
            state["done"] += 1
        assert state["done"] == 60
        assert state["peak"] <= window

    def test_unknown_task_fails_before_consuming(self):
        def poisoned():  # pragma: no cover - must never be drawn
            raise AssertionError("stream was consumed")
            yield

        with pytest.raises(ValueError, match="unknown task"):
            solve_stream(poisoned(), "not_a_task")

    def test_streamed_solutions_carry_no_machine(self):
        [s] = list(solve_stream([clique(3)], backend="pram", jobs=2))
        assert s.machine is None
        assert s.report is not None

    def test_accepts_adapter_forms(self):
        mixed = ["(0 + (1 * 2))", {0: [1], 1: [0]}, clique(4)]
        sols = list(solve_stream(mixed))
        assert [s.num_paths for s in sols] == [2, 1, 1]


# --------------------------------------------------------------------------- #
# the solution cache
# --------------------------------------------------------------------------- #

class TestSolutionCache:
    def test_canonical_key_ignores_child_order(self):
        a = cotree_from_text("(0 + (1 * 2))")
        b = cotree_from_text("((2 * 1) + 0)")
        assert canonical_cotree_key(a) == canonical_cotree_key(b)
        c = cotree_from_text("(0 + (1 * 3))")
        assert canonical_cotree_key(a) != canonical_cotree_key(c)

    def test_canonical_key_canonicalises(self):
        nested = Cotree.from_nested(("union", 0, ("union", 1, 2)))
        flat = Cotree.from_nested(("union", 0, 1, 2))
        assert canonical_cotree_key(nested) == canonical_cotree_key(flat)

    def test_hit_and_miss_provenance(self):
        cache = SolutionCache()
        first = solve("(0 + (1 * 2))", cache=cache)
        again = solve("((2 * 1) + 0)", cache=cache)
        assert first.cache_status == "miss"
        assert again.cache_status == "hit"
        assert again.num_paths == first.num_paths
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1,
                                 "maxsize": 1024}

    def test_different_options_never_share_entries(self):
        cache = SolutionCache()
        solve("(0 * 1)", cache=cache, backend="fast")
        second = solve("(0 * 1)", cache=cache, backend="pram")
        assert second.cache_status == "miss"
        assert len(cache) == 2

    def test_different_tasks_never_share_entries(self):
        cache = SolutionCache()
        solve("(0 * 1)", cache=cache)
        other = solve("(0 * 1)", "path_cover_size", cache=cache)
        assert other.cache_status == "miss"

    def test_lru_eviction(self):
        cache = SolutionCache(maxsize=2)
        solve("(0 * 1)", cache=cache)
        solve("(0 + 1)", cache=cache)
        solve("(0 * 1)", cache=cache)      # refresh the first entry
        solve("(0 * (1 * 2))", cache=cache)  # evicts "(0 + 1)"
        assert solve("(0 * 1)", cache=cache).cache_status == "hit"
        assert solve("(0 + 1)", cache=cache).cache_status == "miss"

    def test_rejects_bad_sizes_and_types(self):
        with pytest.raises(ValueError):
            SolutionCache(0)
        with pytest.raises(TypeError):
            SolveOptions(cache="not a cache")

    def test_cache_excluded_from_options_dict(self):
        opts = SolveOptions(cache=SolutionCache())
        assert "cache" not in opts.to_dict()
        assert SolveOptions.from_dict(opts.to_dict()) == \
            opts.with_(cache=None)

    def test_path_cover_size_stays_analytic_with_cache(self):
        sol = solve("(0 + 1)", "path_cover_size", cache=SolutionCache())
        assert sol.backend == "analytic"

    def test_recognition_of_non_cograph_bypasses_cache(self):
        cache = SolutionCache()
        p4 = [(0, 1), (1, 2), (2, 3)]
        sol = solve(p4, task="recognition", cache=cache)
        assert sol.answer is False
        assert sol.cache_status is None
        assert len(cache) == 0

    def test_lower_bound_instances_key_on_bits(self):
        cache = SolutionCache()
        first = solve([1, 0, 1], "lower_bound", cache=cache)
        again = solve([1, 0, 1], "lower_bound", cache=cache)
        assert (first.cache_status, again.cache_status) == ("miss", "hit")
        assert again.answer["or"] == 1

    def test_stream_hits_interleave_in_order(self):
        trees = [random_cotree(15, seed=s % 2) for s in range(8)]
        cache = SolutionCache()
        # prime the cache so every streamed instance is a hit
        solve_many(trees[:2], cache=cache)
        sols = list(solve_stream(trees, jobs=2, window=3, cache=cache))
        assert [s.provenance["batch_index"] for s in sols] == list(range(8))
        assert all(s.cache_status == "hit" for s in sols)
        assert [s.num_paths for s in sols] == \
            [int(minimum_path_cover_size(t)) for t in trees]

    def test_stream_misses_fill_the_cache(self):
        trees = [random_cotree(15, seed=s) for s in range(4)]
        cache = SolutionCache()
        list(solve_stream(trees, jobs=2, cache=cache))
        assert len(cache) == 4
        assert all(s.cache_status == "hit"
                   for s in solve_stream(trees, cache=cache))

    def test_hit_reports_current_calls_input(self):
        cache = SolutionCache()
        solve("(0 * 1)", cache=cache)
        hit = solve(clique(2), cache=cache)
        assert hit.cache_status == "hit"
        assert hit.provenance["source_format"] == "cotree"

    def test_hit_never_inherits_call_specific_provenance(self):
        # a miss stored via the stream carries batch_index; a later plain
        # solve() hit must not report it (code-review regression)
        cache = SolutionCache()
        tree = random_cotree(10, seed=3)
        list(solve_stream([tree], cache=cache))
        hit = solve(tree, cache=cache)
        assert hit.cache_status == "hit"
        assert "batch_index" not in hit.provenance

    def test_hit_never_inherits_stale_source(self, tmp_path):
        from repro.io import cotree_to_text, save_json
        cache = SolutionCache()
        tree = random_cotree(10, seed=4)
        path = tmp_path / "instance.json"
        save_json(tree, str(path))
        solve(str(path), cache=cache)                    # miss, source=path
        hit = solve(cotree_to_text(tree), cache=cache)   # hit, from text
        assert hit.cache_status == "hit"
        assert hit.provenance["source_format"] == "text"
        assert "source" not in hit.provenance

    def test_caller_mutations_never_pollute_the_cache(self):
        cache = SolutionCache()
        miss = solve("(0 * 1)", cache=cache)
        miss.provenance["user"] = "alice"
        hit = solve("(0 * 1)", cache=cache)
        assert "user" not in hit.provenance


# --------------------------------------------------------------------------- #
# error handling mid-stream (code-review regressions)
# --------------------------------------------------------------------------- #

class TestStreamErrors:
    def test_pooled_stream_yields_valid_prefix_before_raising(self):
        def items():
            yield 1
            yield 2
            raise RuntimeError("bad line")

        out = []
        with pytest.raises(RuntimeError, match="bad line"):
            for r in stream_out(_square, items(), jobs=2, window=8):
                out.append(r)
        assert out == [1, 4]  # in-flight work drained, in order

    def test_solve_stream_adapter_error_preserves_prefix(self):
        mixed = ["(0 * 1)", "(0 + 1)", "not a problem at all"]
        out = []
        with pytest.raises(ValueError):
            for s in solve_stream(iter(mixed), jobs=2, window=8):
                out.append(s)
        assert [s.num_paths for s in out] == [1, 2]

    def test_stored_entries_never_retain_the_cache_itself(self):
        import pickle
        cache = SolutionCache()
        solve("(0 * 1)", cache=cache)
        [entry] = cache._entries.values()
        assert entry.options.cache is None
        pickle.dumps(entry)  # must not drag the cache along
        hit = solve("(0 * 1)", cache=cache)
        assert hit.cache_status == "hit"
