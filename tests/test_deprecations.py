"""The pre-1.1 entry points: still correct, but warning-emitting shims.

Covers the ISSUE 2 satellite: ``minimum_path_cover`` used to *silently
ignore* ``backend`` when ``method="sequential"`` — it must now raise — and
the acceptance criterion that every shim warns exactly once per call site
while producing results identical to ``solve()``.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import solve
from repro.cograph import clique, minimum_path_cover_size, random_cotree

TREE = random_cotree(18, seed=4)


def _call_warns_deprecated(fn):
    """Run ``fn`` asserting exactly one DeprecationWarning; return result."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = fn()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "MIGRATION.md" in str(deprecations[0].message)
    return result


# --------------------------------------------------------------------------- #
# the satellite bug fix
# --------------------------------------------------------------------------- #

def test_sequential_plus_backend_now_raises():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ValueError, match="method='parallel'"):
            repro.minimum_path_cover(TREE, method="sequential",
                                     backend="fast")
        # the previously-silently-ignored default also raises when explicit
        with pytest.raises(ValueError):
            repro.minimum_path_cover(TREE, method="sequential",
                                     backend="pram")


def test_sequential_without_backend_still_works():
    cover = _call_warns_deprecated(
        lambda: repro.minimum_path_cover(TREE, method="sequential"))
    assert cover.num_paths == minimum_path_cover_size(TREE)


def test_unknown_method_still_raises_value_error():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ValueError):
            repro.minimum_path_cover(clique(3), method="magic")


# --------------------------------------------------------------------------- #
# every shim warns and agrees with solve()
# --------------------------------------------------------------------------- #

def test_minimum_path_cover_shim():
    cover = _call_warns_deprecated(lambda: repro.minimum_path_cover(TREE))
    assert cover.paths == solve(TREE).cover.paths


def test_minimum_path_cover_parallel_shim():
    result = _call_warns_deprecated(
        lambda: repro.minimum_path_cover_parallel(TREE, backend="fast"))
    reference = solve(TREE, backend="fast")
    assert result.cover.paths == reference.cover.paths
    assert result.backend == "fast"
    assert result.p_root == reference.num_paths


def test_minimum_path_cover_parallel_shim_keeps_machine_escape_hatch():
    from repro.pram import PRAM
    machine = PRAM(4)
    result = _call_warns_deprecated(
        lambda: repro.minimum_path_cover_parallel(TREE, machine=machine))
    assert result.machine is machine


def test_sequential_path_cover_shim():
    cover = _call_warns_deprecated(
        lambda: repro.sequential_path_cover(TREE))
    assert cover.paths == solve(TREE, method="sequential").cover.paths
    cover2, stats = _call_warns_deprecated(
        lambda: repro.sequential_path_cover(TREE, return_stats=True))
    assert cover2.num_paths == cover.num_paths
    assert stats.num_vertices == TREE.num_vertices


def test_solve_batch_shim():
    trees = [random_cotree(10, seed=s) for s in range(3)]
    batch = _call_warns_deprecated(lambda: repro.solve_batch(trees))
    assert [b.num_paths for b in batch] == \
        [minimum_path_cover_size(t) for t in trees]
    assert [b.index for b in batch] == [0, 1, 2]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ValueError):
            repro.solve_batch(trees, backend="warp")


@pytest.mark.parametrize("shim,task", [
    (repro.has_hamiltonian_path, "hamiltonian_path"),
    (repro.has_hamiltonian_cycle, "hamiltonian_cycle"),
])
def test_has_hamiltonian_shims(shim, task):
    for tree in (clique(4), TREE):
        decided = _call_warns_deprecated(lambda: shim(tree))
        assert decided == solve(tree, task).ok


@pytest.mark.parametrize("shim,task", [
    (repro.hamiltonian_path, "hamiltonian_path"),
    (repro.hamiltonian_cycle, "hamiltonian_cycle"),
])
def test_hamiltonian_witness_shims(shim, task):
    for tree in (clique(4), TREE):
        witness = _call_warns_deprecated(lambda: shim(tree))
        assert witness == solve(tree, task).answer


# --------------------------------------------------------------------------- #
# warning hygiene
# --------------------------------------------------------------------------- #

def test_shims_warn_once_per_call_site():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(3):
            repro.minimum_path_cover(clique(3))  # one call site, three calls
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1


def test_warnings_attributed_to_the_caller_not_repro():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        repro.minimum_path_cover(clique(3))
    assert caught[0].filename == __file__


def test_solve_itself_never_warns():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("error", DeprecationWarning)
        solve(TREE, backend="fast")
        solve(TREE, "hamiltonian_cycle")
    assert caught == []
