"""Tests for the general cotree data structure (repro.cograph.cotree)."""

import numpy as np
import pytest

from repro.cograph import (
    JOIN,
    LEAF,
    UNION,
    Cotree,
    CotreeError,
    Graph,
    kind_name,
)


class TestConstruction:
    def test_single_vertex(self):
        t = Cotree.single_vertex(3)
        assert t.num_vertices == 1
        assert t.num_nodes == 1
        assert list(t.vertices) == [3]
        assert t.is_leaf(t.root)

    def test_from_nested_basic(self):
        t = Cotree.from_nested(("join", 0, ("union", 1, 2)))
        assert t.num_vertices == 3
        assert t.num_nodes == 5
        assert t.kind[t.root] == JOIN

    def test_from_nested_accepts_integer_ops(self):
        t = Cotree.from_nested((1, 0, (0, 1, 2)))
        assert t.kind[t.root] == JOIN
        assert sorted(t.vertices) == [0, 1, 2]

    def test_from_nested_rejects_bad_op(self):
        with pytest.raises(CotreeError):
            Cotree.from_nested(("xor", 0, 1))

    def test_from_nested_rejects_too_short_tuple(self):
        with pytest.raises(CotreeError):
            Cotree.from_nested(("join",))

    def test_from_parent_pointers(self):
        # root 0 (union) with children 1 (join) and leaf 4;
        # node 1 has leaf children 2, 3
        parent = [-1, 0, 1, 1, 0]
        kind = [UNION, JOIN, LEAF, LEAF, LEAF]
        t = Cotree.from_parent_pointers(parent, kind)
        assert t.num_vertices == 3
        assert t.kind[t.root] == UNION
        assert t.degree(t.root) == 2

    def test_from_parent_pointers_requires_single_root(self):
        with pytest.raises(CotreeError):
            Cotree.from_parent_pointers([-1, -1], [LEAF, LEAF])

    def test_duplicate_vertex_ids_rejected(self):
        with pytest.raises(CotreeError):
            Cotree([UNION, LEAF, LEAF], [[1, 2], [], []], [-1, 0, 0], 0)

    def test_two_parents_rejected(self):
        with pytest.raises(CotreeError):
            Cotree([UNION, UNION, LEAF], [[1, 2], [2], []], [-1, -1, 0], 0)

    def test_internal_node_without_children_rejected(self):
        with pytest.raises(CotreeError):
            Cotree([UNION, LEAF], [[], []], [-1, 0], 0)

    def test_leaf_with_children_rejected(self):
        with pytest.raises(CotreeError):
            Cotree([LEAF, LEAF], [[1], []], [0, 1], 0)

    def test_kind_name(self):
        assert kind_name(LEAF) == "leaf"
        assert kind_name(UNION) == "0"
        assert kind_name(JOIN) == "1"


class TestProperties:
    def test_counts(self, paper_figure1_cotree):
        t = paper_figure1_cotree
        assert t.num_vertices == 8
        assert len(t.leaves) == 8
        assert len(t.internal_nodes) == t.num_nodes - 8

    def test_leaf_of_vertex_roundtrip(self, paper_figure1_cotree):
        t = paper_figure1_cotree
        for v in t.vertices:
            leaf = t.leaf_of_vertex(int(v))
            assert t.leaf_vertex[leaf] == v

    def test_depth_and_height(self):
        t = Cotree.from_nested(("join", 0, ("union", 1, ("join", 2, 3))))
        d = t.depth()
        assert d[t.root] == 0
        assert t.height() == 3

    def test_height_single_vertex(self):
        assert Cotree.single_vertex().height() == 0

    def test_subtree_leaf_counts(self, paper_figure1_cotree):
        t = paper_figure1_cotree
        counts = t.subtree_leaf_counts()
        assert counts[t.root] == t.num_vertices
        for leaf in t.leaves:
            assert counts[leaf] == 1

    def test_leaf_descendants_order(self):
        t = Cotree.from_nested(("join", ("union", 0, 1), 2))
        assert t.leaf_descendants(t.root) == [0, 1, 2]

    def test_preorder_visits_every_node_once(self, paper_figure1_cotree):
        order = list(paper_figure1_cotree.preorder())
        assert sorted(order) == list(range(paper_figure1_cotree.num_nodes))

    def test_postorder_children_before_parent(self, paper_figure1_cotree):
        t = paper_figure1_cotree
        pos = {u: i for i, u in enumerate(t.postorder())}
        for u in t.internal_nodes:
            for c in t.children[u]:
                assert pos[c] < pos[u]


class TestCanonicalisation:
    def test_already_canonical(self, paper_figure1_cotree):
        assert paper_figure1_cotree.is_canonical()

    def test_same_label_child_merged(self):
        t = Cotree.from_nested(("join", 0, ("join", 1, 2)))
        assert not t.is_canonical()
        c = t.canonicalize()
        assert c.is_canonical()
        assert c.num_vertices == 3
        # a join of three vertices is a triangle
        assert c.edge_count() == 3

    def test_canonicalise_preserves_graph(self):
        t = Cotree.from_nested(
            ("union", ("union", 0, 1), ("join", 2, ("join", 3, 4))))
        g_before = Graph.from_cotree(t)
        c = t.canonicalize()
        assert c.is_canonical()
        assert Graph.from_cotree(c) == g_before

    def test_single_vertex_is_canonical(self):
        assert Cotree.single_vertex().canonicalize().num_nodes == 1

    def test_deep_same_label_chain(self):
        spec = 0
        for v in range(1, 6):
            spec = ("join", spec, v)
        t = Cotree.from_nested(spec)
        c = t.canonicalize()
        assert c.is_canonical()
        # all-join over 6 vertices is K6 represented by a single 1-node
        assert c.num_nodes == 7
        assert c.edge_count() == 15


class TestGraphSemantics:
    def test_adjacency_join_is_complete_bipartite(self):
        t = Cotree.from_nested(("join", ("union", 0, 1), ("union", 2, 3)))
        adj = t.adjacency_sets()
        assert adj[0] == {2, 3}
        assert adj[2] == {0, 1}

    def test_edge_count_matches_materialised_graph(self, small_named_cotrees):
        for name, t in small_named_cotrees.items():
            g = Graph.from_cotree(t)
            assert t.edge_count() == g.num_edges(), name

    def test_union_has_no_cross_edges(self):
        t = Cotree.from_nested(("union", ("join", 0, 1), ("join", 2, 3)))
        adj = t.adjacency_sets()
        assert adj[0] == {1}
        assert adj[2] == {3}


class TestMisc:
    def test_to_nested_roundtrip(self, small_named_cotrees):
        for name, t in small_named_cotrees.items():
            rebuilt = (Cotree.from_nested(t.to_nested())
                       if t.num_nodes > 1 else Cotree.single_vertex(0))
            assert Graph.from_cotree(rebuilt) == Graph.from_cotree(t), name

    def test_equality_and_hash(self):
        a = Cotree.from_nested(("join", 0, 1))
        b = Cotree.from_nested(("join", 0, 1))
        c = Cotree.from_nested(("union", 0, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_relabel_vertices(self):
        t = Cotree.from_nested(("join", 0, 1))
        r = t.relabel_vertices({0: 5, 1: 9})
        assert sorted(r.vertices) == [5, 9]

    def test_repr_mentions_size(self):
        assert "num_vertices=2" in repr(Cotree.from_nested(("join", 0, 1)))
