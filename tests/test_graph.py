"""Tests for the explicit Graph container."""

import pytest

from repro.cograph import Graph, clique, complete_bipartite, random_cotree


class TestBasics:
    def test_empty(self):
        g = Graph(0)
        assert g.num_edges() == 0
        assert g.connected_components() == []

    def test_add_edge_and_queries(self):
        g = Graph(4, [(0, 1), (1, 2)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert g.degree(1) == 2
        assert g.num_edges() == 2
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_adjacency(self):
        g = Graph.from_adjacency({0: [1], 1: [0, 2], 2: [1]})
        assert g.n == 3
        assert g.num_edges() == 2

    def test_from_cotree(self):
        g = Graph.from_cotree(complete_bipartite(2, 3))
        assert g.num_edges() == 6

    def test_equality_and_copy(self):
        g = Graph(3, [(0, 1)])
        h = g.copy()
        assert g == h
        h.add_edge(1, 2)
        assert g != h


class TestDerivedGraphs:
    def test_complement_of_clique_is_empty(self):
        g = Graph.from_cotree(clique(5))
        assert g.complement().num_edges() == 0

    def test_complement_involution(self):
        g = Graph.from_cotree(random_cotree(12, seed=5))
        assert g.complement().complement() == g

    def test_induced_subgraph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, back = g.induced_subgraph([1, 2, 4])
        assert sub.n == 3
        assert sub.num_edges() == 1
        assert set(back.values()) == {1, 2, 4}


class TestConnectivity:
    def test_connected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1], [2, 3], [4]]

    def test_is_connected(self):
        assert Graph(3, [(0, 1), (1, 2)]).is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()
        assert Graph(1).is_connected()
        assert Graph(0).is_connected()

    def test_complement_components_match_explicit_complement(self):
        for seed in range(5):
            g = Graph.from_cotree(random_cotree(15, seed=seed))
            fast = sorted(sorted(c) for c in g.complement_components())
            slow = sorted(sorted(c) for c in g.complement().connected_components())
            assert fast == slow

    def test_complement_components_of_disconnected_graph(self):
        g = Graph(4)  # empty graph: complement is K4, one co-component
        assert len(g.complement_components()) == 1
