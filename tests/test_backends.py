"""Backend layer tests: context resolution, primitive parity, end-to-end
cover parity across PRAM / fast / sequential, the named-stage pipeline, and
the batch API."""

import numpy as np
import pytest

from repro.backends import (
    BACKEND_NAMES,
    FAST_BACKEND,
    ExecutionContext,
    FastBackend,
    PRAMBackend,
    make_backend,
    resolve_context,
)
from repro.baselines import sequential_path_cover
from repro.cograph import (
    CographAdjacencyOracle,
    balanced_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    minimum_path_cover_size,
    random_cotree,
    threshold_cograph,
    union_of_cliques,
)
from repro.core import (
    STAGE_ORDER,
    Pipeline,
    PipelineError,
    minimum_path_cover_parallel,
    solve_batch,
)
from repro.pram import PRAM, AccessMode
from repro.primitives import (
    match_brackets,
    prefix_max,
    prefix_sum,
    total_sum,
    work_efficient_list_ranking,
    wyllie_list_ranking,
)

#: every generator family, as (name, factory) — the parity sweep covers all
FAMILIES = [
    ("random-sparse", lambda n, s: random_cotree(n, seed=s, join_prob=0.25)),
    ("random-dense", lambda n, s: random_cotree(n, seed=s, join_prob=0.75)),
    ("random-balancedp", lambda n, s: random_cotree(n, seed=s, join_prob=0.5)),
    ("caterpillar", lambda n, s: caterpillar_cotree(n)),
    ("clique", lambda n, s: clique(n)),
    ("independent", lambda n, s: independent_set(n)),
    ("union-of-cliques", lambda n, s: union_of_cliques(
        [2 + (s + i) % 5 for i in range(max(1, n // 4))])),
    ("multipartite", lambda n, s: join_of_independent_sets(
        [1 + (s + i) % 4 for i in range(max(2, n // 3))])),
    ("bipartite", lambda n, s: complete_bipartite(max(1, n // 2),
                                                  max(1, n - n // 2))),
    ("threshold", lambda n, s: threshold_cograph(
        [(s + i) % 2 for i in range(n)])),
    ("balanced", lambda n, s: balanced_cotree(max(2, n.bit_length() - 1))),
]


class TestContextResolution:
    def test_none_resolves_to_shared_fast_backend(self):
        assert resolve_context(None) is FAST_BACKEND
        assert isinstance(FAST_BACKEND, FastBackend)

    def test_machine_resolves_to_pram_backend(self):
        m = PRAM(4)
        ctx = resolve_context(m)
        assert isinstance(ctx, PRAMBackend)
        assert ctx.machine is m

    def test_context_passes_through(self):
        ctx = FastBackend()
        assert resolve_context(ctx) is ctx

    def test_names(self):
        assert isinstance(resolve_context("fast"), FastBackend)
        assert isinstance(resolve_context("pram"), PRAMBackend)
        with pytest.raises(ValueError):
            make_backend("quantum")
        with pytest.raises(TypeError):
            resolve_context(3.14)
        with pytest.raises(TypeError):
            make_backend("fast", num_processors=4)

    def test_backend_flags(self):
        assert PRAMBackend().simulates and PRAMBackend().name == "pram"
        assert not FastBackend().simulates and FastBackend().name == "fast"
        assert FastBackend().machine is None
        assert FastBackend().report() is None
        assert isinstance(PRAMBackend(), ExecutionContext)
        assert set(BACKEND_NAMES) == {"pram", "fast", "kernel"}

    def test_pram_backend_for_input_size(self):
        ctx = PRAMBackend.for_input_size(1024)
        assert ctx.machine.mode is AccessMode.EREW
        assert ctx.machine.num_processors == 103  # ceil(1024 / 10)

    def test_fast_array_surface(self):
        ctx = FastBackend()
        arr = ctx.array(np.arange(5), name="t")
        idx = np.array([0, 2, 4])
        assert np.array_equal(arr.gather(idx), [0, 2, 4])
        assert np.array_equal(arr.local(idx), [0, 2, 4])
        arr.scatter(idx, np.array([9, 9, 9]))
        assert np.array_equal(arr.copy_out(), [9, 1, 9, 3, 9])
        arr.fill(0)
        assert arr.data.sum() == 0 and len(arr) == 5
        assert ctx.array(3, name="z").data.tolist() == [0, 0, 0]
        ctx.charge("cited", time=1, work=1)  # no-op
        with ctx.step(active=5, label="noop"):
            pass


class TestPrimitiveParity:
    """Fast-path primitives must agree bit for bit with the simulated ones."""

    @pytest.mark.parametrize("seed", range(5))
    def test_scans(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-50, 50, size=rng.integers(1, 400))
        for inclusive in (True, False):
            assert np.array_equal(prefix_sum(None, x, inclusive=inclusive),
                                  prefix_sum(PRAM(), x, inclusive=inclusive))
            assert np.array_equal(prefix_max(None, x, inclusive=inclusive),
                                  prefix_max(PRAM(), x, inclusive=inclusive))
        assert total_sum(None, x) == total_sum(PRAM(), x)

    @pytest.mark.parametrize("seed", range(5))
    def test_list_ranking(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 300))
        order = rng.permutation(n)
        succ = np.full(n, -1, dtype=np.int64)
        succ[order[:-1]] = order[1:]
        w = rng.integers(1, 5, size=n)
        expect = wyllie_list_ranking(PRAM(), succ, w)
        assert np.array_equal(wyllie_list_ranking(None, succ, w), expect)
        assert np.array_equal(work_efficient_list_ranking(None, succ, w),
                              expect)
        assert np.array_equal(
            work_efficient_list_ranking(PRAM(), succ, w), expect)

    @pytest.mark.parametrize("seed", range(5))
    def test_bracket_matching(self, seed):
        rng = np.random.default_rng(seed)
        is_open = rng.random(int(rng.integers(2, 500))) < 0.5
        assert np.array_equal(match_brackets(None, is_open),
                              match_brackets(PRAM(), is_open))


class TestEndToEndParity:
    """The acceptance sweep: FastBackend == PRAMBackend == sequential on
    every generator family, validated against the adjacency oracle."""

    @pytest.mark.parametrize("family,make", FAMILIES,
                             ids=[f[0] for f in FAMILIES])
    @pytest.mark.parametrize("n,seed", [(9, 0), (24, 1), (57, 2)])
    def test_cover_sizes_agree_across_backends(self, family, make, n, seed):
        tree = make(n, seed)
        fast = minimum_path_cover_parallel(tree, backend="fast")
        pram = minimum_path_cover_parallel(tree, backend="pram")
        seq = sequential_path_cover(tree)
        expected = minimum_path_cover_size(tree)
        assert fast.num_paths == pram.num_paths == seq.num_paths == expected
        assert fast.p_root == pram.p_root == expected
        oracle = CographAdjacencyOracle(tree)
        for result in (fast, pram):
            result.cover.validate(oracle,
                                  expected_num_vertices=tree.num_vertices,
                                  expected_num_paths=expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_sweep_identical_covers(self, seed):
        """Both backends run the same pipeline, so even the covers (not just
        their sizes) must be identical."""
        tree = random_cotree(40 + 7 * seed, seed=seed,
                             join_prob=0.2 + 0.08 * seed)
        fast = minimum_path_cover_parallel(tree, backend="fast")
        pram = minimum_path_cover_parallel(tree, backend="pram")
        assert fast.cover.paths == pram.cover.paths

    def test_fast_backend_result_shape(self):
        tree = random_cotree(30, seed=5)
        result = minimum_path_cover_parallel(tree, backend="fast")
        assert result.backend == "fast"
        assert result.report is None and result.machine is None
        assert set(result.stage_seconds) == set(STAGE_ORDER)

    def test_pram_backend_result_shape(self):
        tree = random_cotree(30, seed=5)
        result = minimum_path_cover_parallel(tree)
        assert result.backend == "pram"
        assert result.report is not None and result.report.rounds > 0
        assert set(result.stage_seconds) == set(STAGE_ORDER)

    def test_machine_and_backend_are_exclusive(self):
        tree = random_cotree(10, seed=0)
        with pytest.raises(ValueError):
            minimum_path_cover_parallel(tree, machine=PRAM(), backend="fast")
        with pytest.raises(ValueError):
            minimum_path_cover_parallel(tree, backend="warp")

    def test_machine_knobs_rejected_on_fast_backend(self):
        tree = random_cotree(10, seed=0)
        for kwargs in ({"num_processors": 4}, {"record_steps": True},
                       {"mode": "CRCW-common"}):
            with pytest.raises(ValueError, match="backend='pram'"):
                minimum_path_cover_parallel(tree, backend="fast", **kwargs)

    def test_explicit_context_instance(self):
        tree = random_cotree(20, seed=9)
        ctx = PRAMBackend(PRAM(8, record_steps=True))
        result = minimum_path_cover_parallel(tree, backend=ctx)
        assert result.machine is ctx.machine
        assert result.report.by_label

    def test_single_vertex_on_both_backends(self):
        tree = clique(1)
        for backend in BACKEND_NAMES:
            result = minimum_path_cover_parallel(tree, backend=backend)
            assert result.cover.paths == [[0]]


class TestPipeline:
    def test_default_runs_all_stages(self):
        tree = random_cotree(35, seed=3)
        run = Pipeline.default().run(tree)
        assert run.cover.num_paths == minimum_path_cover_size(tree)
        assert [t.name for t in run.timings] == list(STAGE_ORDER)
        assert run.total_seconds >= 0
        assert all(s >= 0 for s in run.stage_seconds.values())

    def test_until_produces_prefix_artifacts(self):
        tree = random_cotree(35, seed=4)
        run = Pipeline.until("reduce").run(tree, "pram")
        assert run.state.reduced is not None
        assert run.state.brackets is None and run.cover is None
        assert run.state.reduced.minimum_path_count() == \
            minimum_path_cover_size(tree)

    def test_without_stage_ablation(self):
        # the A2 ablation: skipping legalisation must still produce a cover
        # of the right *size* (its path adjacencies may be invalid)
        tree = random_cotree(40, seed=6, join_prob=0.7)
        run = Pipeline.default().without("legalize").run(tree)
        assert run.cover is not None
        assert run.state.exchanges == 0

    def test_binary_input_skips_binarize(self):
        from repro.cograph import binarize_cotree
        tree = random_cotree(25, seed=7)
        run = Pipeline.default().run(binarize_cotree(tree))
        assert run.cover.num_paths == minimum_path_cover_size(tree)

    def test_invalid_selections_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline(["leftist", "binarize"])          # reordered
        with pytest.raises(PipelineError):
            Pipeline(["binarize", "binarize"])         # duplicated
        with pytest.raises(PipelineError):
            Pipeline(["warp"])                         # unknown
        with pytest.raises(PipelineError):
            Pipeline.until("warp")
        with pytest.raises(PipelineError):
            Pipeline.default().without("warp")

    def test_missing_prerequisite_reported(self):
        tree = random_cotree(10, seed=8)
        with pytest.raises(PipelineError, match="leftist"):
            Pipeline(["reduce"]).run(tree)


class TestSolveBatch:
    def _trees(self, k=6):
        return [random_cotree(20 + 5 * s, seed=s, join_prob=0.3 + 0.1 * s)
                for s in range(k)]

    def test_serial_round_trip(self):
        trees = self._trees()
        results = solve_batch(trees, backend="fast", validate=True)
        assert [r.index for r in results] == list(range(len(trees)))
        for tree, r in zip(trees, results):
            assert r.num_paths == r.p_root == minimum_path_cover_size(tree)
            assert r.backend == "fast"

    def test_parallel_jobs_match_serial(self):
        trees = self._trees()
        serial = solve_batch(trees, backend="fast", jobs=1)
        parallel = solve_batch(trees, backend="fast", jobs=2)
        assert [r.cover.paths for r in serial] == \
            [r.cover.paths for r in parallel]

    def test_pram_backend_batch(self):
        trees = self._trees(3)
        results = solve_batch(trees, backend="pram")
        for tree, r in zip(trees, results):
            assert r.num_paths == minimum_path_cover_size(tree)
            assert r.backend == "pram"

    def test_rejects_non_name_backend(self):
        with pytest.raises(ValueError):
            solve_batch(self._trees(2), backend=FastBackend())

    def test_empty_and_single(self):
        assert solve_batch([]) == []
        [r] = solve_batch([clique(4)], jobs=4)
        assert r.num_paths == 1

    def test_jobs_zero_means_cpu_count(self):
        trees = self._trees(2)
        results = solve_batch(trees, jobs=0)
        assert len(results) == 2
