"""Tests for the PathCover container, its validators, and the analytic
minimum path cover size (Lemma 2.4 recurrence) against brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_path_cover, brute_force_path_cover_size
from repro.cograph import (
    CographAdjacencyOracle,
    Cotree,
    Graph,
    PathCover,
    PathCoverError,
    binarize_cotree,
    clique,
    complete_bipartite,
    independent_set,
    make_leftist,
    minimum_path_cover_size,
    path_cover_sizes_per_node,
    random_cotree,
    union_of_cliques,
)
from conftest import nested_cotree_specs


class TestPathCoverContainer:
    def test_counts(self):
        c = PathCover([[0, 1], [2]])
        assert c.num_paths == 2
        assert c.num_vertices == 3
        assert len(c) == 2
        assert sorted(c.covered_vertices()) == [0, 1, 2]

    def test_is_hamiltonian_path(self):
        assert PathCover([[0, 1, 2]]).is_hamiltonian_path(3)
        assert not PathCover([[0, 1], [2]]).is_hamiltonian_path(3)

    def test_canonical_form(self):
        a = PathCover([[2, 1, 0], [3]])
        b = PathCover([[3], [0, 1, 2]])
        assert a.canonical() == b.canonical()

    def test_validate_accepts_valid_cover(self):
        g = Graph.from_cotree(clique(3))
        PathCover([[0, 1, 2]]).validate(g)

    def test_validate_rejects_nonedge(self):
        g = Graph.from_cotree(independent_set(3))
        with pytest.raises(PathCoverError, match="not adjacent"):
            PathCover([[0, 1], [2]]).validate(g)

    def test_validate_rejects_duplicate_vertex(self):
        g = Graph.from_cotree(clique(3))
        with pytest.raises(PathCoverError, match="twice"):
            PathCover([[0, 1], [1, 2]]).validate(g)

    def test_validate_rejects_missing_vertex(self):
        g = Graph.from_cotree(clique(3))
        with pytest.raises(PathCoverError, match="expected 3"):
            PathCover([[0, 1]]).validate(g)

    def test_validate_rejects_empty_path(self):
        g = Graph.from_cotree(clique(2))
        with pytest.raises(PathCoverError, match="empty"):
            PathCover([[0, 1], []]).validate(g)

    def test_validate_rejects_wrong_count(self):
        g = Graph.from_cotree(independent_set(2))
        with pytest.raises(PathCoverError, match="expected 1"):
            PathCover([[0], [1]]).validate(g, expected_num_paths=1)

    def test_validate_with_oracle_and_cotree_sources(self):
        t = clique(4)
        cover = PathCover([[0, 1, 2, 3]])
        cover.validate(t)
        cover.validate(CographAdjacencyOracle(t))
        cover.validate(binarize_cotree(t))

    def test_validate_rejects_unknown_source(self):
        with pytest.raises(TypeError):
            PathCover([[0]]).validate(42)

    def test_is_valid_boolean_form(self):
        g = Graph.from_cotree(independent_set(2))
        assert PathCover([[0], [1]]).is_valid(g)
        assert not PathCover([[0, 1]]).is_valid(g)


class TestAnalyticCount:
    def test_known_families(self):
        assert minimum_path_cover_size(clique(7)) == 1
        assert minimum_path_cover_size(independent_set(7)) == 7
        assert minimum_path_cover_size(complete_bipartite(5, 2)) == 3
        assert minimum_path_cover_size(complete_bipartite(4, 4)) == 1
        assert minimum_path_cover_size(union_of_cliques([2, 2, 2])) == 3
        assert minimum_path_cover_size(Cotree.single_vertex()) == 1

    def test_per_node_values_are_positive_and_bounded(self):
        b = make_leftist(binarize_cotree(random_cotree(30, seed=1)))
        p = path_cover_sizes_per_node(b)
        L = b.subtree_leaf_counts()
        assert (p >= 1).all()
        assert (p <= L).all()

    def test_recurrence_against_brute_force_random(self):
        for seed in range(30):
            t = random_cotree(1 + seed % 8, seed=seed, join_prob=0.3 + 0.05 * (seed % 10))
            g = Graph.from_cotree(t)
            assert minimum_path_cover_size(t) == brute_force_path_cover_size(g)

    @settings(max_examples=80, deadline=None)
    @given(nested_cotree_specs(max_leaves=8))
    def test_recurrence_against_brute_force_hypothesis(self, spec):
        tree = (Cotree.single_vertex(spec) if isinstance(spec, int)
                else Cotree.from_nested(spec).canonicalize())
        g = Graph.from_cotree(tree)
        assert minimum_path_cover_size(tree) == brute_force_path_cover_size(g)

    def test_brute_force_witness_is_valid_and_minimum(self):
        for seed in range(10):
            t = random_cotree(7, seed=seed)
            g = Graph.from_cotree(t)
            cover = brute_force_path_cover(g)
            cover.validate(g)
            assert cover.num_paths == brute_force_path_cover_size(g)
