"""Step-by-step tests of the parallel pipeline (Steps 1-7 internals)."""

import numpy as np
import pytest

from repro.cograph import (
    Graph,
    JOIN,
    LEAF,
    UNION,
    binarize_cotree,
    caterpillar_cotree,
    clique,
    independent_set,
    join_cotrees,
    join_of_independent_sets,
    make_leftist,
    path_cover_sizes_per_node,
    random_cotree,
    single_vertex,
    union_cotrees,
    validate_binary_cotree,
)
from repro.core import (
    VertexClass,
    binarize_parallel,
    build_pseudo_forest,
    generate_brackets,
    leftist_reorder,
    legalize_forest,
    reduce_cotree,
    remove_dummies,
    render_brackets,
)
from repro.pram import PRAM, AccessMode


def pipeline_to(tree, stage, machine=None):
    """Run the pipeline up to a named stage and return the artefacts."""
    m = machine or PRAM.null()
    binary = binarize_parallel(m, tree)
    if stage == "binary":
        return binary
    leftist = leftist_reorder(m, binary)
    if stage == "leftist":
        return leftist
    reduced = reduce_cotree(m, leftist)
    if stage == "reduced":
        return reduced
    seq = generate_brackets(m, reduced)
    if stage == "brackets":
        return reduced, seq
    forest = build_pseudo_forest(m, seq)
    if stage == "pseudo":
        return reduced, seq, forest
    forest2, nex = legalize_forest(m, forest, reduced)
    if stage == "legal":
        return reduced, seq, forest2, nex
    forest3 = remove_dummies(m, forest2)
    return reduced, seq, forest3


class TestStep1Binarize:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential_binarizer_graph(self, seed):
        t = random_cotree(30, seed=seed)
        par = binarize_parallel(PRAM(), t)
        seq = binarize_cotree(t)
        assert par.num_nodes == seq.num_nodes
        assert Graph.from_cotree(par.to_cotree()) == Graph.from_cotree(seq.to_cotree())

    def test_erew_clean(self):
        binarize_parallel(PRAM(mode=AccessMode.EREW), random_cotree(50, seed=1))

    def test_wide_node(self):
        b = binarize_parallel(PRAM(), independent_set(9))
        b.validate()
        assert b.num_nodes == 17

    def test_rejects_unary_nodes(self):
        from repro.cograph import Cotree, CotreeError
        bad = Cotree([UNION, LEAF], [[1], []], [-1, 0], 0)
        with pytest.raises(CotreeError):
            binarize_parallel(PRAM(), bad)


class TestStep2Leftist:
    @pytest.mark.parametrize("seed", range(5))
    def test_result_is_leftist(self, seed):
        t = random_cotree(40, seed=seed)
        lf = leftist_reorder(PRAM(), binarize_cotree(t))
        validate_binary_cotree(lf.tree, leftist=True)

    def test_leaf_counts_match(self):
        t = random_cotree(40, seed=9)
        lf = leftist_reorder(PRAM(), binarize_cotree(t))
        assert np.array_equal(lf.leaf_count, lf.tree.subtree_leaf_counts())

    def test_graph_unchanged(self):
        t = random_cotree(25, seed=3)
        lf = leftist_reorder(PRAM(), binarize_cotree(t))
        assert Graph.from_cotree(lf.tree.to_cotree()) == Graph.from_cotree(t)

    def test_numbers_reflect_swapped_order(self):
        t = join_cotrees(single_vertex(0), independent_set(3).relabel_vertices(
            {0: 1, 1: 2, 2: 3}))
        lf = leftist_reorder(PRAM(), binarize_cotree(t))
        # after the swap the (heavier) independent side is on the left, so the
        # single vertex 0 is the last leaf in inorder
        order = sorted(lf.tree.leaves, key=lambda u: lf.numbers.inorder[u])
        assert int(lf.tree.leaf_vertex[order[-1]]) == 0


class TestStep3Reduce:
    def reduced(self, tree):
        lf = leftist_reorder(None, binarize_cotree(tree))
        return reduce_cotree(None, lf)

    def test_p_values_match_reference(self):
        t = random_cotree(60, seed=4)
        red = self.reduced(t)
        assert np.array_equal(red.p, path_cover_sizes_per_node(red.tree))

    def test_every_vertex_classified_once(self):
        t = random_cotree(60, seed=5, join_prob=0.6)
        red = self.reduced(t)
        assert set(np.unique(red.vertex_class)) <= {VertexClass.PRIMARY,
                                                    VertexClass.BRIDGE,
                                                    VertexClass.INSERT}
        assert len(red.vertex_class) == 60

    def test_primary_vertices_have_no_owner(self):
        red = self.reduced(random_cotree(40, seed=6, join_prob=0.5))
        primary = red.vertex_class == VertexClass.PRIMARY
        assert np.all(red.vertex_owner[primary] == -1)
        assert np.all(red.vertex_owner[~primary] >= 0)

    def test_owner_block_sizes(self):
        """Every active 1-node owns exactly L(w) vertices, split into bridges
        and inserts according to Case 1 / Case 2."""
        red = self.reduced(random_cotree(80, seed=7, join_prob=0.5))
        tree = red.tree
        for u in red.active_join_nodes():
            w = int(tree.right[u])
            owned = np.flatnonzero(red.vertex_owner == u)
            assert len(owned) == red.leaf_count[w]
            p_v = red.p[tree.left[u]]
            n_bridges = np.count_nonzero(
                red.vertex_class[owned] == VertexClass.BRIDGE)
            if p_v > red.leaf_count[w]:
                assert n_bridges == red.leaf_count[w]
            else:
                assert n_bridges == p_v - 1
            ranks = sorted(red.vertex_rank[owned])
            assert ranks == list(range(len(owned)))

    def test_pure_union_tree_all_primary(self):
        red = self.reduced(independent_set(12))
        assert np.all(red.vertex_class == VertexClass.PRIMARY)
        assert red.minimum_path_count() == 12

    def test_clique_has_single_primary(self):
        red = self.reduced(clique(8))
        assert np.count_nonzero(red.vertex_class == VertexClass.PRIMARY) == 1
        assert red.minimum_path_count() == 1

    def test_dummy_counts(self):
        """A Case-2 1-node contributes 2 p(v) - 2 dummies, a Case-1 node none."""
        red = self.reduced(join_of_independent_sets([4, 4]))
        tree = red.tree
        for u in red.active_join_nodes():
            p_v = red.p[tree.left[u]]
            L_w = red.leaf_count[tree.right[u]]
            if p_v <= L_w:
                assert red.num_dummies_of[u] == 2 * p_v - 2
            else:
                assert red.num_dummies_of[u] == 0

    def test_nested_joins_flattened_regions_nest_correctly(self):
        # join(join(I2, I2), I2): the inner join's right side is swallowed by
        # nothing (it is in the left subtree), the outer join's right side is
        # flattened.
        inner = join_of_independent_sets([2, 2])
        outer = join_cotrees(inner, independent_set(2).relabel_vertices(
            {0: 4, 1: 5}))
        red = self.reduced(outer)
        assert red.minimum_path_count() == 1
        assert np.count_nonzero(red.vertex_class != VertexClass.PRIMARY) >= 2


class TestStep4Brackets:
    def test_sequence_length_is_linear(self):
        for seed in range(4):
            t = random_cotree(50, seed=seed, join_prob=0.6)
            red, seq = pipeline_to(t, "brackets")
            assert len(seq) <= 7 * 50
            assert seq.num_real == 50

    def test_three_brackets_per_primary_vertex(self):
        t = independent_set(9)
        red, seq = pipeline_to(t, "brackets")
        assert len(seq) == 27
        assert np.all(seq.is_open)
        assert np.count_nonzero(seq.is_square) == 9

    def test_square_closes_only_from_bridges(self):
        t = random_cotree(40, seed=8, join_prob=0.7)
        red, seq = pipeline_to(t, "brackets")
        closes = ~seq.is_open & seq.is_square
        for v in np.unique(seq.vertex[closes]):
            assert red.vertex_class[v] == VertexClass.BRIDGE

    def test_dummy_ids_above_real_range(self):
        t = join_of_independent_sets([4, 4])
        red, seq = pipeline_to(t, "brackets")
        if seq.num_dummies:
            assert seq.dummy_ids.min() >= seq.num_real

    def test_render_brackets_is_readable(self):
        t = clique(3)
        red, seq = pipeline_to(t, "brackets")
        text = render_brackets(seq, names=["a", "b", "c"])
        assert "a^p[" in text and "(" in text


class TestSteps5to7Forest:
    def test_roots_equal_minimum_path_count(self):
        for seed in range(5):
            t = random_cotree(45, seed=seed, join_prob=0.5)
            red, seq, forest = pipeline_to(t, "pseudo")
            real_roots = forest.roots(include_dummies=False)
            assert len(real_roots) == red.minimum_path_count()

    def test_every_real_vertex_in_some_tree(self):
        t = random_cotree(45, seed=11, join_prob=0.5)
        red, seq, forest = pipeline_to(t, "pseudo")
        # walk up from every vertex; must reach a root without cycling
        for v in range(45):
            seen = set()
            u = v
            while forest.parent[u] != -1:
                assert u not in seen
                seen.add(u)
                u = int(forest.parent[u])

    def test_forest_is_binary_and_consistent(self):
        t = random_cotree(45, seed=12, join_prob=0.6)
        red, seq, forest = pipeline_to(t, "pseudo")
        for u in range(forest.num_nodes):
            for c in (forest.left[u], forest.right[u]):
                if c != -1:
                    assert forest.parent[c] == u

    def test_legalization_leaves_no_illegal_insert(self):
        """After Step 6, re-running the detection finds nothing illegal."""
        t = random_cotree(80, seed=13, join_prob=0.35)
        red, seq, forest, nex = pipeline_to(t, "legal")
        forest2, nex2 = legalize_forest(None, forest, red)
        assert nex2 == 0

    def test_dummies_removed_completely(self):
        t = random_cotree(60, seed=14, join_prob=0.4)
        red, seq, forest = pipeline_to(t, "compress")
        assert np.all(forest.parent[forest.num_real:] == -1)
        assert np.all(forest.left[forest.num_real:] == -1)
        assert np.all(forest.left[:forest.num_real] < forest.num_real)
        assert np.all(forest.right[:forest.num_real] < forest.num_real)
        assert np.all(forest.parent[:forest.num_real] < forest.num_real)

    def test_remove_dummies_noop_without_dummies(self):
        t = independent_set(6)
        red, seq, forest = pipeline_to(t, "pseudo")
        out = remove_dummies(None, forest)
        assert np.array_equal(out.parent, forest.parent)

    def test_exchange_count_is_bounded_by_dummies(self):
        t = random_cotree(80, seed=15, join_prob=0.3)
        red, seq, forest, nex = pipeline_to(t, "legal")
        assert 0 <= nex <= seq.num_dummies
