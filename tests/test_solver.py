"""End-to-end tests of the parallel solver (Theorem 5.3) and the public API."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import minimum_path_cover
from repro.analysis import log2ceil
from repro.baselines import brute_force_path_cover_size, sequential_path_cover
from repro.cograph import (
    CographAdjacencyOracle,
    Cotree,
    Graph,
    balanced_cotree,
    binarize_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    minimum_path_cover_size,
    random_cotree,
    threshold_cograph,
    union_of_cliques,
)
from repro.core import PathCoverSolver, minimum_path_cover_parallel
from repro.pram import PRAM, AccessMode, optimal_processor_count
from conftest import nested_cotree_specs


def assert_optimal(tree, result):
    expected = minimum_path_cover_size(tree)
    assert result.num_paths == expected
    assert result.p_root == expected
    result.cover.validate(CographAdjacencyOracle(tree),
                          expected_num_vertices=tree.num_vertices,
                          expected_num_paths=expected)


class TestEndToEnd:
    def test_named_families(self, small_named_cotrees):
        for name, tree in small_named_cotrees.items():
            result = minimum_path_cover_parallel(tree)
            assert_optimal(tree, result)

    @pytest.mark.parametrize("n,seed,jp", [
        (2, 0, 0.5), (5, 1, 0.3), (9, 2, 0.7), (16, 3, 0.5), (31, 4, 0.2),
        (31, 5, 0.8), (64, 6, 0.5), (100, 7, 0.35), (100, 8, 0.65),
        (200, 9, 0.5),
    ])
    def test_random_cotrees(self, n, seed, jp):
        tree = random_cotree(n, seed=seed, join_prob=jp)
        assert_optimal(tree, minimum_path_cover_parallel(tree))

    def test_single_vertex(self):
        result = minimum_path_cover_parallel(Cotree.single_vertex(0))
        assert result.num_paths == 1
        assert result.cover.paths == [[0]]

    def test_accepts_binary_cotree_input(self):
        tree = random_cotree(30, seed=10)
        result = minimum_path_cover_parallel(binarize_cotree(tree))
        assert result.num_paths == minimum_path_cover_size(tree)

    def test_matches_sequential_baseline(self):
        for seed in range(6):
            tree = random_cotree(50, seed=seed, join_prob=0.45)
            par = minimum_path_cover_parallel(tree)
            seq = sequential_path_cover(tree)
            assert par.num_paths == seq.num_paths

    def test_matches_brute_force_small(self):
        for seed in range(15):
            tree = random_cotree(2 + seed % 7, seed=seed)
            g = Graph.from_cotree(tree)
            assert minimum_path_cover_parallel(tree).num_paths == \
                brute_force_path_cover_size(g)

    @settings(max_examples=50, deadline=None)
    @given(nested_cotree_specs(max_leaves=9))
    def test_hypothesis_specs(self, spec):
        tree = (Cotree.single_vertex(spec) if isinstance(spec, int)
                else Cotree.from_nested(spec).canonicalize())
        assert_optimal(tree, minimum_path_cover_parallel(tree))

    def test_validate_flag(self):
        tree = random_cotree(30, seed=11)
        minimum_path_cover_parallel(tree, validate=True)

    def test_deterministic(self):
        tree = random_cotree(60, seed=12, join_prob=0.4)
        a = minimum_path_cover_parallel(tree)
        b = minimum_path_cover_parallel(tree)
        assert a.cover.paths == b.cover.paths

    def test_deep_caterpillar(self):
        tree = caterpillar_cotree(300)
        assert_optimal(tree, minimum_path_cover_parallel(tree))

    def test_hamiltonian_families(self):
        for tree in (clique(9), complete_bipartite(5, 5), balanced_cotree(4),
                     join_of_independent_sets([4, 3, 3])):
            result = minimum_path_cover_parallel(tree)
            assert result.num_paths == 1
            assert result.cover.is_hamiltonian_path(tree.num_vertices)

    def test_star_cover(self):
        result = minimum_path_cover_parallel(complete_bipartite(1, 6))
        assert result.num_paths == 5

    def test_threshold_graph(self):
        tree = threshold_cograph([1, 0, 0, 1, 0, 1, 1, 0, 0, 0, 1])
        assert_optimal(tree, minimum_path_cover_parallel(tree))


class TestMachineBehaviour:
    def test_runs_on_erew_with_conflict_checking(self):
        tree = random_cotree(80, seed=13, join_prob=0.5)
        machine = PRAM(optimal_processor_count(80), AccessMode.EREW,
                       check_conflicts=True)
        result = minimum_path_cover_parallel(tree, machine=machine)
        assert result.report.mode == "EREW"
        assert result.num_paths == minimum_path_cover_size(tree)

    def test_default_machine_is_papers_configuration(self):
        tree = random_cotree(64, seed=14)
        result = minimum_path_cover_parallel(tree)
        assert result.machine.num_processors == optimal_processor_count(64)
        assert result.machine.mode is AccessMode.EREW

    def test_rounds_grow_logarithmically(self):
        rounds = []
        sizes = [64, 256, 1024]
        for n in sizes:
            tree = random_cotree(n, seed=n, join_prob=0.5)
            result = minimum_path_cover_parallel(tree)
            rounds.append(result.report.rounds)
        # ratio of rounds should be far below the ratio of sizes
        assert rounds[-1] <= rounds[0] * (log2ceil(sizes[-1]) / log2ceil(sizes[0])) * 3
        assert rounds[-1] < 40 * log2ceil(sizes[-1]) * 4

    def test_work_grows_roughly_linearly(self):
        w = {}
        for n in (256, 1024):
            tree = random_cotree(n, seed=n, join_prob=0.5)
            w[n] = minimum_path_cover_parallel(tree).report.work
        assert w[1024] < 8 * w[256]

    def test_report_has_step_breakdown_when_recording(self):
        tree = random_cotree(40, seed=15)
        result = minimum_path_cover_parallel(tree, record_steps=True)
        labels = set(result.report.by_label)
        assert any(label.startswith("step4") for label in labels)
        assert any(label.startswith("step8") for label in labels)

    def test_num_processors_override(self):
        tree = random_cotree(40, seed=16)
        result = minimum_path_cover_parallel(tree, num_processors=1)
        assert result.machine.num_processors == 1
        assert result.machine.time >= result.machine.rounds

    def test_work_efficient_toggle(self):
        tree = random_cotree(128, seed=17, join_prob=0.5)
        fast = minimum_path_cover_parallel(tree, work_efficient=True)
        slow = minimum_path_cover_parallel(tree, work_efficient=False)
        assert fast.num_paths == slow.num_paths
        assert fast.report.work < slow.report.work


class TestSolverFacade:
    def test_solver_reuse(self):
        solver = PathCoverSolver(validate=True)
        for seed in range(3):
            tree = random_cotree(25, seed=seed)
            result = solver.solve(tree)
            assert result.num_paths == minimum_path_cover_size(tree)

    def test_top_level_helper(self):
        tree = random_cotree(30, seed=18)
        a = minimum_path_cover(tree, method="parallel")
        b = minimum_path_cover(tree, method="sequential")
        assert a.num_paths == b.num_paths == minimum_path_cover_size(tree)

    def test_top_level_helper_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            minimum_path_cover(clique(3), method="magic")
