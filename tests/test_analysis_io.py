"""Tests for the analysis helpers (complexity fits, metrics, tables,
experiment registry) and the io package (serialisation, drawing)."""

import json
import os

import numpy as np
import pytest

from repro.analysis import (
    EXPERIMENTS,
    best_model,
    compute_metrics,
    experiment_by_id,
    fit_growth,
    format_markdown_table,
    format_table,
    log2ceil,
    loglog_slope,
)
from repro.cograph import (
    Graph,
    PathCover,
    clique,
    complete_bipartite,
    random_cotree,
)
from repro.core import generate_brackets, minimum_path_cover_parallel, reduce_cotree, leftist_reorder, binarize_parallel
from repro.io import (
    cotree_from_json,
    cotree_from_text,
    cotree_to_json,
    cotree_to_text,
    cover_from_json,
    cover_to_json,
    graph_from_json,
    graph_to_json,
    load_json,
    render_binary_cotree,
    render_cotree,
    render_cover,
    render_forest,
    save_json,
)


class TestComplexityFitting:
    def test_linear_data_identified(self):
        sizes = [128, 256, 512, 1024, 4096]
        values = [3 * n + 17 for n in sizes]
        assert best_model(sizes, values).model == "n"

    def test_logarithmic_data_identified(self):
        sizes = [2 ** k for k in range(6, 18)]
        values = [5 * np.log2(n) for n in sizes]
        assert best_model(sizes, values).model == "log n"

    def test_nlogn_data_identified(self):
        sizes = [2 ** k for k in range(6, 16)]
        values = [2 * n * np.log2(n) for n in sizes]
        assert best_model(sizes, values).model == "n log n"

    def test_quadratic_data_identified(self):
        sizes = [2 ** k for k in range(4, 10)]
        values = [0.5 * n * n for n in sizes]
        assert best_model(sizes, values).model == "n^2"

    def test_fit_growth_returns_sorted(self):
        sizes = [10, 100, 1000]
        fits = fit_growth(sizes, [n for n in sizes])
        assert fits[0].relative_rmse <= fits[-1].relative_rmse

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_growth([1, 2], [1])
        with pytest.raises(ValueError):
            fit_growth([1, 2], [0, 1])
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_loglog_slope(self):
        sizes = [2 ** k for k in range(5, 12)]
        assert abs(loglog_slope(sizes, [7.0 * n for n in sizes]) - 1.0) < 0.01
        assert loglog_slope(sizes, [np.log2(n) for n in sizes]) < 0.4

    def test_log2ceil(self):
        assert log2ceil(1) == 1
        assert log2ceil(2) == 1
        assert log2ceil(1024) == 10
        assert log2ceil(1025) == 11


class TestMetricsAndTables:
    def test_compute_metrics(self):
        m = compute_metrics(n=1024, parallel_time=50, work=4096, processors=103,
                            sequential_time=2048)
        assert m.speedup == pytest.approx(2048 / 50)
        assert m.efficiency == pytest.approx(m.speedup / 103)
        assert m.work_ratio == pytest.approx(2.0)
        assert m.work_per_n == pytest.approx(4.0)
        assert m.time_per_log_n == pytest.approx(5.0)
        assert m.to_dict()["n"] == 1024

    def test_metrics_without_sequential(self):
        m = compute_metrics(64, 10, 100, 8)
        assert m.speedup is None and m.efficiency is None

    def test_format_table(self):
        rows = [{"n": 4, "t": 1.25}, {"n": 16, "t": 2.5}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "1.250" in text and "n" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_markdown_table(self):
        text = format_markdown_table([{"a": 1, "b": 2.0}])
        assert text.startswith("| a | b |")
        assert "| 1 | 2.000 |" in text


class TestExperimentRegistry:
    def test_ids_are_unique(self):
        ids = [e.experiment_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_lookup(self):
        assert experiment_by_id("E4").paper_item.startswith("Theorem 5.3")
        with pytest.raises(KeyError):
            experiment_by_id("E99")

    def test_all_main_claims_covered(self):
        ids = {e.experiment_id for e in EXPERIMENTS}
        assert {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                "A1", "A2", "A3", "F1-F12"} <= ids

    def test_registered_benchmark_files_exist(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        for spec in EXPERIMENTS:
            path = os.path.join(root, spec.harness)
            assert os.path.exists(path), f"{spec.experiment_id}: {spec.harness}"

    def test_design_and_experiments_docs_mention_each_id(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        design = open(os.path.join(root, "DESIGN.md"), encoding="utf8").read()
        experiments = open(os.path.join(root, "EXPERIMENTS.md"), encoding="utf8").read()
        for spec in EXPERIMENTS:
            key = spec.experiment_id.split("-")[0]
            assert key in design
            assert key in experiments


class TestSerialisation:
    def test_cotree_json_roundtrip(self):
        t = random_cotree(20, seed=1)
        data = json.loads(json.dumps(cotree_to_json(t)))
        back = cotree_from_json(data)
        assert Graph.from_cotree(back) == Graph.from_cotree(t)

    def test_cotree_text_roundtrip(self):
        t = random_cotree(15, seed=2)
        back = cotree_from_text(cotree_to_text(t))
        assert Graph.from_cotree(back) == Graph.from_cotree(t)

    def test_text_form_single_vertex(self):
        assert cotree_to_text(clique(1)) == "0"
        assert cotree_from_text("5").num_vertices == 1

    def test_text_form_rejects_mixed_ops(self):
        with pytest.raises(ValueError):
            cotree_from_text("(0 * 1 + 2)")

    def test_cover_json_roundtrip(self):
        c = PathCover([[0, 1], [2]])
        assert cover_from_json(cover_to_json(c)).paths == c.paths

    def test_graph_json_roundtrip(self):
        g = Graph.from_cotree(complete_bipartite(2, 3))
        assert graph_from_json(graph_to_json(g)) == g

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError):
            cotree_from_json({"type": "graph"})
        with pytest.raises(ValueError):
            cover_from_json({"type": "cotree"})
        with pytest.raises(ValueError):
            graph_from_json({"type": "cotree"})

    def test_save_and_load(self, tmp_path):
        t = random_cotree(10, seed=3)
        cover = minimum_path_cover_parallel(t).cover
        g = Graph.from_cotree(t)
        for obj, name in ((t, "t.json"), (cover, "c.json"), (g, "g.json")):
            path = str(tmp_path / name)
            save_json(obj, path)
            loaded = load_json(path)
            assert type(loaded) is type(obj)

    def test_save_plain_dict(self, tmp_path):
        path = str(tmp_path / "d.json")
        save_json({"hello": 1}, path)
        assert load_json(path) == {"hello": 1}


class TestDrawing:
    def test_render_cotree_contains_labels(self):
        text = render_cotree(complete_bipartite(2, 2), names=list("abcd"))
        assert "(1)" in text and "(0)" in text and "a" in text

    def test_render_binary_cotree(self):
        from repro.cograph import binarize_cotree
        text = render_binary_cotree(binarize_cotree(clique(3)))
        assert "L:" in text and "R:" in text

    def test_render_cover(self):
        text = render_cover(PathCover([[0, 1], [2]]), names=list("xyz"))
        assert "path 1: x - y" in text and "path 2: z" in text

    def test_render_forest(self):
        t = random_cotree(12, seed=4, join_prob=0.6)
        m = None
        b = binarize_parallel(m, t)
        red = reduce_cotree(m, leftist_reorder(m, b))
        seq = generate_brackets(m, red)
        from repro.core import build_pseudo_forest
        forest = build_pseudo_forest(m, seq)
        text = render_forest(forest)
        assert "v0" in text
