"""Forest batching: FlatForest pack/unpack, the packed DP and pipeline
sweeps, solve_forest, and the batch_small stream routing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    FOREST_TASKS,
    SolutionCache,
    SolveOptions,
    solve,
    solve_forest,
    solve_many,
    solve_stream,
)
from repro.cograph import (
    BinaryForest,
    CographAdjacencyOracle,
    CotreeError,
    FlatCotree,
    FlatForest,
    as_flat_cotree,
    clique,
    independent_set,
    pack,
    random_cotree,
    single_vertex,
    unpack,
)
from repro.core.pipeline import Pipeline
from repro.core.solver import minimum_path_cover_parallel
from repro.__main__ import main


def _random_trees(count, max_n, seed, min_n=1):
    rng = np.random.default_rng(seed)
    return [random_cotree(int(rng.integers(min_n, max_n + 1)),
                          seed=int(rng.integers(0, 10 ** 9)))
            for _ in range(count)]


def _empty_flat() -> FlatCotree:
    return FlatCotree(kind=np.zeros(0, dtype=np.int64),
                      child_offset=np.zeros(1, dtype=np.int64),
                      child_index=np.zeros(0, dtype=np.int64),
                      parent=np.zeros(0, dtype=np.int64),
                      leaf_vertex=np.zeros(0, dtype=np.int64),
                      root=-1)


# --------------------------------------------------------------------------- #
# pack / unpack
# --------------------------------------------------------------------------- #

class TestPackUnpack:
    def test_round_trips_mixed_random_batches(self):
        for seed in range(5):
            trees = _random_trees(30, 40, seed=seed)
            flats = [as_flat_cotree(t) for t in trees]
            forest = pack(flats)
            assert isinstance(forest, FlatForest)
            assert forest.num_instances == len(flats)
            back = unpack(forest)
            assert len(back) == len(flats)
            for orig, restored in zip(flats, back):
                assert restored == orig

    def test_round_trips_empty_and_single_vertex_instances(self):
        flats = [_empty_flat(), as_flat_cotree(single_vertex()),
                 _empty_flat(), as_flat_cotree(clique(4))]
        forest = pack(flats)
        assert forest.roots[0] == -1 and forest.roots[2] == -1
        assert forest.roots[1] >= 0
        back = unpack(forest)
        assert back[0].num_nodes == 0 and back[0].root == -1
        assert back[1] == flats[1]
        assert back[2].num_nodes == 0
        assert back[3] == flats[3]

    def test_packed_offsets_and_instance_ids(self):
        flats = [as_flat_cotree(t) for t in
                 (clique(3), independent_set(2), single_vertex())]
        forest = pack(flats)
        sizes = [f.num_nodes for f in flats]
        assert list(np.diff(forest.node_base)) == sizes
        assert list(np.diff(forest.vertex_base)) == [3, 2, 1]
        assert list(forest.instance_id) == sum(
            ([i] * s for i, s in enumerate(sizes)), [])
        # global vertex ids are blockwise-shifted local ids
        assert forest.num_vertices == 6
        assert forest.instance_of_vertex(0) == 0
        assert forest.instance_of_vertex(4) == 1
        assert forest.instance_of_vertex(5) == 2

    def test_rejects_sparse_vertex_ids(self):
        # vertex ids must be 0..n-1 per instance for blockwise shifting
        sparse = as_flat_cotree(clique(3))
        sparse = FlatCotree(kind=sparse.kind,
                            child_offset=sparse.child_offset,
                            child_index=sparse.child_index,
                            parent=sparse.parent,
                            leaf_vertex=sparse.leaf_vertex * 2,
                            root=sparse.root)
        with pytest.raises(ValueError, match="vertex ids must be 0"):
            pack([sparse])

    def test_single_instance_forest_matches_solo_everything(self):
        tree = as_flat_cotree(random_cotree(25, seed=9))
        forest = pack([tree])
        assert unpack(forest)[0] == tree
        solo = minimum_path_cover_parallel(tree, backend="fast")
        run = Pipeline.default().run(forest, "fast")
        assert run.cover.paths == solo.cover.paths


# --------------------------------------------------------------------------- #
# the packed sweeps are bit-identical to solo solves
# --------------------------------------------------------------------------- #

class TestForestParity:
    @pytest.mark.parametrize("task", FOREST_TASKS)
    @pytest.mark.parametrize("solo_backend", ["fast", "pram"])
    def test_forest_answers_match_solo_both_backends(self, task,
                                                     solo_backend):
        trees = _random_trees(25, 30, seed=hash(task) % 1000)
        swept = solve_forest(trees, task, backend="fast")
        for i, (tree, solution) in enumerate(zip(trees, swept)):
            assert solution.provenance["route"] == "forest"
            assert solution.provenance["batch_index"] == i
            solo = solve(tree, task, backend=solo_backend)
            if task == "path_cover":
                assert solution.cover.paths == solo.cover.paths
                assert solution.num_paths == solo.num_paths
            else:
                assert solution.answer == solo.answer

    def test_cover_paths_are_valid_per_instance(self):
        trees = _random_trees(20, 25, seed=77)
        for tree, solution in zip(trees,
                                  solve_forest(trees, "path_cover",
                                               backend="fast")):
            oracle = CographAdjacencyOracle(tree)
            covered = sorted(v for p in solution.cover.paths for v in p)
            assert covered == list(range(tree.num_vertices))
            for path in solution.cover.paths:
                for u, v in zip(path, path[1:]):
                    assert oracle.adjacent(u, v)

    def test_binarize_rejects_forest_with_empty_instances(self):
        forest = pack([as_flat_cotree(clique(2)), _empty_flat()])
        with pytest.raises(CotreeError, match="empty"):
            Pipeline.default().run(forest, "fast")

    def test_binary_forest_carries_roots_through_copy(self):
        from repro.core.binarize import binarize_parallel
        forest = pack([as_flat_cotree(clique(3)),
                       as_flat_cotree(independent_set(2))])
        binary = binarize_parallel("fast", forest)
        assert isinstance(binary, BinaryForest)
        assert len(binary.roots) == 2
        assert np.array_equal(binary.copy().roots, binary.roots)


# --------------------------------------------------------------------------- #
# solve_forest dispatch
# --------------------------------------------------------------------------- #

class TestSolveForest:
    def test_unsupported_task_falls_back_serially(self):
        solutions = solve_forest([clique(3), clique(2)], "hamiltonian_path",
                                 backend="fast")
        assert [s.provenance["route"] for s in solutions] == ["serial"] * 2
        assert solutions[0].ok

    def test_unsupported_options_fall_back_serially(self):
        for opts in (SolveOptions(validate=True),
                     SolveOptions(method="sequential"),
                     SolveOptions(backend="pram", record_steps=True)):
            solutions = solve_forest([clique(3)], "path_cover", options=opts)
            assert solutions[0].provenance["route"] == "serial"
            assert solutions[0].num_paths == 1

    def test_non_cograph_graph_falls_back_serially(self):
        p4 = [(0, 1), (1, 2), (2, 3)]
        solutions = solve_forest([p4, clique(2)], "recognition")
        assert solutions[0].answer is False
        assert solutions[0].provenance["route"] == "serial"

    def test_mixed_forms_share_one_sweep(self):
        solutions = solve_forest(["(0 * (1 + 2))", clique(3),
                                  {0: [1], 1: [0]}], "max_clique",
                                 backend="fast")
        assert [s.provenance["route"] for s in solutions] == ["forest"] * 3
        assert [s.answer["size"] for s in solutions] == [2, 3, 2]

    def test_cache_hits_skip_the_sweep(self):
        cache = SolutionCache()
        trees = _random_trees(12, 20, seed=5)
        opts = SolveOptions(backend="fast", cache=cache)
        first = solve_forest(trees, "path_cover", options=opts)
        assert all(s.provenance["cache"] == "miss" for s in first)
        again = solve_forest(trees, "path_cover", options=opts)
        assert all(s.provenance["cache"] == "hit" for s in again)
        # hits never inherit the stored route
        assert all("route" not in s.provenance for s in again)
        for a, b in zip(first, again):
            assert a.cover.paths == b.cover.paths

    def test_count_independent_sets_is_exact_int(self):
        solutions = solve_forest([independent_set(70)],
                                 "count_independent_sets", backend="fast")
        assert solutions[0].answer["count"] == 2 ** 70


# --------------------------------------------------------------------------- #
# batch_small routing in solve_stream / solve_many
# --------------------------------------------------------------------------- #

class TestBatchSmallRouting:
    def test_stream_routes_by_threshold_and_keeps_order(self):
        trees = _random_trees(40, 60, seed=13)
        opts = SolveOptions(backend="fast", batch_small=30)
        solutions = list(solve_stream(trees, "path_cover", options=opts))
        assert [s.provenance["batch_index"] for s in solutions] == \
            list(range(len(trees)))
        for tree, solution in zip(trees, solutions):
            expected = "forest" if tree.num_vertices <= 30 else "serial"
            assert solution.provenance["route"] == expected
            assert solution.cover.paths == \
                solve(tree, backend="fast").cover.paths

    def test_solve_many_pool_route_with_batch_small(self):
        trees = _random_trees(16, 60, seed=21)
        opts = SolveOptions(backend="fast", batch_small=30)
        solutions = solve_many(trees, "path_cover", jobs=2, options=opts)
        for tree, solution in zip(trees, solutions):
            expected = "forest" if tree.num_vertices <= 30 else "pool"
            assert solution.provenance["route"] == expected

    def test_stream_without_batch_small_stamps_serial_route(self):
        solutions = list(solve_stream([clique(3)], "path_cover",
                                      backend="fast"))
        assert solutions[0].provenance["route"] == "serial"

    def test_stream_cache_hits_bypass_both_routes(self):
        cache = SolutionCache()
        trees = _random_trees(20, 60, seed=3)
        opts = SolveOptions(backend="fast", batch_small=30, cache=cache)
        list(solve_stream(trees, "path_cover", options=opts))
        again = list(solve_stream(trees, "path_cover", options=opts))
        assert all(s.provenance["cache"] == "hit" for s in again)

    def test_threshold_diversion_never_changes_answers(self):
        trees = _random_trees(30, 50, seed=31)
        plain = solve_many(trees, "max_clique", backend="fast")
        routed = solve_many(trees, "max_clique",
                            options=SolveOptions(backend="fast",
                                                 batch_small=50))
        assert [s.answer for s in plain] == [s.answer for s in routed]

    def test_unsupported_task_ignores_threshold(self):
        solutions = list(solve_stream([clique(3)], "hamiltonian_cycle",
                                      options=SolveOptions(batch_small=10)))
        assert solutions[0].provenance["route"] == "serial"
        assert solutions[0].ok


# --------------------------------------------------------------------------- #
# SolveOptions.batch_small plumbing
# --------------------------------------------------------------------------- #

class TestBatchSmallOption:
    def test_excluded_from_to_dict_like_cache(self):
        opts = SolveOptions(batch_small=64, cache=SolutionCache())
        assert "batch_small" not in opts.to_dict()
        assert "cache" not in opts.to_dict()
        assert SolveOptions.from_dict(opts.to_dict()) == SolveOptions()

    def test_does_not_perturb_cache_keys(self):
        cache = SolutionCache()
        tree = clique(4)
        plain = SolveOptions(backend="fast", cache=cache)
        routed = SolveOptions(backend="fast", cache=cache, batch_small=10)
        solve(tree, options=plain)
        hit = solve(tree, options=routed)
        assert hit.provenance["cache"] == "hit"

    def test_validation(self):
        assert SolveOptions(batch_small="8").batch_small == 8
        with pytest.raises(ValueError, match="batch_small"):
            SolveOptions(batch_small=0)
        with pytest.raises(ValueError, match="batch_small"):
            SolveOptions(batch_small=-3)

    def test_analytic_path_cover_size_shortcut_survives(self):
        solution = solve(clique(5), "path_cover_size",
                         options=SolveOptions(batch_small=16))
        assert solution.backend == "analytic"
        assert solution.answer == 1

    def test_welcome_on_non_pipeline_tasks(self):
        solution = solve(clique(3), "recognition",
                         options=SolveOptions(batch_small=16))
        assert solution.answer is True


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #

def _feed_stdin(monkeypatch, lines):
    import io
    monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))


class TestCLI:
    def test_stream_batch_small_routes_and_orders(self, monkeypatch, capsys):
        lines = ["(0 * (1 + 2))", "(0 + 1)", "(0 * 1)"]
        _feed_stdin(monkeypatch, lines)
        assert main(["solve", "--stream", "--batch-small", "10",
                     "--json"]) == 0
        captured = capsys.readouterr()
        solutions = [json.loads(line) for line in captured.out.splitlines()]
        assert [s["provenance"]["batch_index"] for s in solutions] == [0, 1, 2]
        assert all(s["provenance"]["route"] == "forest" for s in solutions)
        assert [s["num_paths"] for s in solutions] == [1, 2, 1]
        assert "solved 3 instance(s)" in captured.err

    def test_batch_small_rejected_without_stream(self, capsys):
        assert main(["solve", "(0 * 1)", "--batch-small", "5"]) == 2
        assert "--batch-small" in capsys.readouterr().err
