"""Tests for the cograph algebra (union/join/complement) and the generators."""

import numpy as np
import pytest

from repro.cograph import (
    JOIN,
    UNION,
    Cotree,
    CotreeError,
    Graph,
    balanced_cotree,
    caterpillar_cotree,
    clique,
    complement_cotree,
    complete_bipartite,
    independent_set,
    join_cotrees,
    join_of_independent_sets,
    minimum_path_cover_size,
    random_cograph_edges,
    random_cotree,
    relabel_disjoint,
    single_vertex,
    threshold_cograph,
    union_cotrees,
    union_of_cliques,
    validate_cotree,
)


class TestOperations:
    def test_union_edge_count(self):
        t = union_cotrees(clique(3), clique(4), relabel=True)
        assert t.edge_count() == 3 + 6

    def test_join_edge_count(self):
        t = join_cotrees(independent_set(3), independent_set(4), relabel=True)
        assert t.edge_count() == 12

    def test_union_requires_disjoint_ids(self):
        with pytest.raises(CotreeError):
            union_cotrees(clique(2), clique(2))

    def test_relabel_disjoint(self):
        a, b = relabel_disjoint([clique(2), clique(3)])
        assert sorted(a.vertices) == [0, 1]
        assert sorted(b.vertices) == [2, 3, 4]

    def test_single_tree_passthrough(self):
        t = clique(3)
        assert union_cotrees(t) is t

    def test_results_are_canonical(self):
        t = join_cotrees(clique(2), clique(3), relabel=True)
        assert t.is_canonical()
        u = union_cotrees(independent_set(2), independent_set(2), relabel=True)
        assert u.is_canonical()

    def test_complement_swaps_labels(self):
        t = complement_cotree(complete_bipartite(2, 3))
        g = Graph.from_cotree(t)
        assert g == Graph.from_cotree(complete_bipartite(2, 3)).complement()

    def test_complement_involution(self):
        t = random_cotree(20, seed=9)
        back = complement_cotree(complement_cotree(t))
        assert Graph.from_cotree(back) == Graph.from_cotree(t)

    def test_de_morgan(self):
        """complement(A union B) == join(complement A, complement B)."""
        a, b = random_cotree(6, seed=1), random_cotree(5, seed=2)
        a, b = relabel_disjoint([a, b])
        lhs = complement_cotree(union_cotrees(a, b))
        rhs = join_cotrees(complement_cotree(a), complement_cotree(b))
        assert Graph.from_cotree(lhs) == Graph.from_cotree(rhs)


class TestGenerators:
    def test_independent_set(self):
        t = independent_set(7)
        assert t.num_vertices == 7
        assert t.edge_count() == 0
        assert minimum_path_cover_size(t) == 7

    def test_clique(self):
        t = clique(6)
        assert t.edge_count() == 15
        assert minimum_path_cover_size(t) == 1

    def test_single_vertex_generators(self):
        assert independent_set(1).num_vertices == 1
        assert clique(1).num_vertices == 1

    def test_generators_reject_bad_sizes(self):
        with pytest.raises(ValueError):
            independent_set(0)
        with pytest.raises(ValueError):
            clique(0)
        with pytest.raises(ValueError):
            balanced_cotree(-1)
        with pytest.raises(ValueError):
            caterpillar_cotree(0)
        with pytest.raises(ValueError):
            union_of_cliques([])
        with pytest.raises(ValueError):
            threshold_cograph([])

    def test_complete_bipartite(self):
        t = complete_bipartite(3, 4)
        assert t.num_vertices == 7
        assert t.edge_count() == 12
        assert minimum_path_cover_size(t) == 1

    def test_complete_bipartite_unbalanced_cover(self):
        # K_{1,5}: the star needs 5 - 1 = 4 paths
        assert minimum_path_cover_size(complete_bipartite(1, 5)) == 4

    def test_union_of_cliques_cover_size(self):
        sizes = [3, 1, 4, 2]
        t = union_of_cliques(sizes)
        assert t.num_vertices == sum(sizes)
        assert minimum_path_cover_size(t) == len(sizes)

    def test_join_of_independent_sets_cover_formula(self):
        # p = max(1, max_part - rest)
        for sizes in ([4, 2], [5, 5], [7, 2, 1], [3, 3, 3], [10, 1]):
            t = join_of_independent_sets(sizes)
            expect = max(1, max(sizes) - (sum(sizes) - max(sizes)))
            assert minimum_path_cover_size(t) == expect, sizes

    def test_balanced_cotree_shape(self):
        t = balanced_cotree(4)
        assert t.num_vertices == 16
        assert t.height() == 4
        assert t.is_canonical()

    def test_balanced_cotree_branching(self):
        t = balanced_cotree(2, branching=3)
        assert t.num_vertices == 9

    def test_caterpillar_is_deep(self):
        t = caterpillar_cotree(20)
        assert t.num_vertices == 20
        assert t.height() == 19 or t.is_canonical()
        # the binarized caterpillar has height n-1
        from repro.cograph import binarize_cotree
        assert binarize_cotree(t).height() == 19

    def test_caterpillar_alternating_is_canonical(self):
        assert caterpillar_cotree(15).is_canonical()

    def test_threshold_graph_all_ones_is_clique(self):
        t = threshold_cograph([1, 1, 1, 1])
        assert Graph.from_cotree(t) == Graph.from_cotree(clique(4))

    def test_threshold_graph_all_zeros_is_independent(self):
        t = threshold_cograph([0, 0, 0])
        assert t.edge_count() == 0

    def test_random_cotree_is_canonical_and_valid(self):
        for seed in range(10):
            t = random_cotree(17, seed=seed)
            validate_cotree(t, Graph.from_cotree(t))
            assert t.num_vertices == 17

    def test_random_cotree_determinism(self):
        a = random_cotree(30, seed=42)
        b = random_cotree(30, seed=42)
        assert a == b

    def test_random_cotree_density_bias(self):
        sparse = random_cotree(60, seed=1, join_prob=0.1).edge_count()
        dense = random_cotree(60, seed=1, join_prob=0.9).edge_count()
        assert dense > sparse

    def test_random_cograph_edges(self):
        t, edges = random_cograph_edges(12, seed=3)
        g = Graph(12, edges)
        assert g == Graph.from_cotree(t)
