"""The HTTP/JSON service layer (``repro.server``), in-process and on-wire.

Most tests drive :meth:`ServerApp.dispatch` directly — the whole app
(routing, validation, admission, offload, caching, metrics) without a
socket.  A handful boot a real listening :class:`ReproServer` to cover the
wire protocol, concurrency, overload shedding and the graceful-drain
lifecycle, and one boots ``python -m repro serve`` as a subprocess to pin
the SIGTERM exit path.
"""

from __future__ import annotations

import asyncio
import http.client
import io
import json
import logging
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.parse
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro._version import __version__
from repro.api import SolutionCache, SolveOptions, as_problem, solve, \
    task_names
from repro.cograph import as_flat_cotree, pack, random_cotree
from repro.io import cotree_to_text
from repro.io.wire import frame as wire_frame
from repro.io.wire import to_bytes as wire_to_bytes
from repro.server import (
    HTTPError,
    LatencyHistogram,
    Metrics,
    ReproServer,
    SchemaError,
    ServerApp,
    Settings,
    parse_batch_request,
    parse_solve_request,
)
from repro.server.schemas import (
    parse_wire_batch_request,
    parse_wire_solve_request,
)
from repro.server.logging_config import (
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    new_request_id,
    request_id_var,
)

SMALL = "(0 + (1 * 2))"


def big_instance(n: int = 20000, seed: int = 7) -> str:
    return cotree_to_text(random_cotree(n, seed=seed))


def make_app(**overrides) -> ServerApp:
    defaults = dict(port=0, jobs=1, log_level="ERROR")
    defaults.update(overrides)
    return ServerApp(Settings(**defaults))


def run_app(coro_fn, **overrides):
    """Run ``await coro_fn(app)`` inside a fresh loop, closing the app."""
    app = make_app(**overrides)

    async def driver():
        try:
            return await coro_fn(app)
        finally:
            app.close()

    return asyncio.run(driver())


def solve_body(problem=SMALL, **extra) -> bytes:
    return json.dumps({"problem": problem, **extra}).encode()


# --------------------------------------------------------------------------- #
# Settings
# --------------------------------------------------------------------------- #

class TestSettings:
    def test_defaults_are_valid_and_frozen(self):
        s = Settings()
        assert s.port == 8080 and s.queue_limit == 64
        with pytest.raises(Exception):
            s.port = 9090                       # frozen dataclass

    def test_from_env_reads_typed_repro_variables(self):
        s = Settings.from_env({"REPRO_PORT": "9001", "REPRO_JOBS": "2",
                               "REPRO_REQUEST_TIMEOUT": "2.5",
                               "REPRO_LOG_FORMAT": "json"})
        assert (s.port, s.jobs) == (9001, 2)
        assert s.request_timeout == 2.5 and s.log_format == "json"

    def test_from_env_overrides_win_and_none_is_ignored(self):
        s = Settings.from_env({"REPRO_PORT": "9001"},
                              port=7000, host=None)
        assert s.port == 7000                   # CLI flag beats the env
        assert s.host == "127.0.0.1"            # None = unset argparse flag

    def test_from_env_bad_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_QUEUE_LIMIT"):
            Settings.from_env({"REPRO_QUEUE_LIMIT": "lots"})
        with pytest.raises(ValueError, match="REPRO_REQUEST_TIMEOUT"):
            Settings.from_env({"REPRO_REQUEST_TIMEOUT": "soon"})

    @pytest.mark.parametrize("bad", [
        {"port": 70000}, {"queue_limit": 0}, {"request_timeout": 0.0},
        {"log_format": "xml"}, {"log_level": "LOUD"}, {"max_batch": 0},
    ])
    def test_validation_rejects_out_of_range_fields(self, bad):
        with pytest.raises(ValueError):
            Settings(**bad)

    def test_with_revalidates_and_to_dict_round_trips(self):
        s = Settings(port=0).with_(queue_limit=5, log_level="debug")
        assert s.queue_limit == 5 and s.log_level == "DEBUG"
        assert Settings(**s.to_dict()) == s
        with pytest.raises(ValueError):
            s.with_(port=-1)


# --------------------------------------------------------------------------- #
# structured logging
# --------------------------------------------------------------------------- #

class TestLogging:
    def _record(self, **extra):
        record = logging.LogRecord("repro.server", logging.INFO, __file__,
                                   1, "request done", (), None)
        record.request_id = "abc123"
        for name, value in extra.items():
            setattr(record, name, value)
        return record

    def test_kv_formatter_emits_sorted_quoted_pairs(self):
        line = KeyValueFormatter().format(
            self._record(status=200, path="/v1/solve", note="two words"))
        assert "level=INFO" in line and "request_id=abc123" in line
        assert 'msg="request done"' in line      # spaces -> JSON-quoted
        assert "path=/v1/solve status=200" in line   # extras sorted
        assert 'note="two words"' in line

    def test_json_formatter_emits_one_parseable_object(self):
        data = json.loads(JsonFormatter().format(
            self._record(status=200, duration_ms=4.25)))
        assert data["msg"] == "request done"
        assert data["request_id"] == "abc123"
        assert data["status"] == 200 and data["duration_ms"] == 4.25
        assert data["ts"].endswith("Z")

    def test_configure_logging_is_idempotent_and_unpropagated(self):
        stream = io.StringIO()
        logger = configure_logging(Settings(log_level="INFO"), stream)
        logger = configure_logging(Settings(log_level="INFO"), stream)
        assert len(logger.handlers) == 1        # no handler stacking
        assert logger.propagate is False
        logger.info("hello", extra={"event": "test"})
        assert "event=test" in stream.getvalue()
        configure_logging(Settings(log_level="ERROR"))  # detach the buffer

    def test_request_ids_are_fresh_hex_and_contextual(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 12 and int(i, 16) >= 0 for i in ids)
        assert request_id_var.get() == "-"       # ambient default


# --------------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------------- #

class TestMetrics:
    def test_histogram_quantiles_use_bucket_upper_bounds(self):
        hist = LatencyHistogram()
        for value in (0.002, 0.002, 0.002, 0.09):
            hist.observe(value)
        assert hist.total == 4 and hist.sum == pytest.approx(0.096)
        assert hist.quantile(0.5) == 0.0025      # 0.002 rounds up a bucket
        assert hist.quantile(0.99) == 0.1

    def test_histogram_empty_and_overflow(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) is None
        hist.observe(10_000.0)                   # beyond the last bucket
        assert hist.quantile(0.5) == 120.0       # clamped to last bound

    def test_render_exposes_counters_gauges_and_cache(self):
        metrics = Metrics()
        metrics.observe_request("path_cover", 200, 0.01)
        metrics.observe_request("path_cover", 429, 0.0001)
        metrics.observe_request("max_clique", 504, 1.0)
        metrics.set_gauges(in_flight=2, queue_depth=3)
        text = metrics.render({"hits": 3, "misses": 1, "size": 2})
        assert f'repro_info{{version="{__version__}"}} 1' in text
        assert 'repro_requests_total{task="path_cover",status="200"} 1' \
            in text
        assert "repro_rejected_total 1" in text
        assert "repro_timeouts_total 1" in text
        assert "repro_in_flight 2" in text and "repro_queue_depth 3" in text
        assert "repro_cache_hit_rate 0.750000" in text
        assert 'repro_request_seconds{task="path_cover",quantile="0.5"}' \
            in text
        assert 'repro_request_seconds_count{task="max_clique"} 1' in text

    def test_render_without_cache_omits_cache_lines(self):
        text = Metrics().render(None)
        assert "repro_cache_hits_total" not in text
        assert "repro_uptime_seconds" in text


# --------------------------------------------------------------------------- #
# schemas
# --------------------------------------------------------------------------- #

class TestSchemas:
    def test_bare_value_is_the_problem(self):
        req = parse_solve_request(SMALL)
        assert req.task == "path_cover"
        assert req.problem.tree is not None

    def test_full_record_with_task_and_options(self):
        req = parse_solve_request({
            "problem": SMALL, "task": "max_clique",
            "options": {"backend": "fast", "validate": True}})
        assert req.task == "max_clique"
        assert req.options.backend == "fast" and req.options.validate

    def test_missing_problem_is_a_field_error(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_solve_request({"task": "path_cover"})
        assert excinfo.value.errors == [
            {"field": "problem", "error": "is required"}]

    def test_unknown_keys_and_unknown_task_collected(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_solve_request({"problem": SMALL, "frobnicate": 1})
        assert excinfo.value.errors[0]["field"] == "frobnicate"
        with pytest.raises(SchemaError) as excinfo:
            parse_solve_request({"problem": SMALL, "task": "nope"})
        error = excinfo.value.errors[0]
        assert error["field"] == "task" and "max_clique" in error["error"]

    def test_request_cannot_set_server_owned_options(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_solve_request({"problem": SMALL,
                                 "options": {"cache": 64,
                                             "batch_small": 10}})
        fields = {e["field"] for e in excinfo.value.errors}
        assert fields == {"options.cache", "options.batch_small"}

    def test_bad_option_values_surface_per_field(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_solve_request({"problem": SMALL,
                                 "options": {"backend": "turbo"}})
        assert excinfo.value.errors[0]["field"] == "options"
        with pytest.raises(SchemaError):
            parse_solve_request({"problem": SMALL, "options": "fast"})

    def test_file_paths_are_refused_over_the_network(self, tmp_path):
        path = tmp_path / "instance.json"
        path.write_text(json.dumps({"type": "cotree"}))
        with pytest.raises(SchemaError) as excinfo:
            parse_solve_request({"problem": str(path)})
        assert "file paths" in excinfo.value.errors[0]["error"]

    def test_batch_accepts_list_and_object_forms(self):
        by_list = parse_batch_request(
            [SMALL, {"problem": "(0 * 1)", "task": "max_clique"}],
            max_batch=10)
        assert [r.task for r in by_list] == ["path_cover", "max_clique"]
        by_object = parse_batch_request(
            {"problems": [SMALL, "(0 * 1)"], "task": "max_clique",
             "options": {"backend": "fast"}}, max_batch=10)
        assert all(r.task == "max_clique" for r in by_object)
        assert all(r.options.backend == "fast" for r in by_object)

    def test_batch_record_overrides_the_defaults(self):
        requests = parse_batch_request(
            {"problems": [{"problem": SMALL, "task": "path_cover"},
                          SMALL],
             "task": "max_clique"}, max_batch=10)
        assert [r.task for r in requests] == ["path_cover", "max_clique"]

    def test_batch_errors_are_indexed_per_record(self):
        with pytest.raises(SchemaError) as excinfo:
            parse_batch_request(
                [SMALL, {"problem": SMALL, "task": "nope"},
                 {"task": "path_cover"}], max_batch=10)
        fields = [e["field"] for e in excinfo.value.errors]
        assert fields == ["problems[1].task", "problems[2].problem"]

    def test_batch_rejects_empty_oversized_and_non_list(self):
        with pytest.raises(SchemaError, match="empty"):
            parse_batch_request([], max_batch=10)
        with pytest.raises(SchemaError, match="max_batch"):
            parse_batch_request([SMALL] * 11, max_batch=10)
        with pytest.raises(SchemaError, match="list"):
            parse_batch_request({"problems": SMALL}, max_batch=10)


def wire_buf(text=SMALL):
    return wire_to_bytes(as_flat_cotree(as_problem(text).pipeline_tree()))


class TestWireSchemas:
    def test_solve_buffer_with_query_defaults(self):
        req = parse_wire_solve_request(wire_buf())
        assert req.task == "path_cover"
        assert req.problem.source_format == "wire"

    def test_query_task_and_options(self):
        query = "task=max_clique&options=" + urllib.parse.quote(
            json.dumps({"backend": "kernel"}))
        req = parse_wire_solve_request(wire_buf(), query)
        assert req.task == "max_clique"
        assert req.options.backend == "kernel"

    def test_bad_query_parameters_are_schema_errors(self):
        with pytest.raises(SchemaError, match="unknown query parameter"):
            parse_wire_solve_request(wire_buf(), "bogus=1")
        with pytest.raises(SchemaError, match="unknown task"):
            parse_wire_solve_request(wire_buf(), "task=nope")
        with pytest.raises(SchemaError, match="JSON object"):
            parse_wire_solve_request(wire_buf(), "options={broken")
        with pytest.raises(SchemaError, match="server configuration"):
            parse_wire_solve_request(
                wire_buf(), "options=" + urllib.parse.quote(
                    json.dumps({"batch_small": 4})))

    def test_corrupt_and_empty_buffers_are_schema_errors(self):
        with pytest.raises(SchemaError, match="invalid wire buffer"):
            parse_wire_solve_request(b"garbage")
        with pytest.raises(SchemaError, match="body"):
            parse_wire_solve_request(b"")

    def test_forest_container_refused_on_solve(self):
        forest = pack([as_flat_cotree(as_problem(SMALL).pipeline_tree())])
        with pytest.raises(SchemaError, match="solve_batch"):
            parse_wire_solve_request(wire_to_bytes(forest))

    def test_batch_frames(self):
        body = wire_frame(wire_buf()) + wire_frame(wire_buf("(0 * 1)"))
        requests = parse_wire_batch_request(body, "task=max_clique",
                                            max_batch=10)
        assert len(requests) == 2
        assert all(r.task == "max_clique" for r in requests)

    def test_batch_truncated_frame_and_limits(self):
        with pytest.raises(SchemaError, match="truncated frame"):
            parse_wire_batch_request(wire_frame(wire_buf())[:-3],
                                     max_batch=10)
        with pytest.raises(SchemaError, match="max_batch"):
            parse_wire_batch_request(wire_frame(wire_buf()) * 3, max_batch=2)
        with pytest.raises(SchemaError, match="body"):
            parse_wire_batch_request(b"", max_batch=2)


# --------------------------------------------------------------------------- #
# the app, dispatched in-process (no socket)
# --------------------------------------------------------------------------- #

class TestDispatch:
    def test_healthz_reports_version_tasks_and_queue(self):
        async def scenario(app):
            return await app.dispatch("GET", "/healthz")

        data = run_app(scenario).json()
        assert data["status"] == "ok" and data["version"] == __version__
        assert set(data["tasks"]) == set(task_names())
        assert data["queue"]["limit"] == 64 and data["queue"]["admitted"] == 0
        assert data["cache"]["size"] == 0

    def test_solve_returns_a_full_solution_document(self):
        async def scenario(app):
            return await app.dispatch("POST", "/v1/solve", solve_body())

        response = run_app(scenario)
        assert response.status == 200
        data = response.json()
        assert data["type"] == "solution" and data["num_paths"] == 2
        assert data["provenance"]["route"] == "serial"
        assert data["provenance"]["cache"] == "miss"

    def test_solve_cache_miss_then_hit(self):
        async def scenario(app):
            first = await app.dispatch("POST", "/v1/solve", solve_body())
            second = await app.dispatch("POST", "/v1/solve", solve_body())
            return first.json(), second.json(), app.cache.stats()

        first, second, stats = run_app(scenario)
        assert first["provenance"]["cache"] == "miss"
        assert second["provenance"]["cache"] == "hit"
        assert second["answer"] == first["answer"]
        assert stats["hits"] == 1 and stats["size"] == 1

    def test_solve_runs_every_kind_of_task(self):
        async def scenario(app):
            clique = await app.dispatch("POST", "/v1/solve", solve_body(
                "(0 * (1 + 2))", task="max_clique"))
            bits = await app.dispatch("POST", "/v1/solve", solve_body(
                [1, 0, 1], task="lower_bound"))
            fast = await app.dispatch("POST", "/v1/solve", solve_body(
                SMALL, options={"backend": "fast", "validate": True}))
            return clique.json(), bits.json(), fast.json()

        clique, bits, fast = run_app(scenario)
        assert clique["answer"]["size"] == 2
        assert bits["answer"]["or"] == 1
        assert fast["backend"] == "fast"

    def test_solve_parity_with_direct_api_call(self):
        async def scenario(app):
            return (await app.dispatch(
                "POST", "/v1/solve", solve_body(task="max_clique"))).json()

        served = run_app(scenario, cache_size=0)
        direct = solve(SMALL, "max_clique")
        assert served["answer"] == direct.to_json_dict()["answer"]

    @pytest.mark.parametrize("body, fragment", [
        (b"", "body is required"),
        (b"{not json", "not valid JSON"),
        (solve_body(task="nope"), "unknown task"),
        (json.dumps({"task": "path_cover"}).encode(), "is required"),
        (solve_body(options={"cache": 4}), "server configuration"),
        (solve_body("((0+1)"), "problem"),
    ])
    def test_solve_bad_requests_are_structured_400s(self, body, fragment):
        async def scenario(app):
            return await app.dispatch("POST", "/v1/solve", body)

        response = run_app(scenario)
        assert response.status == 400
        error = response.json()["error"]
        assert error["status"] == 400
        assert fragment in json.dumps(error)

    def test_unknown_route_404_and_wrong_method_405(self):
        async def scenario(app):
            return (await app.dispatch("GET", "/v1/nope"),
                    await app.dispatch("POST", "/healthz"),
                    await app.dispatch("GET", "/v1/solve"),
                    await app.dispatch("DELETE", "/metrics"))

        missing, h_post, s_get, m_delete = run_app(scenario)
        assert missing.status == 404
        assert (h_post.status, s_get.status, m_delete.status) \
            == (405, 405, 405)


class TestBinaryDispatch:
    """``Content-Type: application/octet-stream`` bodies on the solve
    endpoints: zero-copy wire buffers in, the same JSON solutions out."""

    OCTET = {"content-type": "application/octet-stream"}

    def test_binary_solve_matches_json_solve_byte_for_byte(self):
        async def scenario(app):
            as_json = await app.dispatch("POST", "/v1/solve", solve_body())
            as_wire = await app.dispatch("POST", "/v1/solve", wire_buf(),
                                         self.OCTET)
            return as_json, as_wire

        as_json, as_wire = run_app(scenario, cache_size=0)
        assert as_wire.status == 200
        assert as_wire.json()["answer"] == as_json.json()["answer"]

    def test_binary_solve_with_task_and_options_in_query(self):
        async def scenario(app):
            return await app.dispatch(
                "POST", "/v1/solve?task=max_clique&options=" +
                urllib.parse.quote(json.dumps({"backend": "kernel"})),
                wire_buf(), self.OCTET)

        response = run_app(scenario)
        assert response.status == 200
        data = response.json()
        assert data["backend"] == "kernel"
        assert data["answer"]["size"] == 2

    def test_binary_batch_matches_json_batch(self):
        texts = [SMALL, "(0 * 1)", "((0 + 1) * (2 + 3))"]

        async def scenario(app):
            as_json = await app.dispatch(
                "POST", "/v1/solve_batch",
                json.dumps({"problems": texts}).encode())
            blob = b"".join(wire_frame(wire_buf(t)) for t in texts)
            as_wire = await app.dispatch("POST", "/v1/solve_batch", blob,
                                         self.OCTET)
            return as_json, as_wire

        as_json, as_wire = run_app(scenario, cache_size=0)
        assert as_wire.status == 200
        assert ([s["answer"] for s in as_wire.json()["solutions"]]
                == [s["answer"] for s in as_json.json()["solutions"]])

    def test_binary_errors_are_structured_400s(self):
        async def scenario(app):
            corrupt = await app.dispatch("POST", "/v1/solve", b"garbage",
                                         self.OCTET)
            bad_query = await app.dispatch("POST", "/v1/solve?nope=1",
                                           wire_buf(), self.OCTET)
            return corrupt, bad_query

        corrupt, bad_query = run_app(scenario)
        assert corrupt.status == 400
        assert "invalid wire buffer" in json.dumps(corrupt.json())
        assert bad_query.status == 400
        assert "unknown query parameter" in json.dumps(bad_query.json())

    def test_json_bodies_ignore_the_header_entirely(self):
        async def scenario(app):
            return await app.dispatch(
                "POST", "/v1/solve", solve_body(),
                {"content-type": "application/json"})

        assert run_app(scenario).status == 200

    def test_healthz_reports_backends(self):
        async def scenario(app):
            return await app.dispatch("GET", "/healthz")

        data = run_app(scenario).json()
        assert data["backends"]["available"] == ["pram", "fast", "kernel"]
        assert data["backends"]["kernel"]["mode"] in ("jit", "fallback")

    def test_batch_routes_through_the_forest_sweep(self):
        async def scenario(app):
            body = json.dumps({"problems": [SMALL, "(0 * 1)", SMALL]}
                              ).encode()
            return await app.dispatch("POST", "/v1/solve_batch", body)

        response = run_app(scenario, batch_small=64)
        assert response.status == 200
        data = response.json()
        assert data["count"] == 3
        assert [s["provenance"]["batch_index"]
                for s in data["solutions"]] == [0, 1, 2]
        # small instances take the vectorized forest route
        assert all(s["provenance"]["route"] == "forest"
                   for s in data["solutions"])
        assert [s["num_paths"] for s in data["solutions"]] == [2, 1, 2]

    def test_batch_groups_mixed_tasks_and_matches_solo_answers(self):
        async def scenario(app):
            body = json.dumps([
                {"problem": SMALL, "task": "max_clique"},
                {"problem": SMALL, "task": "path_cover"},
                {"problem": "(0 * (1 + 2))", "task": "max_clique"},
            ]).encode()
            return await app.dispatch("POST", "/v1/solve_batch", body)

        data = run_app(scenario).json()
        tasks = [s["task"] for s in data["solutions"]]
        assert tasks == ["max_clique", "path_cover", "max_clique"]
        assert data["solutions"][0]["answer"] == \
            solve(SMALL, "max_clique").to_json_dict()["answer"]

    def test_batch_validation_errors_are_indexed(self):
        async def scenario(app):
            body = json.dumps([SMALL, {"problem": SMALL, "task": "nope"}]
                              ).encode()
            return await app.dispatch("POST", "/v1/solve_batch", body)

        response = run_app(scenario)
        assert response.status == 400
        details = response.json()["error"]["details"]
        assert details[0]["field"] == "problems[1].task"

    def test_admission_control_sheds_load_with_429(self):
        body = solve_body(big_instance())

        async def scenario(app):
            results = await asyncio.gather(*[
                app.dispatch("POST", "/v1/solve", body) for _ in range(4)])
            return [r.status for r in results], [
                dict(r.headers) for r in results]

        statuses, headers = run_app(scenario, queue_limit=1, cache_size=0)
        counts = Counter(statuses)
        assert counts[200] >= 1 and counts[429] >= 1
        assert counts[200] + counts[429] == 4
        rejected = headers[statuses.index(429)]
        assert rejected["Retry-After"] == "1"

    def test_slow_requests_time_out_with_504(self):
        async def scenario(app):
            return await app.dispatch("POST", "/v1/solve",
                                      solve_body(big_instance()))

        response = run_app(scenario, request_timeout=0.005, cache_size=0)
        assert response.status == 504
        assert "request_timeout" in response.json()["error"]["message"]

    def test_drain_refuses_new_work_but_healthz_stays_up(self):
        async def scenario(app):
            app.begin_drain()
            refused = await app.dispatch("POST", "/v1/solve", solve_body())
            batch = await app.dispatch(
                "POST", "/v1/solve_batch", json.dumps([SMALL]).encode())
            health = await app.dispatch("GET", "/healthz")
            drained = await app.drain(timeout=1.0)
            return refused, batch, health, drained

        refused, batch, health, drained = run_app(scenario)
        assert refused.status == 503 and batch.status == 503
        assert health.status == 200
        assert health.json()["status"] == "draining"
        assert drained is True

    def test_metrics_reflect_dispatched_traffic(self):
        async def scenario(app):
            await app.dispatch("POST", "/v1/solve", solve_body())
            await app.dispatch("POST", "/v1/solve", solve_body())
            await app.dispatch("POST", "/v1/solve", b"")
            response = await app.dispatch("GET", "/metrics")
            return response

        response = run_app(scenario)
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.body.decode()
        assert 'repro_requests_total{task="path_cover",status="200"} 2' \
            in text
        assert 'status="400"' in text
        assert "repro_cache_hits_total 1" in text
        assert "repro_cache_hit_rate 0.500000" in text
        assert 'repro_request_seconds_count{task="path_cover"} 2' in text


# --------------------------------------------------------------------------- #
# the wire: a real listening server
# --------------------------------------------------------------------------- #

def _post(port, path, payload, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("POST", path, json.dumps(payload),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        body = response.read()
        return response.status, dict(response.getheaders()), body
    finally:
        conn.close()


def _get(port, path, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestWire:
    """Socket-level lifecycle.  Blocking clients always run on their own
    thread pool — never on the event loop's default executor."""

    def test_lifecycle_boot_concurrent_solve_validate_drain(self):
        async def scenario():
            settings = Settings(port=0, jobs=1, log_level="ERROR")
            server = ReproServer(settings)
            async with server:
                port = server.port
                assert port and server.running
                loop = asyncio.get_running_loop()
                with ThreadPoolExecutor(8) as pool:
                    solves = [loop.run_in_executor(
                        pool, _post, port, "/v1/solve", {"problem": SMALL})
                        for _ in range(6)]
                    bad = loop.run_in_executor(
                        pool, _post, port, "/v1/solve", {"task": "nope"})
                    health = loop.run_in_executor(
                        pool, _get, port, "/healthz")
                    results = await asyncio.gather(*solves, bad, health)
                drained = await server.stop()
                return results, drained, server.running

        results, drained, running = asyncio.run(scenario())
        *solves, bad, health = results
        assert all(status == 200 for status, _, _ in solves)
        ids = {headers["X-Request-Id"] for _, headers, _ in solves}
        assert len(ids) == len(solves)          # fresh id per request
        bodies = [json.loads(body) for _, _, body in solves]
        assert all(b["num_paths"] == 2 for b in bodies)
        assert {b["provenance"]["request_id"] for b in bodies} == ids
        assert bad[0] == 400 and "unknown task" in bad[2].decode()
        assert health[0] == 200
        assert drained is True and running is False

    def test_saturation_returns_429_and_server_survives(self):
        body = {"problem": big_instance()}

        async def scenario():
            settings = Settings(port=0, jobs=1, queue_limit=2,
                                cache_size=0, log_level="ERROR")
            async with ReproServer(settings) as server:
                loop = asyncio.get_running_loop()
                with ThreadPoolExecutor(10) as pool:
                    futures = [loop.run_in_executor(
                        pool, _post, server.port, "/v1/solve", body)
                        for _ in range(10)]
                    results = await asyncio.gather(*futures)
                after = await asyncio.get_running_loop().run_in_executor(
                    None, _get, server.port, "/healthz")
                return results, after

        results, after = asyncio.run(scenario())
        counts = Counter(status for status, _, _ in results)
        assert counts[429] >= 1 and counts[200] >= 1
        assert set(counts) == {200, 429}        # never a 500
        rejected = next(r for r in results if r[0] == 429)
        assert rejected[1]["Retry-After"] == "1"
        assert after[0] == 200                  # still serving afterwards

    def test_oversized_body_is_413_and_garbage_request_400(self):
        async def scenario():
            settings = Settings(port=0, jobs=1, max_body_bytes=128,
                                log_level="ERROR")
            async with ReproServer(settings) as server:
                port = server.port
                loop = asyncio.get_running_loop()

                def oversized():
                    return _post(port, "/v1/solve",
                                 {"problem": "x" * 4096})

                def garbage():
                    with socket.create_connection(("127.0.0.1", port),
                                                  timeout=10) as sock:
                        sock.sendall(b"NONSENSE\r\n\r\n")
                        return sock.recv(4096)

                with ThreadPoolExecutor(2) as pool:
                    too_big = await loop.run_in_executor(pool, oversized)
                    raw = await loop.run_in_executor(pool, garbage)
                return too_big, raw

        too_big, raw = asyncio.run(scenario())
        assert too_big[0] == 413
        assert "max_body_bytes" in too_big[2].decode()
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"Connection: close" in raw

    def test_serve_subprocess_sigterm_drains_to_exit_0(self):
        env = dict(os.environ, PYTHONPATH="src", REPRO_LOG_FORMAT="json")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--jobs", "1"],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, stderr=subprocess.PIPE, text=True)
        try:
            port = None
            deadline = time.time() + 30
            while time.time() < deadline:       # the boot log names the port
                line = proc.stderr.readline()
                if not line:
                    time.sleep(0.05)
                    continue
                record = json.loads(line)
                if record.get("event") == "listening":
                    port = record["port"]
                    break
            assert port, "server never logged its port"
            status, body = _get(port, "/healthz")
            assert status == 200
            assert json.loads(body)["version"] == __version__
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0   # clean drain
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


# --------------------------------------------------------------------------- #
# the thread-safe SolutionCache (satellite: concurrency regression)
# --------------------------------------------------------------------------- #

class TestCacheConcurrency:
    def test_hammering_one_cache_from_many_threads_stays_consistent(self):
        cache = SolutionCache(maxsize=8)
        options = SolveOptions()
        texts = [cotree_to_text(random_cotree(12, seed=s))
                 for s in range(16)]
        keys = [cache.key_for(as_problem(t), "path_cover", options)
                for t in texts]
        solutions = [solve(t, "path_cover") for t in texts]
        errors = []
        barrier = threading.Barrier(8)

        def worker(which: int) -> None:
            try:
                barrier.wait()
                for round_no in range(200):
                    i = (which * 7 + round_no) % len(keys)
                    hit = cache.get(keys[i])
                    if hit is None:
                        cache.put(keys[i], solutions[i])
                    elif hit.answer != solutions[i].answer:
                        errors.append(f"wrong entry for key {i}")
                    if round_no % 50 == 0:
                        cache.stats()
                        len(cache)
            except Exception as exc:            # pragma: no cover
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 200
        assert len(cache) <= 8                  # the bound held throughout
