"""The zero-copy binary wire format (``repro.io.wire``).

Round-trip identity over every container shape the format carries (plain
trees, deep chains, packed forests, MD trees with quotient payloads),
zero-copy guarantees, the full malformed-input taxonomy (every corruption
is a :class:`ValueError` naming the offending field, never a crash),
length-prefixed frames, file save/load with and without mmap, and the
``as_problem`` ingestion path.
"""

from __future__ import annotations

import io
import struct
import zlib

import numpy as np
import pytest

from repro.api import as_problem, solve
from repro.cograph import (
    FlatCotree,
    FlatForest,
    as_flat_cotree,
    caterpillar_cotree,
    md_tree,
    pack,
    random_cotree,
    random_p4_sparse,
    single_vertex,
    unpack,
)
from repro.io import cotree_to_text
from repro.io.wire import (
    HEADER_SIZE,
    MAGIC,
    VERSION,
    frame,
    from_bytes,
    load,
    read_frames,
    save,
    to_bytes,
)

_HEADER = struct.Struct("<4sHHBBBBQQQqQ")


def _empty_flat() -> FlatCotree:
    return FlatCotree(kind=np.zeros(0, dtype=np.int64),
                      child_offset=np.zeros(1, dtype=np.int64),
                      child_index=np.zeros(0, dtype=np.int64),
                      parent=np.zeros(0, dtype=np.int64),
                      leaf_vertex=np.zeros(0, dtype=np.int64),
                      root=-1)


def _rewrite_header(buf: bytes, **overrides) -> bytes:
    """Patch header fields and recompute the CRC (reaches deep checks)."""
    fields = list(_HEADER.unpack_from(buf, 0))
    names = ("magic", "bom", "version", "container", "flags", "dtype_index",
             "dtype_kind", "num_nodes", "num_edges", "num_q", "root",
             "num_instances")
    for name, value in overrides.items():
        fields[names.index(name)] = value
    header = _HEADER.pack(*fields)
    return header + struct.pack("<I", zlib.crc32(header)) \
        + buf[HEADER_SIZE:]


# --------------------------------------------------------------------------- #
# round trips
# --------------------------------------------------------------------------- #

class TestRoundTrip:
    def test_random_trees_are_identical_field_for_field(self):
        for seed in range(6):
            tree = as_flat_cotree(random_cotree(120, seed=seed))
            back = from_bytes(to_bytes(tree))
            assert back == tree
            assert np.array_equal(back.parent, tree.parent)

    def test_empty_and_single_vertex(self):
        for tree in (_empty_flat(), as_flat_cotree(single_vertex())):
            back = from_bytes(to_bytes(tree))
            assert back == tree
            assert back.num_nodes == tree.num_nodes

    def test_depth_5000_caterpillar(self):
        tree = as_flat_cotree(caterpillar_cotree(5000))
        back = from_bytes(to_bytes(tree))
        assert back == tree

    def test_forest_container(self):
        rng = np.random.default_rng(3)
        flats = [as_flat_cotree(random_cotree(int(rng.integers(1, 40)),
                                              seed=int(rng.integers(1e9))))
                 for _ in range(25)] + [_empty_flat()]
        forest = pack(flats)
        back = from_bytes(to_bytes(forest))
        assert isinstance(back, FlatForest)
        assert back.num_instances == forest.num_instances
        for name in ("kind", "child_offset", "child_index", "parent",
                     "leaf_vertex", "roots", "instance_id", "node_base",
                     "vertex_base", "leaf_vertex_local"):
            assert np.array_equal(getattr(back, name), getattr(forest, name))
        for orig, restored in zip(unpack(forest), unpack(back)):
            assert restored == orig

    def test_md_tree_quotient_payload(self):
        g = random_p4_sparse(60, seed=11)
        md = md_tree(g)
        assert len(md.q_offset)          # the interesting case: prime nodes
        back = from_bytes(to_bytes(md))
        assert back == md
        assert np.array_equal(back.spider, md.spider)

    def test_zero_copy_views_into_the_buffer(self):
        tree = as_flat_cotree(random_cotree(64, seed=5))
        buf = to_bytes(tree)
        back = from_bytes(buf)
        for arr in (back.child_offset, back.child_index, back.kind):
            assert arr.base is not None          # a view, not a copy
            assert not arr.flags.writeable       # bytes is read-only
        assert back.pre_validated is True

    def test_accepts_bytearray_and_memoryview(self):
        tree = as_flat_cotree(random_cotree(30, seed=1))
        buf = to_bytes(tree)
        assert from_bytes(bytearray(buf)) == tree
        assert from_bytes(memoryview(buf)) == tree


# --------------------------------------------------------------------------- #
# malformed inputs: ValueError with a named field, never a crash
# --------------------------------------------------------------------------- #

class TestMalformed:
    @pytest.fixture()
    def buf(self):
        return to_bytes(as_flat_cotree(random_cotree(20, seed=2)))

    def test_truncated_header(self):
        with pytest.raises(ValueError, match="truncated header"):
            from_bytes(b"RPRW123")

    def test_empty_buffer(self):
        with pytest.raises(ValueError, match="truncated header"):
            from_bytes(b"")

    def test_bad_magic(self, buf):
        with pytest.raises(ValueError, match="bad magic"):
            from_bytes(b"NOPE" + buf[4:])

    def test_byte_swapped_header_is_called_out(self, buf):
        swapped = _rewrite_header(buf, bom=0xFFFE)
        with pytest.raises(ValueError, match="big-endian"):
            from_bytes(swapped)

    def test_unknown_version(self, buf):
        with pytest.raises(ValueError, match="unsupported version 99"):
            from_bytes(_rewrite_header(buf, version=99))

    def test_crc_mismatch(self, buf):
        # flip one header byte without recomputing the CRC
        corrupt = bytearray(buf)
        corrupt[9] ^= 0xFF
        with pytest.raises(ValueError, match="CRC mismatch"):
            from_bytes(bytes(corrupt))

    def test_unknown_container(self, buf):
        with pytest.raises(ValueError, match="unknown container code 7"):
            from_bytes(_rewrite_header(buf, container=7))

    def test_unknown_flags(self, buf):
        with pytest.raises(ValueError, match="unknown flag bits"):
            from_bytes(_rewrite_header(buf, flags=0x80))

    def test_unsupported_dtypes(self, buf):
        with pytest.raises(ValueError, match="dtype codes"):
            from_bytes(_rewrite_header(buf, dtype_index=4))

    def test_root_out_of_range(self, buf):
        with pytest.raises(ValueError, match="root .* out of range"):
            from_bytes(_rewrite_header(buf, root=10 ** 6))

    def test_tree_with_instances_rejected(self, buf):
        with pytest.raises(ValueError, match="num_instances"):
            from_bytes(_rewrite_header(buf, num_instances=3))

    def test_forest_with_prime_payload_rejected(self, buf):
        bad = _rewrite_header(buf, container=1, flags=0x01)
        with pytest.raises(ValueError, match="quotient payload"):
            from_bytes(bad)

    def test_truncated_payload(self, buf):
        with pytest.raises(ValueError, match="length mismatch"):
            from_bytes(buf[:-8])

    def test_trailing_garbage(self, buf):
        with pytest.raises(ValueError, match="length mismatch"):
            from_bytes(buf + b"\x00" * 16)

    def test_inconsistent_child_offset_span(self, buf):
        # shrink num_edges in the header: lengths re-sum consistently only
        # if the payload is also cut, so cut it to match and let the CSR
        # span check catch the lie
        tree = as_flat_cotree(random_cotree(20, seed=2))
        e = len(tree.child_index)
        cut = _rewrite_header(
            buf[:HEADER_SIZE + 8 * (tree.num_nodes + 1)]
            + buf[HEADER_SIZE + 8 * (tree.num_nodes + 1) + 8 * e:],
            num_edges=0)
        with pytest.raises(ValueError, match="child_offset"):
            from_bytes(cut)


# --------------------------------------------------------------------------- #
# frames
# --------------------------------------------------------------------------- #

class TestFrames:
    def test_round_trip_many_frames(self):
        payloads = [to_bytes(as_flat_cotree(random_cotree(10 + i, seed=i)))
                    for i in range(8)]
        stream = io.BytesIO(b"".join(frame(p) for p in payloads))
        assert list(read_frames(stream)) == payloads

    def test_clean_eof_on_boundary(self):
        assert list(read_frames(io.BytesIO(b""))) == []

    def test_truncated_prefix(self):
        with pytest.raises(ValueError, match="truncated frame prefix"):
            list(read_frames(io.BytesIO(b"\x01\x02")))

    def test_truncated_body(self):
        stream = io.BytesIO(frame(b"hello")[:-2])
        with pytest.raises(ValueError, match="truncated frame"):
            list(read_frames(stream))

    def test_corrupt_oversize_prefix(self):
        stream = io.BytesIO(struct.pack("<I", 0xFFFFFFFF) + b"x")
        with pytest.raises(ValueError, match="exceeds"):
            list(read_frames(stream))


# --------------------------------------------------------------------------- #
# files
# --------------------------------------------------------------------------- #

class TestFiles:
    def test_save_load_mmap_and_eager(self, tmp_path):
        tree = as_flat_cotree(random_cotree(200, seed=4))
        path = tmp_path / "t.rprw"
        save(tree, path)
        assert load(path, mmap=False) == tree
        mapped = load(path)              # mmap=True is the default
        assert mapped == tree
        assert mapped.pre_validated is True

    def test_constants_are_stable(self):
        # the on-disk contract: changing any of these is a format break
        assert (MAGIC, VERSION, HEADER_SIZE) == (b"RPRW", 1, 56)


# --------------------------------------------------------------------------- #
# ingestion: as_problem + solve
# --------------------------------------------------------------------------- #

class TestIngestion:
    def test_as_problem_accepts_wire_bytes(self):
        tree = as_flat_cotree(random_cotree(50, seed=6))
        problem = as_problem(to_bytes(tree))
        assert problem.source_format == "wire"
        assert problem.pipeline_tree() == tree

    def test_solve_from_wire_matches_text_route(self):
        nested = random_cotree(80, seed=8)
        tree = as_flat_cotree(nested)
        a = solve(to_bytes(tree), "path_cover")
        b = solve(cotree_to_text(nested), "path_cover")
        assert a.answer == b.answer
        assert a.provenance["source_format"] == "wire"

    def test_corrupt_bytes_surface_as_value_error(self):
        with pytest.raises(ValueError, match="invalid wire buffer"):
            as_problem(b"not a wire buffer at all")
