"""Chaos suite: fault injection, self-healing pools, retries, breaker.

Drives :class:`repro.core.FaultPlan` scripts through every layer that is
supposed to survive them:

* the streaming engine (``stream_out`` / ``fan_out``) — workers SIGKILLed
  mid-stream, poison items, in-worker ``MemoryError``, slow items past
  their deadline;
* the API front door (``solve_stream`` / ``solve_many``) — quarantined
  instances degrade to structured error solutions in their ordered slot;
* the HTTP service (``ServerApp.dispatch``) — structured 500s, the
  circuit-breaker open/half-open/close cycle, and a real worker kill that
  heals behind a 200.

Faults are armed through the ``REPRO_FAULTS`` environment variable, which
worker processes inherit at fork time; the ``arm`` fixture cleans up both
it and the ``REPRO_FAULT_GENERATION`` stamp ``WorkerPool.rebuild`` leaves
behind.  Kill faults are only ever armed for *worker* processes — the
serial paths never consult the plan, so pytest itself is never at risk.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.api import SolutionCache, solve, solve_stream
from repro.cograph import random_cotree
from repro.core import (
    CORRUPT_SENTINEL,
    CircuitBreaker,
    ErrorOutcome,
    FaultPlan,
    RetryPolicy,
    WorkerCrashError,
    WorkerPool,
)
from repro.core.batch import Resolved, _apply_chunk, _ItemFailure, \
    fan_out, stream_out
from repro.core.faults import FAULTS_ENV, GENERATION_ENV, active_plan, \
    clear_active_plan
from repro.io import cotree_to_text
from repro.server import ServerApp, Settings

#: a fast, jitter-free policy so chaos tests stay deterministic and quick.
FAST = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.05,
                   jitter=0.0)

SMALL = "(0 + (1 * 2))"


def _square(payload):
    """Indexed worker body (module level so it pickles)."""
    index, x = payload
    return (index, x * x)


def _worker_sigterm_disposition(payload):
    """Report whether the worker process has the default SIGTERM handler."""
    import signal

    return signal.getsignal(signal.SIGTERM) is signal.SIG_DFL


@pytest.fixture
def arm(monkeypatch):
    """Arm a :class:`FaultPlan` for worker processes forked after this."""
    def _arm(**plan_fields):
        plan = FaultPlan(**plan_fields)
        monkeypatch.setenv(FAULTS_ENV, plan.to_json())
        os.environ.pop(GENERATION_ENV, None)
        clear_active_plan()
        return plan
    yield _arm
    # rebuild() stamps the generation straight into os.environ, outside
    # monkeypatch's bookkeeping — restore by hand
    os.environ.pop(GENERATION_ENV, None)
    clear_active_plan()


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #

class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        p = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert p.delay_for(0) == 0.0
        assert p.delay_for(1) == pytest.approx(0.1)
        assert p.delay_for(2) == pytest.approx(0.2)
        assert p.delay_for(3) == pytest.approx(0.4)
        assert p.delay_for(9) == pytest.approx(0.4)   # capped

    def test_jitter_stretches_within_bounds(self):
        p = RetryPolicy(base_delay=0.1, max_delay=0.1, jitter=0.5)
        for _ in range(50):
            assert 0.1 <= p.delay_for(1) <= 0.15 + 1e-9

    def test_off_restores_fail_fast_semantics(self):
        off = RetryPolicy.off()
        assert not off.enabled
        assert off.max_retries == 0
        assert off.delay_for(5) == 0.0

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0.0)

    def test_remaining_tracks_the_deadline(self):
        p = RetryPolicy(deadline=5.0)
        left = p.remaining(time.monotonic())
        assert 0.0 <= left <= 5.0
        assert p.remaining(time.monotonic() - 10.0) == 0.0
        assert RetryPolicy().remaining(time.monotonic()) is None


class TestErrorOutcome:
    def test_to_dict_is_json_ready(self):
        out = ErrorOutcome(error="boom", kind="crash", attempts=3,
                           payload=(7, "x"))
        assert out.to_dict() == {"error": "boom", "error_kind": "crash",
                                 "attempts": 3}

    def test_worker_crash_error_carries_the_outcome(self):
        out = ErrorOutcome(error="boom", kind="memory", attempts=2)
        exc = WorkerCrashError(out)
        assert exc.outcome is out
        assert "memory" in str(exc) and "2 attempt" in str(exc)


# --------------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------------- #

class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(kill_index=7, delay_task=2, delay_seconds=0.5,
                         once=False)
        again = FaultPlan.from_json(plan.to_json())
        assert (again.kill_index, again.delay_task, again.delay_seconds,
                again.once) == (7, 2, 0.5, False)

    def test_from_json_rejects_malformed_plans(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_json('{"explode_task": 1}')
        with pytest.raises(ValueError, match="at least one trigger"):
            FaultPlan.from_json('{"once": false}')
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultPlan(delay_task=1, delay_seconds=-1.0)

    def test_payload_index_reads_indexed_tuples(self):
        assert FaultPlan.payload_index((3, "x")) == 3
        assert FaultPlan.payload_index(("a", 3)) is None
        assert FaultPlan.payload_index(()) is None
        assert FaultPlan.payload_index("bare") is None

    def test_memory_fault_fires_by_task_count(self):
        plan = FaultPlan(memory_task=1)
        with pytest.raises(MemoryError, match="injected fault"):
            plan.apply(_square, (0, 2))
        # the worker's second task is past the trigger
        assert plan.apply(_square, (1, 3)) == (1, 9)

    def test_corrupt_fault_replaces_the_result(self):
        plan = FaultPlan(corrupt_index=2)
        assert plan.apply(_square, (1, 5)) == (1, 25)
        assert plan.apply(_square, (2, 5)) == CORRUPT_SENTINEL

    def test_delay_fault_sleeps(self):
        plan = FaultPlan(delay_task=1, delay_seconds=0.05)
        t0 = time.monotonic()
        assert plan.apply(_square, (0, 4)) == (0, 16)
        assert time.monotonic() - t0 >= 0.05

    def test_active_plan_respects_generation_gating(self, arm,
                                                    monkeypatch):
        arm(memory_task=1, once=True)
        assert active_plan() is not None
        # a healed pool stamps generation >= 1: once-plans go inert
        monkeypatch.setenv(GENERATION_ENV, "1")
        clear_active_plan()
        assert active_plan() is None
        # persistent plans stay armed across rebuilds
        arm(memory_task=1, once=False)
        monkeypatch.setenv(GENERATION_ENV, "3")
        clear_active_plan()
        assert active_plan() is not None

    def test_active_plan_none_without_env(self):
        clear_active_plan()
        assert os.environ.get(FAULTS_ENV) is None
        assert active_plan() is None

    def test_apply_chunk_degrades_memory_errors_per_item(self, arm):
        # in-process check of the worker entrypoint: a MemoryError marks
        # one slot retryable instead of failing the whole chunk
        arm(memory_task=1, once=False)
        out = _apply_chunk(_square, [(0, 2), (1, 3)])
        assert isinstance(out[0], _ItemFailure)
        assert out[0].kind == "memory"
        assert out[1] == (1, 9)


# --------------------------------------------------------------------------- #
# the self-healing streaming engine (real worker processes)
# --------------------------------------------------------------------------- #

class TestWorkerPoolHealing:
    def test_workers_reset_inherited_signal_handlers(self):
        # Forked workers inherit the parent's Python-level signal handlers;
        # under asyncio that proxies a SIGTERM aimed at a worker into the
        # parent's event loop (via the shared wakeup fd) and lets the worker
        # outlive its own termination.  The executor initializer must restore
        # default dispositions even when the parent has a custom handler.
        import signal

        previous = signal.signal(signal.SIGTERM, lambda *_: None)
        try:
            with WorkerPool(2) as pool:
                out = list(stream_out(_worker_sigterm_disposition,
                                      [(0, 0)], pool=pool))
        finally:
            signal.signal(signal.SIGTERM, previous)
        assert out == [True]

    def test_transient_crash_heals_transparently(self, arm):
        # every generation-0 worker dies on its 3rd task; the heal
        # rebuilds the pool, generation-1 workers run fault-free, and the
        # stream loses zero results (the default policy, retry=None)
        arm(kill_task=3, once=True)
        payloads = [(i, i) for i in range(20)]
        with WorkerPool(2) as pool:
            out = list(stream_out(_square, payloads, pool=pool))
            assert pool.restarts >= 1
            assert pool.quarantined == 0
        assert out == [(i, i * i) for i in range(20)]

    def test_poison_item_is_quarantined_in_its_slot(self, arm):
        # index 5 SIGKILLs whoever runs it, every generation
        arm(kill_index=5, once=False)
        payloads = [(i, i) for i in range(10)]
        with WorkerPool(2) as pool:
            out = list(stream_out(_square, payloads, pool=pool,
                                  retry=FAST))
            assert pool.quarantined == 1
            assert pool.restarts >= 1
            health = pool.health()
            assert health["quarantined"] == 1
            assert health["jobs"] == 2
        bad = out[5]
        assert isinstance(bad, ErrorOutcome)
        assert bad.kind == "crash"
        assert bad.attempts == FAST.max_retries + 1
        assert bad.payload == (5, 5)
        rest = out[:5] + out[6:]
        assert rest == [(i, i * i) for i in range(10) if i != 5]

    def test_memory_poison_quarantines_as_memory(self, arm):
        arm(memory_index=3, once=False)
        payloads = [(i, i) for i in range(8)]
        with WorkerPool(2) as pool:
            out = list(stream_out(_square, payloads, pool=pool,
                                  retry=FAST))
            # in-worker failures retry without breaking the executor
            assert pool.restarts == 0
            assert pool.retries >= FAST.max_retries
            assert pool.quarantined == 1
        bad = out[3]
        assert isinstance(bad, ErrorOutcome)
        assert bad.kind == "memory"
        assert "injected fault" in bad.error

    def test_slow_item_past_deadline_degrades(self, arm):
        arm(delay_index=2, delay_seconds=1.2, once=False)
        policy = RetryPolicy(max_retries=2, base_delay=0.01,
                             max_delay=0.05, jitter=0.0, deadline=0.4)
        payloads = [(i, i) for i in range(6)]
        with WorkerPool(2) as pool:
            pool.warm_up()      # fork time must not eat the deadline
            out = list(stream_out(_square, payloads, pool=pool,
                                  retry=policy))
            assert pool.quarantined == 1
        bad = out[2]
        assert isinstance(bad, ErrorOutcome)
        assert bad.kind == "deadline"
        assert bad.attempts == 1          # deadlines are never retried
        assert out[:2] == [(0, 0), (1, 1)]
        assert out[3:] == [(i, i * i) for i in range(3, 6)]

    def test_retry_off_restores_fail_fast(self, arm):
        arm(kill_task=1, once=False)
        payloads = [(i, i) for i in range(6)]
        with WorkerPool(2) as pool:
            with pytest.raises(BrokenExecutor):
                list(stream_out(_square, payloads, pool=pool,
                                retry=RetryPolicy.off()))

    def test_fan_out_is_strict_about_quarantine(self, arm):
        arm(kill_index=2, once=False)
        payloads = [(i, i) for i in range(8)]
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerCrashError) as info:
                fan_out(_square, payloads, pool=pool, retry=FAST)
        assert info.value.outcome.kind == "crash"

    def test_resolved_passthrough_survives_healing(self, arm):
        arm(kill_task=2, once=True)
        payloads = [(0, 2), Resolved("hit-a"), (1, 3), Resolved("hit-b"),
                    (2, 4), (3, 5), (4, 6), (5, 7)]
        with WorkerPool(2) as pool:
            out = list(stream_out(_square, payloads, pool=pool,
                                  retry=FAST))
        assert out == [(0, 4), "hit-a", (1, 9), "hit-b", (2, 16),
                       (3, 25), (4, 36), (5, 49)]

    def test_serial_stream_never_consults_fault_plans(self, arm):
        # jobs=1 runs in-process; a kill plan must not touch pytest
        arm(kill_task=1, once=False)
        out = list(stream_out(_square, [(i, i) for i in range(4)],
                              jobs=1))
        assert out == [(i, i * i) for i in range(4)]

    def test_rebuild_is_idempotent_for_an_observed_executor(self):
        pool = WorkerPool(2)
        try:
            first = pool.executor
            healed = pool.rebuild(broken=first)
            assert healed is not first
            assert pool.restarts == 1
            # a second thread reporting the same stale executor no-ops
            assert pool.rebuild(broken=first) is healed
            assert pool.restarts == 1
            # an unconditional rebuild always swaps
            assert pool.rebuild() is not healed
            assert pool.restarts == 2
        finally:
            pool.close()

    def test_serial_pool_has_no_executor_to_heal(self):
        with WorkerPool(1) as pool:
            assert pool.serial
            assert pool.executor is None
            assert pool.rebuild() is None
            assert pool.restarts == 0


# --------------------------------------------------------------------------- #
# solve_stream / solve_many degradation
# --------------------------------------------------------------------------- #

def _trees(n=6, size=18):
    return [cotree_to_text(random_cotree(size, seed=s)) for s in range(n)]


class TestSolveStreamResilience:
    def test_worker_kill_mid_stream_loses_zero_results(self, arm):
        # the headline regression: SIGKILL a worker mid-stream, remaining
        # instances still yield, in order, with bit-identical answers
        trees = _trees()
        expected = [solve(t).num_paths for t in trees]
        arm(kill_task=2, once=True)
        with WorkerPool(2) as pool:
            sols = list(solve_stream(trees, pool=pool, retry=FAST,
                                     on_error="emit"))
            assert pool.restarts >= 1
        assert [s.backend for s in sols].count("error") == 0
        assert [s.num_paths for s in sols] == expected
        assert [s.provenance["batch_index"] for s in sols] \
            == list(range(len(trees)))

    def test_poison_instance_degrades_to_error_solution(self, arm):
        trees = _trees()
        expected = [solve(t).num_paths for t in trees]
        arm(kill_index=3, once=False)
        with WorkerPool(2) as pool:
            sols = list(solve_stream(trees, pool=pool, retry=FAST,
                                     on_error="emit"))
        bad = sols[3]
        assert bad.backend == "error"
        assert bad.answer is None
        assert bad.provenance["error_kind"] == "crash"
        assert bad.provenance["attempts"] == FAST.max_retries + 1
        assert bad.provenance["batch_index"] == 3
        for i, s in enumerate(sols):
            if i != 3:
                assert s.num_paths == expected[i]

    def test_on_error_fail_raises_worker_crash_error(self, arm):
        arm(kill_index=1, once=False)
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerCrashError):
                list(solve_stream(_trees(4), pool=pool, retry=FAST))

    def test_on_error_is_validated_up_front(self):
        with pytest.raises(ValueError, match="on_error"):
            solve_stream([], on_error="explode")

    def test_corrupt_worker_result_is_detected(self, arm):
        trees = _trees(5)
        arm(corrupt_index=2, once=False)
        with WorkerPool(2) as pool:
            sols = list(solve_stream(trees, pool=pool, retry=FAST,
                                     on_error="emit"))
        bad = sols[2]
        assert bad.backend == "error"
        assert bad.provenance["error_kind"] == "corrupt"
        assert "instead of a Solution" in bad.provenance["error"]
        assert all(s.backend != "error"
                   for i, s in enumerate(sols) if i != 2)

    def test_forest_route_is_immune_to_worker_faults(self, arm):
        # tiny instances sweep in the calling process and never meet the
        # poison; the big instance at index 3 goes to the pool and dies
        tiny = [cotree_to_text(random_cotree(8, seed=s)) for s in range(5)]
        big = cotree_to_text(random_cotree(40, seed=9))
        problems = tiny[:3] + [big] + tiny[3:]
        arm(kill_index=3, once=False)
        with WorkerPool(2) as pool:
            sols = list(solve_stream(problems, pool=pool, retry=FAST,
                                     on_error="emit", batch_small=16))
        assert sols[3].backend == "error"
        assert sols[3].provenance["error_kind"] == "crash"
        for i, s in enumerate(sols):
            if i != 3:
                assert s.provenance["route"] == "forest"
                assert s.num_paths == solve(problems[i]).num_paths
        assert [s.provenance["batch_index"] for s in sols] \
            == list(range(len(problems)))

    def test_failures_are_never_cached(self, arm):
        trees = _trees(4)
        cache = SolutionCache(32)
        arm(kill_index=1, once=False)
        with WorkerPool(2) as pool:
            sols = list(solve_stream(trees, pool=pool, retry=FAST,
                                     on_error="emit", cache=cache))
        assert sols[1].backend == "error"
        assert cache.stats()["size"] == 3    # the three real solutions
        # a fault-free serial pass: hits for the survivors, a fresh miss
        # (not a cached failure) for the quarantined instance
        os.environ.pop(FAULTS_ENV, None)
        clear_active_plan()
        again = list(solve_stream(trees, cache=cache))
        states = [s.provenance["cache"] for s in again]
        assert states == ["hit", "miss", "hit", "hit"]
        assert again[1].num_paths == solve(trees[1]).num_paths


# --------------------------------------------------------------------------- #
# CircuitBreaker (fake clock)
# --------------------------------------------------------------------------- #

class _Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clk = _Clock()
        br = CircuitBreaker(threshold=3, cooldown=5.0, clock=clk)
        assert br.state == "closed" and br.allow()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed" and br.allow()
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.retry_after() == pytest.approx(5.0)
        assert br.opened_total == 1

    def test_success_resets_the_failure_streak(self):
        br = CircuitBreaker(threshold=3, clock=_Clock())
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        clk = _Clock()
        br = CircuitBreaker(threshold=1, cooldown=2.0, clock=clk)
        br.record_failure()
        assert not br.allow()
        clk.advance(2.5)
        assert br.state == "half_open"
        assert br.allow()            # the probe
        assert not br.allow()        # everyone else keeps waiting
        br.record_success()
        assert br.state == "closed"
        assert br.allow() and br.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clk = _Clock()
        br = CircuitBreaker(threshold=1, cooldown=2.0, clock=clk)
        br.record_failure()
        clk.advance(2.5)
        assert br.allow()
        br.record_failure()
        assert br.state == "open"
        assert br.opened_total == 2
        assert br.retry_after() == pytest.approx(2.0)

    def test_retry_after_counts_down(self):
        clk = _Clock()
        br = CircuitBreaker(threshold=1, cooldown=4.0, clock=clk)
        br.record_failure()
        clk.advance(1.0)
        assert br.retry_after() == pytest.approx(3.0)

    def test_snapshot_and_validation(self):
        br = CircuitBreaker(threshold=2, cooldown=1.5, clock=_Clock())
        snap = br.snapshot()
        assert snap == {"state": "closed", "consecutive_failures": 0,
                        "threshold": 2, "cooldown_seconds": 1.5,
                        "opened_total": 0}
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0.0)


# --------------------------------------------------------------------------- #
# the server: structured 500s, breaker cycle, healing behind a 200
# --------------------------------------------------------------------------- #

def make_app(**overrides) -> ServerApp:
    defaults = dict(port=0, jobs=1, log_level="ERROR")
    defaults.update(overrides)
    return ServerApp(Settings(**defaults))


def run_app(coro_fn, **overrides):
    """Run ``await coro_fn(app)`` inside a fresh loop, closing the app."""
    app = make_app(**overrides)

    async def driver():
        try:
            return await coro_fn(app)
        finally:
            app.close()

    return asyncio.run(driver())


def solve_body(problem=SMALL, **extra) -> bytes:
    return json.dumps({"problem": problem, **extra}).encode()


class TestServerResilience:
    def test_unexpected_exception_returns_structured_500(self):
        async def scenario(app):
            def boom():
                raise RuntimeError("kaboom")
            app._healthz_body = boom
            r = await app.dispatch("GET", "/healthz")
            m = await app.dispatch("GET", "/metrics")
            return r, m

        r, m = run_app(scenario)
        assert r.status == 500
        error = r.json()["error"]
        assert error["status"] == 500
        assert "RuntimeError" in error["message"]
        assert "request_id" in error
        assert re.search(r"repro_internal_errors_total 1\b",
                         m.body.decode("utf8"))

    def test_breaker_opens_rejects_then_recovers(self):
        async def scenario(app):
            original = app._handle_solve
            state = {"fail": True}

            async def flaky(req):
                if state["fail"]:
                    raise RuntimeError("solver down")
                return await original(req)

            app._handle_solve = flaky
            r1 = await app.dispatch("POST", "/v1/solve", solve_body())
            r2 = await app.dispatch("POST", "/v1/solve", solve_body())
            r3 = await app.dispatch("POST", "/v1/solve", solve_body())
            h_open = await app.dispatch("GET", "/healthz")
            await asyncio.sleep(0.25)            # past the cooldown
            state["fail"] = False
            r4 = await app.dispatch("POST", "/v1/solve", solve_body())
            h_closed = await app.dispatch("GET", "/healthz")
            m = await app.dispatch("GET", "/metrics")
            return r1, r2, r3, h_open, r4, h_closed, m

        r1, r2, r3, h_open, r4, h_closed, m = run_app(
            scenario, breaker_threshold=2, breaker_cooldown=0.2,
            retries=0)
        assert (r1.status, r2.status) == (500, 500)
        # the third request is turned away without touching the solver
        assert r3.status == 503
        assert int(r3.headers["Retry-After"]) >= 1
        assert "circuit breaker" in r3.json()["error"]["message"]
        assert h_open.json()["breaker"]["state"] == "open"
        # after the cooldown the half-open probe succeeds and closes it
        assert r4.status == 200
        assert h_closed.json()["breaker"]["state"] == "closed"
        text = m.body.decode("utf8")
        assert re.search(r"repro_breaker_rejections_total 1\b", text)
        assert re.search(r"repro_breaker_opened_total 1\b", text)
        assert 'repro_breaker_state{state="closed"} 1' in text

    def test_healthz_and_metrics_bypass_an_open_breaker(self):
        async def scenario(app):
            app.breaker.record_failure()          # threshold=1: open
            h = await app.dispatch("GET", "/healthz")
            m = await app.dispatch("GET", "/metrics")
            s = await app.dispatch("POST", "/v1/solve", solve_body())
            return h, m, s

        h, m, s = run_app(scenario, breaker_threshold=1,
                          breaker_cooldown=30.0)
        assert h.status == 200 and m.status == 200
        assert s.status == 503

    def test_breaker_disabled_with_threshold_zero(self):
        async def scenario(app):
            assert app.breaker is None
            h = await app.dispatch("GET", "/healthz")
            return h

        h = run_app(scenario, breaker_threshold=0)
        assert h.json()["breaker"] is None

    def test_worker_crash_through_the_server_heals(self, arm):
        # a real worker process SIGKILLed mid-solve: the request retries
        # on a rebuilt pool and still answers 200, with the restart
        # visible in /healthz and /metrics
        arm(kill_task=1, once=True)

        async def scenario(app):
            r = await app.dispatch("POST", "/v1/solve", solve_body())
            h = await app.dispatch("GET", "/healthz")
            m = await app.dispatch("GET", "/metrics")
            return r, h, m

        r, h, m = run_app(scenario, jobs=2, retries=2)
        assert r.status == 200
        assert r.json()["num_paths"] == 2
        health = h.json()
        assert health["pool"]["restarts"] >= 1
        assert health["breaker"]["state"] == "closed"
        found = re.search(r"repro_pool_restarts_total (\d+)",
                          m.body.decode("utf8"))
        assert found and int(found.group(1)) >= 1

    def test_persistent_crash_degrades_to_structured_500(self, arm):
        arm(kill_task=1, once=False)   # every worker generation dies

        async def scenario(app):
            return await app.dispatch("POST", "/v1/solve", solve_body())

        r = run_app(scenario, jobs=2, retries=1)
        assert r.status == 500
        error = r.json()["error"]
        assert "worker crash" in error["message"]
        assert "request_id" in error

    def test_batch_poison_degrades_one_record(self, arm):
        trees = _trees(3, size=20)
        arm(kill_index=1, once=False)

        async def scenario(app):
            body = json.dumps({"problems": trees}).encode()
            r = await app.dispatch("POST", "/v1/solve_batch", body)
            h = await app.dispatch("GET", "/healthz")
            return r, h

        r, h = run_app(scenario, jobs=2, retries=1, batch_small=0)
        assert r.status == 200
        data = r.json()
        assert data["count"] == 3
        bad = data["solutions"][1]
        assert bad["backend"] == "error"
        assert bad["provenance"]["error_kind"] == "crash"
        assert bad["provenance"]["batch_index"] == 1
        for i in (0, 2):
            good = data["solutions"][i]
            assert good["backend"] != "error"
            assert good["num_paths"] == solve(trees[i]).num_paths
        assert h.json()["pool"]["quarantined"] >= 1
