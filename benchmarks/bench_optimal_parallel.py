"""E4 — Theorem 5.3: the full parallel solver runs in O(log n) simulated time
with n/log n EREW processors and O(n)-ish work.

Regenerates the headline scaling table: for growing n, the number of
synchronous rounds, the Brent-scheduled time on ceil(n / log2 n) processors,
the executed work, and the growth-model fits.
"""

import pytest

from repro.analysis import best_model, compute_metrics, log2ceil, loglog_slope
from repro.baselines import sequential_path_cover
from repro.cograph import minimum_path_cover_size, random_cotree
from repro.core import minimum_path_cover_parallel
from repro.pram import optimal_processor_count

from _util import write_result_table

SIZES = [64, 128, 256, 512, 1024, 2048, 4096]


def solve(n: int, seed: int = 0, join_prob: float = 0.5):
    tree = random_cotree(n, seed=seed + n, join_prob=join_prob)
    return tree, minimum_path_cover_parallel(tree)


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_parallel_solver_wallclock(benchmark, n):
    """Wall-clock of the simulated parallel solver (pytest-benchmark)."""
    tree = random_cotree(n, seed=n, join_prob=0.5)
    result = benchmark(lambda: minimum_path_cover_parallel(tree))
    assert result.num_paths == minimum_path_cover_size(tree)


def test_theorem_5_3_scaling_table(benchmark):
    """The E4 table: rounds ~ log n, work ~ n, across a size sweep."""
    rows = []
    for n in SIZES:
        tree, result = solve(n)
        _, stats = sequential_path_cover(tree, return_stats=True)
        metrics = compute_metrics(
            n=n, parallel_time=result.report.time, work=result.report.work,
            processors=optimal_processor_count(n),
            sequential_time=stats.total_operations)
        rows.append({
            "n": n,
            "processors": optimal_processor_count(n),
            "rounds": result.report.rounds,
            "time(p=n/log n)": result.report.time,
            "work": result.report.work,
            "work/n": round(metrics.work_per_n, 1),
            "rounds/log2(n)": round(result.report.rounds / log2ceil(n), 1),
            "paths": result.num_paths,
        })
    sizes = [r["n"] for r in rows]
    rounds = [r["rounds"] for r in rows]
    work = [r["work"] for r in rows]
    rounds_fit = best_model(sizes, rounds, models=["1", "log n", "log^2 n",
                                                   "sqrt n", "n"])
    work_fit = best_model(sizes, work, models=["n", "n log n", "n^2"])
    rows.append({"n": "fit", "processors": "",
                 "rounds": f"~ {rounds_fit.model}",
                 "time(p=n/log n)": "",
                 "work": f"~ {work_fit.model}",
                 "work/n": "", "rounds/log2(n)": "", "paths": ""})
    write_result_table("E4", "Theorem 5.3 — optimal parallel path cover scaling",
                       rows)

    # the shape claims of the paper
    assert rounds_fit.model in ("log n", "log^2 n")
    assert loglog_slope(sizes, rounds) < 0.35          # far from polynomial
    assert work_fit.model in ("n", "n log n")
    assert loglog_slope(sizes, work) < 1.35            # far from quadratic

    # one representative timing for the benchmark harness
    benchmark(lambda: solve(1024))
