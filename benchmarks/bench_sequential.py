"""E2 — Lemma 2.3: the sequential algorithm runs in O(n) time.

Measures both the operation counter of the implementation and wall-clock
time across a geometric size sweep and fits growth models to each.
"""

import time

import pytest

from repro.analysis import best_model, loglog_slope
from repro.baselines import sequential_path_cover
from repro.cograph import minimum_path_cover_size, random_cotree

from _util import write_result_table

SIZES = [256, 512, 1024, 2048, 4096, 8192, 16384]


@pytest.mark.parametrize("n", [1024, 8192])
def test_sequential_wallclock(benchmark, n):
    tree = random_cotree(n, seed=n, join_prob=0.5)
    cover = benchmark(lambda: sequential_path_cover(tree))
    assert cover.num_paths == minimum_path_cover_size(tree)


def test_lemma_2_3_linearity_table(benchmark):
    rows = []
    for n in SIZES:
        tree = random_cotree(n, seed=n, join_prob=0.5)
        t0 = time.perf_counter()
        cover, stats = sequential_path_cover(tree, return_stats=True)
        elapsed = time.perf_counter() - t0
        rows.append({
            "n": n,
            "operations": stats.total_operations,
            "ops/n": round(stats.total_operations / n, 2),
            "wall-clock (ms)": round(elapsed * 1e3, 2),
            "paths": cover.num_paths,
        })
    sizes = [r["n"] for r in rows]
    ops = [r["operations"] for r in rows]
    fit = best_model(sizes, ops, models=["n", "n log n", "n^2"])
    rows.append({"n": "fit", "operations": f"~ {fit.model}", "ops/n": "",
                 "wall-clock (ms)": "", "paths": ""})
    write_result_table("E2", "Lemma 2.3 — sequential algorithm is linear", rows)

    assert fit.model == "n"
    assert loglog_slope(sizes, ops) < 1.15

    benchmark(lambda: sequential_path_cover(random_cotree(4096, seed=1)))
