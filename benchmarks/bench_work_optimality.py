"""E7 — work-optimality: the parallel algorithm's total work stays within a
constant factor of the sequential operation count, and the Brent-scheduled
speedup with p = n / log2 n processors does not collapse as n grows.
"""

import pytest

from repro.analysis import compute_metrics, loglog_slope
from repro.baselines import sequential_path_cover
from repro.cograph import random_cotree
from repro.core import minimum_path_cover_parallel
from repro.pram import optimal_processor_count

from _util import write_result_table

SIZES = [128, 256, 512, 1024, 2048, 4096]


@pytest.mark.parametrize("n", [512, 4096])
def test_work_optimality_wallclock(benchmark, n):
    tree = random_cotree(n, seed=n, join_prob=0.5)
    benchmark(lambda: minimum_path_cover_parallel(tree))


def test_work_optimality_table(benchmark):
    rows = []
    ratios = []
    for n in SIZES:
        tree = random_cotree(n, seed=n, join_prob=0.5)
        result = minimum_path_cover_parallel(tree)
        _, stats = sequential_path_cover(tree, return_stats=True)
        p = optimal_processor_count(n)
        m = compute_metrics(n, result.report.time, result.report.work, p,
                            sequential_time=stats.total_operations)
        ratios.append(m.work_ratio)
        rows.append({
            "n": n, "processors": p,
            "parallel work": result.report.work,
            "sequential ops": stats.total_operations,
            "work ratio": round(m.work_ratio, 1),
            "speedup": round(m.speedup, 2),
            "efficiency": round(m.efficiency, 3),
        })
    write_result_table("E7", "work-optimality and Brent-scheduled efficiency",
                       rows)

    # the work ratio is allowed to carry a constant (the simulator counts
    # every primitive's elementary operations) but must not *grow*
    # polynomially with n.
    assert loglog_slope(SIZES, ratios) < 0.35
    assert max(ratios) < 20 * min(ratios)

    benchmark(lambda: minimum_path_cover_parallel(
        random_cotree(1024, seed=3, join_prob=0.5)))
