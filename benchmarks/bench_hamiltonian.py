"""E6 — Hamiltonian path / cycle queries with the same bounds (Section 1
corollary), swept across the p(v) = L(w) crossover of complete multipartite
graphs where Hamiltonicity switches on.
"""

import pytest

from repro.cograph import (
    CographAdjacencyOracle,
    join_of_independent_sets,
    minimum_path_cover_size,
    random_cotree,
)
from repro.core import (
    hamiltonian_cycle,
    hamiltonian_path,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    minimum_path_cover_parallel,
)

from _util import write_result_table


@pytest.mark.parametrize("n", [512, 2048])
def test_hamiltonian_path_wallclock(benchmark, n):
    tree = join_of_independent_sets([n // 2, n // 2])
    path = benchmark(lambda: hamiltonian_path(tree))
    assert path is not None and len(path) == tree.num_vertices


def test_hamiltonicity_crossover_table(benchmark):
    """Sweep join(I_a, I_b) with a + b = 64: the paper's machinery pinpoints
    the crossover at a = b (cycle) / a = b + 1 (path but no cycle)."""
    rows = []
    total = 64
    for a in range(32, 43):
        b = total - a
        tree = join_of_independent_sets([a, b])
        p = minimum_path_cover_size(tree)
        hp = has_hamiltonian_path(tree)
        hc = has_hamiltonian_cycle(tree)
        rows.append({
            "larger side a": a, "smaller side b": b,
            "min path cover": p,
            "hamiltonian path": hp, "hamiltonian cycle": hc,
        })
        # independent analytic expectations
        assert p == max(1, a - b)
        assert hp == (a - b <= 1)
        assert hc == (a <= b)
    write_result_table(
        "E6", "Hamiltonicity crossover on complete bipartite graphs (n = 64)",
        rows)

    # witnesses on a couple of instances
    tree = join_of_independent_sets([32, 32])
    cycle = hamiltonian_cycle(tree)
    oracle = CographAdjacencyOracle(tree)
    assert cycle is not None and oracle.path_is_valid(cycle) \
        and oracle.adjacent(cycle[0], cycle[-1])

    tree2 = random_cotree(512, seed=7, join_prob=0.8)
    result = minimum_path_cover_parallel(tree2)
    assert (result.num_paths == 1) == has_hamiltonian_path(tree2)

    benchmark(lambda: hamiltonian_path(join_of_independent_sets([512, 512])))
