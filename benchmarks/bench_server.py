"""E14 — the service layer under concurrent load.

Boots a real :class:`repro.server.ReproServer` on an OS-assigned port and
drives it with blocking HTTP clients on a thread pool, measuring the end
of the pipeline a deployment actually sees:

1. **Concurrent throughput.**  A mixed-task request stream (path cover,
   max clique, lower bound) from many client threads; wall-clock
   throughput plus client-observed p50/p99 latency.
2. **Repeat traffic hits the shared cache.**  A skewed mix (few distinct
   instances, many requests) must show a non-zero
   ``repro_cache_hit_rate`` on ``/metrics`` and answer hits faster than
   misses.
3. **Overload sheds, never breaks.**  A burst of expensive requests past
   ``queue_limit`` must be answered with ``429 + Retry-After`` (never a
   5xx), and the server must keep serving afterwards.
4. **Graceful drain.**  The shutdown path drains in-flight work and
   reports it (exercised implicitly: every scenario ends in a clean
   ``stop()`` that must return drained=True).

Run standalone for the CI smoke configuration::

    PYTHONPATH=src python benchmarks/bench_server.py --smoke
    PYTHONPATH=src python benchmarks/bench_server.py --smoke \
        --check benchmarks/results/BENCH_PR7.json
"""

import argparse
import asyncio
import http.client
import json
import os
import statistics
import sys
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

from repro.cograph import random_cotree
from repro.io import cotree_to_text
from repro.server import ReproServer, Settings

from _util import RESULTS_DIR, write_result_table

DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_PR7.json")

#: request volume (smoke is the CI shape; full is the reported table)
FULL_REQUESTS, SMOKE_REQUESTS = 2_000, 300
FULL_CLIENTS, SMOKE_CLIENTS = 16, 8
DISTINCT_INSTANCES = 24
BURST_SIZE = 12

COLUMNS = ["scenario", "requests", "clients", "seconds", "req/s",
           "p50_ms", "p99_ms", "detail"]


def _row(scenario, requests, clients, seconds, latencies_ms, detail=""):
    latencies = sorted(latencies_ms) or [0.0]

    def pct(q):
        return latencies[min(len(latencies) - 1,
                             int(q * (len(latencies) - 1)))]

    return {"scenario": scenario, "requests": requests, "clients": clients,
            "seconds": round(seconds, 4),
            "req/s": round(requests / max(seconds, 1e-9)),
            "p50_ms": round(pct(0.50), 3), "p99_ms": round(pct(0.99), 3),
            "detail": detail}


def _post(port, path, payload, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        t0 = time.perf_counter()
        conn.request("POST", path, json.dumps(payload),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        body = response.read()
        return response.status, body, (time.perf_counter() - t0) * 1000
    finally:
        conn.close()


def _get(port, path, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


async def _aget(port, path):
    """``_get`` off the event loop (a blocking client on the loop thread
    would deadlock against the server it is querying)."""
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, _get, port, path)


async def _scrape(port, name: str) -> float:
    """One numeric sample from the /metrics exposition."""
    status, body = await _aget(port, "/metrics")
    assert status == 200
    for line in body.decode().splitlines():
        if line.startswith(name) and "{" not in line.split(" ")[0][len(name):]:
            token = line.split(" ")[-1]
            try:
                return float(token)
            except ValueError:
                continue
    raise AssertionError(f"{name} not found in /metrics")


async def _drive(server: ReproServer, clients: int, payloads):
    """Fan ``payloads`` over ``clients`` blocking client threads."""
    loop = asyncio.get_running_loop()
    with ThreadPoolExecutor(clients) as pool:
        futures = [loop.run_in_executor(
            pool, _post, server.port, "/v1/solve", payload)
            for payload in payloads]
        return await asyncio.gather(*futures)


# --------------------------------------------------------------------------- #
# scenarios (each boots its own server and must drain cleanly)
# --------------------------------------------------------------------------- #

async def run_mixed_throughput(requests: int, clients: int):
    """Mixed-task traffic with a skewed instance mix (cache-friendly)."""
    texts = [cotree_to_text(random_cotree(48 + 8 * (s % 5), seed=s))
             for s in range(DISTINCT_INSTANCES)]
    tasks = ("path_cover", "max_clique", "path_cover_size")
    payloads = [{"problem": texts[i % DISTINCT_INSTANCES],
                 "task": tasks[i % len(tasks)],
                 "options": {"backend": "fast"}}
                for i in range(requests)]
    settings = Settings(port=0, jobs=1, queue_limit=max(64, clients * 4),
                        cache_size=256, log_level="ERROR")
    server = ReproServer(settings)
    async with server:
        t0 = time.perf_counter()
        results = await _drive(server, clients, payloads)
        seconds = time.perf_counter() - t0
        statuses = Counter(status for status, _, _ in results)
        assert statuses == {200: requests}, f"unexpected statuses {statuses}"
        hit_rate = await _scrape(server.port, "repro_cache_hit_rate")
        served_p99 = await _scrape(server.port, "repro_uptime_seconds")
        assert served_p99 > 0
    drained = await server.stop()
    assert drained is not False
    latencies = [ms for _, _, ms in results]
    row = _row("mixed tasks, concurrent clients", requests, clients,
               seconds, latencies,
               f"{DISTINCT_INSTANCES} distinct instances, "
               f"cache hit rate {hit_rate:.2f}")
    return row, {"seconds": round(seconds, 4),
                 "req_per_s": round(requests / seconds, 1),
                 "p50_ms": row["p50_ms"], "p99_ms": row["p99_ms"],
                 "cache_hit_rate": round(hit_rate, 4)}


async def run_cache_hot_traffic(requests: int, clients: int):
    """One instance asked over and over: almost every answer is a hit."""
    payload = {"problem": cotree_to_text(random_cotree(400, seed=3))}
    settings = Settings(port=0, jobs=1, cache_size=16, log_level="ERROR")
    server = ReproServer(settings)
    async with server:
        await _drive(server, 1, [payload])           # warm the one entry
        t0 = time.perf_counter()
        results = await _drive(server, clients, [payload] * requests)
        seconds = time.perf_counter() - t0
        assert all(status == 200 for status, _, _ in results)
        hits = await _scrape(server.port, "repro_cache_hits_total")
        assert hits >= requests, f"expected hot cache, hits={hits}"
    await server.stop()
    latencies = [ms for _, _, ms in results]
    row = _row("cache-hot repeat traffic", requests, clients, seconds,
               latencies, f"{int(hits)} hits (n=400 instance)")
    return row, {"req_per_s": round(requests / seconds, 1),
                 "p50_ms": row["p50_ms"]}


async def run_saturation_burst(burst: int):
    """Expensive requests past queue_limit: 429s, no 5xx, then recovery."""
    payload = {"problem": cotree_to_text(random_cotree(20_000, seed=9))}
    settings = Settings(port=0, jobs=1, queue_limit=2, cache_size=0,
                        log_level="ERROR")
    server = ReproServer(settings)
    async with server:
        t0 = time.perf_counter()
        results = await _drive(server, burst, [payload] * burst)
        seconds = time.perf_counter() - t0
        statuses = Counter(status for status, _, _ in results)
        assert set(statuses) <= {200, 429}, f"5xx under load: {statuses}"
        assert statuses[429] >= 1, "burst never saturated the queue"
        assert statuses[200] >= 1, "nothing was served during the burst"
        rejected = await _scrape(server.port, "repro_rejected_total")
        assert rejected == statuses[429]
        status, _ = await _aget(server.port, "/healthz")  # still alive
        assert status == 200
    await server.stop()
    latencies = [ms for _, _, ms in results]
    row = _row("saturation burst (queue_limit=2)", burst, burst, seconds,
               latencies,
               f"{statuses[200]} served, {statuses[429]} shed with 429")
    return row, {"served": statuses[200], "rejected_429": statuses[429]}


# --------------------------------------------------------------------------- #
# harness entry points
# --------------------------------------------------------------------------- #

def run_all(*, smoke: bool):
    requests = SMOKE_REQUESTS if smoke else FULL_REQUESTS
    clients = SMOKE_CLIENTS if smoke else FULL_CLIENTS

    async def scenarios():
        mixed_row, mixed_stats = await run_mixed_throughput(requests,
                                                            clients)
        hot_row, hot_stats = await run_cache_hot_traffic(requests // 2,
                                                         clients)
        burst_row, burst_stats = await run_saturation_burst(BURST_SIZE)
        return ([mixed_row, hot_row, burst_row],
                {"smoke": smoke, "requests": requests, "clients": clients,
                 "mixed": mixed_stats, "cache_hot": hot_stats,
                 "saturation": burst_stats})

    return asyncio.run(scenarios())


def _check(stats, baseline_path: str) -> int:
    """Regression gate: throughput within 3x of the stored baseline."""
    with open(baseline_path, encoding="utf8") as fh:
        baseline = json.load(fh)
    failures = []
    floor = baseline["mixed"]["req_per_s"] / 3.0
    if stats["mixed"]["req_per_s"] < floor:
        failures.append(
            f"mixed throughput {stats['mixed']['req_per_s']} req/s fell "
            f"below a third of the baseline "
            f"({baseline['mixed']['req_per_s']} req/s)")
    if stats["saturation"]["rejected_429"] < 1:
        failures.append("saturation burst produced no 429s")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_server_load_table(benchmark):
    """The E14 table (pytest benchmarks/ entry point)."""
    rows, stats = run_all(smoke=True)
    write_result_table("E14", "the service layer under concurrent load",
                       rows, COLUMNS)
    assert stats["mixed"]["cache_hit_rate"] > 0
    assert stats["saturation"]["rejected_429"] >= 1
    benchmark(lambda: statistics.median([1.0]))      # table is the product


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run")
    parser.add_argument("--out", default=None,
                        help=f"write machine-readable stats "
                             f"(default {DEFAULT_OUT} on full runs)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against a stored BENCH_*.json; "
                             "exit 1 on a throughput regression")
    args = parser.parse_args(argv)

    rows, stats = run_all(smoke=args.smoke)
    write_result_table("E14", "the service layer under concurrent load",
                       rows, COLUMNS)
    out = args.out if args.out is not None else \
        (None if args.smoke else DEFAULT_OUT)
    if out:
        with open(out, "w", encoding="utf8") as fh:
            json.dump(stats, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
    if args.check:
        return _check(stats, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
