"""E3 — Lemma 2.4: p(u) for every node in O(log n) time and O(n) work by
tree contraction, on both random and degenerate (caterpillar) cotrees.
"""

import numpy as np
import pytest

from repro.analysis import best_model, log2ceil
from repro.cograph import (
    binarize_cotree,
    caterpillar_cotree,
    make_leftist,
    path_cover_sizes_per_node,
    random_cotree,
)
from repro.pram import PRAM
from repro.primitives import evaluate_max_plus_tree

from _util import write_result_table

SIZES = [128, 256, 512, 1024, 2048, 4096]


def count_paths(binary, machine):
    L = binary.subtree_leaf_counts()
    jc = np.zeros(binary.num_nodes, dtype=np.int64)
    jc[binary.internal_nodes] = L[binary.right[binary.internal_nodes]]
    return evaluate_max_plus_tree(machine, binary.left, binary.right,
                                  binary.parent, binary.root, binary.kind, jc,
                                  np.ones(binary.num_nodes, dtype=np.int64))


@pytest.mark.parametrize("family", ["random", "caterpillar"])
def test_counting_wallclock(benchmark, family):
    n = 2048
    tree = (caterpillar_cotree(n) if family == "caterpillar"
            else random_cotree(n, seed=n))
    binary = make_leftist(binarize_cotree(tree))
    result = benchmark(lambda: count_paths(binary, None))
    assert np.array_equal(result, path_cover_sizes_per_node(binary))


def test_lemma_2_4_scaling_table(benchmark):
    rows = []
    for family in ("random", "caterpillar"):
        for n in SIZES:
            tree = (caterpillar_cotree(n) if family == "caterpillar"
                    else random_cotree(n, seed=n, join_prob=0.5))
            binary = make_leftist(binarize_cotree(tree))
            machine = PRAM()
            count_paths(binary, machine)
            rows.append({
                "family": family, "n": n,
                "rounds": machine.rounds,
                "rounds/log2(n)": round(machine.rounds / log2ceil(n), 2),
                "work": machine.work,
                "work/n": round(machine.work / n, 2),
            })
    write_result_table("E3", "Lemma 2.4 — p(u) by parallel tree contraction",
                       rows)

    for family in ("random", "caterpillar"):
        fam_rows = [r for r in rows if r["family"] == family]
        sizes = [r["n"] for r in fam_rows]
        fit_r = best_model(sizes, [r["rounds"] for r in fam_rows],
                           models=["1", "log n", "log^2 n", "sqrt n", "n"])
        fit_w = best_model(sizes, [r["work"] for r in fam_rows],
                           models=["n", "n log n", "n^2"])
        assert fit_r.model in ("log n", "1"), family
        assert fit_w.model == "n", family

    benchmark(lambda: count_paths(
        make_leftist(binarize_cotree(random_cotree(2048, seed=3))), None))
