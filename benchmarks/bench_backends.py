"""E9 — execution backends: the fast vectorized backend vs the PRAM simulator.

The same eight-stage pipeline runs on both execution backends; the covers are
identical, so the wall-clock gap is exactly the price of fidelity (per-step
Brent accounting + EREW conflict checking).  The table reports, per generator
family and size, both backends' wall-clock, the speedup, and the per-stage
timing breakdown the named-stage pipeline collects; a batch row shows the
``solve_many`` throughput API on the same instances.

Run standalone for the smoke configuration used by CI::

    PYTHONPATH=src python benchmarks/bench_backends.py --smoke
"""

import sys
import time

import pytest

from repro.cograph import (
    caterpillar_cotree,
    minimum_path_cover_size,
    random_cotree,
    threshold_cograph,
    union_of_cliques,
)
from repro.api import solve, solve_many

from _util import solution_row, write_result_table

FAMILIES = {
    "random": lambda n: random_cotree(n, seed=n, join_prob=0.5),
    "caterpillar": lambda n: caterpillar_cotree(n),
    "union-of-cliques": lambda n: union_of_cliques([8] * max(1, n // 8)),
    "threshold": lambda n: threshold_cograph([i % 2 for i in range(n)]),
}

SIZES = [1000, 4000, 10000]
SMOKE_SIZES = [200, 600]

#: the acceptance threshold asserted at the largest size
MIN_SPEEDUP_AT_10K = 5.0

#: E9 table columns (solution_row base columns + the harness extras)
COLUMNS = ["family", "task", "backend", "n", "paths",
           "fast (s)", "pram (s)", "speedup", "slowest fast stage"]


def _time_solve(tree, backend: str):
    t0 = time.perf_counter()
    result = solve(tree, backend=backend)
    return time.perf_counter() - t0, result


def run_backend_comparison(sizes, *, repeats: int = 1):
    """The E9 sweep; returns (rows, speedup at the largest size)."""
    rows = []
    largest_speedups = []
    for family, make in FAMILIES.items():
        for n in sizes:
            tree = make(n)
            fast_t, fast = _time_solve(tree, "fast")   # warm-up + measure
            for _ in range(repeats - 1):
                t, _ = _time_solve(tree, "fast")
                fast_t = min(fast_t, t)
            pram_t, pram = _time_solve(tree, "pram")
            assert fast.num_paths == pram.num_paths == \
                minimum_path_cover_size(tree)
            slowest = max(fast.stage_seconds, key=fast.stage_seconds.get)
            speedup = pram_t / max(fast_t, 1e-9)
            if n == max(sizes):
                largest_speedups.append(speedup)
            rows.append(solution_row(
                fast, family=family,
                **{"fast (s)": round(fast_t, 4),
                   "pram (s)": round(pram_t, 4),
                   "speedup": round(speedup, 1),
                   "slowest fast stage": slowest}))
    return rows, (min(largest_speedups) if largest_speedups else None)


def run_batch_throughput(n: int = 500, count: int = 8):
    """One ``solve_many`` row, shaped like the family rows."""
    trees = [random_cotree(n, seed=s, join_prob=0.5) for s in range(count)]
    t0 = time.perf_counter()
    results = solve_many(trees, backend="fast", jobs=1)
    batch_t = time.perf_counter() - t0
    assert [r.num_paths for r in results] == \
        [minimum_path_cover_size(t) for t in trees]
    row = solution_row(
        results[0], family=f"solve_many x{count}",
        **{"fast (s)": round(batch_t, 4), "pram (s)": "", "speedup": "",
           "slowest fast stage": f"{count / max(batch_t, 1e-9):.0f} inst/s"})
    row["paths"] = sum(r.num_paths for r in results)
    return row


def test_backend_speedup_table(benchmark):
    """The E9 table: wall-clock of both backends across families/sizes."""
    rows, min_speedup = run_backend_comparison(SIZES)
    rows.append(run_batch_throughput())
    write_result_table("E9", "execution backends — fast vs simulated",
                       rows, COLUMNS)

    # the fast backend must beat the simulator by >= 5x at n = 10k in
    # every family (the pluggable-backend acceptance criterion)
    assert min_speedup is not None and min_speedup >= MIN_SPEEDUP_AT_10K, \
        f"fast backend speedup {min_speedup:.1f}x < {MIN_SPEEDUP_AT_10K}x"

    benchmark(lambda: solve(random_cotree(4000, seed=4000), backend="fast"))


@pytest.mark.parametrize("backend", ["fast", "pram"])
def test_backend_wallclock(benchmark, backend):
    """Per-backend wall-clock at a representative size (pytest-benchmark)."""
    tree = random_cotree(2000, seed=2000, join_prob=0.5)
    result = benchmark(lambda: solve(tree, backend=backend))
    assert result.num_paths == minimum_path_cover_size(tree)


def main(argv=None) -> int:
    """Standalone entry point (used by the CI smoke run)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    sizes = SMOKE_SIZES if "--smoke" in argv else SIZES
    rows, min_speedup = run_backend_comparison(sizes)
    rows.append(run_batch_throughput(n=200 if "--smoke" in argv else 500))
    write_result_table("E9", "execution backends — fast vs simulated",
                       rows, COLUMNS)
    print(f"minimum speedup at n={max(sizes)}: {min_speedup:.1f}x")
    if "--smoke" not in argv and min_speedup < MIN_SPEEDUP_AT_10K:
        print(f"FAIL: below the {MIN_SPEEDUP_AT_10K}x acceptance threshold")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
