"""A1 — ablation of the leftist condition.

The 1-node recurrence ``p(u) = max(p(v) − L(w), 1)`` produces the *minimum*
cover only when the left subtree is the leaf-heavier one.  This harness
evaluates the same recurrence with the leftist reordering switched off on
adversarial joins and quantifies how far from the optimum it lands.
"""

import numpy as np
import pytest

from repro.cograph import (
    JOIN,
    LEAF,
    UNION,
    binarize_cotree,
    independent_set,
    join_cotrees,
    make_leftist,
    minimum_path_cover_size,
    random_cotree,
    single_vertex,
)

from _util import write_result_table


def recurrence_without_leftist(binary) -> int:
    """Evaluate the Lemma 2.4 recurrence on the tree *as given* (no swap)."""
    L = binary.subtree_leaf_counts()
    p = np.zeros(binary.num_nodes, dtype=np.int64)
    for u in binary.postorder():
        k = binary.kind[u]
        if k == LEAF:
            p[u] = 1
        elif k == UNION:
            p[u] = p[binary.left[u]] + p[binary.right[u]]
        else:
            p[u] = max(p[binary.left[u]] - L[binary.right[u]], 1)
    return int(p[binary.root])


def skewed_join(k: int):
    """join(K1, I_k) written with the single vertex first, so the non-leftist
    evaluation sees the small side on the left."""
    return join_cotrees(single_vertex(0),
                        independent_set(k).relabel_vertices(
                            {i: i + 1 for i in range(k)}))


@pytest.mark.parametrize("k", [8, 64])
def test_leftist_ablation_wallclock(benchmark, k):
    tree = skewed_join(k)
    binary = binarize_cotree(tree)
    benchmark(lambda: (recurrence_without_leftist(binary),
                       minimum_path_cover_size(tree)))


def test_leftist_ablation_table(benchmark):
    rows = []
    for k in (4, 8, 16, 32, 64, 128):
        tree = skewed_join(k)
        binary = binarize_cotree(tree)
        without = recurrence_without_leftist(binary)
        with_leftist = recurrence_without_leftist(make_leftist(binary))
        optimum = minimum_path_cover_size(tree)
        rows.append({
            "instance": f"join(K1, I{k})", "n": k + 1,
            "optimum": optimum,
            "recurrence with leftist": with_leftist,
            "recurrence without leftist": without,
            "claimed-vs-true gap": without - optimum,
        })
        assert with_leftist == optimum
        # the non-leftist evaluation claims a Hamiltonian path that does not
        # exist (a star has k leaves and needs k-1 paths)
        assert without == 1
        assert optimum == k - 1

    # random cotrees: the non-leftist recurrence under-counts whenever the
    # binarizer happens to put a heavy subtree on the right
    mismatches = 0
    for seed in range(30):
        tree = random_cotree(40, seed=seed, join_prob=0.6)
        binary = binarize_cotree(tree)
        if recurrence_without_leftist(binary) != minimum_path_cover_size(tree):
            mismatches += 1
    rows.append({"instance": "random n=40 (30 seeds)", "n": 40,
                 "optimum": "-", "recurrence with leftist": "always equal",
                 "recurrence without leftist": f"{mismatches} wrong answers",
                 "claimed-vs-true gap": "-"})
    write_result_table("A1", "ablation: dropping the leftist condition", rows)

    benchmark(lambda: minimum_path_cover_size(skewed_join(128)))
