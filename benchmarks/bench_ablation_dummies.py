"""A2 — ablation of the dummy-vertex / legalisation machinery (Step 6).

Skipping the exchange step leaves *illegal* insert vertices next to bridge
vertices of the same 1-node; after dummy removal those adjacencies are not
edges of the graph.  The harness counts how many invalid adjacencies appear
without legalisation and verifies the full pipeline produces none.
"""

import pytest

from repro.cograph import CographAdjacencyOracle, random_cotree
from repro.core import Pipeline, minimum_path_cover_parallel

from _util import write_result_table


def run_pipeline(tree, *, legalize: bool):
    """Select the stages declaratively: the ablation is just Pipeline
    minus its ``legalize`` stage."""
    pipeline = Pipeline.default() if legalize else \
        Pipeline.default().without("legalize")
    run = pipeline.run(tree)
    return run.cover, run.state.exchanges


def count_invalid_adjacencies(tree, cover) -> int:
    oracle = CographAdjacencyOracle(tree)
    bad = 0
    for path in cover.paths:
        for a, b in zip(path, path[1:]):
            if not oracle.adjacent(a, b):
                bad += 1
    return bad


CONFIGS = [(80, seed, 0.3) for seed in range(8)] + \
          [(200, seed, 0.25) for seed in range(4)]


@pytest.mark.parametrize("n", [200])
def test_dummies_ablation_wallclock(benchmark, n):
    tree = random_cotree(n, seed=0, join_prob=0.25)
    benchmark(lambda: run_pipeline(tree, legalize=True))


def test_dummies_ablation_table(benchmark):
    rows = []
    total_without = 0
    for n, seed, jp in CONFIGS:
        tree = random_cotree(n, seed=seed, join_prob=jp)
        cover_with, exchanges = run_pipeline(tree, legalize=True)
        cover_without, _ = run_pipeline(tree, legalize=False)
        bad_with = count_invalid_adjacencies(tree, cover_with)
        bad_without = count_invalid_adjacencies(tree, cover_without)
        total_without += bad_without
        rows.append({
            "n": n, "seed": seed, "join prob": jp,
            "exchanges performed": exchanges,
            "invalid adjacencies (full)": bad_with,
            "invalid adjacencies (no Step 6)": bad_without,
        })
        assert bad_with == 0
    write_result_table("A2", "ablation: skipping dummy legalisation", rows)

    # across the sweep the ablated pipeline must actually break somewhere,
    # otherwise Step 6 would be dead weight
    assert total_without > 0

    # and the real solver stays clean end-to-end
    tree = random_cotree(300, seed=99, join_prob=0.3)
    result = minimum_path_cover_parallel(tree, validate=True)
    assert result.exchanges >= 0

    benchmark(lambda: run_pipeline(random_cotree(200, seed=1, join_prob=0.25),
                                   legalize=True))
