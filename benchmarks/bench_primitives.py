"""E8 — Lemma 5.1 / 5.2: every primitive in the toolbox runs in O(log n)
rounds, and the work-efficient variants keep the work near-linear.
"""

import numpy as np
import pytest

from repro.analysis import best_model, log2ceil
from repro.cograph import binarize_cotree, make_leftist, random_cotree
from repro.pram import PRAM
from repro.primitives import (
    build_euler_tour,
    compute_tree_numbers,
    match_brackets,
    prefix_sum,
    work_efficient_list_ranking,
)

from _util import write_result_table

SIZES = [256, 1024, 4096, 16384]


def random_list(n, seed=0):
    order = np.random.default_rng(seed).permutation(n)
    succ = np.full(n, -1, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    return succ


def random_brackets(n, seed=0):
    return np.random.default_rng(seed).random(n) < 0.5


def tree_arrays(n, seed=0):
    b = make_leftist(binarize_cotree(random_cotree(n, seed=seed)))
    return b


PRIMITIVES = {
    "prefix sums": lambda m, n: prefix_sum(m, np.ones(n, dtype=np.int64)),
    "list ranking (work-eff.)": lambda m, n: work_efficient_list_ranking(
        m, random_list(n), seed=1),
    "bracket matching": lambda m, n: match_brackets(m, random_brackets(n)),
    "euler tour + numbering": lambda m, n: compute_tree_numbers(
        m, *(lambda b: (b.left, b.right, b.parent, [b.root]))(tree_arrays(n))),
}


@pytest.mark.parametrize("name", sorted(PRIMITIVES))
def test_primitive_wallclock(benchmark, name):
    fn = PRIMITIVES[name]
    benchmark(lambda: fn(None, 4096))


def test_primitive_round_scaling_table(benchmark):
    rows = []
    for name, fn in PRIMITIVES.items():
        for n in SIZES:
            m = PRAM()
            fn(m, n)
            rows.append({
                "primitive": name, "n": n, "rounds": m.rounds,
                "rounds/log2(n)": round(m.rounds / log2ceil(n), 2),
                "work": m.work, "work/n": round(m.work / n, 2),
            })
    write_result_table("E8", "primitive toolbox round / work scaling", rows)

    for name in PRIMITIVES:
        sub = [r for r in rows if r["primitive"] == name]
        sizes = [r["n"] for r in sub]
        fit = best_model(sizes, [r["rounds"] for r in sub],
                         models=["1", "log n", "log^2 n", "sqrt n", "n"])
        assert fit.model in ("log n", "log^2 n", "1"), name
        # work may carry a log factor for the sort-based bracket matcher; it
        # must never look quadratic
        wfit = best_model(sizes, [r["work"] for r in sub],
                          models=["n", "n log n", "n^2"])
        assert wfit.model in ("n", "n log n"), name

    benchmark(lambda: prefix_sum(None, np.ones(16384, dtype=np.int64)))
