"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one experiment of DESIGN.md / EXPERIMENTS.md.  In
addition to the wall-clock numbers collected by ``pytest-benchmark``, each
harness assembles a table of *model* quantities (PRAM rounds, Brent-scheduled
time, work, modelled competitor costs) and writes it to
``benchmarks/results/<experiment>.md`` so the rows quoted in EXPERIMENTS.md
can be regenerated verbatim with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.analysis import format_markdown_table, format_table

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def solution_row(solution, **extra) -> Dict:
    """Standard table columns for one :class:`repro.api.Solution`.

    Harnesses that measure through the ``solve()`` front door share these
    base columns (task, backend, instance size, cover size, and the PRAM
    accounting when the run simulated) and merge harness-specific ones via
    ``extra``.
    """
    row = {
        "task": solution.task,
        "backend": solution.backend,
        "n": solution.provenance.get("num_vertices"),
        "paths": solution.num_paths,
    }
    if solution.report is not None:
        row["rounds"] = solution.report.rounds
        row["work"] = solution.report.work
    row.update(extra)
    return row


def write_result_table(experiment_id: str, title: str,
                       rows: Sequence[Dict], columns: Sequence[str] = None) -> str:
    """Write the experiment's table to ``benchmarks/results`` and return it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = f"# {experiment_id}: {title}\n\n" + \
        format_markdown_table(rows, columns) + "\n"
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.md")
    with open(path, "w", encoding="utf8") as fh:
        fh.write(text)
    # also echo a fixed-width version (visible with `pytest -s`)
    print()
    print(format_table(rows, columns, title=f"[{experiment_id}] {title}"))
    return text
