"""E5 — the who-wins comparison of Section 1: the optimal parallel algorithm
vs the sequential baseline [17], the naive parallelisation, Lin et al. 1994
[18] and Adhar-Peng 1990 [2].

Absolute constants are not comparable across such different cost models; the
reproduction target is the *shape*: who wins on which family, by roughly what
factor, and where the naive parallelisation collapses (caterpillar cotrees).
"""

import pytest

from repro.analysis import log2ceil
from repro.baselines import (
    adhar_peng_path_cover,
    lin_suboptimal_path_cover,
    naive_parallel_path_cover,
    sequential_path_cover,
)
from repro.cograph import (
    balanced_cotree,
    caterpillar_cotree,
    minimum_path_cover_size,
    random_cotree,
)
from repro.core import minimum_path_cover_parallel

from _util import write_result_table


def families(n):
    yield "random", random_cotree(n, seed=n, join_prob=0.5)
    yield "caterpillar", caterpillar_cotree(n)
    depth = max(1, int(round(log2ceil(n))))
    yield "balanced", balanced_cotree(depth)


@pytest.mark.parametrize("family", ["random", "caterpillar"])
def test_comparison_wallclock(benchmark, family):
    n = 1024
    tree = dict(families(n))[family]
    result = benchmark(lambda: minimum_path_cover_parallel(tree))
    assert result.num_paths == minimum_path_cover_size(tree)


def test_baseline_comparison_table(benchmark):
    rows = []
    n = 1024
    for name, tree in families(n):
        nv = tree.num_vertices
        optimal = minimum_path_cover_parallel(tree)
        _, stats = sequential_path_cover(tree, return_stats=True)
        _, naive = naive_parallel_path_cover(tree)
        _, lin94 = lin_suboptimal_path_cover(tree)
        _, adhar = adhar_peng_path_cover(tree)
        rows.append({
            "family": name,
            "n": nv,
            "this paper: time": optimal.report.time,
            "this paper: work": optimal.report.work,
            "sequential ops [17]": stats.total_operations,
            "naive time (modelled)": naive.time,
            "Lin'94 time (modelled)": lin94.time,
            "Adhar-Peng work (modelled)": adhar.work,
        })
    write_result_table(
        "E5", "comparison against the prior algorithms (n ~ 1024)", rows)

    by_family = {r["family"]: r for r in rows}
    # the naive parallelisation collapses on caterpillars but not on balanced
    # cotrees, by roughly the height ratio (the whole point of the paper)
    assert by_family["caterpillar"]["naive time (modelled)"] > \
        20 * by_family["balanced"]["naive time (modelled)"]
    # the optimal algorithm's simulated time is insensitive to the family
    assert by_family["caterpillar"]["this paper: time"] < \
        5 * by_family["balanced"]["this paper: time"]
    # Adhar-Peng is dominated by orders of magnitude in work
    for r in rows:
        assert r["Adhar-Peng work (modelled)"] > 50 * r["this paper: work"]

    benchmark(lambda: minimum_path_cover_parallel(caterpillar_cotree(1024)))
