"""E11 + E12 + E13 + E15 + E16 + E17 — wall-clock profiles of the hot paths.

Every future PR needs a trajectory to compare against: this harness runs

* **E11** — the eight-stage pipeline on fixed instances (``random_cotree``,
  seeds pinned) at n ∈ {1k, 10k, 100k} on both execution backends, with
  per-stage wall-clock,
* **E12** — the cotree-DP engine: the five DP tasks (``max_clique``,
  ``max_independent_set``, ``chromatic_number``, ``clique_cover``,
  ``count_independent_sets``) end to end through ``solve()`` on the same
  instances; ``max_clique`` at n = 100k must stay within 2x the pipeline
  total that the PR 4 ``lower_bound`` task used to pay at that size (the
  DP replaces a full cover run),
* **E13** — forest batching: thousands of small instances (n <= 100)
  solved by one :func:`repro.api.solve_forest` sweep vs the pooled batch
  front door (``solve_many(jobs=0)``, one worker per CPU); the full run
  must show >= 10x throughput on ``path_cover_size`` and ``max_clique``,
* **E15** — modular decomposition (PR 8): the four MD-capable tasks on
  cograph inputs (the prime-aware engine must stay within **1.1x** of the
  pre-MD E12 budgets — the cograph hot path paid nothing for the new
  capability) and on P4-sparse modular decomposition trees (the new
  capability itself, budgeted like every other task),

* **E16** — resilience overhead (PR 9): the same healthy (fault-free)
  stream of thousands of tiny instances through the self-healing loop
  (the default ``RetryPolicy()``) and through the legacy fail-fast loop
  (``RetryPolicy.off()``), on the same warm pool; the healing loop must
  cost at most **1.05x** (< 5% overhead) of fail-fast,

* **E17** — the compiled kernel tier + binary wire format (PR 10): the
  full pipeline on the ``kernel`` backend vs ``fast`` at n ∈ {10k, 100k}
  (with numba jitting the kernels the top point must show **>= 3x**; in
  NumPy-fallback mode the tiers run the same expressions, so the gate is
  only that the kernel route does not regress), plus a serialization
  microbench: zero-copy ``repro.io.wire.from_bytes`` ingestion vs JSON
  parsing of the same instance must be **>= 10x** faster regardless of
  kernel mode,

and writes everything as machine-readable JSON
(``benchmarks/results/BENCH_PR10.json``) next to the human-readable
``benchmarks/results/E11.md`` / ``E12.md`` / ``E13.md`` / ``E15.md`` /
``E16.md`` / ``E17.md`` tables.

The JSON also stores a *calibration* measurement (a fixed NumPy workload),
so a later run on a different machine can scale the baseline before
comparing: ``--check BASELINE.json`` fails (exit 1) when any pipeline stage
or DP task is more than ``--factor`` (default 2.0) slower than the
calibrated baseline, when an E13 forest-vs-batch ratio collapses, or when
the E15 cograph rows exceed 1.1x the baseline's E12 budgets — the CI
``perf-smoke`` job runs exactly that against the checked-in baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_profile.py            # full run
    PYTHONPATH=src python benchmarks/bench_profile.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_profile.py --smoke \
        --check benchmarks/results/BENCH_PR10.json               # regression
"""

import argparse
import gc
import json
import os
import sys
import time

import numpy as np

from repro._version import __version__
from repro.api import SolveOptions, solve, solve_forest, solve_many
from repro.api.solve import _solve_one_payload
from repro.cograph import FlatCotree, md_tree, random_cotree, random_p4_sparse
from repro.core import RetryPolicy, WorkerPool
from repro.core.batch import stream_out
from repro.core.pipeline import Pipeline
from repro.io.serialization import cotree_from_json, cotree_to_json
from repro.io.wire import from_bytes, to_bytes
from repro.kernels import KERNELS

from _util import RESULTS_DIR, write_result_table

#: (backend, n, repeats) grid of the full run; the pram simulator is
#: wall-clock-expensive, so it keeps fewer repeats.
FULL_GRID = [
    ("fast", 1_000, 5),
    ("fast", 10_000, 5),
    ("fast", 100_000, 3),
    ("pram", 1_000, 2),
    ("pram", 10_000, 1),
    ("pram", 100_000, 1),
]
#: the CI smoke configuration: one point, compared against the baseline.
SMOKE_GRID = [("fast", 10_000, 3)]

#: the E12 DP-engine tasks and their (backend, n, repeats) grid.
DP_TASKS = ("max_clique", "max_independent_set", "chromatic_number",
            "clique_cover", "count_independent_sets")
FULL_DP_GRID = [
    ("fast", 1_000, 5),
    ("fast", 10_000, 5),
    ("fast", 100_000, 3),
    ("pram", 1_000, 2),
    ("pram", 10_000, 1),
]
SMOKE_DP_GRID = [("fast", 10_000, 3)]

#: the E13 forest-batching grid: (task, instances, n_max, repeats).  Both
#: tasks run the same pinned instance mix; the baseline is the pooled batch
#: front door (``solve_many(jobs=0)``), the contender one single-core
#: ``solve_forest`` sweep.
E13_TASKS = ("path_cover_size", "max_clique")
FULL_E13_GRID = [(task, 10_000, 100, 3) for task in E13_TASKS]
SMOKE_E13_GRID = [(task, 2_000, 64, 2) for task in E13_TASKS]

#: the E15 modular-decomposition grid: (family, backend, n, repeats).  The
#: ``cograph`` family reuses the pinned E12 instances so the MD-routed tasks
#: are directly comparable to the pre-MD DP budgets; the ``p4_sparse``
#: family exercises genuinely prime trees (spiders + bounded generic
#: primes), where ``random_p4_sparse`` materialises Theta(n^2) edges — its
#: sizes stay modest and the ``md_tree`` build cost is reported separately.
MD_TASKS = ("max_clique", "max_independent_set",
            "max_weight_clique", "max_weight_independent_set")
FULL_MD_GRID = [
    ("cograph", "fast", 10_000, 5),
    ("cograph", "fast", 100_000, 3),
    ("p4_sparse", "fast", 500, 5),
    ("p4_sparse", "fast", 2_000, 3),
]
SMOKE_MD_GRID = [
    ("cograph", "fast", 10_000, 3),
    ("p4_sparse", "fast", 500, 3),
]
#: the E15 headline bound: on cograph inputs at the top fast grid point the
#: MD-capable route must cost at most 1.1x the plain E12 budget, plus a
#: small absolute slack.  The slack absorbs run-order noise: E15 measures
#: after E13's allocation-heavy 10k-instance sweep, which consistently
#: costs the later phase a few ms at the ~16ms scale of the top point —
#: a pure 1.1x margin (~1.6ms) flaps on that, while a real regression of
#: the cograph hot path (tens of percent) still fails decisively.
E15_FACTOR = 1.1
E15_ABS_SLACK = 0.005
E15_TOP_N = 100_000

#: the E16 resilience-overhead grid: (instances, n_max, chunksize, repeats).
#: Tiny instances + a warm 2-worker pool make the per-item engine overhead
#: (entry tracking, settle pass) the dominant term — exactly what the
#: healing loop must not tax.
FULL_E16_GRID = (3_000, 60, 32, 3)
SMOKE_E16_GRID = (800, 48, 32, 2)
#: the E16 headline bound: healing loop <= 1.05x fail-fast on the healthy
#: path (the --check gate allows the baseline's own overhead + 0.05, so a
#: noisy baseline cannot make healthy runs fail).
E16_FACTOR = 1.05

#: the E17 compiled-kernel grid: (n, repeats) — the full pipeline on the
#: kernel backend vs fast on the same pinned instance, plus a wire-vs-JSON
#: ingestion microbench at the same sizes.
FULL_E17_GRID = [(10_000, 5), (100_000, 3)]
SMOKE_E17_GRID = [(10_000, 3)]
#: the E17 headline bounds: with the kernels jitted, the top grid point
#: must show >= 3x over fast; in fallback mode both tiers run the same
#: NumPy expressions, so the gate is only "no regression" (>= 1/1.5x —
#: kernel dispatch overhead must stay in the noise).  Wire ingestion must
#: beat JSON parsing >= 10x in either mode.
E17_SPEEDUP = 3.0
E17_TOP_N = 100_000
E17_FALLBACK_FLOOR = 1.0 / 1.5
E17_WIRE_RATIO = 10.0

SEED = 7
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_PR10.json")
COLUMNS = ["backend", "n", "input", "total_s"] + list(
    Pipeline.default().stages)
DP_COLUMNS = ["backend", "n"] + list(DP_TASKS)
E13_COLUMNS = ["task", "instances", "max_n", "batch_s", "forest_s", "ratio"]
MD_COLUMNS = ["family", "backend", "n", "md_build_s"] + list(MD_TASKS)
E16_COLUMNS = ["instances", "max_n", "chunksize", "fail_fast_s",
               "healing_s", "overhead"]
E17_COLUMNS = ["n", "mode", "fast_s", "kernel_s", "speedup",
               "json_parse_s", "wire_load_s", "wire_ratio"]


def calibrate() -> float:
    """Seconds for a fixed NumPy workload — the machine-speed yardstick."""
    rng = np.random.default_rng(0)
    a = rng.integers(0, 1 << 30, size=1_000_000)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(5):
            order = np.argsort(a, kind="stable")
            np.cumsum(a[order])
        best = min(best, time.perf_counter() - t0)
    return best


def profile_once(tree, backend: str):
    run = Pipeline.default().run(tree, backend)
    return run.stage_seconds, run.total_seconds


def profile(backend: str, n: int, repeats: int, input_form: str = "flat"):
    """Best-of-``repeats`` per-stage seconds for one grid point."""
    tree = random_cotree(n, seed=SEED)
    if input_form == "flat":
        tree = FlatCotree.from_cotree(tree)
    stage_best = {}
    total_best = float("inf")
    for _ in range(repeats):
        stages, total = profile_once(tree, backend)
        for name, sec in stages.items():
            stage_best[name] = min(stage_best.get(name, float("inf")), sec)
        total_best = min(total_best, total)
    return {"backend": backend, "n": n, "input_form": input_form,
            "repeats": repeats,
            "stage_seconds": {k: round(v, 6) for k, v in stage_best.items()},
            "total_seconds": round(total_best, 6)}


def run_grid(grid):
    results = []
    for backend, n, repeats in grid:
        results.append(profile(backend, n, repeats))
        print(f"  {backend:4s} n={n:>7} total={results[-1]['total_seconds']:.4f}s",
              flush=True)
    # one Cotree-input point so the conversion overhead stays visible
    top_fast = max((g for g in grid if g[0] == "fast"), key=lambda g: g[1])
    results.append(profile("fast", top_fast[1], top_fast[2],
                           input_form="cotree"))
    print(f"  fast n={top_fast[1]:>7} (Cotree input) "
          f"total={results[-1]['total_seconds']:.4f}s", flush=True)
    return results


def profile_dp(backend: str, n: int, repeats: int):
    """Best-of-``repeats`` end-to-end seconds per DP task (E12)."""
    tree = FlatCotree.from_cotree(random_cotree(n, seed=SEED))
    task_seconds = {}
    for task in DP_TASKS:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solve(tree, task, backend=backend)
            best = min(best, time.perf_counter() - t0)
        task_seconds[task] = round(best, 6)
    return {"backend": backend, "n": n, "repeats": repeats,
            "task_seconds": task_seconds}


def run_dp_grid(grid):
    results = []
    for backend, n, repeats in grid:
        results.append(profile_dp(backend, n, repeats))
        worst = max(results[-1]["task_seconds"].values())
        print(f"  dp {backend:4s} n={n:>7} slowest-task={worst:.4f}s",
              flush=True)
    return results


def _e13_instances(count: int, n_max: int):
    """``count`` pinned-seed small cographs with mixed sizes in [1, n_max]."""
    rng = np.random.default_rng(SEED)
    sizes = rng.integers(1, n_max + 1, size=count)
    return [FlatCotree.from_cotree(random_cotree(int(n), seed=SEED + i))
            for i, n in enumerate(sizes)]


def profile_forest(task: str, instances: int, n_max: int, repeats: int):
    """Best-of-``repeats`` seconds for one E13 point: the pooled batch front
    door vs one :func:`solve_forest` sweep, answers cross-checked.

    Both sides run the fast engine explicitly (``backend="fast"``, the route
    the deprecated ``solve_batch`` always took) so the comparison isolates
    per-instance dispatch overhead — for ``path_cover_size`` the *default*
    options would instead hit the sequential analytic shortcut, a different
    algorithm entirely.  The GC is paused around each timed region (as
    ``timeit`` does) for both sides alike: the 10k held Solution objects
    otherwise make collector pauses the dominant noise term."""
    trees = _e13_instances(instances, n_max)
    opts = {"backend": "fast"}

    def timed_best(fn):
        best, result = float("inf"), None
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                result = fn()
                best = min(best, time.perf_counter() - t0)
            finally:
                gc.enable()
        return best, result

    batch_best, batch = timed_best(
        lambda: solve_many(trees, task, jobs=0, **opts))
    batch_answers = [s.answer for s in batch]
    forest_best, swept = timed_best(
        lambda: solve_forest(trees, task, **opts))
    forest_answers = [s.answer for s in swept]
    if forest_answers != batch_answers:
        raise AssertionError(
            f"E13 {task}: forest answers diverge from the pooled batch")
    ratio = batch_best / max(forest_best, 1e-9)
    return {"task": task, "instances": instances, "max_n": n_max,
            "repeats": repeats, "batch_seconds": round(batch_best, 6),
            "forest_seconds": round(forest_best, 6),
            "ratio": round(ratio, 2)}


def run_e13_grid(grid):
    results = []
    for task, instances, n_max, repeats in grid:
        results.append(profile_forest(task, instances, n_max, repeats))
        r = results[-1]
        print(f"  e13 {task:<16s} {instances} x n<={n_max}: "
              f"batch={r['batch_seconds']:.3f}s "
              f"forest={r['forest_seconds']:.3f}s ratio={r['ratio']:.1f}x",
              flush=True)
    return results


def _md_instance(family: str, n: int):
    """The pinned E15 instance for one grid point: ``(tree, md_build_s)``.

    ``cograph`` reuses the exact E12 instance (so the timings compare); the
    returned build time is 0 there because no decomposition is needed.
    ``p4_sparse`` draws a pinned prime-rich graph and pays ``md_tree`` once
    up front — solve() then receives the primed :class:`FlatCotree`
    directly, so the per-task timings isolate the engine's prime path.
    """
    if family == "cograph":
        return FlatCotree.from_cotree(random_cotree(n, seed=SEED)), 0.0
    graph = random_p4_sparse(n, seed=SEED)
    t0 = time.perf_counter()
    flat = md_tree(graph)
    return flat, time.perf_counter() - t0


def profile_md(family: str, backend: str, n: int, repeats: int):
    """Best-of-``repeats`` end-to-end seconds per MD-capable task (E15)."""
    tree, md_build = _md_instance(family, n)
    rng = np.random.default_rng(SEED)
    weights = tuple(int(x) for x in rng.integers(1, 100, size=n))
    task_seconds = {}
    for task in MD_TASKS:
        opts = (SolveOptions(backend=backend, weights=weights)
                if "weight" in task else SolveOptions(backend=backend))
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            solve(tree, task, options=opts)
            best = min(best, time.perf_counter() - t0)
        task_seconds[task] = round(best, 6)
    return {"family": family, "backend": backend, "n": n, "repeats": repeats,
            "md_build_seconds": round(md_build, 6),
            "task_seconds": task_seconds}


def run_md_grid(grid):
    results = []
    for family, backend, n, repeats in grid:
        results.append(profile_md(family, backend, n, repeats))
        worst = max(results[-1]["task_seconds"].values())
        print(f"  md {family:<9s} {backend:4s} n={n:>7} "
              f"build={results[-1]['md_build_seconds']:.4f}s "
              f"slowest-task={worst:.4f}s", flush=True)
    return results


def profile_e16(instances: int, n_max: int, chunksize: int, repeats: int):
    """Best-of-``repeats`` seconds for the healthy-path resilience overhead.

    Streams the same pinned tiny instances through :func:`stream_out`
    twice per repeat on the same warm pool — once with healing off
    (``RetryPolicy.off()``, the legacy ``_pump_fast`` loop) and once with
    the default healing policy (the ``_pump`` loop) — and reports the
    ratio.  No fault is armed: this measures what the retry plumbing
    costs when nothing goes wrong.  Answers are cross-checked between the
    two loops every repeat.
    """
    trees = _e13_instances(instances, n_max)
    opts = SolveOptions(backend="fast")
    payloads = [(i, tree, "path_cover_size", opts)
                for i, tree in enumerate(trees)]

    def run(policy):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            out = list(stream_out(_solve_one_payload, payloads, pool=pool,
                                  chunksize=chunksize, retry=policy))
            return time.perf_counter() - t0, [s.answer for s in out]
        finally:
            gc.enable()

    fast_best = heal_best = float("inf")
    with WorkerPool(2) as pool:
        pool.warm_up()
        run(RetryPolicy.off())           # one warm-up pass, untimed
        for _ in range(repeats):
            # interleaved so machine drift hits both loops alike
            sec, fast_answers = run(RetryPolicy.off())
            fast_best = min(fast_best, sec)
            sec, heal_answers = run(RetryPolicy())
            heal_best = min(heal_best, sec)
            if heal_answers != fast_answers:
                raise AssertionError(
                    "E16: healing loop answers diverge from fail-fast")
    overhead = heal_best / max(fast_best, 1e-9)
    return {"instances": instances, "max_n": n_max, "chunksize": chunksize,
            "repeats": repeats, "fail_fast_seconds": round(fast_best, 6),
            "healing_seconds": round(heal_best, 6),
            "overhead": round(overhead, 4)}


def run_e16(grid):
    instances, n_max, chunksize, repeats = grid
    row = profile_e16(instances, n_max, chunksize, repeats)
    print(f"  e16 {instances} x n<={n_max} chunk={chunksize}: "
          f"fail-fast={row['fail_fast_seconds']:.3f}s "
          f"healing={row['healing_seconds']:.3f}s "
          f"overhead={row['overhead']:.3f}x", flush=True)
    return [row]


def profile_e17(n: int, repeats: int):
    """Best-of-``repeats`` seconds for one E17 point.

    Pipeline half: the eight-stage pipeline end to end on ``fast`` vs
    ``kernel`` over the same pinned instance, answers implicitly
    cross-checked by the parity test suite (tests/test_kernel_backend.py)
    — here only the clock matters.  Serialization half: ingestion to a
    pipeline-ready :class:`FlatCotree` from a JSON document
    (``json.loads`` + ``cotree_from_json`` + flatten, the pre-PR-10
    server/stream route) vs the zero-copy ``wire.from_bytes`` on the same
    instance.
    """
    nested = random_cotree(n, seed=SEED)
    tree = FlatCotree.from_cotree(nested)

    def timed_best(fn, reps=repeats):
        best = float("inf")
        for _ in range(reps):
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            finally:
                gc.enable()
        return best

    fast_best = timed_best(lambda: Pipeline.default().run(tree, "fast"))
    kernel_best = timed_best(lambda: Pipeline.default().run(tree, "kernel"))

    json_text = json.dumps(cotree_to_json(nested))
    wire_buf = to_bytes(tree)
    json_best = timed_best(
        lambda: FlatCotree.from_cotree(cotree_from_json(json.loads(json_text))),
        reps=max(repeats, 3))
    wire_best = timed_best(lambda: from_bytes(wire_buf),
                           reps=max(repeats, 3))
    return {"n": n, "repeats": repeats, "kernel_mode": KERNELS.mode,
            "fast_seconds": round(fast_best, 6),
            "kernel_seconds": round(kernel_best, 6),
            "speedup": round(fast_best / max(kernel_best, 1e-9), 2),
            "json_parse_seconds": round(json_best, 6),
            "wire_load_seconds": round(wire_best, 9),
            "wire_ratio": round(json_best / max(wire_best, 1e-9), 1)}


def run_e17_grid(grid):
    results = []
    for n, repeats in grid:
        results.append(profile_e17(n, repeats))
        r = results[-1]
        print(f"  e17 n={n:>7} [{r['kernel_mode']}]: "
              f"fast={r['fast_seconds']:.4f}s "
              f"kernel={r['kernel_seconds']:.4f}s "
              f"({r['speedup']:.2f}x) wire={r['wire_ratio']:.0f}x faster "
              f"than JSON", flush=True)
    return results


def check_e17_bound(payload: dict) -> list:
    """E17 acceptance: jit-mode kernels must hit ``E17_SPEEDUP`` at the top
    grid point; fallback-mode kernels (the same NumPy expressions behind
    the kernel table) must merely not regress past the dispatch-noise
    floor; wire ingestion must beat JSON parsing by ``E17_WIRE_RATIO`` in
    either mode.  All three are within-run ratios of same-machine timings,
    so no baseline calibration applies."""
    failures = []
    for row in payload.get("e17_results", []):
        if row["kernel_mode"] == "jit" and row["n"] >= E17_TOP_N \
                and row["speedup"] < E17_SPEEDUP:
            failures.append(
                f"E17 kernel speedup {row['speedup']:.2f}x < "
                f"{E17_SPEEDUP:.1f}x at n={row['n']} (jit mode: "
                f"kernel {row['kernel_seconds']:.4f}s vs fast "
                f"{row['fast_seconds']:.4f}s)")
        if row["kernel_mode"] == "fallback" \
                and row["speedup"] < E17_FALLBACK_FLOOR:
            failures.append(
                f"E17 fallback kernel regressed: {row['speedup']:.2f}x < "
                f"{E17_FALLBACK_FLOOR:.2f}x at n={row['n']}")
        if row["wire_ratio"] < E17_WIRE_RATIO:
            failures.append(
                f"E17 wire ingestion only {row['wire_ratio']:.1f}x faster "
                f"than JSON at n={row['n']} (need "
                f"{E17_WIRE_RATIO:.0f}x: wire "
                f"{row['wire_load_seconds']:.6f}s vs JSON "
                f"{row['json_parse_seconds']:.4f}s)")
    return failures


def check_e16_bound(payload: dict, baseline: dict) -> list:
    """E16 acceptance: the healing loop's healthy-path overhead must stay
    within ``max(E16_FACTOR, baseline overhead + 0.05)`` — an absolute 5%
    budget, relaxed only by what the baseline machine itself measured (a
    ratio of two same-machine timings needs no calibration scaling)."""
    base_rows = {(r["instances"], r["chunksize"]): r
                 for r in baseline.get("e16_results", [])}
    failures = []
    for row in payload.get("e16_results", []):
        ref = base_rows.get((row["instances"], row["chunksize"]))
        allowed = E16_FACTOR
        if ref is not None:
            allowed = max(allowed, ref["overhead"] + 0.05)
        if row["overhead"] > allowed:
            failures.append(
                f"E16 healthy-path overhead {row['overhead']:.3f}x > "
                f"allowed {allowed:.3f}x (healing "
                f"{row['healing_seconds']:.3f}s vs fail-fast "
                f"{row['fail_fast_seconds']:.3f}s)")
    return failures


def check_e15_bound(payload: dict, baseline: dict) -> list:
    """E15 acceptance: the MD-routed unweighted tasks on *cograph* inputs at
    the top fast grid point (n = 100k) must stay within ``E15_FACTOR`` (1.1x)
    of the baseline's plain E12 DP budgets, calibration-scaled, plus
    ``E15_ABS_SLACK`` of absolute run-order slack — adding prime-node
    capability must not tax the cograph hot path.  Applied only at the top
    point: smaller points sit at the 2ms noise floor, where a 1.1x margin
    would flap; those are still covered by the generic ``--factor`` budget
    on ``md_results``.
    """
    base_dp = {(r["backend"], r["n"]): r
               for r in baseline.get("dp_results", [])}
    scale = payload["calibration_seconds"] / \
        max(baseline["calibration_seconds"], 1e-9)
    failures = []
    for row in payload.get("md_results", []):
        if row["family"] != "cograph" or row["n"] < E15_TOP_N:
            continue
        ref = base_dp.get((row["backend"], row["n"]))
        if ref is None:
            continue
        for task in ("max_clique", "max_independent_set"):
            ref_sec = ref["task_seconds"].get(task)
            if ref_sec is None:
                continue
            budget = E15_FACTOR * max(ref_sec * scale, 0.002) + E15_ABS_SLACK
            got = row["task_seconds"][task]
            if got > budget:
                failures.append(
                    f"E15 {task} {row['backend']} n={row['n']} (cograph): "
                    f"{got:.4f}s > {E15_FACTOR:.1f} x E12 budget "
                    f"{ref_sec:.4f}s + {E15_ABS_SLACK:.3f}s slack")
    return failures


def check_e13_bound(payload: dict, baseline: dict, factor: float) -> list:
    """E13 acceptance: the forest sweep must stay decisively faster than the
    pooled batch.  The ratio divides two timings taken on the same machine,
    so no calibration scaling applies; each current ratio must hold at least
    ``max(3, min(base_ratio / (2 * factor), 8))`` — an absolute 3x floor,
    tightened toward the baseline's own ratio but capped so a very fast
    baseline machine cannot make slow-but-healthy CI boxes fail."""
    base_rows = {r["task"]: r for r in baseline.get("e13_results", [])}
    failures = []
    for row in payload.get("e13_results", []):
        ref = base_rows.get(row["task"])
        if ref is None:
            continue
        need = max(3.0, min(ref["ratio"] / (2.0 * factor), 8.0))
        if row["ratio"] < need:
            failures.append(
                f"E13 {row['task']}: forest-vs-batch ratio "
                f"{row['ratio']:.1f}x < required {need:.1f}x "
                f"(baseline {ref['ratio']:.1f}x)")
    return failures


def check_e12_bound(payload: dict, baseline: dict, factor: float) -> list:
    """E12 acceptance: DP ``max_clique`` at the top fast grid point must be
    within ``factor`` x the (calibration-scaled) pipeline total there — the
    cost the PR 4 ``lower_bound`` task paid for the same number."""
    dp_rows = {(r["backend"], r["n"]): r for r in payload.get("dp_results", [])}
    ref_rows = {(r["backend"], r["n"], r["input_form"]): r
                for r in baseline.get("results", [])}
    failures = []
    for (backend, n), row in sorted(dp_rows.items()):
        if backend != "fast":
            continue
        ref = ref_rows.get((backend, n, "flat"))
        if ref is None:
            continue
        scale = payload["calibration_seconds"] / \
            max(baseline["calibration_seconds"], 1e-9)
        budget = factor * max(ref["total_seconds"] * scale, 0.002)
        got = row["task_seconds"]["max_clique"]
        if got > budget:
            failures.append(
                f"E12 max_clique fast n={n}: {got:.4f}s > "
                f"{factor:.1f} x pipeline total {ref['total_seconds']:.4f}s")
    return failures


def check_against(base: dict, current: dict, factor: float) -> int:
    """Compare ``current`` to the loaded baseline; return the exit code."""
    scale = current["calibration_seconds"] / \
        max(base["calibration_seconds"], 1e-9)
    base_by_key = {(r["backend"], r["n"], r["input_form"]): r
                   for r in base["results"]}
    floor = 0.002            # ignore sub-2ms noise on tiny stages
    failures = []
    compared = 0
    for row in current["results"]:
        ref = base_by_key.get((row["backend"], row["n"], row["input_form"]))
        if ref is None:
            continue
        for stage, sec in row["stage_seconds"].items():
            budget = max(ref["stage_seconds"].get(stage, 0.0) * scale, floor)
            compared += 1
            if sec > factor * budget:
                failures.append(
                    f"{row['backend']} n={row['n']} stage {stage!r}: "
                    f"{sec:.4f}s > {factor:.1f} x {budget:.4f}s")
    # E12: DP task budgets, when the baseline carries dp_results
    base_dp = {(r["backend"], r["n"]): r for r in base.get("dp_results", [])}
    for row in current.get("dp_results", []):
        ref = base_dp.get((row["backend"], row["n"]))
        if ref is None:
            continue
        for task, sec in row["task_seconds"].items():
            budget = max(ref["task_seconds"].get(task, 0.0) * scale, floor)
            compared += 1
            if sec > factor * budget:
                failures.append(
                    f"dp {row['backend']} n={row['n']} task {task!r}: "
                    f"{sec:.4f}s > {factor:.1f} x {budget:.4f}s")
    # E15: MD task budgets, when the baseline carries md_results
    base_md = {(r["family"], r["backend"], r["n"]): r
               for r in base.get("md_results", [])}
    for row in current.get("md_results", []):
        ref = base_md.get((row["family"], row["backend"], row["n"]))
        if ref is None:
            continue
        for task, sec in row["task_seconds"].items():
            budget = max(ref["task_seconds"].get(task, 0.0) * scale, floor)
            compared += 1
            if sec > factor * budget:
                failures.append(
                    f"md {row['family']} {row['backend']} n={row['n']} "
                    f"task {task!r}: {sec:.4f}s > "
                    f"{factor:.1f} x {budget:.4f}s")
    # E17: the kernel tier, when the baseline carries e17_results — plain
    # budget rows (speedup/wire gates are within-run, handled below)
    base_e17 = {r["n"]: r for r in base.get("e17_results", [])}
    for row in current.get("e17_results", []):
        ref = base_e17.get(row["n"])
        if ref is None or ref["kernel_mode"] != row["kernel_mode"]:
            continue
        budget = max(ref["kernel_seconds"] * scale, floor)
        compared += 1
        if row["kernel_seconds"] > factor * budget:
            failures.append(
                f"e17 kernel n={row['n']} [{row['kernel_mode']}]: "
                f"{row['kernel_seconds']:.4f}s > "
                f"{factor:.1f} x {budget:.4f}s")
    failures += check_e12_bound(current, base, factor)
    failures += check_e15_bound(current, base)
    failures += check_e16_bound(current, base)
    failures += check_e17_bound(current)
    compared += len(current.get("e16_results", []))
    compared += len(current.get("e17_results", []))
    e13_failures = check_e13_bound(current, base, factor)
    compared += sum(1 for row in current.get("e13_results", [])
                    if row["task"] in {r["task"]
                                       for r in base.get("e13_results", [])})
    failures += e13_failures
    if not compared:
        print("perf-check: no comparable grid points in baseline", flush=True)
        return 1
    if failures:
        print(f"perf-check FAILED ({len(failures)} regression(s), "
              f"calibration scale {scale:.2f}):")
        for f in failures:
            print("  " + f)
        return 1
    print(f"perf-check OK: {compared} stage/task budgets within "
          f"{factor:.1f}x (calibration scale {scale:.2f})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fast backend, n=10k only)")
    parser.add_argument("--out", default=None,
                        help=f"where to write the JSON profile (default "
                             f"{DEFAULT_OUT}; --check runs that would "
                             f"overwrite their own baseline divert to "
                             f"<baseline>.current.json)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a stored BENCH_*.json; exit 1 "
                             "on any stage or DP task regressing past "
                             "--factor")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown per stage (default 2.0)")
    args = parser.parse_args(argv)

    # Load the baseline BEFORE any writing: a --check run must never compare
    # against a file this very invocation produced, nor clobber the
    # checked-in baseline it is about to be judged by.
    baseline = None
    if args.check:
        with open(args.check, encoding="utf8") as fh:
            baseline = json.load(fh)
    out = args.out or DEFAULT_OUT
    if args.check and os.path.abspath(out) == os.path.abspath(args.check):
        stem = os.path.splitext(os.path.basename(out))[0]
        out = os.path.join(os.path.dirname(os.path.abspath(out)),
                           f"{stem}.current.json")
        print(f"--out would overwrite the baseline under check; "
              f"writing to {out} instead")

    grid = SMOKE_GRID if args.smoke else FULL_GRID
    dp_grid = SMOKE_DP_GRID if args.smoke else FULL_DP_GRID
    e13_grid = SMOKE_E13_GRID if args.smoke else FULL_E13_GRID
    md_grid = SMOKE_MD_GRID if args.smoke else FULL_MD_GRID
    e16_grid = SMOKE_E16_GRID if args.smoke else FULL_E16_GRID
    e17_grid = SMOKE_E17_GRID if args.smoke else FULL_E17_GRID
    label = "smoke" if args.smoke else "full"
    print(f"[E11] per-stage profile ({label}):")
    t0 = time.perf_counter()
    payload = {
        "schema": 6,
        "experiment": "E11+E12+E13+E15+E16+E17",
        "version": __version__,
        "seed": SEED,
        "smoke": bool(args.smoke),
        "calibration_seconds": round(calibrate(), 6),
        "results": run_grid(grid),
    }
    print(f"[E12] cotree-DP tasks ({label}):")
    payload["dp_results"] = run_dp_grid(dp_grid)
    print(f"[E13] forest batching vs pooled batch ({label}):")
    payload["e13_results"] = run_e13_grid(e13_grid)
    print(f"[E15] MD-capable tasks on cograph + P4-sparse inputs ({label}):")
    payload["md_results"] = run_md_grid(md_grid)
    print(f"[E16] healthy-path resilience overhead ({label}):")
    payload["e16_results"] = run_e16(e16_grid)
    print(f"[E17] kernel tier + wire ingestion ({label}, "
          f"kernels: {KERNELS.mode}):")
    payload["e17_results"] = run_e17_grid(e17_grid)
    payload["harness_seconds"] = round(time.perf_counter() - t0, 3)

    os.makedirs(os.path.dirname(os.path.abspath(out)), exist_ok=True)
    with open(out, "w", encoding="utf8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if not args.smoke:
        rows = []
        for r in payload["results"]:
            row = {"backend": r["backend"], "n": r["n"],
                   "input": r["input_form"],
                   "total_s": round(r["total_seconds"], 4)}
            for stage, sec in r["stage_seconds"].items():
                row[stage] = round(sec, 4)
            rows.append(row)
        write_result_table("E11", "per-stage pipeline profile (seconds, "
                           "best of repeats)", rows, COLUMNS)
        dp_rows = []
        for r in payload["dp_results"]:
            row = {"backend": r["backend"], "n": r["n"]}
            row.update({t: round(s, 4)
                        for t, s in r["task_seconds"].items()})
            dp_rows.append(row)
        write_result_table("E12", "cotree-DP tasks end to end via solve() "
                           "(seconds, best of repeats)", dp_rows, DP_COLUMNS)
        e13_rows = [{"task": r["task"], "instances": r["instances"],
                     "max_n": r["max_n"],
                     "batch_s": round(r["batch_seconds"], 4),
                     "forest_s": round(r["forest_seconds"], 4),
                     "ratio": f"{r['ratio']:.1f}x"}
                    for r in payload["e13_results"]]
        write_result_table("E13", "forest batching: one solve_forest sweep "
                           "vs the pooled batch front door "
                           "(solve_many, jobs=0)", e13_rows, E13_COLUMNS)
        md_rows = []
        for r in payload["md_results"]:
            row = {"family": r["family"], "backend": r["backend"],
                   "n": r["n"], "md_build_s": round(r["md_build_seconds"], 4)}
            row.update({t: round(s, 4)
                        for t, s in r["task_seconds"].items()})
            md_rows.append(row)
        write_result_table("E15", "MD-capable tasks end to end via solve() "
                           "on cograph and P4-sparse inputs (seconds, best "
                           "of repeats; md_build_s = one-off md_tree cost "
                           "for the P4-sparse family)", md_rows, MD_COLUMNS)
        e16_rows = [{"instances": r["instances"], "max_n": r["max_n"],
                     "chunksize": r["chunksize"],
                     "fail_fast_s": round(r["fail_fast_seconds"], 4),
                     "healing_s": round(r["healing_seconds"], 4),
                     "overhead": f"{r['overhead']:.3f}x"}
                    for r in payload["e16_results"]]
        write_result_table("E16", "healthy-path resilience overhead: the "
                           "self-healing stream loop (default RetryPolicy) "
                           "vs the legacy fail-fast loop "
                           "(RetryPolicy.off()) on the same warm 2-worker "
                           "pool, no fault armed (seconds, best of "
                           "repeats)", e16_rows, E16_COLUMNS)
        e17_rows = [{"n": r["n"], "mode": r["kernel_mode"],
                     "fast_s": round(r["fast_seconds"], 4),
                     "kernel_s": round(r["kernel_seconds"], 4),
                     "speedup": f"{r['speedup']:.2f}x",
                     "json_parse_s": round(r["json_parse_seconds"], 4),
                     "wire_load_s": round(r["wire_load_seconds"], 6),
                     "wire_ratio": f"{r['wire_ratio']:.0f}x"}
                    for r in payload["e17_results"]]
        write_result_table("E17", "compiled kernel tier vs the fast "
                           "backend (full pipeline, same pinned instance) "
                           "and zero-copy wire ingestion vs JSON parsing "
                           "(seconds, best of repeats; mode = whether "
                           "numba jitted the kernel table)",
                           e17_rows, E17_COLUMNS)

    # E13 acceptance target: the full run must show >= 10x on every task
    # (the smoke run is gated relative to the stored baseline instead).
    rc = 0
    if not args.smoke:
        low = [r for r in payload["e13_results"] if r["ratio"] < 10.0]
        for r in low:
            print(f"E13 target FAILED: {r['task']} forest-vs-batch ratio "
                  f"{r['ratio']:.1f}x < 10x")
        if low:
            rc = 1
        else:
            print("E13 target OK: forest sweep >= 10x the pooled batch on "
                  "every task")

    if baseline is not None:
        return check_against(baseline, payload, args.factor) or rc
    # no external baseline: still enforce the E12 acceptance bound against
    # this very run's pipeline profile, and the E15 cograph-path bound
    # against this very run's E12 timings (MD routing vs the plain DP route
    # on the same machine, same instant)
    failures = check_e12_bound(payload, payload, args.factor)
    failures += check_e15_bound(payload, payload)
    # E16 against an empty baseline = the absolute 1.05x budget; E17's
    # gates are within-run ratios with no baseline at all
    failures += check_e16_bound(payload, {})
    failures += check_e17_bound(payload)
    if failures:
        print("E12/E15/E16/E17 bound FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"E12 bound OK: max_clique within {args.factor:.1f}x of the "
          f"pipeline total at every fast point")
    print(f"E15 bound OK: MD-routed cograph tasks within {E15_FACTOR:.1f}x "
          f"of the E12 budgets at n={E15_TOP_N}")
    print(f"E16 bound OK: healthy-path healing overhead within "
          f"{E16_FACTOR:.2f}x of fail-fast")
    print(f"E17 bound OK: wire ingestion >= {E17_WIRE_RATIO:.0f}x JSON "
          f"parsing (kernels: {KERNELS.mode})")
    return rc


if __name__ == "__main__":
    sys.exit(main())
