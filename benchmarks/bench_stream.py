"""E10 — streaming scale-out: persistent worker pools + ``solve_stream``.

Three claims, one harness:

1. **Bounded resident set.**  ``solve_stream`` consumes a lazily-generated
   stream of instances (full run: 100k) while keeping at most ``window``
   of them in flight — the peak number of instances drawn-but-not-yielded
   is measured directly and must never exceed the window, i.e. the input
   is never materialised.
2. **Persistent pools beat per-call pools.**  Sustained many-call traffic
   (many small batches) through one warm :class:`repro.core.WorkerPool`
   is faster than per-call ``solve_batch(jobs=...)``, which forks a fresh
   ``ProcessPoolExecutor`` every time.
3. **Repeat traffic hits the cache.**  A :class:`repro.api.SolutionCache`
   keyed on the canonical cotree form answers re-asked instances without
   running anything; the hit-rate and speedup on a skewed request mix are
   reported.
4. **Tiny instances batch as forests.**  Thousands of small instances go
   through one vectorized :func:`repro.api.solve_forest` sweep (and its
   ``SolveOptions(batch_small=...)`` stream routing) faster than through
   the pooled batch front door — the E13 claim, exercised here in the
   streaming harness (the authoritative numbers live in
   ``bench_profile.py``).

Run standalone for the smoke configuration used by CI::

    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
"""

import sys
import time

from repro.api import (
    SolutionCache,
    SolveOptions,
    solve_forest,
    solve_many,
    solve_stream,
)
from repro.cograph import minimum_path_cover_size, random_cotree
from repro.core import WorkerPool, solve_batch

from _util import write_result_table

#: full-run stream length (the acceptance criterion's >= 100k instances)
STREAM_COUNT = 100_000
SMOKE_STREAM_COUNT = 2_000

#: sustained-traffic shape: many small batches
POOL_BATCHES, POOL_BATCH_SIZE, POOL_TREE_N = 40, 8, 64
SMOKE_POOL_BATCHES = 12

#: forest-batching shape: many tiny instances in one sweep
FOREST_COUNT, FOREST_N_MAX = 10_000, 64
SMOKE_FOREST_COUNT = 1_000

COLUMNS = ["scenario", "instances", "jobs", "seconds", "inst/s", "detail"]


def _row(scenario, instances, jobs, seconds, detail=""):
    return {"scenario": scenario, "instances": instances, "jobs": jobs,
            "seconds": round(seconds, 4),
            "inst/s": round(instances / max(seconds, 1e-9)),
            "detail": detail}


# --------------------------------------------------------------------------- #
# 1. bounded-window streaming over a generated instance stream
# --------------------------------------------------------------------------- #

def run_stream_scale(count: int, *, jobs=None, window=64, chunksize=32):
    """Stream ``count`` generated instances; measure peak in-flight."""
    state = {"drawn": 0, "done": 0, "peak": 0}

    def instances():
        for i in range(count):
            state["drawn"] += 1
            state["peak"] = max(state["peak"],
                                state["drawn"] - state["done"])
            # tiny instances cycled over 50 shapes: the throughput regime
            yield random_cotree(12, seed=i % 50)

    t0 = time.perf_counter()
    total_paths = 0
    for solution in solve_stream(instances(), "path_cover_size",
                                 jobs=jobs, window=window,
                                 chunksize=chunksize):
        state["done"] += 1
        total_paths += solution.answer
    seconds = time.perf_counter() - t0

    assert state["done"] == count
    bound = window if jobs not in (None, 1) else 1
    assert state["peak"] <= bound, \
        f"peak in-flight {state['peak']} exceeds the window bound {bound}"
    return _row("solve_stream (bounded window)", count, jobs or 1, seconds,
                f"peak in-flight {state['peak']} <= {bound}"), state["peak"]


# --------------------------------------------------------------------------- #
# 2. persistent WorkerPool vs a fresh pool per solve_batch call
# --------------------------------------------------------------------------- #

def run_pool_reuse(batches: int, batch_size: int = POOL_BATCH_SIZE,
                   n: int = POOL_TREE_N, jobs: int = 2):
    """Many small batches: one warm pool vs per-call pool startup."""
    batch_trees = [[random_cotree(n, seed=b * batch_size + i)
                    for i in range(batch_size)] for b in range(batches)]
    expected = [[int(minimum_path_cover_size(t)) for t in trees]
                for trees in batch_trees]

    t0 = time.perf_counter()
    with WorkerPool(jobs).warm_up() as pool:
        warm_t0 = time.perf_counter()
        for trees, sizes in zip(batch_trees, expected):
            results = solve_batch(trees, pool=pool)
            assert [r.num_paths for r in results] == sizes
        persistent = time.perf_counter() - warm_t0
    persistent_with_startup = time.perf_counter() - t0

    t0 = time.perf_counter()
    for trees, sizes in zip(batch_trees, expected):
        results = solve_batch(trees, jobs=jobs)  # fresh pool every call
        assert [r.num_paths for r in results] == sizes
    per_call = time.perf_counter() - t0

    count = batches * batch_size
    speedup = per_call / max(persistent, 1e-9)
    rows = [
        _row("per-call solve_batch (fresh pool each)", count, jobs,
             per_call, f"{batches} batches x {batch_size}"),
        _row("persistent WorkerPool (warm)", count, jobs, persistent,
             f"{speedup:.1f}x vs per-call; one-off startup "
             f"{persistent_with_startup - persistent:.3f}s"),
    ]
    return rows, speedup


# --------------------------------------------------------------------------- #
# 3. repeat traffic through the solution cache
# --------------------------------------------------------------------------- #

def run_cache_repeat_traffic(requests: int = 600, distinct: int = 20,
                             n: int = 400):
    """A skewed request mix: ``distinct`` instances asked ``requests``
    times in total — the "millions of users re-ask the same things"
    shape."""
    trees = [random_cotree(n, seed=s) for s in range(distinct)]
    mix = [trees[i % distinct] for i in range(requests)]

    t0 = time.perf_counter()
    cold = solve_many(mix, "path_cover_size", backend="fast")
    cold_t = time.perf_counter() - t0

    cache = SolutionCache(maxsize=distinct)
    t0 = time.perf_counter()
    cached = solve_many(mix, "path_cover_size", backend="fast", cache=cache)
    cached_t = time.perf_counter() - t0

    assert [s.answer for s in cached] == [s.answer for s in cold]
    assert cache.hits == requests - distinct
    speedup = cold_t / max(cached_t, 1e-9)
    return [
        _row("repeat traffic, no cache", requests, 1, cold_t,
             f"{distinct} distinct instances, n={n}"),
        _row("repeat traffic, SolutionCache", requests, 1, cached_t,
             f"{cache.hits}/{requests} hits; {speedup:.1f}x"),
    ], speedup


# --------------------------------------------------------------------------- #
# 4. forest batching: one vectorized sweep over thousands of tiny instances
# --------------------------------------------------------------------------- #

def run_forest_batching(count: int, n_max: int = FOREST_N_MAX,
                        jobs: int = 2):
    """Tiny-instance traffic: the pooled batch front door vs one
    :func:`solve_forest` sweep vs the ``batch_small`` stream routing."""
    trees = [random_cotree(2 + i % (n_max - 1), seed=i)
             for i in range(count)]

    t0 = time.perf_counter()
    pooled = solve_many(trees, "path_cover_size", backend="fast", jobs=jobs)
    pooled_t = time.perf_counter() - t0

    t0 = time.perf_counter()
    swept = solve_forest(trees, "path_cover_size", backend="fast")
    forest_t = time.perf_counter() - t0

    t0 = time.perf_counter()
    streamed = list(solve_stream(
        iter(trees), "path_cover_size",
        options=SolveOptions(backend="fast", batch_small=n_max)))
    stream_t = time.perf_counter() - t0

    answers = [s.answer for s in swept]
    assert answers == [s.answer for s in pooled]
    assert answers == [s.answer for s in streamed]
    assert all(s.provenance["route"] == "forest" for s in swept)
    speedup = pooled_t / max(forest_t, 1e-9)
    rows = [
        _row("pooled solve_many (tiny instances)", count, jobs, pooled_t,
             f"n <= {n_max}"),
        _row("solve_forest (one packed sweep)", count, 1, forest_t,
             f"{speedup:.1f}x vs pooled batch"),
        _row("solve_stream batch_small (forest-routed)", count, 1, stream_t,
             f"{pooled_t / max(stream_t, 1e-9):.1f}x vs pooled batch"),
    ]
    return rows, speedup


# --------------------------------------------------------------------------- #
# harness entry points
# --------------------------------------------------------------------------- #

def run_all(*, smoke: bool):
    rows = []
    stream_count = SMOKE_STREAM_COUNT if smoke else STREAM_COUNT
    # serial (fully lazy) and pooled (bounded window) streaming
    row, _ = run_stream_scale(stream_count, jobs=None)
    rows.append(row)
    row, _ = run_stream_scale(stream_count // 2 if smoke else stream_count,
                              jobs=2, window=64, chunksize=32)
    rows.append(row)
    pool_rows, pool_speedup = run_pool_reuse(
        SMOKE_POOL_BATCHES if smoke else POOL_BATCHES)
    rows.extend(pool_rows)
    cache_rows, _ = run_cache_repeat_traffic(
        requests=120 if smoke else 600, distinct=12 if smoke else 20)
    rows.extend(cache_rows)
    forest_rows, forest_speedup = run_forest_batching(
        SMOKE_FOREST_COUNT if smoke else FOREST_COUNT)
    rows.extend(forest_rows)
    return rows, pool_speedup, forest_speedup


def test_stream_throughput_table(benchmark):
    """The E10 table: bounded streaming, warm pools, cache hit-rates."""
    rows, pool_speedup, forest_speedup = run_all(smoke=True)
    write_result_table("E10", "streaming scale-out — persistent pools + "
                       "solve_stream", rows, COLUMNS)

    # the tentpole acceptance criterion: a persistent pool must beat
    # forking a fresh pool per call on repeated small batches
    assert pool_speedup > 1.0, \
        f"persistent pool {pool_speedup:.2f}x <= per-call solve_batch"
    # and one forest sweep must beat the pooled batch on tiny instances
    assert forest_speedup > 1.0, \
        f"solve_forest {forest_speedup:.2f}x <= pooled solve_many"

    benchmark(lambda: list(
        solve_stream((random_cotree(12, seed=i) for i in range(100)),
                     "path_cover_size")))


def main(argv=None) -> int:
    """Standalone entry point (used by the CI smoke run)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in argv
    rows, pool_speedup, forest_speedup = run_all(smoke=smoke)
    write_result_table("E10", "streaming scale-out — persistent pools + "
                       "solve_stream", rows, COLUMNS)
    print(f"persistent pool vs per-call solve_batch: {pool_speedup:.2f}x")
    print(f"solve_forest vs pooled solve_many: {forest_speedup:.2f}x")
    if pool_speedup <= 1.0:
        print("FAIL: the persistent WorkerPool did not beat per-call pools")
        return 1
    if forest_speedup <= 1.0:
        print("FAIL: the forest sweep did not beat the pooled batch")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
