"""A3 — ablation of the work-efficient primitives: Wyllie pointer jumping vs
contraction-based list ranking.

Both are Theta(log n) rounds; the difference is the work (Theta(n log n) vs
Theta(n)), which is exactly the gap between a merely time-optimal and a
work-optimal pipeline.  The same toggle is exposed on the solver
(``work_efficient=``), and its end-to-end effect is reported too.
"""

import numpy as np
import pytest

from repro.analysis import log2ceil, loglog_slope
from repro.cograph import random_cotree
from repro.core import minimum_path_cover_parallel
from repro.pram import PRAM
from repro.primitives import wyllie_list_ranking, work_efficient_list_ranking

from _util import write_result_table

SIZES = [256, 1024, 4096, 16384, 65536]


def random_list(n, seed=0):
    order = np.random.default_rng(seed).permutation(n)
    succ = np.full(n, -1, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    return succ


@pytest.mark.parametrize("variant", ["wyllie", "work-efficient"])
def test_list_ranking_wallclock(benchmark, variant):
    succ = random_list(16384)
    fn = wyllie_list_ranking if variant == "wyllie" else work_efficient_list_ranking
    benchmark(lambda: fn(None, succ))


def test_list_ranking_work_gap_table(benchmark):
    rows = []
    ratios = []
    for n in SIZES:
        succ = random_list(n)
        m_w, m_e = PRAM(), PRAM()
        a = wyllie_list_ranking(m_w, succ)
        b = work_efficient_list_ranking(m_e, succ, seed=1)
        assert np.array_equal(a, b)
        ratio = m_w.work / m_e.work
        ratios.append(ratio)
        rows.append({
            "n": n,
            "Wyllie rounds": m_w.rounds, "Wyllie work": m_w.work,
            "work-eff. rounds": m_e.rounds, "work-eff. work": m_e.work,
            "work ratio": round(ratio, 2),
            "log2 n": log2ceil(n),
        })
    write_result_table("A3", "ablation: Wyllie vs work-efficient list ranking",
                       rows)

    # the ratio grows with n (it tracks log n), i.e. Wyllie is not work-optimal
    assert ratios[-1] > 1.5 * ratios[0]
    # work-efficient variant's work is near-linear
    assert loglog_slope(SIZES, [r["work-eff. work"] for r in rows]) < 1.15

    # end-to-end effect on the solver
    tree = random_cotree(2048, seed=5, join_prob=0.5)
    fast = minimum_path_cover_parallel(tree, work_efficient=True)
    slow = minimum_path_cover_parallel(tree, work_efficient=False)
    assert fast.num_paths == slow.num_paths
    assert slow.report.work > fast.report.work

    benchmark(lambda: work_efficient_list_ranking(None, random_list(4096)))
