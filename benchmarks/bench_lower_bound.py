"""E1 — Theorem 2.2 / Fig. 2: the Omega(log n) CREW lower bound.

The lower bound itself is an impossibility statement and cannot be "measured";
what the harness shows is the two sides the proof connects:

* the reduction: OR instances become path-cover instances whose answer decides
  OR, and the construction itself is O(1) depth;
* the matching upper bound: the balanced fan-in OR takes ceil(log2 n) rounds
  on an exclusive-read machine, while on a common-CRCW machine (where
  Cook-Dwork-Reischuk does not apply) the same problem takes one round —
  locating exactly where the model assumption bites.
"""

import numpy as np
import pytest

from repro.analysis import best_model, log2ceil
from repro.cograph import minimum_path_cover_size
from repro.core import (
    expected_path_count,
    minimum_path_cover_parallel,
    or_from_cover,
    or_from_path_count,
    or_instance_cotree,
    parallel_or_rounds,
)
from repro.pram import PRAM, AccessMode

from _util import write_result_table

SIZES = [16, 64, 256, 1024, 4096, 16384, 65536, 262144]


@pytest.mark.parametrize("n", [1024, 65536])
def test_or_fanin_wallclock(benchmark, n):
    rng = np.random.default_rng(n)
    bits = rng.integers(0, 2, size=n)
    result = benchmark(lambda: parallel_or_rounds(PRAM(mode=AccessMode.EREW), bits))
    assert result == int(bits.any())


def test_theorem_2_2_lower_bound_table(benchmark):
    rng = np.random.default_rng(0)
    rows = []
    for n in SIZES:
        bits = (rng.random(n) < 0.3).astype(int)
        erew = PRAM(mode=AccessMode.EREW)
        crcw = PRAM(mode=AccessMode.CRCW_COMMON)
        assert parallel_or_rounds(erew, bits) == int(bits.any())
        assert parallel_or_rounds(crcw, bits) == int(bits.any())
        rows.append({
            "n": n,
            "EREW/CREW rounds": erew.rounds,
            "ceil(log2 n)": log2ceil(n),
            "CRCW rounds": crcw.rounds,
        })
    fit = best_model([r["n"] for r in rows],
                     [r["EREW/CREW rounds"] for r in rows],
                     models=["1", "log n", "sqrt n", "n"])
    rows.append({"n": "fit", "EREW/CREW rounds": f"~ {fit.model}",
                 "ceil(log2 n)": "", "CRCW rounds": "~ 1"})
    write_result_table(
        "E1", "Theorem 2.2 — OR reduction and the log n round barrier", rows)

    assert fit.model == "log n"
    assert all(r["CRCW rounds"] == 1 for r in rows[:-1])

    # reduction round-trip on a moderate instance: solving the path-cover
    # instance decides OR both via the count and via the reported cover.
    bits = (rng.random(64) < 0.2).astype(int)
    inst = or_instance_cotree(bits)
    assert minimum_path_cover_size(inst.cotree) == expected_path_count(bits)
    result = minimum_path_cover_parallel(inst.cotree)
    assert or_from_path_count(result.num_paths, len(bits)) == int(bits.any())
    assert or_from_cover(result.cover, inst) == int(bits.any())

    benchmark(lambda: parallel_or_rounds(PRAM(mode=AccessMode.EREW),
                                         (rng.random(4096) < 0.3).astype(int)))
