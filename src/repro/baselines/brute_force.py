"""Exact minimum path cover by exhaustive dynamic programming.

Works on *any* graph (not only cographs) in ``O(2^n · n^2)`` time, which makes
it the ground truth the property-based tests compare every other algorithm
against on small instances — including the Lemma 2.4 recurrence itself, which
would otherwise be assumed rather than checked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cograph import Graph, PathCover

__all__ = ["brute_force_path_cover", "brute_force_path_cover_size",
           "brute_force_has_hamiltonian_path",
           "brute_force_has_hamiltonian_cycle",
           "brute_force_max_clique", "brute_force_max_independent_set",
           "brute_force_max_weight_clique",
           "brute_force_max_weight_independent_set",
           "brute_force_chromatic_number", "brute_force_clique_cover_number",
           "brute_force_count_independent_sets"]

_MAX_N = 16
#: the chromatic-number DP is O(3^n), so it gets a tighter cap.
_MAX_N_CHROMATIC = 12


def _check_size(n: int) -> None:
    if n > _MAX_N:
        raise ValueError(f"brute force limited to {_MAX_N} vertices, got {n}")


def brute_force_path_cover_size(graph: Graph) -> int:
    """Size of a minimum path cover of ``graph`` (exact, exponential)."""
    n = graph.n
    _check_size(n)
    if n == 0:
        return 0
    # dp[(mask, last)] = minimum number of paths covering `mask`, the current
    # path ending at `last`.
    INF = n + 1
    dp: List[List[int]] = [[INF] * n for _ in range(1 << n)]
    for v in range(n):
        dp[1 << v][v] = 1
    for mask in range(1 << n):
        row = dp[mask]
        for last in range(n):
            cur = row[last]
            if cur >= INF:
                continue
            for u in range(n):
                if mask & (1 << u):
                    continue
                new_mask = mask | (1 << u)
                extend = cur if graph.has_edge(last, u) else cur + 1
                if extend < dp[new_mask][u]:
                    dp[new_mask][u] = extend
    full = (1 << n) - 1
    return min(dp[full])


def brute_force_path_cover(graph: Graph) -> PathCover:
    """An actual minimum path cover (exact, exponential), with witness."""
    n = graph.n
    _check_size(n)
    if n == 0:
        return PathCover([])
    INF = n + 1
    dp: Dict[Tuple[int, int], int] = {}
    parent: Dict[Tuple[int, int], Optional[Tuple[int, int, bool]]] = {}
    for v in range(n):
        dp[(1 << v, v)] = 1
        parent[(1 << v, v)] = None
    for mask in range(1 << n):
        for last in range(n):
            key = (mask, last)
            cur = dp.get(key, INF)
            if cur >= INF:
                continue
            for u in range(n):
                if mask & (1 << u):
                    continue
                new_key = (mask | (1 << u), u)
                same_path = graph.has_edge(last, u)
                cost = cur if same_path else cur + 1
                if cost < dp.get(new_key, INF):
                    dp[new_key] = cost
                    parent[new_key] = (mask, last, same_path)
    full = (1 << n) - 1
    best_last = min(range(n), key=lambda v: dp.get((full, v), INF))
    # reconstruct
    paths: List[List[int]] = []
    current: List[int] = []
    key = (full, best_last)
    while key is not None:
        mask, last = key
        current.append(last)
        prev = parent[key]
        if prev is None:
            paths.append(list(reversed(current)))
            current = []
            key = None
        else:
            pmask, plast, same_path = prev
            if not same_path:
                paths.append(list(reversed(current)))
                current = []
            key = (pmask, plast)
    return PathCover(paths)


def brute_force_has_hamiltonian_path(graph: Graph) -> bool:
    """Exact Hamiltonian-path decision (exponential)."""
    if graph.n == 0:
        return False
    return brute_force_path_cover_size(graph) == 1


def brute_force_has_hamiltonian_cycle(graph: Graph) -> bool:
    """Exact Hamiltonian-cycle decision (exponential)."""
    n = graph.n
    _check_size(n)
    if n < 3:
        return False
    # dp over subsets with fixed start vertex 0
    dp = [[False] * n for _ in range(1 << n)]
    dp[1][0] = True
    for mask in range(1 << n):
        if not (mask & 1):
            continue
        for last in range(n):
            if not dp[mask][last]:
                continue
            for u in graph.adj[last]:
                if mask & (1 << u):
                    continue
                dp[mask | (1 << u)][u] = True
    full = (1 << n) - 1
    return any(dp[full][v] and graph.has_edge(v, 0) for v in range(1, n))


# --------------------------------------------------------------------------- #
# subset-DP oracles for the cotree-DP tasks
# --------------------------------------------------------------------------- #

def _neighbour_masks(graph: Graph) -> List[int]:
    """Adjacency as one bitmask per vertex."""
    masks = [0] * graph.n
    for v in range(graph.n):
        for u in graph.adj[v]:
            masks[v] |= 1 << u
    return masks


def _independent_masks(graph: Graph) -> List[bool]:
    """``is_ind[mask]``: is the vertex subset ``mask`` independent?

    Incremental over the lowest set bit: a set is independent iff the rest
    is and the extracted vertex has no neighbour in the rest.  ``O(2^n)``.
    """
    n = graph.n
    _check_size(n)
    nb = _neighbour_masks(graph)
    is_ind = [False] * (1 << n)
    is_ind[0] = True
    for mask in range(1, 1 << n):
        v = (mask & -mask).bit_length() - 1
        rest = mask & (mask - 1)
        is_ind[mask] = is_ind[rest] and not (nb[v] & rest)
    return is_ind


def brute_force_max_independent_set(graph: Graph) -> int:
    """alpha(G) — maximum independent set size (exact, ``O(2^n)``)."""
    if graph.n == 0:
        return 0
    is_ind = _independent_masks(graph)
    return max(bin(mask).count("1")
               for mask in range(1 << graph.n) if is_ind[mask])


def brute_force_max_clique(graph: Graph) -> int:
    """omega(G) — maximum clique size (exact, ``O(2^n)``)."""
    n = graph.n
    _check_size(n)
    if n == 0:
        return 0
    nb = _neighbour_masks(graph)
    is_clique = [False] * (1 << n)
    is_clique[0] = True
    best = 0
    for mask in range(1, 1 << n):
        v = (mask & -mask).bit_length() - 1
        rest = mask & (mask - 1)
        is_clique[mask] = is_clique[rest] and (nb[v] & rest) == rest
        if is_clique[mask]:
            best = max(best, bin(mask).count("1"))
    return best


def _check_weights(graph: Graph, weights) -> List[int]:
    w = [int(x) for x in weights]
    if len(w) != graph.n:
        raise ValueError(f"weights length {len(w)} does not match "
                         f"{graph.n} vertices")
    if any(x < 0 for x in w):
        raise ValueError("weights must be non-negative")
    return w


def brute_force_max_weight_independent_set(graph: Graph, weights) -> int:
    """Maximum total weight of an independent set (exact, ``O(2^n)``)."""
    if graph.n == 0:
        return 0
    w = _check_weights(graph, weights)
    is_ind = _independent_masks(graph)
    best = 0
    for mask in range(1 << graph.n):
        if is_ind[mask]:
            total = sum(w[v] for v in range(graph.n) if mask & (1 << v))
            best = max(best, total)
    return best


def brute_force_max_weight_clique(graph: Graph, weights) -> int:
    """Maximum total weight of a clique (exact, ``O(2^n)``)."""
    n = graph.n
    _check_size(n)
    if n == 0:
        return 0
    w = _check_weights(graph, weights)
    nb = _neighbour_masks(graph)
    is_clique = [False] * (1 << n)
    is_clique[0] = True
    best = 0
    for mask in range(1, 1 << n):
        v = (mask & -mask).bit_length() - 1
        rest = mask & (mask - 1)
        is_clique[mask] = is_clique[rest] and (nb[v] & rest) == rest
        if is_clique[mask]:
            best = max(best, sum(w[u] for u in range(n) if mask & (1 << u)))
    return best


def brute_force_count_independent_sets(graph: Graph) -> int:
    """The exact number of independent sets, empty set included."""
    if graph.n == 0:
        return 1
    return sum(_independent_masks(graph))


def brute_force_chromatic_number(graph: Graph) -> int:
    """chi(G) by the classic subset DP (``O(3^n)``): peel off one
    independent set at a time, always one containing the lowest uncoloured
    vertex (safe because colour classes can be listed in that order)."""
    n = graph.n
    if n > _MAX_N_CHROMATIC:
        raise ValueError(f"brute-force chromatic number limited to "
                         f"{_MAX_N_CHROMATIC} vertices, got {n}")
    if n == 0:
        return 0
    is_ind = _independent_masks(graph)
    full = (1 << n) - 1
    INF = n + 1
    chi = [INF] * (full + 1)
    chi[0] = 0
    for mask in range(1, full + 1):
        v = (mask & -mask).bit_length() - 1
        # enumerate the subsets of mask that contain v and are independent
        rest = mask & ~(1 << v)
        sub = rest
        while True:
            cand = sub | (1 << v)
            if is_ind[cand] and chi[mask & ~cand] + 1 < chi[mask]:
                chi[mask] = chi[mask & ~cand] + 1
            if sub == 0:
                break
            sub = (sub - 1) & rest
    return chi[full]


def brute_force_clique_cover_number(graph: Graph) -> int:
    """theta(G) = chi of the complement graph (exact)."""
    n = graph.n
    complement = Graph(n, [(u, v) for u in range(n) for v in range(u + 1, n)
                           if not graph.has_edge(u, v)])
    return brute_force_chromatic_number(complement)
