"""Baselines: the sequential reference algorithm, exact brute force, a greedy
heuristic, and cost-model emulations of the prior parallel algorithms."""

from .brute_force import (
    brute_force_chromatic_number,
    brute_force_clique_cover_number,
    brute_force_count_independent_sets,
    brute_force_has_hamiltonian_cycle,
    brute_force_has_hamiltonian_path,
    brute_force_max_clique,
    brute_force_max_independent_set,
    brute_force_max_weight_clique,
    brute_force_max_weight_independent_set,
    brute_force_path_cover,
    brute_force_path_cover_size,
)
from .greedy import greedy_path_cover
from .prior_parallel import (
    EmulatedCost,
    adhar_peng_path_cover,
    lin_suboptimal_path_cover,
    naive_parallel_path_cover,
)
from .sequential import SequentialStats, sequential_path_cover

__all__ = [
    "sequential_path_cover", "SequentialStats",
    "brute_force_path_cover", "brute_force_path_cover_size",
    "brute_force_has_hamiltonian_path", "brute_force_has_hamiltonian_cycle",
    "brute_force_max_clique", "brute_force_max_independent_set",
    "brute_force_max_weight_clique",
    "brute_force_max_weight_independent_set",
    "brute_force_chromatic_number", "brute_force_clique_cover_number",
    "brute_force_count_independent_sets",
    "greedy_path_cover",
    "naive_parallel_path_cover", "lin_suboptimal_path_cover",
    "adhar_peng_path_cover", "EmulatedCost",
]
