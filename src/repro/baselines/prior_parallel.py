"""Cost-model emulations of the prior parallel algorithms the paper compares
against.

Three competitors appear in the paper's introduction and Section 2:

* the **naive parallelisation** of the sequential algorithm: process the
  leftist binarized cotree level by level; every 1-node costs ``O(log n)``
  time (list ranking to renumber the paths), so the total is
  ``O(height(Tbl) · log n)`` time — which degenerates to ``O(n log n)`` on
  caterpillar cotrees;
* **Lin, Olariu, Schwing, Zhang [18]** — counts ``p(u)`` optimally in
  ``O(log n)`` time / ``O(n)`` work, but reports the cover in ``O(log² n)``
  time with ``n / log n`` processors (``O(n log n)`` work);
* **Adhar and Peng [2]** — ``O(log² n)`` time with ``O(n²)`` CRCW processors,
  even for the Hamiltonian-path decision.

The original two-page and journal descriptions do not contain enough detail
to re-implement them operation-for-operation (and doing so would add nothing:
they are strictly dominated).  They are therefore emulated at the level the
paper compares them — their *cost recurrences* — while the covers they
"produce" are computed by the sequential reference so that every baseline
still returns a correct object.  Each emulation states exactly which costs it
charges; the E5 benchmark reports them under an explicit "modelled" column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..cograph import BinaryCotree, Cotree, PathCover, binarize_cotree, make_leftist
from ..cograph.cotree import JOIN, LEAF
from .sequential import sequential_path_cover

__all__ = [
    "EmulatedCost",
    "naive_parallel_path_cover",
    "lin_suboptimal_path_cover",
    "adhar_peng_path_cover",
]


@dataclass
class EmulatedCost:
    """Modelled PRAM cost of an emulated competitor.

    Attributes
    ----------
    algorithm:
        short name of the emulated algorithm.
    model:
        machine model the original result is stated on.
    time:
        modelled parallel time (in abstract steps).
    processors:
        modelled processor count.
    work:
        ``time * processors``.
    notes:
        what recurrence produced the numbers.
    """

    algorithm: str
    model: str
    time: int
    processors: int
    work: int
    notes: str

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm, "model": self.model,
            "time": self.time, "processors": self.processors,
            "work": self.work, "notes": self.notes,
        }


def _leftist(tree: Union[Cotree, BinaryCotree]) -> BinaryCotree:
    if isinstance(tree, BinaryCotree):
        return make_leftist(tree)
    return make_leftist(binarize_cotree(tree))


def naive_parallel_path_cover(tree: Union[Cotree, BinaryCotree]):
    """The naive bottom-up parallelisation (cover + modelled cost).

    Cost model: one phase per level of ``Tbl(G)`` processed bottom-up; a phase
    containing at least one 1-node costs ``ceil(log2 n)`` steps (the parallel
    renumbering/bridging inside that node), a phase of only 0-nodes costs one
    step; every node pays work proportional to the number of leaves of its
    subtree (the paths it has to touch).
    """
    binary = _leftist(tree)
    n = max(binary.num_vertices, 2)
    log_n = max(1, math.ceil(math.log2(n)))
    depth = binary.depth()
    kind = np.asarray(binary.kind)
    L = binary.subtree_leaf_counts()

    time = 0
    work = 0
    for level in range(int(depth.max()), -1, -1):
        nodes = np.flatnonzero((depth == level) & (kind != LEAF))
        if len(nodes) == 0:
            continue
        has_join = bool(np.any(kind[nodes] == JOIN))
        time += log_n if has_join else 1
        work += int(L[nodes].sum())

    cover = sequential_path_cover(binary)
    cost = EmulatedCost(
        algorithm="naive-parallel", model="EREW",
        time=time, processors=max(1, math.ceil(n / log_n)), work=work,
        notes="one O(log n) phase per cotree level containing a 1-node; "
              "work = sum of subtree sizes over all internal nodes")
    return cover, cost


def lin_suboptimal_path_cover(tree: Union[Cotree, BinaryCotree]):
    """Lin–Olariu–Schwing–Zhang [18] (cover + modelled cost).

    Cost model: counting ``p(u)`` costs ``c1 · log n`` time and ``c1 · n``
    work (that part is optimal); *reporting* costs ``c2 · log² n`` time with
    ``n / log n`` processors, i.e. ``c2 · n · log n`` work.  We use
    ``c1 = c2 = 1`` so the numbers are directly comparable shape-wise.
    """
    binary = _leftist(tree)
    n = max(binary.num_vertices, 2)
    log_n = max(1, math.ceil(math.log2(n)))
    cover = sequential_path_cover(binary)
    cost = EmulatedCost(
        algorithm="lin-1994-suboptimal", model="EREW",
        time=log_n + log_n * log_n,
        processors=max(1, math.ceil(n / log_n)),
        work=n + n * log_n,
        notes="O(log n)/O(n) counting plus O(log^2 n)-time, (n/log n)-processor "
              "reporting")
    return cover, cost


def adhar_peng_path_cover(tree: Union[Cotree, BinaryCotree]):
    """Adhar–Peng [2] (cover + modelled cost).

    Cost model: ``log² n`` time on ``n²`` CRCW processors (the bound stated in
    the paper's introduction, which holds even for the Hamiltonian-path
    decision).
    """
    binary = _leftist(tree)
    n = max(binary.num_vertices, 2)
    log_n = max(1, math.ceil(math.log2(n)))
    cover = sequential_path_cover(binary)
    cost = EmulatedCost(
        algorithm="adhar-peng-1990", model="CRCW",
        time=log_n * log_n, processors=n * n,
        work=n * n * log_n * log_n,
        notes="O(log^2 n) time on O(n^2) CRCW processors")
    return cover, cost
