"""The Lin–Olariu–Pruesse sequential minimum path cover (Lemma 2.3).

This is the ``O(n)`` algorithm the paper uses as its work-optimality yardstick
(reference [17]) and the reproduction's *independent* correctness oracle for
the parallel pipeline: it never touches the bracket machinery and follows the
bottom-up Case 1 / Case 2 construction of Section 2 directly.

Data structures: paths are doubly linked lists over the vertex ids (``nxt`` /
``prv`` arrays), and each cotree node's set of paths is itself a singly
linked list of path heads, so that

* a 0-node concatenates two path sets in O(1);
* a 1-node bridges paths in O(1) per bridge vertex and inserts the leftover
  join vertices by walking at most one path vertex per inserted vertex;

which keeps the total running time linear in ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..cograph import (
    BinaryCotree,
    Cotree,
    PathCover,
    binarize_cotree,
    make_leftist,
)
from ..cograph.cotree import JOIN, LEAF, UNION

__all__ = ["sequential_path_cover", "SequentialStats"]


@dataclass
class SequentialStats:
    """Operation counts of one run (used by the E2 linearity benchmark)."""

    num_vertices: int
    nodes_processed: int
    bridge_operations: int
    insert_operations: int

    @property
    def total_operations(self) -> int:
        return self.nodes_processed + self.bridge_operations + self.insert_operations


class _PathSet:
    """A linked list of paths (each path a doubly linked list of vertices).

    ``heads``/``tails`` chain the paths; concatenation of two sets is O(1).
    """

    __slots__ = ("first", "last", "count")

    def __init__(self) -> None:
        self.first: int = -1      # head vertex of the first path
        self.last: int = -1       # head vertex of the last path
        self.count: int = 0


def sequential_path_cover(tree: Union[Cotree, BinaryCotree], *,
                          return_stats: bool = False):
    """Minimum path cover of a cograph in ``O(n)`` sequential time.

    Parameters
    ----------
    tree:
        general or binarized cotree; vertices must be numbered ``0 .. n-1``.
    return_stats:
        when True, return ``(cover, stats)`` instead of just the cover.

    Returns
    -------
    PathCover or (PathCover, SequentialStats)
    """
    if isinstance(tree, BinaryCotree):
        binary = make_leftist(tree)
    else:
        if tree.num_vertices == 1:
            cover = PathCover([[int(tree.vertices[0])]])
            if return_stats:
                return cover, SequentialStats(1, 1, 0, 0)
            return cover
        binary = make_leftist(binarize_cotree(tree))

    n = binary.num_vertices
    L = binary.subtree_leaf_counts()

    # doubly linked path structure over vertices
    nxt = np.full(n, -1, dtype=np.int64)
    prv = np.full(n, -1, dtype=np.int64)
    # linked list of paths per live set: next_path[head] = head of next path
    next_path = np.full(n, -1, dtype=np.int64)
    # tail of each path, indexed by its head (maintained lazily)
    tail_of = np.arange(n, dtype=np.int64)

    stats = SequentialStats(num_vertices=n, nodes_processed=0,
                            bridge_operations=0, insert_operations=0)

    sets: dict = {}

    def leaf_vertices_in_order(node: int) -> List[int]:
        out: List[int] = []
        stack = [node]
        while stack:
            u = stack.pop()
            if binary.kind[u] == LEAF:
                out.append(int(binary.leaf_vertex[u]))
            else:
                stack.append(int(binary.right[u]))
                stack.append(int(binary.left[u]))
        return out

    for u in binary.postorder():
        stats.nodes_processed += 1
        kind = binary.kind[u]
        if kind == LEAF:
            ps = _PathSet()
            v = int(binary.leaf_vertex[u])
            ps.first = ps.last = v
            ps.count = 1
            sets[u] = ps
            continue

        left, right = int(binary.left[u]), int(binary.right[u])
        if kind == UNION:
            a, b = sets.pop(left), sets.pop(right)
            if a.count == 0:
                sets[u] = b
            elif b.count == 0:
                sets[u] = a
            else:
                next_path[tail_path_head(a)] = b.first
                a.last = b.last
                a.count += b.count
                sets[u] = a
            continue

        # JOIN node: the right subtree's vertices bridge / insert into the
        # left subtree's paths.
        a = sets.pop(left)
        sets.pop(right, None)     # w's own structure is irrelevant
        w_vertices = leaf_vertices_in_order(right)
        p_v = a.count
        L_w = int(L[right])

        if p_v > L_w:
            # Case 1: all of G(w) bridges; p(v) - L(w) paths remain.
            for b_vertex in w_vertices:
                stats.bridge_operations += 1
                _bridge_first_two(a, b_vertex, nxt, prv, next_path, tail_of)
            sets[u] = a
        else:
            # Case 2: p(v) - 1 bridges make one path, the rest is inserted.
            # The insert vertices are placed *before* bridging, into slots
            # whose flanks all lie in G(v): the interior gaps of the existing
            # paths plus the front of the first path and the back of the
            # last one (which never become bridge attachment points).
            bridges = w_vertices[:p_v - 1]
            inserts = list(w_vertices[p_v - 1:])

            # interior gaps first (both flanks are G(v) vertices), walking the
            # paths only as far as needed
            head = a.first
            while inserts and head != -1:
                v = head
                while inserts and nxt[v] != -1:
                    stats.insert_operations += 1
                    t = inserts.pop()
                    after = nxt[v]
                    nxt[v] = t
                    prv[t] = v
                    nxt[t] = after
                    prv[after] = t
                    v = after
                head = next_path[head]

            if inserts:
                # front-end slot of the first path
                stats.insert_operations += 1
                t = inserts.pop()
                old_head = a.first
                nxt[t] = old_head
                prv[old_head] = t
                prv[t] = -1
                tail_of[t] = tail_of[old_head]
                next_path[t] = next_path[old_head]
                next_path[old_head] = -1
                if a.last == old_head:
                    a.last = t
                a.first = t

            if inserts:
                # back-end slot of the last path (at most one vertex remains)
                stats.insert_operations += 1
                t = inserts.pop()
                last_head = a.last
                tail = tail_of[last_head]
                nxt[tail] = t
                prv[t] = tail
                nxt[t] = -1
                tail_of[last_head] = t
            if inserts:  # pragma: no cover - leftist condition guarantees room
                raise AssertionError("ran out of insertion slots")

            for b_vertex in bridges:
                stats.bridge_operations += 1
                _bridge_first_two(a, b_vertex, nxt, prv, next_path, tail_of)
            assert a.count == 1
            sets[u] = a

    final = sets[binary.root]
    paths: List[List[int]] = []
    h = final.first
    while h != -1:
        path = []
        v = h
        while v != -1:
            path.append(int(v))
            v = int(nxt[v])
        paths.append(path)
        h = int(next_path[h])
    cover = PathCover(paths)
    if return_stats:
        return cover, stats
    return cover


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #

def tail_path_head(ps: _PathSet) -> int:
    """Head vertex of the last path in the set."""
    return ps.last


def _bridge_first_two(ps: _PathSet, bridge_vertex: int, nxt, prv, next_path,
                      tail_of) -> None:
    """Join the first two paths of the set through ``bridge_vertex``."""
    h1 = ps.first
    h2 = next_path[h1]
    if h2 == -1:
        raise AssertionError("bridge requested but only one path remains")
    t1 = tail_of[h1]
    # t1 -> bridge -> h2
    nxt[t1] = bridge_vertex
    prv[bridge_vertex] = t1
    nxt[bridge_vertex] = h2
    prv[h2] = bridge_vertex
    # merge path records: h1 now ends at tail_of[h2]
    tail_of[h1] = tail_of[h2]
    nxt_path_after = next_path[h2]
    next_path[h1] = nxt_path_after
    next_path[h2] = -1
    if ps.last == h2:
        ps.last = h1
    ps.count -= 1
