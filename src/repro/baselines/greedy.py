"""A greedy path-cover heuristic (not optimal) — used to quantify how much the
cotree structure buys over structure-oblivious heuristics.

The heuristic works on any graph: repeatedly start a path at an uncovered
vertex of minimum uncovered-degree and extend it greedily from both ends,
always moving to the uncovered neighbour with the fewest uncovered
neighbours (a standard degree heuristic).  It comes with no optimality
guarantee — unlike the cotree-based algorithms it cannot certify minimality —
although on small random cographs the degree heuristic happens to perform
well; the quantified optimality gap of structure-oblivious orderings is
measured by the A1 ablation benchmark instead.
"""

from __future__ import annotations

from typing import List, Optional

from ..cograph import Graph, PathCover

__all__ = ["greedy_path_cover"]


def greedy_path_cover(graph: Graph, *, seed: Optional[int] = None) -> PathCover:
    """Greedy path cover of an arbitrary graph.

    Deterministic for a fixed input (ties broken by vertex id); the ``seed``
    parameter is accepted for API symmetry with the generators but only
    influences tie-breaking when given.
    """
    n = graph.n
    covered = [False] * n
    paths: List[List[int]] = []

    def uncovered_degree(v: int) -> int:
        return sum(1 for w in graph.adj[v] if not covered[w])

    def pick_start() -> Optional[int]:
        best, best_deg = None, None
        for v in range(n):
            if covered[v]:
                continue
            d = uncovered_degree(v)
            if best is None or d < best_deg:
                best, best_deg = v, d
        return best

    def best_extension(v: int) -> Optional[int]:
        best, best_deg = None, None
        for w in sorted(graph.adj[v]):
            if covered[w]:
                continue
            d = uncovered_degree(w)
            if best is None or d < best_deg:
                best, best_deg = w, d
        return best

    while True:
        start = pick_start()
        if start is None:
            break
        covered[start] = True
        path = [start]
        # extend forward then backward
        for endpoint, append in ((path[-1], True), (path[0], False)):
            current = endpoint
            while True:
                nxt = best_extension(current)
                if nxt is None:
                    break
                covered[nxt] = True
                if append:
                    path.append(nxt)
                else:
                    path.insert(0, nxt)
                current = nxt
        paths.append(path)
    return PathCover(paths)
