"""Command-line front end over :func:`repro.api.solve`.

::

    python -m repro solve "(0 + (1 * 2))"
    python -m repro solve instance.json --task hamiltonian_cycle --json
    python -m repro solve "(0 * (1 * 2))" --backend fast --validate
    python -m repro solve --stream --jobs 4 < instances.jsonl
    python -m repro serve --port 8080 --jobs 4
    python -m repro tasks
    python -m repro --version

The INPUT argument accepts everything :func:`repro.api.as_problem` does from
a string: compact cotree text (``(0 + (1 * 2))``) or a path to a JSON file
written by :func:`repro.io.save_json`.

With ``--stream`` no INPUT is given: instances are read from stdin as JSON
Lines — one problem per line (a quoted cotree-text string, a serialised
cotree/graph object, an edge list, an adjacency dict; bare cotree text lines
are accepted too) — and one solution is written per line, in input order,
as they complete.  ``--jobs`` fans the stream out over worker processes
with bounded in-flight instances (``--window``), and ``--cache`` answers
repeated identical instances from an LRU cache.

``--stream --format binary`` switches the *input* side to the zero-copy
wire format (:mod:`repro.io.wire`): stdin carries u32 length-prefixed
frames, each a ``to_bytes`` buffer, and ingestion memory-views instead of
parsing JSON.  Solutions still stream out as text/JSONL.
"""

from __future__ import annotations

import argparse
import json
import sys

from ._version import __version__
from .api import (
    METHOD_NAMES,
    SolutionCache,
    SolveOptions,
    as_problem,
    solve,
    solve_stream,
    task_names,
)
from .api.registry import TASKS
from .backends import BACKEND_NAMES
from .io import render_cover


def _backend_report() -> str:
    """Which backends are live, with the compiled tier's mode — shared by
    ``--version`` and the ``version`` subcommand (the server's ``/healthz``
    reports the same structured facts)."""
    from .kernels import kernel_status
    status = kernel_status()
    parts = []
    for name in BACKEND_NAMES:
        if name != "kernel":
            parts.append(name)
        elif status["numba_available"]:
            parts.append(f"kernel[jit, numba {status['numba_version']}]")
        else:
            parts.append("kernel[fallback]")
    return ", ".join(parts)


def _version_line() -> str:
    return f"repro {__version__} (backends: {_backend_report()})"


class _VersionAction(argparse.Action):
    """``--version`` with the backend report, composed lazily (probing the
    kernel tier imports numba; only the version paths should pay that)."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.setdefault("nargs", 0)
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(_version_line())
        parser.exit()


def _task_help_lines() -> str:
    """The task list of ``--help``, derived from the registry — a newly
    registered task appears here (and in the ``--task`` choices) with no
    CLI change."""
    width = max(len(name) for name in task_names())
    return "\n".join(f"  {name:<{width}s}  {TASKS[name].summary}"
                     for name in task_names())


def _takes_bits(task: str) -> bool:
    """Does ``task`` read its input as a 0/1 bit vector?  (From the
    registry's ``input_kind``, not a hard-coded task list.)"""
    spec = TASKS.get(task)
    return spec is not None and spec.input_kind == "bits"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Minimum path cover on cographs (Nakano-Olariu-Zomaya) "
                    "— one front door over every task.")
    parser.add_argument("--version", action=_VersionAction,
                        help="print version and live backends, then exit")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "solve", help="solve one instance (or a stream)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="registered tasks:\n" + _task_help_lines())
    run.add_argument("input", nargs="?", default=None,
                     help="cotree text like '(0 + (1 * 2))' or a JSON file "
                          "path (cotree or graph); for bit-vector tasks "
                          "(e.g. lower_bound), a 0/1 bit string like '101' "
                          "or '1,0,1'; omit with --stream")
    run.add_argument("--task", default="path_cover", choices=task_names(),
                     metavar="TASK",
                     help="what to compute (default: path_cover); one of "
                          + ", ".join(task_names()))
    run.add_argument("--method", default="parallel", choices=METHOD_NAMES,
                     help="algorithm family (default: parallel)")
    run.add_argument("--backend", default=None,
                     choices=tuple(BACKEND_NAMES),
                     help="execution backend for the parallel method")
    run.add_argument("--num-processors", type=int, default=None,
                     help="PRAM processor count (backend=pram only)")
    run.add_argument("--validate", action="store_true",
                     help="check the cover against the adjacency oracle")
    run.add_argument("--weights", default=None, metavar="W0,W1,...",
                     help="per-vertex non-negative integer weights for the "
                          "weighted tasks (comma- or space-separated, one "
                          "per vertex)")
    run.add_argument("--json", action="store_true",
                     help="print the full Solution as JSON (JSONL with "
                          "--stream)")
    run.add_argument("--stream", action="store_true",
                     help="read one problem per line (JSON Lines) from "
                          "stdin and stream solutions out in input order")
    run.add_argument("--format", default="jsonl",
                     choices=("jsonl", "binary"),
                     help="for --stream: input framing — 'jsonl' (default) "
                          "or 'binary' (u32 length-prefixed repro.io.wire "
                          "frames, decoded zero-copy)")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for --stream (0 = one per CPU; "
                          "default: in-process)")
    run.add_argument("--window", type=int, default=None, metavar="W",
                     help="max instances in flight for --stream "
                          "(backpressure; default: 4 * jobs * chunksize)")
    run.add_argument("--chunksize", type=int, default=1, metavar="C",
                     help="instances per worker task for --stream "
                          "(default: 1)")
    run.add_argument("--cache", type=int, default=None, metavar="SIZE",
                     help="answer repeated identical instances from an "
                          "LRU cache of SIZE entries")
    run.add_argument("--batch-small", type=int, default=None, metavar="N",
                     help="for --stream: sweep instances of at most N "
                          "vertices in vectorized forest batches instead "
                          "of the worker pool")
    run.add_argument("--on-error", default="fail", choices=("fail", "emit"),
                     help="for --stream: on a malformed input line or an "
                          "instance whose worker retries are exhausted, "
                          "'fail' (default) stops with an error after the "
                          "valid prefix; 'emit' writes a structured "
                          '{"error": ...} record in that slot and continues')
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="for --stream: per-instance re-runs after a "
                          "worker crash or MemoryError before the instance "
                          "is quarantined (default: 3)")
    run.add_argument("--retry-backoff", type=float, default=None,
                     metavar="SECONDS",
                     help="for --stream: base of the capped exponential "
                          "backoff between crash retries (default: 0.05)")
    run.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="for --stream: per-instance wall-clock budget; "
                          "an instance past it degrades to a structured "
                          "deadline error instead of stalling the stream")

    server = sub.add_parser(
        "serve", help="run the HTTP/JSON service (repro.server)",
        description="Serve every registered task over HTTP/1.1 + JSON.  "
                    "Defaults come from REPRO_* environment variables "
                    "(REPRO_PORT, REPRO_QUEUE_LIMIT, ...); flags win.")
    server.add_argument("--host", default=None,
                        help="listen address (default 127.0.0.1)")
    server.add_argument("--port", type=int, default=None,
                        help="listen port (default 8080; 0 = OS-assigned)")
    server.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="solver worker processes (0 = one per CPU; "
                             "1 = in-process)")
    server.add_argument("--queue-limit", type=int, default=None, metavar="N",
                        help="max admitted-but-unanswered requests; past "
                             "it new requests get 429")
    server.add_argument("--cache-size", type=int, default=None, metavar="N",
                        help="solution-cache entries (0 disables)")
    server.add_argument("--batch-small", type=int, default=None, metavar="N",
                        help="forest-sweep threshold for /v1/solve_batch "
                             "(0 disables)")
    server.add_argument("--request-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-request solve budget before a 504")
    server.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-runs of a request whose worker process "
                             "died before answering a structured 500 "
                             "(default 2)")
    server.add_argument("--retry-backoff", type=float, default=None,
                        metavar="SECONDS",
                        help="base backoff between worker-crash retries "
                             "(default 0.05)")
    server.add_argument("--breaker-threshold", type=int, default=None,
                        metavar="N",
                        help="consecutive solve failures that open the "
                             "circuit breaker (503 + Retry-After); "
                             "0 disables (default 5)")
    server.add_argument("--breaker-cooldown", type=float, default=None,
                        metavar="SECONDS",
                        help="seconds an open breaker waits before a "
                             "half-open probe (default 5)")
    server.add_argument("--log-format", default=None,
                        choices=("kv", "json"),
                        help="structured log shape (default kv)")
    server.add_argument("--log-level", default=None,
                        help="DEBUG/INFO/WARNING/ERROR (default INFO)")

    sub.add_parser("tasks", help="list the registered tasks")
    sub.add_parser("version", help="print the package version")
    return parser


def _cmd_tasks() -> int:
    """One line per task: name, input kind, exactly-solved graph classes
    (``-`` for bit-vector tasks), weight support and the summary — all
    read off the registry."""
    names = task_names()
    width = max(len(name) for name in names)
    kinds = {name: TASKS[name].input_kind for name in names}
    kwidth = max(len(k) for k in kinds.values())
    classes = {name: ",".join(TASKS[name].graph_classes) or "-"
               for name in names}
    cwidth = max(len(c) for c in classes.values())
    for name in names:
        spec = TASKS[name]
        weighted = "weights" if spec.uses_weights else "       "
        print(f"  {name:<{width}s}  {kinds[name]:<{kwidth}s}  "
              f"{classes[name]:<{cwidth}s}  {weighted}  {spec.summary}")
    return 0


def _parse_bits(text: str, task: str):
    """``"101"`` / ``"1,0,1"`` / ``"1 0 1"`` -> a bit-vector problem."""
    digits = text.replace(",", "").replace(" ", "")
    if not digits or set(digits) - {"0", "1"}:
        raise ValueError(
            f"the {task} task takes a 0/1 bit string "
            f"(e.g. '101' or '1,0,1'), got {text!r}")
    return [int(c) for c in digits]


def _iter_jsonl(lines, task: str, on_error: str = "fail",
                pending_errors=None):
    """Lazily turn stdin lines into problems (blank lines skipped).

    With ``on_error="fail"`` (the historical behaviour) a malformed line
    raises and kills the stream after the valid prefix.  With ``"emit"``
    each line is adapted eagerly so a bad one is caught *here*: a record
    ``{"error": ..., "line": N}`` is parked in ``pending_errors`` under
    the index of the next good problem (so the consumer can interleave it
    at the right position in the output) and the stream continues.
    """
    bits_task = _takes_bits(task)
    good = 0
    for line_no, raw in enumerate(lines, 1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            # bare cotree text like (0 + (1 * 2)) is accepted unquoted
            value = raw
        try:
            if bits_task and isinstance(value, (str, int)):
                # "101" JSON-parses to the integer 101; both spellings are
                # bit strings here
                value = _parse_bits(str(value), task)
            if on_error == "emit":
                # adapt now so a hopeless line surfaces per line, not as
                # a worker crash deep inside the stream engine
                value = as_problem(value, task=task)
        except (ValueError, TypeError) as exc:
            if on_error != "emit":
                raise
            pending_errors.setdefault(good, []).append(
                {"error": str(exc), "line": line_no})
            continue
        yield value
        good += 1


def _iter_wire_frames(stream, task: str, on_error: str = "fail",
                      pending_errors=None):
    """Lazily decode u32 length-prefixed wire frames from a binary stream.

    The ``--format binary`` counterpart of :func:`_iter_jsonl`: with
    ``on_error="emit"`` a frame that fails wire validation parks a record
    ``{"error": ..., "frame": N}`` and the stream continues; a *truncated*
    stream always fails — once the framing is lost there is no next frame
    to resynchronise on.
    """
    from .io.wire import read_frames
    good = 0
    for frame_no, payload in enumerate(read_frames(stream), 1):
        if on_error == "emit":
            try:
                value = as_problem(payload, task=task)
            except (ValueError, TypeError) as exc:
                pending_errors.setdefault(good, []).append(
                    {"error": str(exc), "frame": frame_no})
                continue
        else:
            # workers adapt the raw bytes themselves (zero-copy per worker)
            value = payload
        yield value
        good += 1


def _print_solution(solution, as_json: bool) -> None:
    if as_json:
        print(json.dumps(solution.to_json_dict()))
    else:
        print(solution.summary())


def _parse_weights(text):
    """``"3,1,4"`` / ``"3 1 4"`` -> a weight tuple for SolveOptions."""
    if text is None:
        return None
    parts = text.replace(",", " ").split()
    if not parts:
        raise ValueError("--weights needs at least one integer")
    try:
        return tuple(int(p) for p in parts)
    except ValueError:
        raise ValueError(f"--weights must be comma- or space-separated "
                         f"integers, got {text!r}") from None


def _cmd_solve(args: argparse.Namespace) -> int:
    cache = SolutionCache(args.cache) if args.cache is not None else None
    options = SolveOptions(method=args.method, backend=args.backend,
                           num_processors=args.num_processors,
                           validate=args.validate, cache=cache,
                           batch_small=args.batch_small,
                           weights=_parse_weights(args.weights))
    if args.stream:
        if args.input is not None:
            raise ValueError("--stream reads problems from stdin; drop the "
                             "INPUT argument")
        retry = None
        if args.retries is not None or args.retry_backoff is not None \
                or args.deadline is not None:
            from .core import RetryPolicy
            defaults = RetryPolicy()
            retry = RetryPolicy(
                max_retries=args.retries if args.retries is not None
                else defaults.max_retries,
                base_delay=args.retry_backoff
                if args.retry_backoff is not None else defaults.base_delay,
                deadline=args.deadline)
        pending_errors = {}
        if args.format == "binary":
            instances = _iter_wire_frames(sys.stdin.buffer, args.task,
                                          args.on_error, pending_errors)
        else:
            instances = _iter_jsonl(sys.stdin, args.task, args.on_error,
                                    pending_errors)
        stream = solve_stream(
            instances,
            args.task, options=options, jobs=args.jobs,
            window=args.window, chunksize=args.chunksize,
            retry=retry, on_error=args.on_error)
        count = skipped = failed = 0

        def flush_errors(records) -> None:
            nonlocal skipped
            for record in records:
                print(json.dumps(record))
                skipped += 1

        for solution in stream:
            # error records for malformed lines between this solution and
            # the previous one go out first, keeping input order
            flush_errors(pending_errors.pop(
                solution.provenance["batch_index"], ()))
            if solution.backend == "error":
                # a quarantined instance (worker crash / deadline /
                # corruption survived every retry): same record shape as
                # the malformed-line errors, in the instance's slot
                print(json.dumps({
                    "error": solution.provenance.get("error"),
                    "error_kind": solution.provenance.get("error_kind"),
                    "attempts": solution.provenance.get("attempts"),
                    "batch_index": solution.provenance.get("batch_index")}))
                failed += 1
                continue
            _print_solution(solution, args.json)
            count += 1
        for index in sorted(pending_errors):    # trailing malformed lines
            flush_errors(pending_errors.pop(index))
        if cache is not None:
            print(f"cache: {cache.stats()}", file=sys.stderr)
        tail = f", skipped {skipped} malformed line(s)" if skipped else ""
        if failed:
            tail += f", quarantined {failed} instance(s)"
        print(f"solved {count} instance(s){tail}", file=sys.stderr)
        return 0
    if args.input is None:
        raise ValueError("INPUT is required unless --stream is given")
    if args.jobs is not None or args.window is not None \
            or args.chunksize != 1 or args.cache is not None \
            or args.batch_small is not None or args.on_error != "fail" \
            or args.retries is not None or args.retry_backoff is not None \
            or args.deadline is not None or args.format != "jsonl":
        raise ValueError("--jobs/--window/--chunksize/--cache/--batch-small"
                         "/--on-error/--retries/--retry-backoff/--deadline"
                         "/--format only apply to --stream")
    problem = (_parse_bits(args.input, args.task) if _takes_bits(args.task)
               else args.input)
    solution = solve(problem, args.task, options=options)
    if args.json:
        json.dump(solution.to_json_dict(), sys.stdout, indent=2)
        print()
        return 0
    print(solution.summary())
    if solution.cover is not None:
        print(render_cover(solution.cover))
    elif isinstance(solution.answer, list):
        print(" - ".join(map(str, solution.answer)))
    elif isinstance(solution.answer, dict):
        for key, value in solution.answer.items():
            print(f"  {key}: {value}")
    if solution.report is not None:
        print(solution.report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # imported lazily: the solve/tasks commands stay free of the server
    # stack, and `repro.server` never loads unless it is asked for
    from .server import Settings, serve
    settings = Settings.from_env(
        host=args.host, port=args.port, jobs=args.jobs,
        queue_limit=args.queue_limit, cache_size=args.cache_size,
        batch_small=args.batch_small, request_timeout=args.request_timeout,
        retries=args.retries, retry_backoff=args.retry_backoff,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        log_format=args.log_format, log_level=args.log_level)
    return serve(settings)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "tasks":
        return _cmd_tasks()
    if args.command == "version":
        print(_version_line())
        return 0
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_solve(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
