"""Command-line front end over :func:`repro.api.solve`.

::

    python -m repro solve "(0 + (1 * 2))"
    python -m repro solve instance.json --task hamiltonian_cycle --json
    python -m repro solve "(0 * (1 * 2))" --backend fast --validate
    python -m repro tasks

The INPUT argument accepts everything :func:`repro.api.as_problem` does from
a string: compact cotree text (``(0 + (1 * 2))``) or a path to a JSON file
written by :func:`repro.io.save_json`.
"""

from __future__ import annotations

import argparse
import json
import sys

from .api import METHOD_NAMES, SolveOptions, solve, task_names
from .api.registry import TASKS
from .backends import BACKEND_NAMES
from .io import render_cover


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Minimum path cover on cographs (Nakano-Olariu-Zomaya) "
                    "— one front door over every task.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("solve", help="solve one instance")
    run.add_argument("input",
                     help="cotree text like '(0 + (1 * 2))' or a JSON file "
                          "path (cotree or graph); for --task lower_bound, "
                          "a 0/1 bit string like '101' or '1,0,1'")
    run.add_argument("--task", default="path_cover", choices=task_names(),
                     help="what to compute (default: path_cover)")
    run.add_argument("--method", default="parallel", choices=METHOD_NAMES,
                     help="algorithm family (default: parallel)")
    run.add_argument("--backend", default=None,
                     choices=tuple(BACKEND_NAMES),
                     help="execution backend for the parallel method")
    run.add_argument("--num-processors", type=int, default=None,
                     help="PRAM processor count (backend=pram only)")
    run.add_argument("--validate", action="store_true",
                     help="check the cover against the adjacency oracle")
    run.add_argument("--json", action="store_true",
                     help="print the full Solution as JSON")

    sub.add_parser("tasks", help="list the registered tasks")
    return parser


def _cmd_tasks() -> int:
    for name in task_names():
        print(f"{name:<18s} {TASKS[name].summary}")
    return 0


def _parse_bits(text: str):
    """``"101"`` / ``"1,0,1"`` / ``"1 0 1"`` -> a bit-vector problem."""
    digits = text.replace(",", "").replace(" ", "")
    if not digits or set(digits) - {"0", "1"}:
        raise ValueError(
            f"the lower_bound task takes a 0/1 bit string "
            f"(e.g. '101' or '1,0,1'), got {text!r}")
    return [int(c) for c in digits]


def _cmd_solve(args: argparse.Namespace) -> int:
    options = SolveOptions(method=args.method, backend=args.backend,
                           num_processors=args.num_processors,
                           validate=args.validate)
    problem = (_parse_bits(args.input) if args.task == "lower_bound"
               else args.input)
    solution = solve(problem, args.task, options=options)
    if args.json:
        json.dump(solution.to_json_dict(), sys.stdout, indent=2)
        print()
        return 0
    print(solution.summary())
    if solution.cover is not None:
        print(render_cover(solution.cover))
    elif isinstance(solution.answer, list):
        print(" - ".join(map(str, solution.answer)))
    elif isinstance(solution.answer, dict):
        for key, value in solution.answer.items():
            print(f"  {key}: {value}")
    if solution.report is not None:
        print(solution.report)
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "tasks":
        return _cmd_tasks()
    try:
        return _cmd_solve(args)
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
