"""Shared C-level DFS kernels for the flat-array hot path.

The throughput (``fast``) backend is licensed to replace simulated PRAM
loops by any direct computation with bit-identical output.  For tree
numberings the direct computation of choice is a depth-first search run in
compiled code: :func:`scipy.sparse.csgraph.depth_first_order` visits the
children of every node in *node-id order*, so after relabelling the nodes
with ids that realise the desired child order, one C call yields the exact
preorder the simulated Euler-tour machinery produces.

Everything else follows analytically:

* a second DFS with the mirrored child order gives the postorder via
  ``post = n - 1 - mirrored_pre``;
* depths come from ``O(log height)`` rounds of pointer doubling over the
  parent array;
* ``size = post - pre + depth + 1`` (count the nodes that exit before a
  node's own exit);
* Euler-tour arc positions are ``enter = 2 * pre - depth`` and
  ``exit = enter + 2 * size - 1``.

scipy is optional: every caller falls back to the list-ranking /
pointer-jumping implementation when :data:`HAVE_SPARSE_DFS` is ``False``,
so a NumPy-only environment stays fully functional (just slower).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised indirectly (scipy ships in CI and dev)
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import depth_first_order as _depth_first_order
    HAVE_SPARSE_DFS = True
except ImportError:  # pragma: no cover - numpy-only environments
    HAVE_SPARSE_DFS = False

__all__ = ["HAVE_SPARSE_DFS", "chase_pointers", "depth_by_doubling",
           "binary_forest_numbering"]


def chase_pointers(g: np.ndarray) -> np.ndarray:
    """Fixpoint of the pointer map ``g`` (``-1`` absorbs) by doubling."""
    for _ in range(max(1, int(np.ceil(np.log2(max(len(g), 2)))) + 1)):
        g2 = np.where(g == -1, -1, g[np.maximum(g, 0)])
        if np.array_equal(g2, g):
            break
        g = g2
    return g


def depth_by_doubling(parent: np.ndarray) -> np.ndarray:
    """Depth of every forest node (``O(log height)`` doubling rounds)."""
    n = len(parent)
    depth = (parent >= 0).astype(np.int64)
    anc = np.where(parent >= 0, parent, np.arange(n, dtype=np.int64))
    for _ in range(64):
        anc2 = anc[anc]
        if np.array_equal(anc2, anc):
            break
        depth = depth + depth[anc]
        anc = anc2
    return depth


def _dfs_preorder_from_keys(left: np.ndarray, right: np.ndarray,
                            key: np.ndarray, num_roots: int, key_space: int,
                            mirror: bool) -> Optional[np.ndarray]:
    """Preorder of a relabelled binary forest via one C-level DFS.

    ``key`` assigns every node a unique id in ``[0, key_space)`` such that
    ascending key order realises the desired visit order: roots first (keys
    ``0 .. num_roots-1`` in visit order), then ``base + 2*parent + side``
    for the children, where the child to be visited first holds the even
    key.  The key space is used directly as the node-id space of the sparse
    graph — unused ids are isolated nodes the DFS never sees — so no
    compaction pass is needed.  int32 indices and float64 weights are the
    dtypes csgraph uses internally, so passing them directly skips one
    conversion copy per call.
    """
    n = len(left)
    N = key_space + 1                               # + the super-root S
    S = N - 1
    counts = np.zeros(N, dtype=np.int32)
    deg = (left != -1).astype(np.int32)
    deg += right != -1
    counts[key] = deg
    counts[S] = num_roots
    indptr = np.zeros(N + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    indices = np.empty(n, dtype=np.int32)
    first, second = (right, left) if mirror else (left, right)
    has_first = np.flatnonzero(first != -1)
    has_second = np.flatnonzero(second != -1)
    indices[indptr[key[has_first]]] = key[first[has_first]]
    indices[indptr[key[has_second]] + (first[has_second] != -1)] = \
        key[second[has_second]]
    # the roots hold keys 0 .. num_roots-1, so S's row is sorted either way
    indices[indptr[S]:indptr[S] + num_roots] = np.arange(num_roots,
                                                         dtype=np.int32)

    graph = _csr_matrix((np.ones(n, dtype=np.float64), indices, indptr),
                        shape=(N, N))
    seq = _depth_first_order(graph, S, directed=True,
                             return_predecessors=False)
    if len(seq) != n + 1:
        return None
    pre_by_key = np.empty(N, dtype=np.int64)
    pre_by_key[np.asarray(seq, dtype=np.int64)] = np.arange(n + 1,
                                                            dtype=np.int64)
    return pre_by_key[key] - 1                      # drop the super-root


def binary_forest_numbering(
        left, right, parent, roots,
        known_depth: Optional[np.ndarray] = None,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """``(preorder, postorder, depth, subtree_size)`` of a binary forest.

    The roots' tours are chained in the given order (matching the Euler-tour
    convention).  ``known_depth`` skips the doubling rounds when the caller
    already holds the depths (they are invariant under child swaps).
    Returns ``None`` when scipy is unavailable or the inputs are not a
    forest rooted exactly at ``roots`` — callers then fall back to the
    list-ranking path.
    """
    if not HAVE_SPARSE_DFS:
        return None
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    parent = np.asarray(parent, dtype=np.int64)
    roots = np.asarray(roots, dtype=np.int64)
    n = len(left)
    # int32 CSR headroom: relabelled ids reach base + 2n with base <= n + 1,
    # so the whole key space must fit int32
    if n == 0 or len(roots) == 0 or 3 * n + 4 > np.iinfo(np.int32).max:
        return None
    parentless = np.flatnonzero(parent == -1)
    if len(roots) != len(parentless) or \
            not np.array_equal(np.sort(roots), parentless):
        return None

    R = len(roots)
    base = (R + 1) // 2 * 2                         # even, so ^1 flips sides
    child = np.flatnonzero(parent != -1)
    is_right = (right[parent[child]] == child).astype(np.int64)
    key = np.empty(n, dtype=np.int64)
    key[child] = base + 2 * parent[child] + is_right
    key[roots] = np.arange(R, dtype=np.int64)
    pre = _dfs_preorder_from_keys(left, right, key, R, base + 2 * n,
                                  mirror=False)
    if pre is None:
        return None
    # the mirrored traversal flips every side bit and reverses the roots
    key[child] ^= 1
    key[roots] = np.arange(R - 1, -1, -1, dtype=np.int64)
    mpre = _dfs_preorder_from_keys(left, right, key, R, base + 2 * n,
                                   mirror=True)
    if mpre is None:  # pragma: no cover - first DFS already proved reachability
        return None
    post = n - 1 - mpre
    depth = known_depth if known_depth is not None \
        else depth_by_doubling(parent)
    size = post - pre + depth + 1
    return pre, post, depth, size
