"""Single source of truth for the package version (import-cycle-free: both
``repro`` and its subpackages read it from here)."""

__version__ = "1.9.0"
