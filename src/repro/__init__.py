"""repro — a full reproduction of Nakano, Olariu and Zomaya's time- and
work-optimal parallel minimum path cover algorithm for cographs (IPPS 1999 /
TCS 290 (2003) 1541-1556).

The package is organised as described in DESIGN.md:

* :mod:`repro.api` — **the one front door**: :func:`~repro.api.solve` /
  :func:`~repro.api.solve_many` over a task registry, typed
  :class:`~repro.api.SolveOptions`, multi-format input adapters
  (:func:`~repro.api.as_problem`) and the unified
  :class:`~repro.api.Solution` result;
* :mod:`repro.cograph` — cotrees, cographs, generators, recognition,
  validation (the substrate the paper assumes);
* :mod:`repro.pram` — the PRAM cost-model simulator (EREW/CREW/CRCW
  accounting and access checking);
* :mod:`repro.backends` — pluggable execution backends: the simulated
  :class:`~repro.backends.PRAMBackend` (reproduction fidelity) and the
  vectorized :class:`~repro.backends.FastBackend` (raw NumPy throughput);
* :mod:`repro.primitives` — the Lemma 5.1 / 5.2 toolbox (prefix sums, list
  ranking, Euler tours, tree numbering, bracket matching, tree contraction);
* :mod:`repro.core` — the paper's algorithm (Sections 2-5), the lower-bound
  reduction and the Hamiltonicity corollaries;
* :mod:`repro.baselines` — the sequential reference, brute force, greedy, and
  cost-model emulations of the prior parallel algorithms;
* :mod:`repro.analysis` / :mod:`repro.io` — the benchmark harness utilities.

Quickstart
----------
>>> from repro import solve, solve_many, SolveOptions, random_cotree
>>> tree = random_cotree(200, seed=1)
>>> pram = solve(tree)                            # simulated (PRAM-costed)
>>> fast = solve(tree, backend="fast")            # raw NumPy throughput
>>> pram.num_paths == fast.num_paths == solve(tree, task="path_cover_size").answer
True
>>> solve("(0 * (1 + 2))", task="hamiltonian_path").ok   # text form input
True
>>> batch = solve_many([random_cotree(50, seed=s) for s in range(4)],
...                    backend="fast")
>>> [b.num_paths for b in batch] == [solve(random_cotree(50, seed=s),
...                                        backend="fast").num_paths
...                                  for s in range(4)]
True

The pre-1.1 entry points (``minimum_path_cover``, ``solve_batch``, the four
Hamiltonicity functions, ...) still work but emit ``DeprecationWarning`` —
see MIGRATION.md for the mapping onto :func:`solve`.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Union

from ._version import __version__
from .cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    Cotree,
    CotreeError,
    Graph,
    NotACographError,
    PathCover,
    PathCoverError,
    balanced_cotree,
    binarize_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    complement_cotree,
    cotree_from_graph,
    independent_set,
    is_cograph,
    join_cotrees,
    join_of_independent_sets,
    make_leftist,
    minimum_path_cover_size,
    random_cotree,
    single_vertex,
    threshold_cograph,
    union_cotrees,
    union_of_cliques,
)
from .backends import (
    BACKEND_NAMES,
    ExecutionContext,
    FastBackend,
    PRAMBackend,
    make_backend,
    resolve_context,
)
from .core import (
    BatchResult,
    ParallelPathCoverResult,
    PathCoverSolver,
    Pipeline,
    PipelineRun,
    WorkerPool,
)
from .core import hamiltonian as _hamiltonian
from .core import solver as _solver
from .baselines import sequential_path_cover as _sequential_path_cover
from .pram import PRAM, AccessMode, CostReport
from .api import (
    METHOD_NAMES,
    Problem,
    Solution,
    SolutionCache,
    SolveOptions,
    as_problem,
    register_task,
    solve,
    solve_forest,
    solve_many,
    solve_stream,
    task_names,
)

__all__ = [
    "__version__",
    # the front door
    "solve", "solve_many", "solve_stream", "solve_forest", "SolveOptions",
    "Solution", "SolutionCache", "WorkerPool",
    "Problem", "as_problem", "register_task", "task_names", "METHOD_NAMES",
    # substrate
    "Cotree", "BinaryCotree", "Graph", "PathCover", "CographAdjacencyOracle",
    "CotreeError", "PathCoverError", "NotACographError",
    "binarize_cotree", "make_leftist", "minimum_path_cover_size",
    "cotree_from_graph", "is_cograph",
    "single_vertex", "independent_set", "clique", "complete_bipartite",
    "union_of_cliques", "join_of_independent_sets", "balanced_cotree",
    "caterpillar_cotree", "threshold_cograph", "random_cotree",
    "union_cotrees", "join_cotrees", "complement_cotree",
    # machine + backends
    "PRAM", "AccessMode", "CostReport",
    "ExecutionContext", "PRAMBackend", "FastBackend",
    "make_backend", "resolve_context", "BACKEND_NAMES",
    # engine types (results of the deprecated shims; also used by repro.core)
    "ParallelPathCoverResult", "PathCoverSolver",
    "Pipeline", "PipelineRun", "BatchResult",
    # deprecated shims (each warns and delegates to solve())
    "minimum_path_cover", "minimum_path_cover_parallel",
    "sequential_path_cover", "solve_batch",
    "has_hamiltonian_path", "has_hamiltonian_cycle", "hamiltonian_path",
    "hamiltonian_cycle",
]


# --------------------------------------------------------------------------- #
# deprecated pre-1.1 entry points — thin shims over solve()
# --------------------------------------------------------------------------- #

def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit the shim deprecation warning, attributed to the caller of the
    shim (so internal use trips the CI filterwarnings tripwire while user
    call sites warn exactly once each)."""
    warnings.warn(
        f"repro.{name} is deprecated; use {replacement} instead "
        f"(see MIGRATION.md)", DeprecationWarning, stacklevel=3)


def minimum_path_cover(tree: Union[Cotree, BinaryCotree], *,
                       method: str = "parallel",
                       backend: Optional[str] = None) -> PathCover:
    """Deprecated: use :func:`repro.solve` (``solve(tree).cover``).

    ``method="sequential"`` together with an explicit ``backend`` used to be
    silently ignored; it now raises :class:`ValueError` (via
    :class:`~repro.api.SolveOptions` validation).
    """
    _warn_deprecated(
        "minimum_path_cover",
        'solve(tree, options=SolveOptions(method=..., backend=...)).cover')
    options = SolveOptions(method=method, backend=backend)
    return solve(tree, "path_cover", options=options).cover


def minimum_path_cover_parallel(tree, *, machine=None, backend=None,
                                num_processors=None,
                                mode=AccessMode.EREW,
                                work_efficient: bool = True,
                                validate: bool = False,
                                record_steps: bool = False
                                ) -> ParallelPathCoverResult:
    """Deprecated: use :func:`repro.solve`, or
    :func:`repro.core.minimum_path_cover_parallel` for direct engine access
    (custom machines / ExecutionContext instances)."""
    _warn_deprecated("minimum_path_cover_parallel",
                     "solve(tree, options=SolveOptions(backend=...))")
    if machine is not None or isinstance(backend, ExecutionContext):
        # escape hatches solve() deliberately does not model
        return _solver.minimum_path_cover_parallel(
            tree, machine=machine, backend=backend,
            num_processors=num_processors, mode=mode,
            work_efficient=work_efficient, validate=validate,
            record_steps=record_steps)
    options = SolveOptions(method="parallel", backend=backend,
                           num_processors=num_processors, mode=mode,
                           work_efficient=work_efficient, validate=validate,
                           record_steps=record_steps)
    s = solve(tree, "path_cover", options=options)
    return ParallelPathCoverResult(
        cover=s.cover, num_paths=s.num_paths,
        p_root=s.provenance["p_root"], report=s.report, machine=s.machine,
        exchanges=s.provenance["exchanges"], backend=s.backend,
        stage_seconds=s.stage_seconds)


def sequential_path_cover(tree, *, return_stats: bool = False):
    """Deprecated: use ``solve(tree, method="sequential")`` (or
    :func:`repro.baselines.sequential_path_cover` for the stats)."""
    _warn_deprecated("sequential_path_cover",
                     "solve(tree, method='sequential').cover")
    if return_stats:  # stats stay a baseline-layer concern
        return _sequential_path_cover(tree, return_stats=True)
    return solve(tree, "path_cover", method="sequential").cover


def solve_batch(trees, *, backend: str = "fast", jobs: Optional[int] = None,
                work_efficient: bool = True, validate: bool = False,
                chunksize: Optional[int] = None) -> List[BatchResult]:
    """Deprecated: use :func:`repro.solve_many` (returns
    :class:`~repro.api.Solution` records instead of ``BatchResult``)."""
    _warn_deprecated("solve_batch", "solve_many(trees, backend=...)")
    options = SolveOptions(backend=backend, work_efficient=work_efficient,
                           validate=validate)
    solutions = solve_many(trees, "path_cover", options=options, jobs=jobs,
                           chunksize=chunksize)
    return [BatchResult(index=s.provenance["batch_index"], cover=s.cover,
                        num_paths=s.num_paths, p_root=s.provenance["p_root"],
                        backend=s.backend, stage_seconds=s.stage_seconds)
            for s in solutions]


def has_hamiltonian_path(tree) -> bool:
    """Deprecated: use ``solve(tree, task="hamiltonian_path").ok``."""
    _warn_deprecated("has_hamiltonian_path",
                     "solve(tree, task='hamiltonian_path').ok")
    # count-only decision: no witness construction (matches legacy cost)
    return solve(tree, "path_cover_size").answer == 1


def has_hamiltonian_cycle(tree) -> bool:
    """Deprecated: use ``solve(tree, task="hamiltonian_cycle").ok``."""
    _warn_deprecated("has_hamiltonian_cycle",
                     "solve(tree, task='hamiltonian_cycle').ok")
    # the analytic O(n) decider, not the witness pipeline (legacy cost)
    return _hamiltonian.has_hamiltonian_cycle(tree)


def hamiltonian_path(tree, *, machine=None) -> Optional[List[int]]:
    """Deprecated: use ``solve(tree, task="hamiltonian_path").answer``."""
    _warn_deprecated("hamiltonian_path",
                     "solve(tree, task='hamiltonian_path').answer")
    if machine is not None:
        return _hamiltonian.hamiltonian_path(tree, machine=machine)
    return solve(tree, "hamiltonian_path").answer


def hamiltonian_cycle(tree, *, machine=None) -> Optional[List[int]]:
    """Deprecated: use ``solve(tree, task="hamiltonian_cycle").answer``."""
    _warn_deprecated("hamiltonian_cycle",
                     "solve(tree, task='hamiltonian_cycle').answer")
    if machine is not None:
        return _hamiltonian.hamiltonian_cycle(tree, machine=machine)
    return solve(tree, "hamiltonian_cycle").answer
