"""repro — a full reproduction of Nakano, Olariu and Zomaya's time- and
work-optimal parallel minimum path cover algorithm for cographs (IPPS 1999 /
TCS 290 (2003) 1541-1556).

The package is organised as described in DESIGN.md:

* :mod:`repro.cograph` — cotrees, cographs, generators, recognition,
  validation (the substrate the paper assumes);
* :mod:`repro.pram` — the PRAM cost-model simulator (EREW/CREW/CRCW
  accounting and access checking);
* :mod:`repro.backends` — pluggable execution backends: the simulated
  :class:`~repro.backends.PRAMBackend` (reproduction fidelity) and the
  vectorized :class:`~repro.backends.FastBackend` (raw NumPy throughput);
* :mod:`repro.primitives` — the Lemma 5.1 / 5.2 toolbox (prefix sums, list
  ranking, Euler tours, tree numbering, bracket matching, tree contraction);
* :mod:`repro.core` — the paper's algorithm (Sections 2-5), the lower-bound
  reduction and the Hamiltonicity corollaries;
* :mod:`repro.baselines` — the sequential reference, brute force, greedy, and
  cost-model emulations of the prior parallel algorithms;
* :mod:`repro.analysis` / :mod:`repro.io` — the benchmark harness utilities.

Quickstart
----------
>>> from repro import random_cotree, minimum_path_cover, minimum_path_cover_size
>>> tree = random_cotree(200, seed=1)
>>> cover = minimum_path_cover(tree)                  # simulated (PRAM-costed)
>>> fast = minimum_path_cover(tree, backend="fast")   # raw NumPy throughput
>>> cover.num_paths == fast.num_paths == minimum_path_cover_size(tree)
True
>>> from repro import solve_batch
>>> batch = solve_batch([random_cotree(50, seed=s) for s in range(4)])
>>> [r.num_paths for r in batch] == [minimum_path_cover(t).num_paths
...                                  for t in (random_cotree(50, seed=s)
...                                            for s in range(4))]
True
"""

from __future__ import annotations

from typing import Union

from .cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    Cotree,
    CotreeError,
    Graph,
    NotACographError,
    PathCover,
    PathCoverError,
    balanced_cotree,
    binarize_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    complement_cotree,
    cotree_from_graph,
    independent_set,
    is_cograph,
    join_cotrees,
    join_of_independent_sets,
    make_leftist,
    minimum_path_cover_size,
    random_cotree,
    single_vertex,
    threshold_cograph,
    union_cotrees,
    union_of_cliques,
)
from .backends import (
    BACKEND_NAMES,
    ExecutionContext,
    FastBackend,
    PRAMBackend,
    make_backend,
    resolve_context,
)
from .core import (
    BatchResult,
    ParallelPathCoverResult,
    PathCoverSolver,
    Pipeline,
    PipelineRun,
    solve_batch,
    hamiltonian_cycle,
    hamiltonian_path,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    minimum_path_cover_parallel,
)
from .baselines import sequential_path_cover
from .pram import PRAM, AccessMode, CostReport

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "Cotree", "BinaryCotree", "Graph", "PathCover", "CographAdjacencyOracle",
    "CotreeError", "PathCoverError", "NotACographError",
    "binarize_cotree", "make_leftist", "minimum_path_cover_size",
    "cotree_from_graph", "is_cograph",
    "single_vertex", "independent_set", "clique", "complete_bipartite",
    "union_of_cliques", "join_of_independent_sets", "balanced_cotree",
    "caterpillar_cotree", "threshold_cograph", "random_cotree",
    "union_cotrees", "join_cotrees", "complement_cotree",
    # machine + backends
    "PRAM", "AccessMode", "CostReport",
    "ExecutionContext", "PRAMBackend", "FastBackend",
    "make_backend", "resolve_context", "BACKEND_NAMES",
    # algorithms
    "minimum_path_cover", "minimum_path_cover_parallel",
    "sequential_path_cover", "ParallelPathCoverResult", "PathCoverSolver",
    "Pipeline", "PipelineRun", "solve_batch", "BatchResult",
    "has_hamiltonian_path", "has_hamiltonian_cycle", "hamiltonian_path",
    "hamiltonian_cycle",
]


def minimum_path_cover(tree: Union[Cotree, BinaryCotree], *,
                       method: str = "parallel",
                       backend: str = "pram") -> PathCover:
    """Find a minimum path cover of a cograph.

    Parameters
    ----------
    tree:
        the cograph's cotree (use :func:`cotree_from_graph` to obtain one
        from an explicit graph).
    method:
        ``"parallel"`` (the paper's algorithm) or ``"sequential"`` (the
        Lin-Olariu-Pruesse reference algorithm).
    backend:
        for the parallel method: ``"pram"`` (default — simulate the paper's
        machine, with accounting and access checking) or ``"fast"`` (raw
        vectorized NumPy, same cover, no cost model).

    Returns
    -------
    PathCover
    """
    if method == "parallel":
        return minimum_path_cover_parallel(tree, backend=backend).cover
    if method == "sequential":
        return sequential_path_cover(tree)
    raise ValueError(f"unknown method {method!r}; use 'parallel' or 'sequential'")
