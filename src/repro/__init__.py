"""repro — a full reproduction of Nakano, Olariu and Zomaya's time- and
work-optimal parallel minimum path cover algorithm for cographs (IPPS 1999 /
TCS 290 (2003) 1541-1556).

The package is organised as described in DESIGN.md:

* :mod:`repro.cograph` — cotrees, cographs, generators, recognition,
  validation (the substrate the paper assumes);
* :mod:`repro.pram` — the PRAM cost-model simulator (EREW/CREW/CRCW
  accounting and access checking);
* :mod:`repro.primitives` — the Lemma 5.1 / 5.2 toolbox (prefix sums, list
  ranking, Euler tours, tree numbering, bracket matching, tree contraction);
* :mod:`repro.core` — the paper's algorithm (Sections 2-5), the lower-bound
  reduction and the Hamiltonicity corollaries;
* :mod:`repro.baselines` — the sequential reference, brute force, greedy, and
  cost-model emulations of the prior parallel algorithms;
* :mod:`repro.analysis` / :mod:`repro.io` — the benchmark harness utilities.

Quickstart
----------
>>> from repro import random_cotree, minimum_path_cover, minimum_path_cover_size
>>> tree = random_cotree(200, seed=1)
>>> cover = minimum_path_cover(tree)
>>> cover.num_paths == minimum_path_cover_size(tree)
True
"""

from __future__ import annotations

from typing import Union

from .cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    Cotree,
    CotreeError,
    Graph,
    NotACographError,
    PathCover,
    PathCoverError,
    balanced_cotree,
    binarize_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    complement_cotree,
    cotree_from_graph,
    independent_set,
    is_cograph,
    join_cotrees,
    join_of_independent_sets,
    make_leftist,
    minimum_path_cover_size,
    random_cotree,
    single_vertex,
    threshold_cograph,
    union_cotrees,
    union_of_cliques,
)
from .core import (
    ParallelPathCoverResult,
    PathCoverSolver,
    hamiltonian_cycle,
    hamiltonian_path,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
    minimum_path_cover_parallel,
)
from .baselines import sequential_path_cover
from .pram import PRAM, AccessMode, CostReport

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "Cotree", "BinaryCotree", "Graph", "PathCover", "CographAdjacencyOracle",
    "CotreeError", "PathCoverError", "NotACographError",
    "binarize_cotree", "make_leftist", "minimum_path_cover_size",
    "cotree_from_graph", "is_cograph",
    "single_vertex", "independent_set", "clique", "complete_bipartite",
    "union_of_cliques", "join_of_independent_sets", "balanced_cotree",
    "caterpillar_cotree", "threshold_cograph", "random_cotree",
    "union_cotrees", "join_cotrees", "complement_cotree",
    # machine
    "PRAM", "AccessMode", "CostReport",
    # algorithms
    "minimum_path_cover", "minimum_path_cover_parallel",
    "sequential_path_cover", "ParallelPathCoverResult", "PathCoverSolver",
    "has_hamiltonian_path", "has_hamiltonian_cycle", "hamiltonian_path",
    "hamiltonian_cycle",
]


def minimum_path_cover(tree: Union[Cotree, BinaryCotree], *,
                       method: str = "parallel") -> PathCover:
    """Find a minimum path cover of a cograph.

    Parameters
    ----------
    tree:
        the cograph's cotree (use :func:`cotree_from_graph` to obtain one
        from an explicit graph).
    method:
        ``"parallel"`` (the paper's algorithm on the PRAM simulator) or
        ``"sequential"`` (the Lin-Olariu-Pruesse reference algorithm).

    Returns
    -------
    PathCover
    """
    if method == "parallel":
        return minimum_path_cover_parallel(tree).cover
    if method == "sequential":
        return sequential_path_cover(tree)
    raise ValueError(f"unknown method {method!r}; use 'parallel' or 'sequential'")
