"""Tree numberings derived from the Euler tour — Lemma 5.2(2)-(3).

Given a binary forest, this module computes (all in ``O(log n)`` rounds and
``O(n)`` work on top of one Euler tour):

* preorder, inorder and postorder numbers,
* depths,
* subtree sizes and subtree *leaf* counts ``L(u)`` (the quantity the paper's
  Step 2 needs),

each as a plain NumPy array indexed by node id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._dfs import binary_forest_numbering
from ..backends import resolve_context
from .euler_tour import EulerTour, build_euler_tour

__all__ = ["TreeNumbers", "compute_tree_numbers"]


@dataclass
class TreeNumbers:
    """Bundle of per-node tree statistics (arrays indexed by node id)."""

    preorder: np.ndarray
    inorder: np.ndarray
    postorder: np.ndarray
    depth: np.ndarray
    subtree_size: np.ndarray
    subtree_leaves: np.ndarray
    tour: EulerTour


def compute_tree_numbers(ctx, left, right, parent,
                         roots: Sequence[int], *,
                         work_efficient: bool = True,
                         known_depth=None,
                         label: str = "numbering") -> TreeNumbers:
    """Compute all tree numberings for a binary forest.

    ``left``, ``right`` and ``parent`` are the usual child/parent arrays with
    ``-1`` for "absent"; ``roots`` lists the forest's roots (their tours are
    chained, so pre/in/post-order numbers are global but consistent with a
    left-to-right traversal of the forest).

    Inorder numbers are assigned to *every* node: a leaf is visited when it
    is entered, an internal node is visited when the tour returns from its
    left subtree (for nodes with only a right child, at the enter arc; this
    matches the usual inorder convention for binary trees).

    ``known_depth`` lets a caller that already holds the node depths (they
    are invariant under child swaps) skip recomputing them on the
    throughput path; the simulator ignores it.
    """
    machine = resolve_context(ctx)
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    parent = np.asarray(parent, dtype=np.int64)
    n = len(left)

    # Throughput path: one C-level DFS numbering replaces the tour ranking
    # *and* the five prefix scans below, with bit-identical results (the
    # backend-parity tests cross-check every field against the simulator).
    if n and not machine.simulates:
        numbering = binary_forest_numbering(left, right, parent, roots,
                                            known_depth=known_depth)
        if numbering is not None:
            tour = build_euler_tour(machine, left, right, parent, roots,
                                    work_efficient=work_efficient,
                                    numbering=numbering,
                                    label=f"{label}.euler")
            return _numbers_from_dfs(tour, left, right, numbering)

    tour = build_euler_tour(machine, left, right, parent, roots,
                            work_efficient=work_efficient, label=f"{label}.euler")
    nodes = np.arange(n, dtype=np.int64)
    enter = tour.enter(nodes)
    exit_ = tour.exit(nodes)
    is_leaf = (left == -1) & (right == -1)

    # --- preorder: +1 at every enter arc ------------------------------- #
    arc_vals = np.zeros(2 * n, dtype=np.int64)
    arc_vals[enter] = 1
    pre_prefix = tour.prefix_over_tour(machine, arc_vals, inclusive=True,
                                       label=f"{label}.pre")
    preorder = pre_prefix[enter] - 1

    # --- postorder: +1 at every exit arc -------------------------------- #
    arc_vals = np.zeros(2 * n, dtype=np.int64)
    arc_vals[exit_] = 1
    post_prefix = tour.prefix_over_tour(machine, arc_vals, inclusive=True,
                                        label=f"{label}.post")
    postorder = post_prefix[exit_] - 1

    # --- depth: +1 at enter, -1 at exit --------------------------------- #
    arc_vals = np.zeros(2 * n, dtype=np.int64)
    arc_vals[enter] = 1
    arc_vals[exit_] = -1
    depth_prefix = tour.prefix_over_tour(machine, arc_vals, inclusive=True,
                                         label=f"{label}.depth")
    depth = depth_prefix[enter] - 1
    # chaining tours keeps the running sum at zero between trees, so depths
    # remain relative to each tree's own root.

    # --- subtree size: half the number of arcs strictly inside [enter, exit]
    subtree_size = (tour.position[exit_] - tour.position[enter] + 1) // 2

    # --- subtree leaf count L(u): leaves entered within [enter(u), exit(u)]
    arc_vals = np.zeros(2 * n, dtype=np.int64)
    arc_vals[enter[is_leaf]] = 1
    leaf_prefix = tour.prefix_over_tour(machine, arc_vals, inclusive=True,
                                        label=f"{label}.leaves")
    subtree_leaves = leaf_prefix[exit_] - leaf_prefix[enter] + is_leaf.astype(np.int64)

    # --- inorder --------------------------------------------------------- #
    # visit tick: leaves at their enter arc; internal nodes with a left child
    # at exit(left child); internal nodes without a left child at their enter
    # arc.
    tick_arc = np.where(is_leaf, enter,
               np.where(left != -1, tour.exit(np.maximum(left, 0)), enter))
    arc_vals = np.zeros(2 * n, dtype=np.int64)
    arc_vals[tick_arc] = 1
    in_prefix = tour.prefix_over_tour(machine, arc_vals, inclusive=True,
                                      label=f"{label}.inorder")
    inorder = in_prefix[tick_arc] - 1

    return TreeNumbers(preorder=preorder, inorder=inorder, postorder=postorder,
                       depth=depth, subtree_size=subtree_size,
                       subtree_leaves=subtree_leaves, tour=tour)


def _numbers_from_dfs(tour: EulerTour, left: np.ndarray, right: np.ndarray,
                      numbering) -> TreeNumbers:
    """Assemble :class:`TreeNumbers` from a DFS numbering (throughput path).

    ``subtree_leaves`` is one cumulative sum over the preorder sequence
    (every subtree is a contiguous preorder interval); ``inorder`` is one
    cumulative sum over the 2n tour positions with a visit tick per node —
    exactly the quantities the simulated scans compute arc by arc.
    """
    pre, post, depth, size = numbering
    n = len(pre)
    is_leaf = (left == -1) & (right == -1)

    # leaves in the preorder interval [pre, pre + size)
    leaf_flag = np.zeros(n + 1, dtype=np.int64)
    leaf_flag[pre[is_leaf] + 1] = 1
    leaf_cum = np.cumsum(leaf_flag)
    subtree_leaves = leaf_cum[pre + size] - leaf_cum[pre]

    # inorder: leaves tick at their enter arc, internal nodes with a left
    # child at exit(left child), other internal nodes at their enter arc
    enter_pos = tour.position[:n]
    exit_pos = tour.position[n:]
    tick_pos = np.where(is_leaf, enter_pos,
                        np.where(left != -1,
                                 exit_pos[np.maximum(left, 0)], enter_pos))
    ticks = np.zeros(2 * n, dtype=np.int64)
    ticks[tick_pos] = 1
    tick_cum = np.cumsum(ticks)
    inorder = tick_cum[tick_pos] - 1

    return TreeNumbers(preorder=pre, inorder=inorder, postorder=post,
                       depth=depth, subtree_size=size,
                       subtree_leaves=subtree_leaves, tour=tour)
