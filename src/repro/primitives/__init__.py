"""Parallel primitives (the paper's Lemma 5.1 / 5.2).

Every primitive takes an execution context as its first argument — anything
:func:`repro.backends.resolve_context` accepts: a
:class:`~repro.backends.PRAMBackend` (or a raw :class:`~repro.pram.PRAM`
machine) for simulated, accounted, conflict-checked execution; a
:class:`~repro.backends.FastBackend`, backend name, or ``None`` for raw
vectorized NumPy execution with identical outputs and no accounting.
"""

from .ancestors import topmost_marked_ancestor, topmost_marked_ancestor_jumping
from .bracket_matching import match_brackets
from .euler_tour import EulerTour, build_euler_tour
from .list_ranking import (
    list_ranks,
    work_efficient_list_ranking,
    wyllie_list_ranking,
)
from .scan import (
    NEG_INF,
    prefix_max,
    prefix_sum,
    prefix_sum_hillis_steele,
    total_sum,
)
from .tree_contraction import (
    evaluate_max_plus_tree,
    mp_apply,
    mp_compose,
    mp_constant,
    mp_identity,
)
from .tree_numbering import TreeNumbers, compute_tree_numbers

__all__ = [
    "prefix_sum", "prefix_sum_hillis_steele", "prefix_max", "total_sum",
    "NEG_INF",
    "wyllie_list_ranking", "work_efficient_list_ranking", "list_ranks",
    "EulerTour", "build_euler_tour",
    "TreeNumbers", "compute_tree_numbers",
    "match_brackets",
    "topmost_marked_ancestor", "topmost_marked_ancestor_jumping",
    "evaluate_max_plus_tree", "mp_identity", "mp_constant", "mp_compose",
    "mp_apply",
]
