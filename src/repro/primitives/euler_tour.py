"""The Euler-tour technique for (binary) trees and forests — Lemma 5.2(1).

Every node ``v`` of a rooted binary tree contributes two *arcs* to the tour:
``enter(v)`` (the first visit, coming from the parent) and ``exit(v)`` (the
final departure back to the parent).  The tour of the whole tree is the
linked list

    enter(root), ..., exit(root)

obtained from the local successor rules

* ``succ(enter(v))`` = ``enter(left(v))`` if it exists, else
  ``enter(right(v))`` if it exists, else ``exit(v)``;
* ``succ(exit(v))`` = ``enter(right(parent))`` when ``v`` is a left child and
  a right sibling exists, else ``exit(parent)``, else the end of the tour.

Computing the successor array is a single O(1)-depth data-parallel step;
positions along the tour are then obtained by list ranking, after which every
tree statistic the paper needs (preorder/inorder/postorder numbers, depths,
subtree sizes, leaf counts) is a prefix sum over the tour order
(:mod:`repro.primitives.tree_numbering`).

Forests are handled by chaining the individual tours one after another, which
keeps all prefix computations correct per tree while using a single list
ranking.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._dfs import binary_forest_numbering
from ..backends import resolve_context
from .list_ranking import list_ranks
from .scan import prefix_sum

__all__ = ["EulerTour", "build_euler_tour"]


class EulerTour:
    """The Euler tour of a binary forest.

    Arc ``v`` (``0 <= v < n``) is ``enter(v)``; arc ``n + v`` is ``exit(v)``.

    Attributes
    ----------
    successor:
        successor arc of each arc (``-1`` at the end of the chained tour).
        On the throughput path (positions derived from the DFS numbering)
        the array is materialised lazily on first access — nothing in the
        hot pipeline reads it.
    position:
        position of each arc along the (chained) tour, ``0`` first.
    num_nodes:
        number of tree nodes ``n`` (the tour has ``2n`` arcs).
    roots:
        the forest's root nodes, in the order their tours were chained.
    """

    __slots__ = ("_successor", "_successor_builder", "position", "num_nodes",
                 "roots")

    def __init__(self, successor, position, num_nodes: int, roots,
                 successor_builder=None) -> None:
        self._successor = successor
        self._successor_builder = successor_builder
        self.position = position
        self.num_nodes = num_nodes
        self.roots = roots

    @property
    def successor(self) -> np.ndarray:
        if self._successor is None:
            self._successor = self._successor_builder()
        return self._successor

    def enter(self, nodes) -> np.ndarray:
        """Arc ids of ``enter(v)`` for the given nodes."""
        return np.asarray(nodes, dtype=np.int64)

    def exit(self, nodes) -> np.ndarray:
        """Arc ids of ``exit(v)`` for the given nodes."""
        return np.asarray(nodes, dtype=np.int64) + self.num_nodes

    def enter_position(self, nodes) -> np.ndarray:
        """Tour positions of the enter arcs."""
        return self.position[self.enter(nodes)]

    def exit_position(self, nodes) -> np.ndarray:
        """Tour positions of the exit arcs."""
        return self.position[self.exit(nodes)]

    def values_by_position(self, arc_values: np.ndarray) -> np.ndarray:
        """Permute per-arc values into tour order (position-indexed array)."""
        out = np.zeros(2 * self.num_nodes, dtype=np.asarray(arc_values).dtype)
        out[self.position] = arc_values
        return out

    def prefix_over_tour(self, ctx, arc_values,
                         *, inclusive: bool = True,
                         label: str = "tour-prefix") -> np.ndarray:
        """Prefix sums of per-arc values taken in tour order.

        Returns an array indexed by *arc id* whose entry is the prefix sum of
        ``arc_values`` over all arcs up to (and, if ``inclusive``, including)
        that arc in tour order.
        """
        machine = resolve_context(ctx)
        arc_values = np.asarray(arc_values, dtype=np.int64)
        if not machine.simulates:
            # permute into tour order, scan, permute back — one shot
            by_pos = np.zeros(2 * self.num_nodes, dtype=np.int64)
            by_pos[self.position] = arc_values
            scanned = np.cumsum(by_pos, dtype=np.int64)
            if not inclusive:
                scanned -= by_pos
            return scanned[self.position]
        by_pos = machine.array(2 * self.num_nodes, name=f"{label}.by-pos")
        arcs = np.arange(2 * self.num_nodes, dtype=np.int64)
        with machine.step(active=2 * self.num_nodes, label=f"{label}:permute"):
            # positions form a permutation, so the scatter is exclusive
            by_pos.scatter(self.position[arcs], arc_values[arcs])
        scanned = prefix_sum(machine, by_pos.data, inclusive=inclusive,
                             label=label)
        out_arr = machine.array(2 * self.num_nodes, name=f"{label}.out")
        with machine.step(active=2 * self.num_nodes, label=f"{label}:permute-back"):
            out_arr.scatter(arcs, scanned[self.position[arcs]])
        return out_arr.data.copy()


def build_euler_tour(ctx, left, right, parent,
                     roots: Sequence[int], *, work_efficient: bool = True,
                     numbering=None,
                     label: str = "euler") -> EulerTour:
    """Build the Euler tour of a binary forest and rank it.

    Parameters
    ----------
    ctx:
        execution context (or a raw PRAM machine / backend name / ``None``).
    left, right, parent:
        binary-tree arrays (``-1`` where absent).
    roots:
        root node of every tree in the forest; their tours are chained in
        the given order.
    work_efficient:
        choose the work-efficient list ranking (default) or Wyllie pointer
        jumping.
    numbering:
        optional precomputed ``(pre, post, depth, size)`` tuple from
        :func:`repro._dfs.binary_forest_numbering`; avoids recomputing the
        DFS when the caller already holds it (only used off the simulator).
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    parent = np.asarray(parent, dtype=np.int64)
    roots = np.asarray(list(roots), dtype=np.int64)
    n = len(left)
    machine = resolve_context(ctx)
    if n == 0:
        return EulerTour(np.empty(0, dtype=np.int64),
                         np.empty(0, dtype=np.int64), 0, roots)

    # Throughput path: a C-level DFS numbering yields the positions
    # analytically (enter = 2*pre - depth, exit = enter + 2*size - 1) —
    # bit-identical to the ranked values, an order of magnitude cheaper.
    # The successor array is only needed for ranking, so it is materialised
    # lazily should anyone ask for it.
    if not machine.simulates:
        if numbering is None:
            numbering = binary_forest_numbering(left, right, parent, roots)
        if numbering is not None:
            pre, _post, depth, size = numbering
            position = np.empty(2 * n, dtype=np.int64)
            position[:n] = 2 * pre - depth
            position[n:] = position[:n] + 2 * size - 1
            return EulerTour(
                None, position, n, roots,
                successor_builder=lambda: _euler_successors(
                    left, right, parent, roots))

    succ = machine.array(np.full(2 * n, -1, dtype=np.int64), name=f"{label}.succ")
    nodes = np.arange(n, dtype=np.int64)

    with machine.step(active=n, label=f"{label}:successors"):
        l = left  # noqa: E741 - mirrors the paper's notation
        r = right
        p = parent
        # successor of enter(v)
        enter_succ = np.where(l != -1, l,            # go down-left
                     np.where(r != -1, r,            # or down-right
                              nodes + n))            # or bounce to exit(v)
        # successor of exit(v)
        has_parent = p != -1
        is_left = np.zeros(n, dtype=bool)
        idx = np.flatnonzero(has_parent)
        is_left[idx] = left[p[idx]] == idx
        right_sibling = np.full(n, -1, dtype=np.int64)
        right_sibling[idx] = np.where(is_left[idx], right[p[idx]], -1)
        exit_succ = np.where(right_sibling != -1, right_sibling,
                    np.where(has_parent, p + n, -1))
        succ.scatter(nodes, enter_succ)
        succ.scatter(nodes + n, exit_succ)

    # chain the individual tours: exit(root_i) -> enter(root_{i+1})
    if len(roots) > 1:
        with machine.step(active=len(roots) - 1, label=f"{label}:chain"):
            succ.scatter(roots[:-1] + n, roots[1:])

    # suffix sums with unit weights give "number of arcs from here to the
    # end"; position = total - suffix.
    ranks = list_ranks(machine, succ.data, None, work_efficient=work_efficient,
                       label=f"{label}:rank")
    position = (2 * n - ranks).astype(np.int64)
    return EulerTour(succ.data.copy(), position, n, roots)


def _euler_successors(left: np.ndarray, right: np.ndarray,
                      parent: np.ndarray, roots: np.ndarray) -> np.ndarray:
    """The successor array of the chained tour (pure NumPy; same formulas
    as the machine-accounted construction in :func:`build_euler_tour`)."""
    n = len(left)
    nodes = np.arange(n, dtype=np.int64)
    enter_succ = np.where(left != -1, left,
                 np.where(right != -1, right, nodes + n))
    has_parent = parent != -1
    is_left = np.zeros(n, dtype=bool)
    idx = np.flatnonzero(has_parent)
    is_left[idx] = left[parent[idx]] == idx
    right_sibling = np.full(n, -1, dtype=np.int64)
    right_sibling[idx] = np.where(is_left[idx], right[parent[idx]], -1)
    exit_succ = np.where(right_sibling != -1, right_sibling,
                np.where(has_parent, parent + n, -1))
    succ = np.concatenate([enter_succ, exit_succ])
    if len(roots) > 1:
        succ[roots[:-1] + n] = roots[1:]
    return succ
