"""Parallel tree contraction (rake) for evaluating the path-cover recurrence.

Lemma 2.4 of the paper computes, for every internal node ``u`` of the leftist
binarized cotree, the minimum path-cover size

    p(u) = p(v) + p(w)              if u is a 0-node
    p(u) = max(p(v) - L(w), 1)      if u is a 1-node

in ``O(log n)`` time and ``O(n)`` work on the EREW PRAM, using tree
contraction [1, 13].  This module implements that computation from scratch:

* the *max-plus* function class ``f(x) = max(x + a, b)`` (with ``a`` possibly
  ``-inf``), which is closed under composition and under partial evaluation
  of both node operators — the invariant that makes contraction work;
* the rake-based contraction schedule of Abrahamson–Dadoun–Kirkpatrick–
  Przytycka [1]: in each round all odd-ranked leaves that are left children
  are raked simultaneously, then all odd-ranked right children, after which
  leaf ranks are recompacted; ``O(log n)`` rounds, geometrically decreasing
  work;
* the matching *expansion* phase that replays the rakes backwards to recover
  the value of every internal node (not only the root), which is what
  Lemma 2.4 needs.

The implementation is vectorised: each sub-step is one synchronous PRAM step
over NumPy arrays, and all shared-memory accesses are declared to the
machine, so the EREW checker certifies the access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..backends import resolve_context
from ..cograph.cotree import JOIN, LEAF, UNION

__all__ = [
    "NEG_INF",
    "mp_identity",
    "mp_constant",
    "mp_compose",
    "mp_apply",
    "evaluate_max_plus_tree",
]

#: "minus infinity" for the max-plus function class.  Chosen so that adding
#: two sentinels (or a sentinel and any value that appears in a cotree
#: computation) cannot overflow an int64.
NEG_INF = np.int64(-(2 ** 60))


# --------------------------------------------------------------------------- #
# the max-plus function class  f(x) = max(x + a, b)
# --------------------------------------------------------------------------- #

def _sat_add(x, y):
    """Saturating addition: anything plus -inf is -inf."""
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    out = x + y
    return np.where((x <= NEG_INF) | (y <= NEG_INF), NEG_INF, out)


def mp_identity(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` copies of the identity function (``a = 0``, ``b = -inf``)."""
    return (np.zeros(n, dtype=np.int64), np.full(n, NEG_INF, dtype=np.int64))


def mp_constant(values) -> Tuple[np.ndarray, np.ndarray]:
    """Constant functions ``f(x) = c`` (``a = -inf``, ``b = c``)."""
    values = np.asarray(values, dtype=np.int64)
    return (np.full(len(values), NEG_INF, dtype=np.int64), values.copy())


def mp_compose(a1, b1, a2, b2) -> Tuple[np.ndarray, np.ndarray]:
    """Composition ``f2 ∘ f1`` where ``f_i(x) = max(x + a_i, b_i)``.

    ``(f2 ∘ f1)(x) = max(x + a1 + a2, max(b1 + a2, b2))``.
    """
    a = _sat_add(a1, a2)
    b = np.maximum(_sat_add(b1, a2), np.asarray(b2, dtype=np.int64))
    return a, b


def mp_apply(a, b, x) -> np.ndarray:
    """Apply ``f(x) = max(x + a, b)`` elementwise."""
    return np.maximum(_sat_add(x, a), np.asarray(b, dtype=np.int64))


# --------------------------------------------------------------------------- #
# rake events
# --------------------------------------------------------------------------- #

@dataclass
class _RakeEvent:
    """All rakes performed in one sub-step (arrays are parallel)."""

    leaf: np.ndarray            # raked leaf l
    parent: np.ndarray          # removed internal node u
    sibling: np.ndarray         # sibling s re-attached to the grandparent
    leaf_is_left: np.ndarray    # True when l was the left child of u
    fa_leaf: np.ndarray         # edge function of l at rake time
    fb_leaf: np.ndarray
    fa_sib: np.ndarray          # edge function of s at rake time (before update)
    fb_sib: np.ndarray
    val_leaf: np.ndarray        # constant value carried by l


# --------------------------------------------------------------------------- #
# the evaluator
# --------------------------------------------------------------------------- #

def evaluate_max_plus_tree(
    ctx,
    left,
    right,
    parent,
    root: int,
    kind,
    join_const,
    leaf_values,
    *,
    leaf_inorder: Optional[np.ndarray] = None,
    label: str = "contract",
) -> np.ndarray:
    """Evaluate the Lemma 2.4 recurrence for **every** node of a full binary
    tree by parallel rake contraction + expansion.

    Parameters
    ----------
    left, right, parent:
        binary-tree arrays (``-1`` where absent); every internal node must
        have both children.
    root:
        root node id — or an array of root ids when the arrays hold a
        *forest* of disjoint trees (all ids must be valid nodes).  The
        multi-root schedule retires leaves whose parent is a root before
        ranking each round, rakes the rest exactly as in the single-tree
        schedule (the rake-safety invariant is per subtree, so it is
        unaffected by other trees), and finishes with one vectorized
        combine over all internal roots.
    kind:
        per-node operator: :data:`~repro.cograph.cotree.LEAF`,
        :data:`~repro.cograph.cotree.UNION` (value = sum of children) or
        :data:`~repro.cograph.cotree.JOIN`
        (value = ``max(left_child_value - join_const, 1)``).
    join_const:
        per-node constant used by JOIN nodes (ignored elsewhere); for the
        paper's recurrence this is ``L(w)``, the leaf count of the right
        child.
    leaf_values:
        per-node constant for leaves (ignored elsewhere); ``p(leaf) = 1`` in
        the paper.
    leaf_inorder:
        optional left-to-right rank of every leaf (computed internally when
        omitted — sequentially, since the PRAM-costed pipeline already has
        the tree numbering and passes it in).

    Returns
    -------
    numpy.ndarray
        ``val[u]`` for every node ``u``.
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    parent = np.asarray(parent, dtype=np.int64)
    kind = np.asarray(kind, dtype=np.int64)
    join_const = np.asarray(join_const, dtype=np.int64)
    leaf_values = np.asarray(leaf_values, dtype=np.int64)
    n = len(left)
    machine = resolve_context(ctx)

    roots_arr = np.atleast_1d(np.asarray(root, dtype=np.int64))
    multi = len(roots_arr) > 1

    val = np.full(n, NEG_INF, dtype=np.int64)
    is_leaf = kind == LEAF
    val[is_leaf] = leaf_values[is_leaf]
    if not multi:
        root = int(roots_arr[0])
        if n == 1 or is_leaf[root]:
            return val
    elif bool(np.all(is_leaf[roots_arr])):
        return val

    # ---- leaf order ---------------------------------------------------- #
    if leaf_inorder is None:
        leaf_inorder = _sequential_leaf_order(left, right, roots_arr, n)
    leaf_inorder = np.asarray(leaf_inorder, dtype=np.int64)

    # alive leaves sorted by left-to-right order; the position in this array
    # is the current rank.
    leaf_nodes = np.flatnonzero(is_leaf)
    alive_leaves = leaf_nodes[np.argsort(leaf_inorder[leaf_nodes], kind="stable")]

    # ---- mutable contracted-tree state (shared arrays) ------------------ #
    cur_left = machine.array(left, name=f"{label}.left")
    cur_right = machine.array(right, name=f"{label}.right")
    cur_parent = machine.array(parent, name=f"{label}.parent")
    side_is_left = np.zeros(n, dtype=bool)
    has_par = parent != -1
    idx = np.flatnonzero(has_par)
    side_is_left[idx] = left[parent[idx]] == idx
    cur_side = machine.array(side_is_left.astype(np.int64), name=f"{label}.side")
    fa0, fb0 = mp_identity(n)
    fa = machine.array(fa0, name=f"{label}.fa")
    fb = machine.array(fb0, name=f"{label}.fb")

    events: List[_RakeEvent] = []
    max_rounds = 4 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 8

    if multi:
        # forest schedule: each round first retires alive leaves whose
        # current parent is a root (they are that root's final contracted
        # children and must not rake), then ranks and rakes the rest.
        is_root = np.zeros(n, dtype=bool)
        is_root[roots_arr] = True
        for _ in range(max_rounds):
            if len(alive_leaves):
                p_alive = cur_parent.data[alive_leaves]
                retire = (p_alive == -1) | is_root[np.maximum(p_alive, 0)]
                if retire.any():
                    alive_leaves = alive_leaves[~retire]
            if len(alive_leaves) == 0:
                break
            ranks = np.arange(len(alive_leaves), dtype=np.int64)
            odd = alive_leaves[ranks % 2 == 1]
            raked_this_round = np.zeros(n, dtype=bool)
            for want_left in (True, False):
                cand = _select_rake_candidates_forest(
                    odd, cur_parent.data, cur_side.data, is_root, want_left,
                    raked_this_round)
                if len(cand) == 0:
                    continue
                event = _rake(machine, cand, cur_left, cur_right, cur_parent,
                              cur_side, fa, fb, kind, join_const, val,
                              label=label)
                events.append(event)
                raked_this_round[cand] = True
            alive_leaves = alive_leaves[~raked_this_round[alive_leaves]]
    else:
        for _ in range(max_rounds):
            if len(alive_leaves) <= 2:
                break
            ranks = np.arange(len(alive_leaves), dtype=np.int64)
            odd = alive_leaves[ranks % 2 == 1]
            raked_this_round = np.zeros(n, dtype=bool)
            for want_left in (True, False):
                cand = _select_rake_candidates(odd, cur_parent.data,
                                               cur_side.data,
                                               root, want_left,
                                               raked_this_round)
                if len(cand) == 0:
                    continue
                event = _rake(machine, cand, cur_left, cur_right, cur_parent,
                              cur_side, fa, fb, kind, join_const, val,
                              label=label)
                events.append(event)
                raked_this_round[cand] = True
            if not raked_this_round.any():
                # only root-children leaves remain unraked at odd ranks;
                # the even ranks will become odd after recompaction below
                if len(alive_leaves) <= 3:
                    break
            alive_leaves = alive_leaves[~raked_this_round[alive_leaves]]

    # ---- root value(s) --------------------------------------------------- #
    if multi:
        internal_roots = roots_arr[~is_leaf[roots_arr]]
        if len(internal_roots):
            rl = cur_left.data[internal_roots]
            rr = cur_right.data[internal_roots]
            xl = mp_apply(fa.data[rl], fb.data[rl], val[rl])
            xr = mp_apply(fa.data[rr], fb.data[rr], val[rr])
            is_union = kind[internal_roots] == UNION
            val[internal_roots] = np.where(
                is_union, xl + xr,
                np.maximum(xl - join_const[internal_roots], 1))
    else:
        rl, rr = int(cur_left.data[root]), int(cur_right.data[root])
        xl = mp_apply(fa.data[rl], fb.data[rl], val[rl])
        xr = mp_apply(fa.data[rr], fb.data[rr], val[rr])
        val[root] = _combine_scalar(int(kind[root]), int(join_const[root]),
                                    xl, xr)

    # ---- expansion ------------------------------------------------------ #
    for event in reversed(events):
        with machine.step(active=len(event.leaf), label=f"{label}:expand"):
            xs = mp_apply(event.fa_sib, event.fb_sib, val[event.sibling])
            xleaf = mp_apply(event.fa_leaf, event.fb_leaf, event.val_leaf)
            xl = np.where(event.leaf_is_left, xleaf, xs)
            xr = np.where(event.leaf_is_left, xs, xleaf)
            u = event.parent
            is_union = kind[u] == UNION
            val[u] = np.where(is_union, xl + xr,
                              np.maximum(xl - join_const[u], 1))
    return val


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #

def _sequential_leaf_order(left: np.ndarray, right: np.ndarray, roots,
                           n: int) -> np.ndarray:
    """Left-to-right rank of every leaf (``-1`` for internal nodes).

    ``roots`` may list several tree roots; their leaf ranks are chained in
    roots order, matching a chained Euler tour of the forest.
    """
    order = np.full(n, -1, dtype=np.int64)
    counter = 0
    for root in np.atleast_1d(np.asarray(roots, dtype=np.int64)):
        stack = [int(root)]
        while stack:
            u = stack.pop()
            if left[u] == -1 and right[u] == -1:
                order[u] = counter
                counter += 1
            else:
                if right[u] != -1:
                    stack.append(int(right[u]))
                if left[u] != -1:
                    stack.append(int(left[u]))
    return order


def _select_rake_candidates_forest(odd_leaves: np.ndarray, parent: np.ndarray,
                                   side: np.ndarray, is_root: np.ndarray,
                                   want_left: bool,
                                   already_raked: np.ndarray) -> np.ndarray:
    """Forest variant of :func:`_select_rake_candidates`: excludes leaves
    whose parent is *any* root (the retire pass normally removes those
    before ranking; the mask keeps the selection safe regardless)."""
    if len(odd_leaves) == 0:
        return odd_leaves
    p = parent[odd_leaves]
    mask = ((p != -1) & ~is_root[np.maximum(p, 0)]
            & (~already_raked[odd_leaves]))
    if want_left:
        mask &= side[odd_leaves] == 1
    else:
        mask &= side[odd_leaves] == 0
    return odd_leaves[mask]


def _select_rake_candidates(odd_leaves: np.ndarray, parent: np.ndarray,
                            side: np.ndarray, root: int, want_left: bool,
                            already_raked: np.ndarray) -> np.ndarray:
    """Odd-ranked leaves on the requested side whose parent is not the root."""
    if len(odd_leaves) == 0:
        return odd_leaves
    p = parent[odd_leaves]
    mask = (p != root) & (p != -1) & (~already_raked[odd_leaves])
    if want_left:
        mask &= side[odd_leaves] == 1
    else:
        mask &= side[odd_leaves] == 0
    return odd_leaves[mask]


def _rake(machine, cand: np.ndarray, cur_left, cur_right, cur_parent,
          cur_side, fa, fb, kind: np.ndarray, join_const: np.ndarray,
          val: np.ndarray, *, label: str) -> _RakeEvent:
    """Rake all candidate leaves simultaneously (one PRAM sub-step)."""
    with machine.step(active=len(cand), label=f"{label}:rake"):
        # own fields of the raked leaf (local registers)
        u = cur_parent.local(cand)
        l_is_left = cur_side.local(cand) == 1
        fa_l = fa.local(cand)
        fb_l = fb.local(cand)
        val_l = val[cand]

        # fields of the removed parent u (exclusive: distinct parents, and no
        # simultaneous rake uses u as its grandparent or sibling -- see the
        # module docstring / tests)
        u_left = cur_left.gather(u)
        u_right = cur_right.gather(u)
        g = cur_parent.gather(u)
        u_side = cur_side.gather(u)
        fa_u = fa.gather(u)
        fb_u = fb.gather(u)
        kind_u = kind[u]
        jc_u = join_const[u]

        s = np.where(l_is_left, u_right, u_left)

        # sibling's edge function (exclusive: distinct siblings)
        fa_s = fa.gather(s)
        fb_s = fb.gather(s)

        # partially evaluate op_u with the leaf's (constant) argument:
        # phi(x) = op_u(... h_l(val_l) ..., h_s(x)) as a max-plus function.
        leaf_arg = mp_apply(fa_l, fb_l, val_l)
        is_union = kind_u == UNION
        # UNION: phi = h_s + leaf_arg
        phi_a_union, phi_b_union = _sat_add(fa_s, leaf_arg), _sat_add(fb_s, leaf_arg)
        # JOIN, leaf on the right: phi(x) = max(h_s(x) - jc, 1)
        phi_a_jr = _sat_add(fa_s, -jc_u)
        phi_b_jr = np.maximum(_sat_add(fb_s, -jc_u), 1)
        # JOIN, leaf on the left: phi(x) = max(leaf_arg - jc, 1)  (constant)
        const_val = np.maximum(leaf_arg - jc_u, 1)
        phi_a_jl = np.full(len(cand), NEG_INF, dtype=np.int64)
        phi_b_jl = const_val

        phi_a = np.where(is_union, phi_a_union,
                         np.where(l_is_left, phi_a_jl, phi_a_jr))
        phi_b = np.where(is_union, phi_b_union,
                         np.where(l_is_left, phi_b_jl, phi_b_jr))

        # new edge function of the sibling: h_u ∘ phi
        new_a, new_b = mp_compose(phi_a, phi_b, fa_u, fb_u)

        event = _RakeEvent(
            leaf=cand.copy(), parent=u.copy(), sibling=s.copy(),
            leaf_is_left=l_is_left.copy(), fa_leaf=fa_l.copy(),
            fb_leaf=fb_l.copy(), fa_sib=fa_s.copy(), fb_sib=fb_s.copy(),
            val_leaf=np.asarray(val_l, dtype=np.int64).copy())

        # re-attach the sibling to the grandparent in u's slot
        fa.scatter(s, new_a)
        fb.scatter(s, new_b)
        cur_parent.scatter(s, g)
        cur_side.scatter(s, u_side)
        left_slots = np.flatnonzero(u_side == 1)
        right_slots = np.flatnonzero(u_side == 0)
        if len(left_slots):
            cur_left.scatter(g[left_slots], s[left_slots])
        if len(right_slots):
            cur_right.scatter(g[right_slots], s[right_slots])
    return event


def _combine_scalar(kind_u: int, jc_u: int, xl: int, xr: int) -> int:
    if kind_u == UNION:
        return int(xl + xr)
    if kind_u == JOIN:
        return int(max(xl - jc_u, 1))
    raise ValueError(f"cannot combine at a node of kind {kind_u}")
