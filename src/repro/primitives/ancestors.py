"""Ancestor aggregation: topmost marked ancestor, EREW-style.

The reduction step of the paper (building ``Tblr(G)``) needs, for every node,
the *topmost* marked ancestor on its root path — where a node is marked when
it is the right child of a 1-node.  Everything below such a mark is flattened
into bridge/insert leaves, owned by the 1-node just above the topmost mark.

Two implementations are provided:

* :func:`topmost_marked_ancestor` — EREW, built on the Euler tour: the
  *region roots* (marked nodes with no marked proper ancestor) have pairwise
  disjoint tour intervals, so the covering region root of any node is found
  with one prefix-maximum over the tour.  ``O(log n)`` rounds, ``O(n)`` work.
* :func:`topmost_marked_ancestor_jumping` — the simpler pointer-doubling
  version.  It performs concurrent reads of shared parent cells, so it is a
  CREW algorithm; it exists for the primitive comparison benchmarks and as an
  independent oracle in the tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backends import resolve_context
from .euler_tour import build_euler_tour
from .scan import NEG_INF, prefix_max, prefix_sum

__all__ = ["topmost_marked_ancestor", "topmost_marked_ancestor_jumping"]


def topmost_marked_ancestor(ctx, left, right, parent,
                            roots: Sequence[int], marked, *,
                            work_efficient: bool = True,
                            tour=None,
                            label: str = "topmark") -> np.ndarray:
    """For every node of a binary forest, the marked ancestor closest to the
    root (the node itself counts), or ``-1`` when the root path is unmarked.

    EREW: one Euler tour, two scans, and permutation scatters/gathers.
    A caller that already holds the forest's :class:`EulerTour` (built with
    the same roots order) can pass it as ``tour`` to skip rebuilding it.
    """
    marked = np.asarray(marked, dtype=bool)
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    parent = np.asarray(parent, dtype=np.int64)
    n = len(marked)
    machine = resolve_context(ctx)
    if n == 0:
        return np.full(0, -1, dtype=np.int64)

    if tour is None:
        tour = build_euler_tour(machine, left, right, parent, roots,
                                work_efficient=work_efficient,
                                label=f"{label}.euler")
    nodes = np.arange(n, dtype=np.int64)
    enter_pos = tour.enter_position(nodes)
    exit_pos = tour.exit_position(nodes)

    # marked-ancestor count (self included): +1 entering a marked node, -1
    # leaving it.
    arc_vals = np.zeros(2 * n, dtype=np.int64)
    arc_vals[tour.enter(nodes[marked])] = 1
    arc_vals[tour.exit(nodes[marked])] = -1
    mark_depth_prefix = tour.prefix_over_tour(machine, arc_vals, inclusive=True,
                                              label=f"{label}.markdepth")
    mark_depth = mark_depth_prefix[tour.enter(nodes)]

    # region roots: marked nodes with no marked proper ancestor
    region_root = marked & (mark_depth == 1)

    # prefix-max over tour positions of "enter position of a region root";
    # because region-root intervals are pairwise disjoint, the most recent
    # region-root enter at or before enter(v) is the covering one (if v is
    # covered at all).
    rr_nodes = nodes[region_root]
    stamps_by_pos = np.full(2 * n, NEG_INF, dtype=np.int64)
    stamps_by_pos[enter_pos[rr_nodes]] = enter_pos[rr_nodes]
    last_rr_enter = prefix_max(machine, stamps_by_pos, inclusive=True,
                               label=f"{label}.cover")

    # map an enter position back to its node id
    node_at_pos = np.full(2 * n, -1, dtype=np.int64)
    node_at_pos[enter_pos] = nodes

    covering_enter = last_rr_enter[enter_pos]
    top = np.full(n, -1, dtype=np.int64)
    covered = mark_depth >= 1
    idx = np.flatnonzero(covered)
    if len(idx):
        with machine.step(active=len(idx), label=f"{label}:resolve"):
            cand = node_at_pos[covering_enter[idx]]
            # disjointness of region-root intervals guarantees the candidate
            # really covers the node; assert it for defence in depth.
            ok = (covering_enter[idx] > NEG_INF) & (exit_pos[cand] >= enter_pos[idx])
            if not np.all(ok):  # pragma: no cover - structural invariant
                raise AssertionError("region-root intervals are not disjoint")
            top[idx] = cand
    return top


def topmost_marked_ancestor_jumping(ctx, parent, marked, *,
                                    label: str = "topmark-crew") -> np.ndarray:
    """Pointer-doubling variant (CREW: children concurrently read their
    parent's cells).  Kept as an independent oracle and for the EREW/CREW
    comparison benchmark."""
    parent = np.asarray(parent, dtype=np.int64)
    marked = np.asarray(marked, dtype=bool)
    n = len(parent)
    machine = resolve_context(ctx)
    if n == 0:
        return np.full(0, -1, dtype=np.int64)

    best = machine.array(np.where(marked, np.arange(n), -1).astype(np.int64),
                         name=f"{label}.best")
    ptr = machine.array(parent, name=f"{label}.ptr")

    rounds = max(1, int(np.ceil(np.log2(max(n, 2)))) + 1)
    for _ in range(rounds):
        active = np.flatnonzero(ptr.data != -1)
        if len(active) == 0:
            break
        with machine.step(active=len(active), label=f"{label}:jump"):
            up = ptr.local(active)
            up_best = best.gather(up)
            my_best = best.local(active)
            # the ancestor's segment is closer to the root, so its candidate
            # wins whenever it exists
            new_best = np.where(up_best != -1, up_best, my_best)
            best.scatter(active, new_best)
            ptr.scatter(active, ptr.gather(up))
    return best.data.copy()
