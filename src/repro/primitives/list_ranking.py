"""Parallel list ranking — Lemma 5.1(1).

Given a linked list (or a family of disjoint linked lists) stored as a
successor array, list ranking computes for every element its weighted
distance to the tail of its list.  Two algorithms are provided:

* :func:`wyllie_list_ranking` — pointer jumping: ``O(log n)`` rounds but
  ``O(n log n)`` work; the classic teaching algorithm;
* :func:`work_efficient_list_ranking` — random-mate contraction down to
  ``n / log n`` elements, pointer jumping on the contracted list, then
  expansion: ``O(log n)`` expected rounds and ``O(n)`` expected work, which is
  what the paper's cited results [3, 5] achieve deterministically.

Both compute *suffix sums*: ``rank[i] = sum of weights from i to the tail of
its list, inclusive``.  With unit weights this is "distance to the tail plus
one"; heads therefore carry the length of their list.

The ranks are a deterministic function of the list (independent of the
contraction schedule), so under a non-simulating context both entry points
share one raw vectorized pointer-jumping loop — no shared-array layer, no
step bookkeeping — and still return exactly the values the simulated
algorithms produce.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..backends import resolve_context

__all__ = ["wyllie_list_ranking", "work_efficient_list_ranking", "list_ranks"]


def _prepare(successor, weights) -> Tuple[np.ndarray, np.ndarray]:
    succ = np.asarray(successor, dtype=np.int64).copy()
    n = len(succ)
    if weights is None:
        w = np.ones(n, dtype=np.int64)
    else:
        w = np.asarray(weights, dtype=np.int64).copy()
        if len(w) != n:
            raise ValueError("weights must have the same length as successor")
    return succ, w


def _pointer_jump_raw(succ: np.ndarray, rank: np.ndarray) -> np.ndarray:
    """Wyllie pointer jumping on bare arrays (mutates and returns ``rank``).

    The arithmetic is identical to the simulated loop in
    :func:`wyllie_list_ranking`, so the outputs agree bit for bit.
    """
    n = len(succ)
    rounds = max(1, int(np.ceil(np.log2(max(n, 2)))) + 1)
    for _ in range(rounds):
        active = np.flatnonzero(succ != -1)
        if len(active) == 0:
            break
        nxt = succ[active]
        rank[active] += rank[nxt]
        succ[active] = succ[nxt]
    return rank


def wyllie_list_ranking(ctx, successor, weights=None, *,
                        label: str = "wyllie") -> np.ndarray:
    """Pointer-jumping list ranking (suffix sums).

    ``successor[i]`` is the next element of ``i``'s list, or ``-1`` at the
    tail.  Lists must be vertex-disjoint (the successor map is injective on
    its non-``-1`` domain); this is what makes each round EREW-safe.
    """
    ctx = resolve_context(ctx)
    succ, w = _prepare(successor, weights)
    n = len(succ)
    if n == 0:
        return w
    if not ctx.simulates:
        return _pointer_jump_raw(succ, w)

    machine = ctx
    rank_arr = machine.array(w, name=f"{label}.rank")
    succ_arr = machine.array(succ, name=f"{label}.succ")

    # ceil(log2 n) + 1 rounds suffice to saturate every pointer.
    rounds = max(1, int(np.ceil(np.log2(max(n, 2)))) + 1)
    for _ in range(rounds):
        active = np.flatnonzero(succ_arr.data != -1)
        if len(active) == 0:
            break
        with machine.step(active=len(active), label=f"{label}:jump"):
            # each processor owns one list element; its own successor and
            # rank live in private registers (see SharedArray.local), while
            # the successor's fields are genuine shared reads at pairwise
            # distinct addresses (the successor map is injective).
            nxt = succ_arr.local(active)
            add = rank_arr.gather(nxt)
            cur = rank_arr.local(active)
            rank_arr.scatter(active, cur + add)
            nxt2 = succ_arr.gather(nxt)
            succ_arr.scatter(active, nxt2)
    return rank_arr.data.copy()


def work_efficient_list_ranking(ctx, successor, weights=None, *,
                                seed: int = 0,
                                label: str = "rank") -> np.ndarray:
    """Work-efficient list ranking by random-mate contraction.

    The list is contracted by repeatedly splicing out an independent set of
    elements (selected by coin flips) until at most ``n / log2 n`` elements
    remain, pointer jumping ranks the contracted list, and the spliced
    elements are re-inserted in reverse order.  Expected ``O(log n)`` rounds
    and ``O(n)`` work.  Deterministic alternatives (deterministic coin
    tossing / Anderson–Miller, the paper's references [3, 5]) achieve the
    same bounds without randomness; the random-mate variant keeps the
    implementation compact while exhibiting the same cost shape.
    """
    ctx = resolve_context(ctx)
    succ0, w0 = _prepare(successor, weights)
    n = len(succ0)
    if n == 0:
        return w0
    if not ctx.simulates:
        # ranks do not depend on the contraction schedule; skip it entirely
        return _pointer_jump_raw(succ0, w0)

    machine = ctx
    rng = np.random.default_rng(seed)

    succ_arr = machine.array(succ0, name=f"{label}.succ")
    w_arr = machine.array(w0, name=f"{label}.w")
    pred_arr = machine.array(np.full(n, -1, dtype=np.int64), name=f"{label}.pred")
    alive = np.ones(n, dtype=bool)

    # predecessor pointers (successor is injective, so the scatter is EREW)
    has_succ = np.flatnonzero(succ0 != -1)
    with machine.step(active=len(has_succ), label=f"{label}:pred"):
        pred_arr.scatter(succ_arr.gather(has_succ), has_succ)

    target = max(2, int(np.ceil(n / max(1.0, np.log2(max(n, 2))))))
    # each splice event: (element, predecessor, predecessor weight before)
    events = []

    alive_count = n
    max_rounds = 4 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 8
    for _ in range(max_rounds):
        if alive_count <= target:
            break
        alive_idx = np.flatnonzero(alive)
        coins = rng.integers(0, 2, size=len(alive_idx))
        # candidate: coin == 1, has a predecessor, predecessor's coin == 0
        coin_full = np.zeros(n, dtype=np.int64)
        coin_full[alive_idx] = coins
        with machine.step(active=len(alive_idx), label=f"{label}:select"):
            preds = pred_arr.gather(alive_idx)
        has_pred = preds != -1
        pred_coin = np.zeros(len(alive_idx), dtype=np.int64)
        pred_coin[has_pred] = coin_full[preds[has_pred]]
        selected = alive_idx[(coins == 1) & has_pred & (pred_coin == 0)]
        if len(selected) == 0:
            continue
        with machine.step(active=len(selected), label=f"{label}:splice"):
            p = pred_arr.gather(selected)          # distinct (independent set)
            nxt = succ_arr.gather(selected)
            wj = w_arr.gather(selected)
            wp = w_arr.gather(p)
            # splice: pred absorbs the element's weight and skips over it
            w_arr.scatter(p, wp + wj)
            succ_arr.scatter(p, nxt)
            ok = np.flatnonzero(nxt != -1)
            if len(ok):
                pred_arr.scatter(nxt[ok], p[ok])
        events.append((selected, p.copy(), wp.copy()))
        alive[selected] = False
        alive_count -= len(selected)

    # rank the contracted list by pointer jumping (only alive elements carry
    # meaningful successor pointers now)
    contracted_succ = succ_arr.data.copy()
    contracted_succ[~alive] = -1
    contracted_w = w_arr.data.copy()
    contracted_w[~alive] = 0
    rank = wyllie_list_ranking(machine, contracted_succ, contracted_w,
                               label=f"{label}:contracted")

    # expansion: reinsert in reverse order of removal
    rank_arr = machine.array(rank, name=f"{label}.rank")
    for selected, p, wp_before in reversed(events):
        with machine.step(active=len(selected), label=f"{label}:expand"):
            rp = rank_arr.gather(p)
            rank_arr.scatter(selected, rp - wp_before)
    return rank_arr.data.copy()


def list_ranks(ctx, successor, weights=None, *,
               work_efficient: bool = True, seed: int = 0,
               label: str = "rank") -> np.ndarray:
    """Dispatcher used by the higher-level primitives."""
    if work_efficient:
        return work_efficient_list_ranking(ctx, successor, weights,
                                           seed=seed, label=label)
    return wyllie_list_ranking(ctx, successor, weights, label=label)
