"""Parallel prefix sums (scan) — Lemma 5.1(2).

Two variants are provided:

* :func:`prefix_sum` — the work-efficient Blelloch up-sweep/down-sweep scan:
  ``2 ceil(log2 n)`` rounds and ``O(n)`` work, EREW-safe;
* :func:`prefix_sum_hillis_steele` — the simpler ``log n``-round,
  ``O(n log n)``-work scan, kept for the primitive ablation benchmarks.

Every function takes an execution context (or anything
:func:`~repro.backends.resolve_context` accepts — a raw
:class:`~repro.pram.PRAM` machine, a backend name, or ``None``) as its first
argument.  Under a simulating context the sweeps execute step by step on the
machine; under the fast backend the same results come from one
``np.cumsum`` / ``np.maximum.accumulate`` call.  Outputs are bit-identical
either way (integer addition and max are associative), which the backend
parity tests assert.
"""

from __future__ import annotations

import numpy as np

from ..backends import ExecutionContext, resolve_context

__all__ = ["prefix_sum", "prefix_sum_hillis_steele", "total_sum", "prefix_max"]

#: identity element used by :func:`prefix_max` (small enough that adding
#: indices never overflows, large enough to be below any real value).
NEG_INF = np.int64(-(2 ** 62))


def _as_int_array(values) -> np.ndarray:
    arr = np.asarray(values)
    if arr.dtype == bool:
        arr = arr.astype(np.int64)
    return arr.astype(np.int64, copy=False)


def prefix_sum(ctx, values, *, inclusive: bool = True,
               label: str = "scan") -> np.ndarray:
    """Work-efficient parallel prefix sums.

    Parameters
    ----------
    ctx:
        execution context (``None`` / ``"fast"`` / ``"pram"`` / a
        :class:`~repro.pram.PRAM` machine / an
        :class:`~repro.backends.ExecutionContext`).
    values:
        integer (or boolean) sequence.
    inclusive:
        ``True`` for inclusive scan ``a_1, a_1+a_2, ...``; ``False`` for the
        exclusive scan ``0, a_1, a_1+a_2, ...``.

    Returns
    -------
    numpy.ndarray
        the scanned array, same length as the input.
    """
    ctx = resolve_context(ctx)
    x = _as_int_array(values)
    n = len(x)
    if n == 0:
        return x.copy()
    if not ctx.simulates:
        out = np.cumsum(x, dtype=np.int64)
        return out if inclusive else out - x

    machine = ctx
    m = 1 << max(1, int(np.ceil(np.log2(max(n, 2)))))
    buf = machine.array(m, name=f"{label}.buffer")
    buf.data[:n] = x

    # up-sweep (reduce)
    d = 1
    while d < m:
        right = np.arange(2 * d - 1, m, 2 * d, dtype=np.int64)
        left = right - d
        with machine.step(active=len(right), label=f"{label}:up"):
            a = buf.gather(left)
            b = buf.gather(right)
            buf.scatter(right, a + b)
        d *= 2

    # down-sweep (exclusive scan)
    buf.data[m - 1] = 0
    d = m // 2
    while d >= 1:
        right = np.arange(2 * d - 1, m, 2 * d, dtype=np.int64)
        left = right - d
        with machine.step(active=len(right), label=f"{label}:down"):
            t = buf.gather(left)
            r = buf.gather(right)
            buf.scatter(left, r)
            buf.scatter(right, t + r)
        d //= 2

    exclusive = buf.data[:n]
    if not inclusive:
        return exclusive.copy()

    out = machine.array(n, name=f"{label}.out")
    src = machine.array(x, name=f"{label}.in")
    idx = np.arange(n, dtype=np.int64)
    with machine.step(active=n, label=f"{label}:add-self"):
        e = machine.array(exclusive, name=f"{label}.excl")
        out.scatter(idx, e.gather(idx) + src.gather(idx))
    return out.data.copy()


def prefix_max(ctx, values, *, inclusive: bool = True,
               label: str = "scan-max") -> np.ndarray:
    """Work-efficient parallel prefix *maximum* (same sweep structure as
    :func:`prefix_sum`, with ``max`` as the associative operator and
    :data:`NEG_INF` as its identity)."""
    ctx = resolve_context(ctx)
    x = _as_int_array(values)
    n = len(x)
    if n == 0:
        return x.copy()
    if not ctx.simulates:
        incl = np.maximum.accumulate(np.maximum(x, NEG_INF))
        if inclusive:
            return incl
        out = np.empty(n, dtype=np.int64)
        out[0] = NEG_INF
        out[1:] = incl[:-1]
        return out

    machine = ctx
    m = 1 << max(1, int(np.ceil(np.log2(max(n, 2)))))
    buf = machine.array(np.full(m, NEG_INF, dtype=np.int64), name=f"{label}.buffer")
    buf.data[:n] = x

    d = 1
    while d < m:
        right = np.arange(2 * d - 1, m, 2 * d, dtype=np.int64)
        left = right - d
        with machine.step(active=len(right), label=f"{label}:up"):
            a = buf.gather(left)
            b = buf.gather(right)
            buf.scatter(right, np.maximum(a, b))
        d *= 2

    buf.data[m - 1] = NEG_INF
    d = m // 2
    while d >= 1:
        right = np.arange(2 * d - 1, m, 2 * d, dtype=np.int64)
        left = right - d
        with machine.step(active=len(right), label=f"{label}:down"):
            t = buf.gather(left)
            r = buf.gather(right)
            buf.scatter(left, r)
            buf.scatter(right, np.maximum(t, r))
        d //= 2

    exclusive = buf.data[:n]
    if not inclusive:
        return exclusive.copy()
    out = machine.array(n, name=f"{label}.out")
    src = machine.array(x, name=f"{label}.in")
    idx = np.arange(n, dtype=np.int64)
    with machine.step(active=n, label=f"{label}:max-self"):
        e = machine.array(exclusive, name=f"{label}.excl")
        out.scatter(idx, np.maximum(e.gather(idx), src.gather(idx)))
    return out.data.copy()


def prefix_sum_hillis_steele(ctx, values, *, inclusive: bool = True,
                             label: str = "scan-hs") -> np.ndarray:
    """The simple (non work-efficient) scan: ``ceil(log2 n)`` rounds, each
    with ``n`` active processors (``O(n log n)`` work)."""
    ctx = resolve_context(ctx)
    x = _as_int_array(values)
    n = len(x)
    if n == 0:
        return x.copy()
    if not ctx.simulates:
        out = np.cumsum(x, dtype=np.int64)
        if inclusive:
            return out
        return out - x

    machine = ctx
    buf = machine.array(x, name=f"{label}.buffer")
    d = 1
    while d < n:
        idx = np.arange(d, n, dtype=np.int64)
        with machine.step(active=n, label=f"{label}:jump"):
            shifted = buf.gather(idx - d)
            cur = buf.local(idx)   # own cell: kept in the processor's register
            buf.scatter(idx, cur + shifted)
        d *= 2
    result = buf.data.copy()
    if inclusive:
        return result
    out = np.empty_like(result)
    out[0] = 0
    out[1:] = result[:-1]
    return out


def total_sum(ctx, values, *, label: str = "reduce") -> int:
    """Parallel reduction (sum) — ``ceil(log2 n)`` rounds, ``O(n)`` work."""
    ctx = resolve_context(ctx)
    x = _as_int_array(values)
    n = len(x)
    if n == 0:
        return 0
    if not ctx.simulates:
        return int(x.sum())

    machine = ctx
    m = 1 << max(1, int(np.ceil(np.log2(max(n, 2)))))
    buf = machine.array(m, name=f"{label}.buffer")
    buf.data[:n] = x
    d = 1
    while d < m:
        right = np.arange(2 * d - 1, m, 2 * d, dtype=np.int64)
        left = right - d
        with machine.step(active=len(right), label=f"{label}:up"):
            a = buf.gather(left)
            b = buf.gather(right)
            buf.scatter(right, a + b)
        d *= 2
    return int(buf.data[m - 1])
