"""All-matching-pairs of a bracket sequence — Lemma 5.1(3).

Given a sequence of opening and closing brackets (not necessarily balanced),
compute for every bracket the position of its match, where a closing bracket
matches the nearest preceding opening bracket that is still unmatched.
Unmatched brackets are reported as ``-1``.

Algorithm (the classic depth-grouping reduction):

1. prefix sums of ``+1`` / ``-1`` give the nesting depth at every position;
   an opening bracket's *level* is its depth after reading it, a closing
   bracket's level is the depth it closes (its depth before reading, i.e.
   depth after + 1);
2. within one level, brackets strictly alternate between closes and opens
   (a structural fact proved in the module tests), so after grouping the
   positions by level each close matches the immediately preceding element
   of its group iff that element is an open.

Grouping is performed by a stable sort on (level, position).  The sort is
executed with ``ceil(log2 n)`` accounted rounds of ``n`` active processors —
the depth of Cole's EREW merge sort — so the *time* accounting matches the
paper's Lemma 5.1(3) while the *work* of this step is ``O(n log n)``; an
optional block pre-pass (``block_prepass=True``, the default) first resolves
all matches that fall inside blocks of ``log2 n`` consecutive positions using
``O(n)`` work, which empirically removes the bulk of the sequence.  The
remaining gap to the cited ``O(n)``-work bound of [9] is discussed in
EXPERIMENTS.md (E8).
"""

from __future__ import annotations

import numpy as np

from ..backends import resolve_context
from .scan import prefix_sum

__all__ = ["match_brackets"]


def match_brackets(ctx, is_open, *,
                   block_prepass: bool = True,
                   segment_id=None,
                   label: str = "match") -> np.ndarray:
    """Match every bracket of the sequence.

    Parameters
    ----------
    ctx:
        execution context (or a raw PRAM machine / backend name / ``None``).
    is_open:
        boolean array; ``True`` for ``(`` / ``[``, ``False`` for ``)`` / ``]``.
    block_prepass:
        resolve intra-block matches sequentially per block first (work
        efficient); the residue is matched by the sorting method.
    segment_id:
        optional per-position segment index: brackets only match within
        their own segment (used by the forest path to keep instances
        disjoint).  Fast backend only — the simulated path is
        single-instance.

    Returns
    -------
    numpy.ndarray
        ``match[i]`` is the position of the bracket matching position ``i``,
        or ``-1`` when ``i`` is unmatched.  The relation is symmetric.
    """
    machine = resolve_context(ctx)
    is_open = np.asarray(is_open, dtype=bool)
    n = len(is_open)
    match = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return match

    if not machine.simulates:
        # the match relation is unique, so the block pre-pass (a per-block
        # Python loop that only exists to make the simulated *work* linear)
        # is pure overhead here: one global level-grouping pass suffices.
        return _match_by_levels(machine, is_open, segment_id=segment_id,
                                label=label)

    if segment_id is not None:
        raise ValueError("segment_id requires the fast backend; the "
                         "simulated matcher is single-instance")

    unresolved = np.ones(n, dtype=bool)

    if block_prepass and n >= 8:
        _intra_block_matching(machine, is_open, match, unresolved, label=label)

    residual = np.flatnonzero(unresolved)
    if len(residual) == 0:
        return match

    sub_open = is_open[residual]
    sub_match = _match_by_levels(machine, sub_open, label=label)
    matched = sub_match >= 0
    match[residual[matched]] = residual[sub_match[matched]]
    return match


# --------------------------------------------------------------------------- #
# work-efficient intra-block pre-pass
# --------------------------------------------------------------------------- #

def _intra_block_matching(machine, is_open: np.ndarray,
                          match: np.ndarray, unresolved: np.ndarray, *,
                          label: str) -> None:
    """Match brackets whose partner lies in the same block of ``ceil(log2 n)``
    consecutive positions.

    Each block is processed sequentially by one virtual processor with a
    local stack; the pass is executed as ``block_size`` synchronous rounds of
    ``num_blocks`` active processors, i.e. ``O(log n)`` time and ``O(n)``
    work.  (The per-element Python work is vectorised across blocks.)
    """
    n = len(is_open)
    block = max(2, int(np.ceil(np.log2(n))))
    num_blocks = (n + block - 1) // block

    # pad to a rectangular (num_blocks, block) layout
    padded_open = np.zeros(num_blocks * block, dtype=bool)
    padded_open[:n] = is_open
    valid = np.zeros(num_blocks * block, dtype=bool)
    valid[:n] = True
    open_grid = padded_open.reshape(num_blocks, block)
    valid_grid = valid.reshape(num_blocks, block)

    # per-block stack of open positions (offsets within the block)
    stack = np.full((num_blocks, block), -1, dtype=np.int64)
    depth = np.zeros(num_blocks, dtype=np.int64)

    for offset in range(block):
        with machine.step(active=num_blocks, label=f"{label}:block-prepass"):
            col_valid = valid_grid[:, offset]
            col_open = open_grid[:, offset] & col_valid
            col_close = (~open_grid[:, offset]) & col_valid
            # push opens
            push_rows = np.flatnonzero(col_open)
            stack[push_rows, depth[push_rows]] = offset
            depth[push_rows] += 1
            # pop closes that have a partner inside the block
            pop_rows = np.flatnonzero(col_close & (depth > 0))
            if len(pop_rows):
                tops = stack[pop_rows, depth[pop_rows] - 1]
                close_pos = pop_rows * block + offset
                open_pos = pop_rows * block + tops
                match[close_pos] = open_pos
                match[open_pos] = close_pos
                unresolved[close_pos] = False
                unresolved[open_pos] = False
                depth[pop_rows] -= 1
            # closes with an empty stack stay unresolved for the global pass
            empty_rows = np.flatnonzero(col_close & (depth == 0))
            # (nothing to do: they remain marked unresolved)
            del empty_rows


# --------------------------------------------------------------------------- #
# level-grouping matcher
# --------------------------------------------------------------------------- #

def _match_by_levels(machine, is_open: np.ndarray, *,
                     segment_id=None, label: str) -> np.ndarray:
    """Match a bracket sequence by grouping positions by nesting level.

    With ``segment_id`` (contiguous runs of equal ids) the nesting depth is
    re-based per segment and groups are keyed by ``(segment, level)``, so
    matches never cross a segment boundary — the forest path relies on this.
    """
    n = len(is_open)
    delta = np.where(is_open, 1, -1).astype(np.int64)
    depth_after = prefix_sum(machine, delta, inclusive=True,
                             label=f"{label}.depth")
    seg = None
    if segment_id is not None:
        seg = np.asarray(segment_id, dtype=np.int64)
        # depth relative to the segment start: subtract the global depth just
        # before each segment's first position
        starts = np.flatnonzero(np.diff(seg, prepend=seg[0] - 1))
        run_lengths = np.diff(np.append(starts, n))
        base = np.repeat(depth_after[starts] - delta[starts], run_lengths)
        depth_after = depth_after - base
    # level of an open = depth after it; level of a close = depth before it
    level = np.where(is_open, depth_after, depth_after + 1)

    # Stable sort by (level, position).  Accounted as ceil(log2 n) rounds of
    # n processors (Cole's EREW merge sort depth); see the module docstring
    # for the work discussion.
    if seg is None:
        order = np.lexsort((np.arange(n), level))
    else:
        order = np.lexsort((np.arange(n), level, seg))
    if machine.simulates:
        sort_rounds = max(1, int(np.ceil(np.log2(max(n, 2)))))
        for _ in range(sort_rounds):
            with machine.step(active=n, label=f"{label}:sort"):
                pass

    sorted_level = level[order]
    sorted_open = is_open[order]
    match = np.full(n, -1, dtype=np.int64)

    with machine.step(active=n, label=f"{label}:pair"):
        same_group_as_prev = np.zeros(n, dtype=bool)
        same_group_as_prev[1:] = sorted_level[1:] == sorted_level[:-1]
        if seg is not None:
            sorted_seg = seg[order]
            same_group_as_prev[1:] &= sorted_seg[1:] == sorted_seg[:-1]
        prev_is_open = np.zeros(n, dtype=bool)
        prev_is_open[1:] = sorted_open[:-1]
        # a close matches the immediately preceding element of its group iff
        # that element is an open (strict alternation within a group)
        closes = (~sorted_open) & same_group_as_prev & prev_is_open
        close_idx = np.flatnonzero(closes)
        open_idx = close_idx - 1
        match[order[close_idx]] = order[open_idx]
        match[order[open_idx]] = order[close_idx]
    return match
