"""``repro.api`` — the package's one front door.

Everything the library can do is reachable through four names:

* :func:`solve` / :func:`solve_many` — run any registered task on any
  supported input form;
* :class:`SolveOptions` — the one validated configuration value (no more
  stringly-typed knob soup; incompatible combinations raise);
* :class:`Solution` — the one result type (answer + cover + cost report +
  stage timings + backend + provenance, JSON round-trippable).

Supporting cast: :func:`as_problem` / :class:`Problem` (the input-adapter
layer) and :func:`register_task` / :func:`task_names` (the task registry,
open to out-of-tree tasks).

>>> from repro.api import solve, SolveOptions
>>> solve("(0 + (1 * 2))").num_paths
2
>>> solve({0: [1], 1: [0, 2], 2: [1]}, task="recognition").answer
True
>>> solve([1, 0, 1], task="lower_bound").answer["or"]
1
>>> solve("(0 * 1)", options=SolveOptions(backend="fast")).backend
'fast'
"""

from .adapters import SOURCE_FORMATS, Problem, as_problem
from .cache import SolutionCache, canonical_cotree_key
from .forest import FOREST_TASKS, solve_forest
from .options import METHOD_NAMES, SolveOptions
from .registry import (
    MD_GRAPH_CLASSES,
    TaskSpec,
    get_task,
    register_task,
    task_names,
)
from .solution import Solution
from .solve import solve, solve_many, solve_stream

from . import tasks as _tasks  # noqa: F401  (registers the built-in tasks)

__all__ = [
    "solve", "solve_many", "solve_stream", "solve_forest", "FOREST_TASKS",
    "SolveOptions", "Solution", "SolutionCache", "canonical_cotree_key",
    "Problem", "as_problem", "SOURCE_FORMATS", "METHOD_NAMES",
    "register_task", "task_names", "get_task", "TaskSpec",
    "MD_GRAPH_CLASSES",
]
