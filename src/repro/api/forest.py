"""``solve_forest()`` — one vectorized sweep over many small instances.

Per-instance solving pays per-call overhead (context setup, a Python-level
pipeline walk, many small NumPy dispatches) that dwarfs the useful work when
instances are tiny.  :func:`solve_forest` amortises all of it: the batch is
packed into one :class:`~repro.cograph.FlatForest` (a single CSR holding
every instance side by side) and the whole forest is processed by **one**
run of the level-wise cotree-DP engine, or one run of the eight-stage
path-cover pipeline, whose vectorized sweeps now stride over thousands of
instances at once.  Root values and witnesses are then split back per
instance, bit-identical to what a solo :func:`~repro.api.solve` would have
produced.

Supported tasks (:data:`FOREST_TASKS`): ``path_cover`` plus the six
cotree-DP tasks.  Anything the sweep cannot take — an unsupported task,
non-default engine options, a non-cograph input, an instance whose vertex
ids are not ``0..n-1`` — silently falls back to a per-instance
:func:`~repro.api.solve` (``provenance["route"] == "serial"``); swept
solutions report ``"forest"``.  A configured
:class:`~repro.api.SolutionCache` is consulted per instance *before*
packing, so repeat instances skip the sweep entirely.

:func:`~repro.api.solve_many` and :func:`~repro.api.solve_stream` route
through here automatically when ``SolveOptions(batch_small=...)`` is set.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..cograph import (
    FlatCotree,
    NotACographError,
    PathCover,
    as_flat_cotree,
    pack,
)
from ..core.dp import (
    CHROMATIC_NUMBER_DP,
    CLIQUE_COVER_DP,
    COUNT_INDEPENDENT_SETS_DP,
    MAX_CLIQUE_DP,
    MAX_INDEPENDENT_SET_DP,
    PATH_COVER_SIZE_DP,
    run_cotree_dp,
)
from ..core.pipeline import Pipeline
from ..pram import AccessMode
from .adapters import Problem, as_problem
from .options import SolveOptions
from .solution import Solution
from .solve import _from_cache, _resolve_options, solve

__all__ = ["solve_forest", "FOREST_TASKS"]

#: cotree-DP spec per sweepable DP task.
_TASK_DP = {
    "path_cover_size": PATH_COVER_SIZE_DP,
    "max_clique": MAX_CLIQUE_DP,
    "max_independent_set": MAX_INDEPENDENT_SET_DP,
    "chromatic_number": CHROMATIC_NUMBER_DP,
    "clique_cover": CLIQUE_COVER_DP,
    "count_independent_sets": COUNT_INDEPENDENT_SETS_DP,
}

#: every task the forest sweep can take.
FOREST_TASKS = ("path_cover",) + tuple(_TASK_DP)


def _forest_supported(task: str, options: SolveOptions) -> bool:
    """Can this (task, options) pair run as one packed sweep at all?

    The sweep is the raw vectorized engine: it has no simulator, no
    accounting, no per-instance validation.  Any option that asks for one
    of those sends every instance down the serial fallback instead.
    """
    return (task in FOREST_TASKS
            and options.method == "parallel"
            and options.backend in (None, "fast")
            and options.num_processors is None
            and options.mode is AccessMode.EREW
            and options.work_efficient
            and not options.validate
            and not options.record_steps)


def _eligible_flat(prob: Problem):
    """The instance's packable :class:`~repro.cograph.FlatCotree`, or
    ``None`` when it must go down the serial path (non-cograph input, or
    vertex ids that are not ``0..n-1`` — packing shifts ids blockwise, so
    sparse labellings cannot share a forest)."""
    try:
        tree = prob.pipeline_tree()
        flat = tree if type(tree) is FlatCotree else as_flat_cotree(tree)
    except NotACographError:
        return None
    if flat.has_primes:                     # MD trees don't pack (PR 8)
        return None
    v = flat.vertices                       # sorted, cached on the instance
    n = v.size
    if n < 1 or v[0] != 0 or v[-1] != n - 1:
        return None
    # sorted with matching endpoints: only a malformed cotree carrying
    # duplicate leaf ids can still differ from 0..n-1 — pack() re-validates
    # exactly and raises, naming the instance
    return flat


# --------------------------------------------------------------------------- #
# the sweeps
# --------------------------------------------------------------------------- #

def _sweep_dp(flats, task: str, options: SolveOptions) -> List[Solution]:
    """One DP-engine pass over the packed forest; one Solution per input."""
    dp = _TASK_DP[task]
    needs_witness = task not in ("path_cover_size", "count_independent_sets")
    t0 = time.perf_counter()
    forest = pack(flats)
    run = run_cotree_dp(dp, forest, "fast")
    root_vals = run.root_values()
    witness = run.witness() if needs_witness else None
    seconds = {"forest_sweep": time.perf_counter() - t0}
    vb = forest.vertex_base
    vb_list = vb.tolist()
    vals = list(root_vals) if isinstance(root_vals, list) \
        else root_vals.tolist()
    # extremal-set witnesses come back as one sorted global vertex array;
    # locate every instance's slice with a single searchsorted, rebase the
    # whole array in one pass, and split with plain-list slicing
    cuts = wit_list = None
    if task in ("max_clique", "max_independent_set"):
        cuts = np.searchsorted(witness, vb)
        rebased = witness - np.repeat(vb[:-1], np.diff(cuts))
        cuts = cuts.tolist()
        wit_list = rebased.tolist()
    elif needs_witness:
        wit_list = witness.tolist()         # one entry per global vertex

    def emit(answer: Any, num_paths: Optional[int] = None) -> Solution:
        return Solution(task=task, answer=answer, backend="fast",
                        options=options, num_paths=num_paths,
                        stage_seconds=dict(seconds),
                        provenance={"route": "forest"})

    k = len(flats)
    if task == "path_cover_size":
        return [emit(int(vals[i]), int(vals[i])) for i in range(k)]
    if task in ("max_clique", "max_independent_set"):
        return [emit({"size": int(vals[i]),
                      "vertices": wit_list[cuts[i]:cuts[i + 1]]})
                for i in range(k)]
    if task == "chromatic_number":
        return [emit({"chromatic_number": int(vals[i]),
                      "coloring": wit_list[vb_list[i]:vb_list[i + 1]]})
                for i in range(k)]
    if task == "clique_cover":
        out = []
        for i in range(k):
            theta = int(vals[i])
            classes = witness[vb_list[i]:vb_list[i + 1]]
            order = np.argsort(classes, kind="stable")
            bounds = np.searchsorted(classes[order], np.arange(theta + 1))
            out.append(emit({"num_cliques": theta,
                             "cliques": [order[lo:hi].tolist()
                                         for lo, hi in zip(bounds[:-1],
                                                           bounds[1:])]}))
        return out
    # count_independent_sets
    return [emit({"count": int(vals[i]), "includes_empty_set": True})
            for i in range(k)]


def _sweep_cover(flats, options: SolveOptions) -> List[Solution]:
    """One pipeline pass over the packed forest; one Solution per input."""
    t0 = time.perf_counter()
    forest = pack(flats)
    run = Pipeline.default().run(forest, "fast", collect_timings=False)
    state = run.state
    p_roots = state.reduced.p[np.asarray(state.binary.roots, dtype=np.int64)]
    vb = forest.vertex_base

    # split the global cover back per instance: extract's path-tree roots
    # come back in ascending global vertex order, so the paths of instance
    # i are contiguous and in the same relative order a solo run produces.
    paths_of: List[List[List[int]]] = [[] for _ in flats]
    for path in run.cover.paths:
        i = int(np.searchsorted(vb, path[0], side="right") - 1)
        base = int(vb[i])
        paths_of[i].append([v - base for v in path])
    seconds = {"forest_sweep": time.perf_counter() - t0}

    out = []
    for i in range(len(flats)):
        cover = PathCover(paths_of[i])
        p_root = int(p_roots[i])
        if cover.num_paths != p_root:  # pragma: no cover - invariant
            raise AssertionError(
                f"forest sweep split {cover.num_paths} paths for instance "
                f"{i}, p(root) says {p_root}")
        out.append(Solution(task="path_cover", answer=cover, backend="fast",
                            options=options, cover=cover, num_paths=p_root,
                            stage_seconds=dict(seconds),
                            provenance={"route": "forest", "p_root": p_root}))
    return out


# --------------------------------------------------------------------------- #
# the front door
# --------------------------------------------------------------------------- #

def _solve_forest_problems(probs: List[Problem], task: str,
                           options: SolveOptions) -> List[Solution]:
    """Solve already-adapted problems, forest-sweeping whatever qualifies.

    The workhorse behind :func:`solve_forest` and the ``batch_small``
    routing of the stream front door; does *not* stamp ``batch_index``.
    """
    cache = options.cache
    solo_opts = options.with_(batch_small=None)
    results: List[Optional[Solution]] = [None] * len(probs)

    sweep_idx: List[int] = []
    sweep_flats = []
    sweep_keys: List[Optional[Tuple]] = []
    supported = _forest_supported(task, options)
    for i, prob in enumerate(probs):
        flat = _eligible_flat(prob) if supported else None
        if flat is None:
            # per-instance fallback; solve() handles the cache itself
            solution = solve(prob, task, options=solo_opts)
            if solution.provenance.get("cache") != "hit":
                solution.provenance.setdefault("route", "serial")
            results[i] = solution
            continue
        key = cache.key_for(prob, task, options) if cache is not None else None
        if key is not None:
            hit = cache.get(key)
            if hit is not None:
                results[i] = _from_cache(hit, prob)
                continue
        sweep_idx.append(i)
        sweep_flats.append(flat)
        sweep_keys.append(key)

    if sweep_flats:
        if task == "path_cover":
            swept = _sweep_cover(sweep_flats, options)
        else:
            swept = _sweep_dp(sweep_flats, task, options)
        for i, solution, key in zip(sweep_idx, swept, sweep_keys):
            for name, value in probs[i].provenance().items():
                solution.provenance.setdefault(name, value)
            if key is not None:
                solution.provenance["cache"] = "miss"
                cache.put(key, solution)
            results[i] = solution
    return results


def solve_forest(problems, task: str = "path_cover", *,
                 options: Optional[SolveOptions] = None,
                 **option_fields: Any) -> List[Solution]:
    """Solve a batch of small instances in one vectorized forest sweep.

    Parameters
    ----------
    problems:
        an iterable of anything :func:`~repro.api.as_problem` accepts.
    task:
        a registered task name; tasks outside :data:`FOREST_TASKS` fall
        back to per-instance :func:`~repro.api.solve` calls.
    options / option_fields:
        as for :func:`~repro.api.solve`.  Only default-engine
        configurations (``method="parallel"``, backend ``None``/``"fast"``,
        no PRAM knobs, no ``validate``) can be swept; anything else runs
        serially per instance.

    Returns
    -------
    list of Solution
        in input order, each stamped with ``provenance["batch_index"]``
        and ``provenance["route"]`` (``"forest"`` or ``"serial"``; cache
        hits carry ``provenance["cache"] == "hit"`` instead).
    """
    opts = _resolve_options(options, option_fields)
    probs = [as_problem(raw, task=task) for raw in problems]
    solutions = _solve_forest_problems(probs, task, opts)
    for index, solution in enumerate(solutions):
        solution.provenance["batch_index"] = index
    return solutions
