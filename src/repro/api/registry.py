"""The task registry behind :func:`repro.api.solve`.

Every question the library can answer about an instance — full path cover,
cover size, Hamiltonian path / cycle, cograph recognition, the lower-bound
OR reduction — is a *task*: a named callable registered with
:func:`register_task` that maps ``(problem, options)`` to a
:class:`~repro.api.solution.Solution`.  ``solve()`` is nothing but a lookup
in this registry plus input adaptation, so new tasks (and out-of-tree tasks:
the decorator is public) get the whole front door — adapters, batch fan-out,
CLI, JSON serialisation — for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["TaskSpec", "register_task", "get_task", "task_names", "TASKS",
           "INPUT_KINDS", "MD_GRAPH_CLASSES"]


#: the graph classes an MD-capable task handles *exactly*: cographs (the
#: paper's class), P4-sparse graphs (every prime quotient is a spider,
#: solved in closed form), and any graph whose prime quotients have at
#: most :data:`~repro.core.dp.MAX_GENERIC_PRIME` maximal strong modules
#: (solved by the vectorized bitmask brute force).
MD_GRAPH_CLASSES = ("cograph", "p4_sparse", "bounded_prime")


@dataclass(frozen=True)
class TaskSpec:
    """One registered task.

    Attributes
    ----------
    name:
        registry key, e.g. ``"path_cover"``.
    fn:
        implementation, ``fn(problem, options) -> Solution``.
    runs_pipeline:
        whether the task executes the solver pipeline.  Tasks that never do
        (e.g. ``recognition``) reject backend/PRAM options instead of
        silently ignoring them.
    summary:
        one-line description (shown by ``python -m repro tasks`` and the
        CLI ``--help`` text, both derived from the registry).
    input_kind:
        what the task's input *is*: ``"cotree"`` (any cograph description)
        or ``"bits"`` (a 0/1 bit vector — the lower-bound reduction).  The
        input adapters and the CLI consult this instead of hard-coding
        task names, so new bit-vector tasks inherit the parsing.
    graph_classes:
        the graph classes the task answers exactly.  ``("cograph",)`` for
        the pipeline tasks; :data:`MD_GRAPH_CLASSES` for the cotree-DP
        tasks that run on modular decomposition trees; ``("any",)`` for
        ``recognition``; ``()`` for bit-vector tasks.  Surfaced by
        ``python -m repro tasks`` and the server's ``/healthz``.
    uses_weights:
        whether the task consumes ``SolveOptions(weights=...)``; the front
        door rejects weights passed to any task that ignores them.
    """

    name: str
    fn: Callable
    runs_pipeline: bool
    summary: str
    input_kind: str = "cotree"
    graph_classes: Tuple[str, ...] = ("cograph",)
    uses_weights: bool = False

    @property
    def accepts_prime_modules(self) -> bool:
        """Can the task consume modular decomposition trees with prime
        nodes (i.e. non-cograph inputs)?"""
        return "bounded_prime" in self.graph_classes


#: the global registry; mutate only through :func:`register_task`.
TASKS: Dict[str, TaskSpec] = {}


#: the accepted :attr:`TaskSpec.input_kind` values.
INPUT_KINDS = ("cotree", "bits")


def register_task(name: str, *, runs_pipeline: bool = True,
                  summary: str = "", input_kind: str = "cotree",
                  graph_classes: Tuple[str, ...] = ("cograph",),
                  uses_weights: bool = False) -> Callable:
    """Register a task implementation under ``name`` (decorator).

    ::

        @register_task("path_cover", summary="minimum path cover")
        def _path_cover(problem, options):
            ...
            return Solution(...)

    Raises
    ------
    ValueError
        if ``name`` is already registered.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"task name must be a non-empty string, got {name!r}")
    if input_kind not in INPUT_KINDS:
        raise ValueError(f"unknown input_kind {input_kind!r}; use one of "
                         f"{INPUT_KINDS}")
    graph_classes = tuple(graph_classes)
    if not all(c and isinstance(c, str) for c in graph_classes):
        raise ValueError(f"graph_classes must be a tuple of non-empty "
                         f"strings, got {graph_classes!r}")

    def decorator(fn: Callable) -> Callable:
        if name in TASKS:
            raise ValueError(f"task {name!r} is already registered "
                             f"({TASKS[name].fn!r})")
        TASKS[name] = TaskSpec(name=name, fn=fn,
                               runs_pipeline=runs_pipeline,
                               summary=summary or (fn.__doc__ or "").strip()
                               .split("\n")[0],
                               input_kind=input_kind,
                               graph_classes=graph_classes,
                               uses_weights=uses_weights)
        return fn

    return decorator


def get_task(name: str) -> TaskSpec:
    """Look a task up by name, with a helpful error."""
    try:
        return TASKS[name]
    except KeyError:
        raise ValueError(f"unknown task {name!r}; registered tasks: "
                         f"{', '.join(task_names())}") from None


def task_names() -> Tuple[str, ...]:
    """The registered task names, sorted."""
    return tuple(sorted(TASKS))
