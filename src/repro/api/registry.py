"""The task registry behind :func:`repro.api.solve`.

Every question the library can answer about an instance — full path cover,
cover size, Hamiltonian path / cycle, cograph recognition, the lower-bound
OR reduction — is a *task*: a named callable registered with
:func:`register_task` that maps ``(problem, options)`` to a
:class:`~repro.api.solution.Solution`.  ``solve()`` is nothing but a lookup
in this registry plus input adaptation, so new tasks (and out-of-tree tasks:
the decorator is public) get the whole front door — adapters, batch fan-out,
CLI, JSON serialisation — for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["TaskSpec", "register_task", "get_task", "task_names", "TASKS"]


@dataclass(frozen=True)
class TaskSpec:
    """One registered task.

    Attributes
    ----------
    name:
        registry key, e.g. ``"path_cover"``.
    fn:
        implementation, ``fn(problem, options) -> Solution``.
    runs_pipeline:
        whether the task executes the solver pipeline.  Tasks that never do
        (e.g. ``recognition``) reject backend/PRAM options instead of
        silently ignoring them.
    summary:
        one-line description (shown by ``python -m repro tasks``).
    """

    name: str
    fn: Callable
    runs_pipeline: bool
    summary: str


#: the global registry; mutate only through :func:`register_task`.
TASKS: Dict[str, TaskSpec] = {}


def register_task(name: str, *, runs_pipeline: bool = True,
                  summary: str = "") -> Callable:
    """Register a task implementation under ``name`` (decorator).

    ::

        @register_task("path_cover", summary="minimum path cover")
        def _path_cover(problem, options):
            ...
            return Solution(...)

    Raises
    ------
    ValueError
        if ``name`` is already registered.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"task name must be a non-empty string, got {name!r}")

    def decorator(fn: Callable) -> Callable:
        if name in TASKS:
            raise ValueError(f"task {name!r} is already registered "
                             f"({TASKS[name].fn!r})")
        TASKS[name] = TaskSpec(name=name, fn=fn,
                               runs_pipeline=runs_pipeline,
                               summary=summary or (fn.__doc__ or "").strip()
                               .split("\n")[0])
        return fn

    return decorator


def get_task(name: str) -> TaskSpec:
    """Look a task up by name, with a helpful error."""
    try:
        return TASKS[name]
    except KeyError:
        raise ValueError(f"unknown task {name!r}; registered tasks: "
                         f"{', '.join(task_names())}") from None


def task_names() -> Tuple[str, ...]:
    """The registered task names, sorted."""
    return tuple(sorted(TASKS))
