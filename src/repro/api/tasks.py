"""The built-in tasks of the :func:`repro.api.solve` front door.

Six tasks ship with the library; each is a plain function registered with
:func:`~repro.api.registry.register_task`, so they double as examples for
out-of-tree tasks:

============================  =============================================
``path_cover``                the minimum path cover itself (the paper's
                              main theorem)
``path_cover_size``           just ``p(root)`` — analytic by default, via
                              the pipeline when a backend is forced
``hamiltonian_path``          a Hamiltonian path witness, or ``None``
``hamiltonian_cycle``         a Hamiltonian cycle witness, or ``None``
``recognition``               is the input graph a cograph at all?
``lower_bound``               the Fig. 2 OR reduction, solved end-to-end
============================  =============================================
"""

from __future__ import annotations

from ..baselines import sequential_path_cover
from ..cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    NotACographError,
    binarize_cotree,
    make_leftist,
    minimum_path_cover_size,
    path_cover_sizes_per_node,
)
from ..core import (
    expected_path_count,
    hamiltonian_cycle,
    hamiltonian_path,
    minimum_path_cover_parallel,
    or_from_cover,
    or_from_path_count,
)
from .adapters import Problem
from .options import SolveOptions
from .registry import register_task
from .solution import Solution

__all__ = []  # tasks are reached through the registry, not by name


def _cover_solver(options: SolveOptions):
    """``tree -> PathCover`` bound to the options' engine choice."""
    if options.method == "sequential":
        return sequential_path_cover
    kwargs = options.solver_kwargs()
    return lambda tree: minimum_path_cover_parallel(tree, **kwargs).cover


def _solve_cover(problem: Problem, options: SolveOptions,
                 task: str) -> Solution:
    """Run the configured cover engine and wrap the outcome."""
    if options.method == "sequential":
        tree = problem.cotree()
        cover = sequential_path_cover(tree)
        if options.validate:
            cover.validate(CographAdjacencyOracle(tree),
                           expected_num_vertices=tree.num_vertices,
                           expected_num_paths=int(
                               minimum_path_cover_size(tree)))
        return Solution(task=task, answer=cover, backend="sequential",
                        options=options, cover=cover,
                        num_paths=cover.num_paths)
    # the parallel pipeline consumes FlatCotree inputs natively — no
    # object-per-node conversion on the hot path
    result = minimum_path_cover_parallel(problem.pipeline_tree(),
                                         **options.solver_kwargs())
    return Solution(task=task, answer=result.cover, backend=result.backend,
                    options=options, cover=result.cover,
                    num_paths=result.num_paths, report=result.report,
                    stage_seconds=result.stage_seconds,
                    machine=result.machine,
                    provenance={"p_root": result.p_root,
                                "exchanges": result.exchanges})


# --------------------------------------------------------------------------- #
# path cover
# --------------------------------------------------------------------------- #

@register_task("path_cover",
               summary="minimum path cover of the cograph (Theorem 5.3)")
def _task_path_cover(problem: Problem, options: SolveOptions) -> Solution:
    return _solve_cover(problem, options, "path_cover")


@register_task("path_cover_size",
               summary="p(root) only — analytic recurrence with default "
                       "options, the configured engine otherwise")
def _task_path_cover_size(problem: Problem,
                          options: SolveOptions) -> Solution:
    if options.with_(cache=None) == SolveOptions():
        # all-default options: the cheap Lemma 2.4 recurrence, no pipeline.
        # Any non-default option (a backend, PRAM knobs, validate, a
        # method) runs the configured engine instead, so nothing the
        # caller asked for is silently dropped.  A cache is not an engine
        # choice, so it does not force the pipeline.
        size = int(minimum_path_cover_size(problem.cotree()))
        return Solution(task="path_cover_size", answer=size,
                        backend="analytic", options=options, num_paths=size)
    solution = _solve_cover(problem, options, "path_cover_size")
    solution.answer = solution.num_paths
    return solution


# --------------------------------------------------------------------------- #
# Hamiltonicity
# --------------------------------------------------------------------------- #

def _leftist_binary_and_size(problem: Problem):
    """One leftist binarization + one analytic pass, shared by both
    Hamiltonicity tasks (the witness constructions reuse the binary)."""
    tree = problem.cotree()
    binary = tree if isinstance(tree, BinaryCotree) else binarize_cotree(tree)
    binary = make_leftist(binary)
    size = int(path_cover_sizes_per_node(binary)[binary.root])
    return binary, size


@register_task("hamiltonian_path",
               summary="a Hamiltonian path witness, or None")
def _task_hamiltonian_path(problem: Problem,
                           options: SolveOptions) -> Solution:
    binary, size = _leftist_binary_and_size(problem)
    witness = hamiltonian_path(binary, cover_solver=_cover_solver(options)) \
        if size == 1 else None
    return Solution(task="hamiltonian_path", answer=witness,
                    backend=options.resolved_backend, options=options,
                    num_paths=size,
                    provenance={"min_path_cover": size})


@register_task("hamiltonian_cycle",
               summary="a Hamiltonian cycle witness, or None")
def _task_hamiltonian_cycle(problem: Problem,
                            options: SolveOptions) -> Solution:
    binary, size = _leftist_binary_and_size(problem)
    witness = hamiltonian_cycle(binary, cover_solver=_cover_solver(options))
    return Solution(task="hamiltonian_cycle", answer=witness,
                    backend=options.resolved_backend, options=options,
                    num_paths=size,
                    provenance={"min_path_cover": size})


# --------------------------------------------------------------------------- #
# recognition
# --------------------------------------------------------------------------- #

@register_task("recognition", runs_pipeline=False,
               summary="is the input a cograph? (False carries the "
                       "induced-P4 certificate)")
def _task_recognition(problem: Problem, options: SolveOptions) -> Solution:
    provenance = {}
    if problem.graph is None:
        # the input already was a cotree, which *is* a cograph certificate
        answer = True
        provenance["input_was_cotree"] = True
    else:
        try:
            problem.cotree()  # converts and caches for later tasks
            answer = True
        except NotACographError as exc:
            answer = False
            if exc.certificate is not None:
                provenance["certificate"] = [int(v) for v in exc.certificate]
    return Solution(task="recognition", answer=answer, backend="sequential",
                    options=options, provenance=provenance)


# --------------------------------------------------------------------------- #
# the lower-bound reduction
# --------------------------------------------------------------------------- #

@register_task("lower_bound",
               summary="solve the Fig. 2 OR-reduction instance and decode "
                       "OR from the cover (Theorem 2.2)")
def _task_lower_bound(problem: Problem, options: SolveOptions) -> Solution:
    if problem.instance is None:
        raise ValueError(
            "the 'lower_bound' task runs the Fig. 2 OR reduction, so its "
            "input must be a 0/1 bit vector (e.g. solve([1, 0, 1], "
            "task='lower_bound')), not a general cograph")
    instance = problem.instance
    solution = _solve_cover(problem, options, "lower_bound")
    bits = [int(b) for b in instance.bits]
    or_value = or_from_cover(solution.cover, instance)
    assert or_value == or_from_path_count(solution.num_paths, instance.n)
    solution.answer = {
        "or": or_value,
        "bits": bits,
        "num_paths": solution.num_paths,
        "expected_num_paths": expected_path_count(bits),
    }
    return solution
