"""The built-in tasks of the :func:`repro.api.solve` front door.

Thirteen tasks ship with the library; each is a plain function registered
with :func:`~repro.api.registry.register_task`, so they double as examples
for out-of-tree tasks:

=============================  ============================================
``path_cover``                 the minimum path cover itself (the paper's
                               main theorem)
``path_cover_size``            just ``p(root)`` — analytic by default, via
                               the pipeline when a backend is forced
``hamiltonian_path``           a Hamiltonian path witness, or ``None``
``hamiltonian_cycle``          a Hamiltonian cycle witness, or ``None``
``recognition``                is the input graph a cograph at all?
``lower_bound``                the Fig. 2 OR reduction, solved end-to-end
``max_clique``                 omega(G) with a vertex witness
``max_independent_set``        alpha(G) with a vertex witness
``max_weight_clique``          heaviest clique under vertex weights
``max_weight_independent_set`` heaviest independent set under weights
``chromatic_number``           chi(G) with a proper colouring witness
``clique_cover``               theta(G) with a clique-partition witness
``count_independent_sets``     exact #IS (arbitrary precision)
=============================  ============================================

The last seven (and the size computations behind ``lower_bound`` and
``path_cover_size``) all run on the declarative cotree-DP engine
(:mod:`repro.core.dp`): one :class:`~repro.core.CotreeDP` spec per task,
executed level-wise over :class:`~repro.cograph.FlatCotree` CSR arrays on
whichever backend the options select.  The extremal-set tasks
(``max_clique``, ``max_independent_set`` and both weighted variants) are
**MD-capable**: their DP specs carry prime combiners, so they consume the
modular decomposition tree of *any* graph whose prime quotients are
spiders (P4-sparse graphs) or small (arity <= 16) — not just cographs.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Tuple

import numpy as np

from ..baselines import sequential_path_cover
from ..cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    FlatCotree,
    NotACographError,
    binarize_cotree,
    graph_from_md_tree,
    make_leftist,
    minimum_path_cover_size,
    path_cover_sizes_per_node,
)
from ..core import (
    expected_path_count,
    hamiltonian_cycle,
    hamiltonian_path,
    minimum_path_cover_parallel,
    or_from_path_count,
)
from ..core.dp import (
    CHROMATIC_NUMBER_DP,
    CLIQUE_COVER_DP,
    COUNT_INDEPENDENT_SETS_DP,
    MAX_CLIQUE_DP,
    MAX_INDEPENDENT_SET_DP,
    PATH_COVER_SIZE_DP,
    CotreeDP,
    CotreeDPRun,
    max_weight_clique_dp,
    max_weight_independent_set_dp,
    run_cotree_dp,
    run_cotree_dp_sequential,
)
from ..core.solver import _build_context
from .adapters import Problem
from .options import SolveOptions
from .registry import MD_GRAPH_CLASSES, register_task
from .solution import Solution

__all__ = []  # tasks are reached through the registry, not by name


def _cover_solver(options: SolveOptions):
    """``tree -> PathCover`` bound to the options' engine choice."""
    if options.method == "sequential":
        return sequential_path_cover
    kwargs = options.solver_kwargs()
    return lambda tree: minimum_path_cover_parallel(tree, **kwargs).cover


def _solve_cover(problem: Problem, options: SolveOptions,
                 task: str) -> Solution:
    """Run the configured cover engine and wrap the outcome."""
    if options.method == "sequential":
        tree = problem.cotree()
        cover = sequential_path_cover(tree)
        if options.validate:
            cover.validate(CographAdjacencyOracle(tree),
                           expected_num_vertices=tree.num_vertices,
                           expected_num_paths=int(
                               minimum_path_cover_size(tree)))
        return Solution(task=task, answer=cover, backend="sequential",
                        options=options, cover=cover,
                        num_paths=cover.num_paths)
    # the parallel pipeline consumes FlatCotree inputs natively — no
    # object-per-node conversion on the hot path
    result = minimum_path_cover_parallel(problem.pipeline_tree(),
                                         **options.solver_kwargs())
    return Solution(task=task, answer=result.cover, backend=result.backend,
                    options=options, cover=result.cover,
                    num_paths=result.num_paths, report=result.report,
                    stage_seconds=result.stage_seconds,
                    machine=result.machine,
                    provenance={"p_root": result.p_root,
                                "exchanges": result.exchanges})


# --------------------------------------------------------------------------- #
# path cover
# --------------------------------------------------------------------------- #

@register_task("path_cover",
               summary="minimum path cover of the cograph (Theorem 5.3)")
def _task_path_cover(problem: Problem, options: SolveOptions) -> Solution:
    return _solve_cover(problem, options, "path_cover")


@register_task("path_cover_size",
               summary="p(root) only — analytic recurrence with default "
                       "options, the configured engine otherwise")
def _task_path_cover_size(problem: Problem,
                          options: SolveOptions) -> Solution:
    if options.with_(cache=None, batch_small=None) == SolveOptions():
        # all-default options: the cheap Lemma 2.4 recurrence, no pipeline.
        # Any non-default option (a backend, PRAM knobs, validate, a
        # method) runs the configured engine instead, so nothing the
        # caller asked for is silently dropped.  A cache or a batch
        # routing threshold is not an engine choice, so neither forces
        # the pipeline.
        size = int(minimum_path_cover_size(problem.cotree()))
        return Solution(task="path_cover_size", answer=size,
                        backend="analytic", options=options, num_paths=size)
    solution = _solve_cover(problem, options, "path_cover_size")
    solution.answer = solution.num_paths
    return solution


# --------------------------------------------------------------------------- #
# Hamiltonicity
# --------------------------------------------------------------------------- #

def _leftist_binary_and_size(problem: Problem):
    """One leftist binarization + one analytic pass, shared by both
    Hamiltonicity tasks (the witness constructions reuse the binary)."""
    tree = problem.cotree()
    binary = tree if isinstance(tree, BinaryCotree) else binarize_cotree(tree)
    binary = make_leftist(binary)
    size = int(path_cover_sizes_per_node(binary)[binary.root])
    return binary, size


@register_task("hamiltonian_path",
               summary="a Hamiltonian path witness, or None")
def _task_hamiltonian_path(problem: Problem,
                           options: SolveOptions) -> Solution:
    binary, size = _leftist_binary_and_size(problem)
    witness = hamiltonian_path(binary, cover_solver=_cover_solver(options)) \
        if size == 1 else None
    return Solution(task="hamiltonian_path", answer=witness,
                    backend=options.resolved_backend, options=options,
                    num_paths=size,
                    provenance={"min_path_cover": size})


@register_task("hamiltonian_cycle",
               summary="a Hamiltonian cycle witness, or None")
def _task_hamiltonian_cycle(problem: Problem,
                            options: SolveOptions) -> Solution:
    binary, size = _leftist_binary_and_size(problem)
    witness = hamiltonian_cycle(binary, cover_solver=_cover_solver(options))
    return Solution(task="hamiltonian_cycle", answer=witness,
                    backend=options.resolved_backend, options=options,
                    num_paths=size,
                    provenance={"min_path_cover": size})


# --------------------------------------------------------------------------- #
# recognition
# --------------------------------------------------------------------------- #

@register_task("recognition", runs_pipeline=False, graph_classes=("any",),
               summary="is the input a cograph? (False carries the "
                       "induced-P4 certificate)")
def _task_recognition(problem: Problem, options: SolveOptions) -> Solution:
    provenance = {}
    if problem.graph is None:
        # the input already was a cotree, which *is* a cograph certificate
        answer = True
        provenance["input_was_cotree"] = True
    else:
        try:
            problem.cotree()  # converts and caches for later tasks
            answer = True
        except NotACographError as exc:
            answer = False
            if exc.certificate is not None:
                provenance["certificate"] = [int(v) for v in exc.certificate]
    return Solution(task="recognition", answer=answer, backend="sequential",
                    options=options, provenance=provenance)


# --------------------------------------------------------------------------- #
# the cotree-DP tasks
# --------------------------------------------------------------------------- #

def _run_dp(problem: Problem, options: SolveOptions, dp: CotreeDP, *,
            md: bool = False) -> Tuple[CotreeDPRun, Dict[str, float]]:
    """Execute one :class:`~repro.core.CotreeDP` under the options' engine.

    ``method="sequential"`` runs the generic postorder evaluator;
    ``method="parallel"`` runs the level-wise engine on the configured
    backend (the paper's PRAM machine by default, so the DP inherits the
    EREW accounting).  The ``work_efficient`` knob has no effect here —
    the engine has a single variant — and is deliberately tolerated so
    option sets can sweep across tasks.

    ``md=True`` (the MD-capable tasks: their DP specs carry a prime
    combiner) feeds the engine :meth:`~repro.api.Problem.decomposition_tree`
    instead of the plain cotree, so non-cograph graphs are solved through
    their modular decomposition.  Cograph inputs take the exact same path
    either way — bit-identical answers.
    """
    tree = problem.decomposition_tree() if md else problem.pipeline_tree()
    t0 = time.perf_counter()
    if options.method == "sequential":
        run = run_cotree_dp_sequential(dp, tree)
    else:
        ctx = _build_context(tree.num_vertices, None, options.backend,
                             options.num_processors, options.mode,
                             options.record_steps)
        run = run_cotree_dp(dp, tree, ctx)
    return run, {"dp": time.perf_counter() - t0}


def _dp_solution(task: str, run: CotreeDPRun, answer: Any,
                 options: SolveOptions,
                 stage_seconds: Dict[str, float]) -> Solution:
    ctx = run.ctx
    return Solution(task=task, answer=answer, backend=run.backend,
                    options=options,
                    report=ctx.report() if ctx is not None else None,
                    machine=ctx.machine if ctx is not None else None,
                    stage_seconds=stage_seconds)


def _witness(run: CotreeDPRun, stage_seconds: Dict[str, float]):
    t0 = time.perf_counter()
    witness = run.witness()
    stage_seconds["witness"] = time.perf_counter() - t0
    return witness


class _GraphOracle:
    """Adjacency oracle over an explicit :class:`~repro.cograph.Graph`,
    with the same ``adjacent`` surface as
    :class:`~repro.cograph.CographAdjacencyOracle` — used to validate
    witnesses on non-cograph (modular decomposition) inputs."""

    def __init__(self, graph) -> None:
        self._graph = graph

    def adjacent(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)


def _oracle(problem: Problem):
    """The adjacency oracle witnesses are validated against: the LCA
    oracle on cograph inputs, the explicit graph on MD inputs."""
    if problem.graph is not None:
        return _GraphOracle(problem.graph)
    tree = problem.pipeline_tree()
    if isinstance(tree, FlatCotree) and tree.has_primes:
        return _GraphOracle(graph_from_md_tree(tree))
    return CographAdjacencyOracle(problem.cotree())


def _check_vertex_set(problem: Problem, vertices, size: int, *,
                      adjacent: bool, what: str,
                      oracle: CographAdjacencyOracle = None) -> None:
    """Validate an extremal-set witness against the adjacency oracle
    (quadratic in the witness size — meant for ``validate=True`` runs)."""
    if len(vertices) != size:
        raise ValueError(f"{what} witness has {len(vertices)} vertices, "
                         f"claimed {size}")
    if oracle is None:
        oracle = _oracle(problem)
    vs = [int(v) for v in vertices]
    for i, u in enumerate(vs):
        for v in vs[i + 1:]:
            if bool(oracle.adjacent(u, v)) != adjacent:
                raise ValueError(
                    f"{what} witness is wrong: vertices {u} and {v} are "
                    f"{'not ' if adjacent else ''}adjacent")


@register_task("max_clique", graph_classes=MD_GRAPH_CLASSES,
               summary="omega(G) and a maximum-clique vertex witness "
                       "(cotree DP; MD-capable)")
def _task_max_clique(problem: Problem, options: SolveOptions) -> Solution:
    run, seconds = _run_dp(problem, options, MAX_CLIQUE_DP, md=True)
    size = run.root("omega")
    vertices = [int(v) for v in _witness(run, seconds)]
    if options.validate:
        _check_vertex_set(problem, vertices, size, adjacent=True,
                          what="max_clique")
    return _dp_solution("max_clique", run,
                        {"size": size, "vertices": vertices},
                        options, seconds)


@register_task("max_independent_set", graph_classes=MD_GRAPH_CLASSES,
               summary="alpha(G) and a maximum-independent-set vertex "
                       "witness (cotree DP; MD-capable)")
def _task_max_independent_set(problem: Problem,
                              options: SolveOptions) -> Solution:
    run, seconds = _run_dp(problem, options, MAX_INDEPENDENT_SET_DP, md=True)
    size = run.root("alpha")
    vertices = [int(v) for v in _witness(run, seconds)]
    if options.validate:
        _check_vertex_set(problem, vertices, size, adjacent=False,
                          what="max_independent_set")
    return _dp_solution("max_independent_set", run,
                        {"size": size, "vertices": vertices},
                        options, seconds)


def _task_weights(problem: Problem, options: SolveOptions,
                  task: str) -> np.ndarray:
    """The validated per-vertex weight vector of a weighted task."""
    if options.weights is None:
        raise ValueError(
            f"task {task!r} needs per-vertex weights; pass "
            f"SolveOptions(weights=[w0, w1, ...]) (or the weights= "
            f"keyword) with one non-negative integer per vertex")
    n = problem.num_vertices
    if len(options.weights) != n:
        raise ValueError(
            f"weights length {len(options.weights)} does not match the "
            f"instance's {n} vertices")
    return np.asarray(options.weights, dtype=np.int64)


def _check_weighted_set(problem: Problem, vertices, weights: np.ndarray,
                        claimed: int, *, adjacent: bool, what: str) -> None:
    """Weighted-witness validation: the set is extremal-feasible *and* its
    weight sum matches the DP's root value."""
    _check_vertex_set(problem, vertices, len(vertices), adjacent=adjacent,
                      what=what)
    total = int(weights[np.asarray(vertices, dtype=np.int64)].sum()) \
        if len(vertices) else 0
    if total != claimed:
        raise ValueError(f"{what} witness weighs {total}, "
                         f"claimed {claimed}")


@register_task("max_weight_independent_set", graph_classes=MD_GRAPH_CLASSES,
               uses_weights=True,
               summary="a maximum-weight independent set under per-vertex "
                       "weights (cotree DP; MD-capable)")
def _task_max_weight_independent_set(problem: Problem,
                                     options: SolveOptions) -> Solution:
    weights = _task_weights(problem, options, "max_weight_independent_set")
    run, seconds = _run_dp(problem, options,
                           max_weight_independent_set_dp(weights), md=True)
    weight = run.root("alpha")
    vertices = [int(v) for v in _witness(run, seconds)]
    if options.validate:
        _check_weighted_set(problem, vertices, weights, weight,
                            adjacent=False,
                            what="max_weight_independent_set")
    return _dp_solution("max_weight_independent_set", run,
                        {"weight": weight, "vertices": vertices},
                        options, seconds)


@register_task("max_weight_clique", graph_classes=MD_GRAPH_CLASSES,
               uses_weights=True,
               summary="a maximum-weight clique under per-vertex weights "
                       "(cotree DP; MD-capable)")
def _task_max_weight_clique(problem: Problem,
                            options: SolveOptions) -> Solution:
    weights = _task_weights(problem, options, "max_weight_clique")
    run, seconds = _run_dp(problem, options,
                           max_weight_clique_dp(weights), md=True)
    weight = run.root("omega")
    vertices = [int(v) for v in _witness(run, seconds)]
    if options.validate:
        _check_weighted_set(problem, vertices, weights, weight,
                            adjacent=True, what="max_weight_clique")
    return _dp_solution("max_weight_clique", run,
                        {"weight": weight, "vertices": vertices},
                        options, seconds)


@register_task("chromatic_number",
               summary="chi(G) and a proper colouring witness (cotree DP; "
                       "chi = omega — cographs are perfect)")
def _task_chromatic_number(problem: Problem,
                           options: SolveOptions) -> Solution:
    run, seconds = _run_dp(problem, options, CHROMATIC_NUMBER_DP)
    chi = run.root("chi")
    coloring = [int(c) for c in _witness(run, seconds)]
    if options.validate:
        if sorted(set(coloring)) != list(range(chi)):
            raise ValueError(f"colouring uses {len(set(coloring))} colours, "
                             f"claimed chi = {chi}")
        oracle = _oracle(problem)
        by_color: Dict[int, list] = {}
        for v, c in enumerate(coloring):
            by_color.setdefault(c, []).append(v)
        for members in by_color.values():
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    if oracle.adjacent(u, v):
                        raise ValueError(
                            f"colouring is not proper: adjacent vertices "
                            f"{u} and {v} share a colour")
    return _dp_solution("chromatic_number", run,
                        {"chromatic_number": chi, "coloring": coloring},
                        options, seconds)


@register_task("clique_cover",
               summary="theta(G) and a partition into cliques (cotree DP; "
                       "theta = alpha — cographs are perfect)")
def _task_clique_cover(problem: Problem, options: SolveOptions) -> Solution:
    run, seconds = _run_dp(problem, options, CLIQUE_COVER_DP)
    theta = run.root("theta")
    classes = _witness(run, seconds)
    order = np.argsort(classes, kind="stable")
    bounds = np.searchsorted(classes[order], np.arange(theta + 1))
    cliques = [[int(v) for v in order[lo:hi]]
               for lo, hi in zip(bounds[:-1], bounds[1:])]
    if options.validate:
        covered = sorted(v for clique in cliques for v in clique)
        if covered != list(range(len(classes))):
            raise ValueError("clique cover is not a partition of the "
                             "vertex set")
        oracle = _oracle(problem)      # built once, shared by every clique
        for clique in cliques:
            _check_vertex_set(problem, clique, len(clique), adjacent=True,
                              what="clique_cover", oracle=oracle)
    return _dp_solution("clique_cover", run,
                        {"num_cliques": theta, "cliques": cliques},
                        options, seconds)


@register_task("count_independent_sets",
               summary="the exact number of independent sets, empty set "
                       "included (cotree DP, arbitrary precision)")
def _task_count_independent_sets(problem: Problem,
                                 options: SolveOptions) -> Solution:
    run, seconds = _run_dp(problem, options, COUNT_INDEPENDENT_SETS_DP)
    count = int(run.root("count"))
    if options.validate:
        reference = int(run_cotree_dp_sequential(
            COUNT_INDEPENDENT_SETS_DP, problem.pipeline_tree()).root("count"))
        if count != reference:
            raise ValueError(f"count {count} disagrees with the sequential "
                             f"evaluator ({reference})")
    return _dp_solution("count_independent_sets", run,
                        {"count": count, "includes_empty_set": True},
                        options, seconds)


# --------------------------------------------------------------------------- #
# the lower-bound reduction
# --------------------------------------------------------------------------- #

@register_task("lower_bound", input_kind="bits", graph_classes=(),
               summary="solve the Fig. 2 OR-reduction instance and decode "
                       "OR from the path count (Theorem 2.2)")
def _task_lower_bound(problem: Problem, options: SolveOptions) -> Solution:
    if problem.instance is None:
        raise ValueError(
            "the 'lower_bound' task runs the Fig. 2 OR reduction, so its "
            "input must be a 0/1 bit vector (e.g. solve([1, 0, 1], "
            "task='lower_bound')), not a general cograph")
    instance = problem.instance
    run, seconds = _run_dp(problem, options, PATH_COVER_SIZE_DP)
    num_paths = run.root("p")
    bits = [int(b) for b in instance.bits]
    expected = expected_path_count(bits)
    if options.validate and num_paths != expected:
        raise ValueError(f"path count {num_paths} disagrees with the "
                         f"paper's formula n - k + 2 = {expected}")
    solution = _dp_solution("lower_bound", run, {
        "or": or_from_path_count(num_paths, instance.n),
        "bits": bits,
        "num_paths": num_paths,
        "expected_num_paths": expected,
    }, options, seconds)
    solution.num_paths = num_paths
    return solution
