"""``solve()``, ``solve_many()`` and ``solve_stream()`` — the front door.

Every question the library answers goes through here: the input is adapted
by :func:`~repro.api.adapters.as_problem`, the configuration is one
validated :class:`~repro.api.SolveOptions`, the task is looked up in the
registry, and the result is always a :class:`~repro.api.Solution`.

Three shapes of traffic:

* :func:`solve` — one instance, in-process;
* :func:`solve_many` — an eager batch (a list in, a list out);
* :func:`solve_stream` — an *iterable* in, a generator out: instances are
  adapted lazily, at most ``window`` are in flight (backpressure), and
  solutions stream back in input order.  A million-instance stream never
  holds a million problems resident.

All three honour ``SolveOptions(cache=...)`` (identical instances answered
from an LRU cache) and the batch/stream pair accept a persistent
:class:`~repro.core.WorkerPool` so sustained traffic reuses warm workers
instead of forking a pool per call.

>>> from repro.api import solve
>>> solve("(0 * (1 + 2))").num_paths
1
>>> solve([(0, 1), (1, 2), (0, 2)], task="hamiltonian_cycle").ok
True
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.batch import Resolved, WorkerPool, resolve_jobs, stream_out
from ..core.retry import ErrorOutcome, RetryPolicy, WorkerCrashError
from .adapters import Problem, as_problem
from .options import SolveOptions
from .registry import get_task
from .solution import Solution

__all__ = ["solve", "solve_many", "solve_stream"]


def _resolve_options(options: Optional[SolveOptions],
                     option_fields: dict) -> SolveOptions:
    if options is not None:
        if option_fields:
            raise ValueError(
                f"pass either options=SolveOptions(...) or option keyword "
                f"arguments ({sorted(option_fields)}), not both")
        if not isinstance(options, SolveOptions):
            raise TypeError(f"options must be a SolveOptions, "
                            f"got {type(options).__name__}")
        return options
    return SolveOptions(**option_fields)


def _reject_unused_weights(spec, options: SolveOptions) -> None:
    """Weights passed to a task that ignores them are an error, never a
    silent no-op (same contract as every other option)."""
    if options.weights is not None and not spec.uses_weights:
        from .registry import TASKS
        weighted = sorted(n for n, s in TASKS.items() if s.uses_weights)
        raise ValueError(
            f"task {spec.name!r} takes no vertex weights; "
            f"SolveOptions(weights=...) only applies to the weighted "
            f"tasks {weighted}")


def _reject_pipeline_options(task: str, options: SolveOptions) -> None:
    """Tasks that never run the solver pipeline reject non-default options
    instead of silently ignoring them.  (The ``cache`` is excluded from
    ``to_dict`` and is handled by the front door itself, so it is welcome
    on every task.)"""
    defaults = SolveOptions().to_dict()
    offending = [f"{name}={value!r}"
                 for name, value in options.to_dict().items()
                 if value != defaults[name]]
    if offending:
        raise ValueError(
            f"task {task!r} does not run the solver pipeline; option(s) "
            f"{', '.join(offending)} would have no effect — drop them")


#: provenance keys that describe one *call*, not the instance — never
#: inherited from the stored entry by a cache hit.
_CALL_PROVENANCE = ("batch_index", "source", "source_format", "cache",
                    "route")

#: instances buffered per forest sweep by the ``batch_small`` stream
#: routing — large enough to amortise the packed pass, small enough to
#: keep the stream flowing.
_FOREST_FLUSH = 1024


def _from_cache(hit: Solution, prob: Problem) -> Solution:
    """A copy of a cached solution, re-attributed to *this* call's input."""
    provenance = {k: v for k, v in hit.provenance.items()
                  if k not in _CALL_PROVENANCE}
    provenance.update(prob.provenance())
    provenance["cache"] = "hit"
    return replace(hit, provenance=provenance)


def solve(problem: Any, task: str = "path_cover", *,
          options: Optional[SolveOptions] = None,
          **option_fields: Any) -> Solution:
    """Solve one instance.

    Parameters
    ----------
    problem:
        anything :func:`~repro.api.as_problem` accepts: a cotree, a graph,
        an edge list, an adjacency dict, cotree text, a JSON file path, or
        a 0/1 bit vector (for ``task="lower_bound"``).
    task:
        a registered task name — see :func:`~repro.api.task_names`.
    options:
        a :class:`~repro.api.SolveOptions`; alternatively pass its fields
        directly as keyword arguments (``solve(tree, backend="fast")``).
        With ``cache=SolutionCache(...)`` set, a previously-solved
        identical instance is answered from the cache
        (``provenance["cache"]`` reports ``"hit"``/``"miss"``).

    Returns
    -------
    Solution
    """
    opts = _resolve_options(options, option_fields)
    spec = get_task(task)
    _reject_unused_weights(spec, opts)
    prob = as_problem(problem, task=task)
    if not spec.runs_pipeline:
        _reject_pipeline_options(task, opts)
    cache = opts.cache
    key = cache.key_for(prob, task, opts) if cache is not None else None
    if key is not None:
        hit = cache.get(key)
        if hit is not None:
            return _from_cache(hit, prob)
    solution = spec.fn(prob, opts)
    for name, value in prob.provenance().items():
        solution.provenance.setdefault(name, value)
    if key is not None:
        solution.provenance["cache"] = "miss"
        cache.put(key, solution)
    return solution


def _solve_one_payload(payload) -> Solution:
    """Worker body (module level so it pickles under multiprocessing)."""
    index, problem, task, options = payload
    solution = solve(problem, task, options=options).without_machine()
    solution.provenance["batch_index"] = index
    return solution


def _error_solution(task: str, options: SolveOptions,
                    outcome: ErrorOutcome, index: int) -> Solution:
    """The degraded :class:`Solution` one quarantined stream item yields.

    ``answer`` is ``None`` and ``backend`` is ``"error"``; the structured
    failure (kind, message, attempt count) travels in ``provenance`` so
    JSONL consumers can tell a quarantined item from a real answer without
    a side channel.  Never cached.
    """
    return Solution(
        task=task, answer=None, backend="error", options=options,
        provenance={"batch_index": index, "route": "pool",
                    **outcome.to_dict()})


def solve_stream(problems: Iterable[Any], task: str = "path_cover", *,
                 options: Optional[SolveOptions] = None,
                 jobs: Optional[int] = None,
                 window: Optional[int] = None,
                 chunksize: int = 1,
                 pool: Optional[WorkerPool] = None,
                 retry: Optional[RetryPolicy] = None,
                 on_error: str = "fail",
                 **option_fields: Any) -> Iterator[Solution]:
    """Stream solutions for a lazily-consumed iterable of instances.

    The streaming front door: ``problems`` may be any iterable — a
    generator reading requests off a socket, a JSONL file, ten million
    synthetic instances — and is *never* materialised.  At most ``window``
    instances are in flight at a time (drawn from the iterable but not yet
    yielded back), and solutions come back **in input order** as they
    complete, each stamped with ``provenance["batch_index"]``.

    Parameters
    ----------
    problems:
        an iterable of anything :func:`~repro.api.as_problem` accepts.
    task:
        a registered task name.
    options / option_fields:
        as for :func:`solve`.  With a ``cache`` set, hits are answered in
        the calling process and never reach a worker; misses are inserted
        as they complete.  With ``batch_small=N`` set, instances of at
        most ``N`` vertices are diverted from the worker pool into
        single-core vectorized forest sweeps
        (:func:`~repro.api.solve_forest`) of up to 1024 instances each —
        far cheaper than a worker round-trip for tiny instances
        (``provenance["route"]`` reports which way each instance went).
    jobs:
        worker processes (``None``/``1`` in-process and fully lazy, ``0``
        one per CPU).  Ignored when ``pool`` is given.
    window:
        backpressure bound (default ``4 * jobs * chunksize``).
    chunksize:
        instances handed to a worker per task (amortises pickling for
        small instances).
    pool:
        a persistent :class:`~repro.core.WorkerPool`; workers stay warm
        for the next call instead of forking per stream.
    retry:
        the :class:`~repro.core.RetryPolicy` for worker-crash recovery
        (``None`` — the default — heals with ``RetryPolicy()``;
        ``RetryPolicy.off()`` restores fail-fast ``BrokenProcessPool``).
        A SIGKILLed worker mid-stream loses zero results: lost in-flight
        items are re-run on a rebuilt pool and still yield in order.
    on_error:
        what a *quarantined* item (retries exhausted, deadline expired,
        or corrupted worker result) yields: ``"fail"`` (default) raises
        :class:`~repro.core.WorkerCrashError`; ``"emit"`` degrades to a
        structured error :class:`Solution` (``backend="error"``,
        ``answer=None``, failure details in ``provenance``) in the item's
        ordered slot, and the stream keeps flowing.

    Yields
    ------
    Solution
        in input order.  Like :func:`solve_many`, streamed solutions never
        carry a live PRAM ``machine``.
    """
    if on_error not in ("fail", "emit"):
        raise ValueError(
            f"on_error must be 'fail' or 'emit', got {on_error!r}")
    opts = _resolve_options(options, option_fields)
    spec = get_task(task)  # fail fast on unknown tasks, before adapting
    _reject_unused_weights(spec, opts)
    cache = opts.cache
    threshold = opts.batch_small
    worker_opts = opts.with_(cache=None, batch_small=None) \
        if (cache is not None or threshold is not None) else opts
    if not spec.runs_pipeline:
        _reject_pipeline_options(task, worker_opts)
    keys: Dict[int, Tuple] = {}

    forest_ok = False
    if threshold is not None:
        # imported here: repro.api.forest itself imports solve() from this
        # module for its serial fallback
        from .forest import _forest_supported, _solve_forest_problems
        forest_ok = _forest_supported(task, opts)

    def flush_forest(buffered):
        """Sweep the buffered small instances; Resolved, in buffer order."""
        solutions = _solve_forest_problems([p for _, p in buffered],
                                           task, opts)
        out = []
        for (index, _), solution in zip(buffered, solutions):
            solution.provenance["batch_index"] = index
            out.append(Resolved(solution.without_machine()))
        return out

    def payloads():
        buffer = []
        for index, raw in enumerate(problems):
            prob = as_problem(raw, task=task)
            if forest_ok and prob.num_vertices <= threshold:
                buffer.append((index, prob))
                if len(buffer) >= _FOREST_FLUSH:
                    yield from flush_forest(buffer)
                    buffer = []
                continue
            # solutions come back in payload order, so the pending small
            # instances must be swept before any later payload goes out
            if buffer:
                yield from flush_forest(buffer)
                buffer = []
            if cache is not None:
                key = cache.key_for(prob, task, worker_opts)
                if key is not None:
                    hit = cache.get(key)
                    if hit is not None:
                        hit = _from_cache(hit, prob)
                        hit.provenance["batch_index"] = index
                        yield Resolved(hit.without_machine())
                        continue
                    keys[index] = key
            yield (index, prob, task, worker_opts)
        if buffer:
            yield from flush_forest(buffer)

    pool_route = "pool" if (pool.jobs if pool is not None
                            else resolve_jobs(jobs)) > 1 else "serial"

    def results():
        # yields arrive strictly in input order (cache hits and forest
        # sweeps included), so the running position *is* the batch index —
        # which is how degraded items with no usable result stay
        # attributable to their input line
        for position, item in enumerate(stream_out(
                _solve_one_payload, payloads(), jobs=jobs, window=window,
                chunksize=chunksize, pool=pool, retry=retry)):
            if not isinstance(item, Solution):
                if not isinstance(item, ErrorOutcome):
                    # a fault-corrupted (or otherwise mangled) worker
                    # result: never trust it, never retry it
                    item = ErrorOutcome(
                        error=f"worker returned {type(item).__name__} "
                              f"instead of a Solution", kind="corrupt")
                keys.pop(position, None)  # never cache a failure
                if on_error != "emit":
                    raise WorkerCrashError(item)
                yield _error_solution(task, worker_opts, item, position)
                continue
            solution = item
            if cache is not None:
                key = keys.pop(solution.provenance["batch_index"], None)
                if key is not None:
                    solution.provenance["cache"] = "miss"
                    cache.put(key, solution)
            if "route" not in solution.provenance and \
                    solution.provenance.get("cache") != "hit":
                solution.provenance["route"] = pool_route
            yield solution

    return results()


def solve_many(problems: Iterable[Any], task: str = "path_cover", *,
               options: Optional[SolveOptions] = None,
               jobs: Optional[int] = None,
               chunksize: Optional[int] = None,
               pool: Optional[WorkerPool] = None,
               retry: Optional[RetryPolicy] = None,
               on_error: str = "fail",
               **option_fields: Any) -> List[Solution]:
    """Solve a batch of instances, optionally across worker processes.

    The eager wrapper over :func:`solve_stream` (one fan-out code path):
    the batch is materialised, the window is the whole batch, and one
    :class:`~repro.api.Solution` per input comes back in input order, each
    stamped with ``provenance["batch_index"]``.  ``jobs=None``/``1`` runs
    in-process, ``0`` means one worker per CPU; pass a persistent
    :class:`~repro.core.WorkerPool` to reuse warm workers across calls.
    Live PRAM machines never cross process boundaries; batch solutions
    always have ``machine=None``.  ``retry`` / ``on_error`` behave as in
    :func:`solve_stream` (worker crashes heal by default; quarantined
    items raise unless ``on_error="emit"``).
    """
    problems = list(problems)
    n_jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
    if pool is None:
        # never fork more workers than there are instances
        jobs = min(n_jobs, len(problems)) if problems else None
    if chunksize is None:
        chunksize = max(1, len(problems) // (max(1, n_jobs) * 4))
    return list(solve_stream(problems, task, options=options, jobs=jobs,
                             window=max(1, len(problems)),
                             chunksize=chunksize, pool=pool,
                             retry=retry, on_error=on_error,
                             **option_fields))
