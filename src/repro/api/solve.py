"""``solve()`` and ``solve_many()`` — the package's one front door.

Every question the library answers goes through here: the input is adapted
by :func:`~repro.api.adapters.as_problem`, the configuration is one
validated :class:`~repro.api.SolveOptions`, the task is looked up in the
registry, and the result is always a :class:`~repro.api.Solution`.

>>> from repro.api import solve
>>> solve("(0 * (1 + 2))").num_paths
1
>>> solve([(0, 1), (1, 2), (0, 2)], task="hamiltonian_cycle").ok
True
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from ..core.batch import fan_out
from .adapters import as_problem
from .options import SolveOptions
from .registry import get_task
from .solution import Solution

__all__ = ["solve", "solve_many"]


def _resolve_options(options: Optional[SolveOptions],
                     option_fields: dict) -> SolveOptions:
    if options is not None:
        if option_fields:
            raise ValueError(
                f"pass either options=SolveOptions(...) or option keyword "
                f"arguments ({sorted(option_fields)}), not both")
        if not isinstance(options, SolveOptions):
            raise TypeError(f"options must be a SolveOptions, "
                            f"got {type(options).__name__}")
        return options
    return SolveOptions(**option_fields)


def _reject_pipeline_options(task: str, options: SolveOptions) -> None:
    """Tasks that never run the solver pipeline reject non-default options
    instead of silently ignoring them."""
    defaults = SolveOptions().to_dict()
    offending = [f"{name}={value!r}"
                 for name, value in options.to_dict().items()
                 if value != defaults[name]]
    if offending:
        raise ValueError(
            f"task {task!r} does not run the solver pipeline; option(s) "
            f"{', '.join(offending)} would have no effect — drop them")


def solve(problem: Any, task: str = "path_cover", *,
          options: Optional[SolveOptions] = None,
          **option_fields: Any) -> Solution:
    """Solve one instance.

    Parameters
    ----------
    problem:
        anything :func:`~repro.api.as_problem` accepts: a cotree, a graph,
        an edge list, an adjacency dict, cotree text, a JSON file path, or
        a 0/1 bit vector (for ``task="lower_bound"``).
    task:
        a registered task name — see :func:`~repro.api.task_names`.
    options:
        a :class:`~repro.api.SolveOptions`; alternatively pass its fields
        directly as keyword arguments (``solve(tree, backend="fast")``).

    Returns
    -------
    Solution
    """
    opts = _resolve_options(options, option_fields)
    spec = get_task(task)
    prob = as_problem(problem, task=task)
    if not spec.runs_pipeline:
        _reject_pipeline_options(task, opts)
    solution = spec.fn(prob, opts)
    for key, value in prob.provenance().items():
        solution.provenance.setdefault(key, value)
    return solution


def _solve_one_payload(payload) -> Solution:
    """Worker body (module level so it pickles under multiprocessing)."""
    index, problem, task, options = payload
    solution = solve(problem, task, options=options).without_machine()
    solution.provenance["batch_index"] = index
    return solution


def solve_many(problems: Iterable[Any], task: str = "path_cover", *,
               options: Optional[SolveOptions] = None,
               jobs: Optional[int] = None,
               chunksize: Optional[int] = None,
               **option_fields: Any) -> List[Solution]:
    """Solve a batch of instances, optionally across worker processes.

    The batch rides the same fan-out engine as
    :func:`repro.core.solve_batch` (``jobs=None``/``1`` in-process, ``0``
    one worker per CPU) and returns one :class:`~repro.api.Solution` per
    input, in input order, each stamped with ``provenance["batch_index"]``.
    Live PRAM machines never cross process boundaries; batch solutions
    always have ``machine=None``.
    """
    opts = _resolve_options(options, option_fields)
    get_task(task)  # fail fast on unknown tasks, before adapting inputs
    payloads = [(i, as_problem(p, task=task), task, opts)
                for i, p in enumerate(problems)]
    return fan_out(_solve_one_payload, payloads, jobs=jobs,
                   chunksize=chunksize)
