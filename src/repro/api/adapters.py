"""Input adapters: accept every reasonable instance description.

:func:`as_problem` is the funnel in front of :func:`repro.api.solve`.  It
turns any of

* a :class:`~repro.cograph.Cotree` / :class:`~repro.cograph.BinaryCotree`,
* a :class:`~repro.cograph.Graph`,
* an edge list (``[(0, 1), (1, 2)]`` or an ``(m, 2)`` array),
* an adjacency dict (``{0: [1], 1: [0, 2], 2: [1]}``),
* the compact cotree text form (``"(0 + (1 * 2))"``),
* binary wire bytes produced by :func:`repro.io.wire.to_bytes`
  (``bytes`` / ``bytearray`` / ``memoryview`` — decoded zero-copy),
* a path to a JSON file produced by :func:`repro.io.save_json`,
* a 0/1 bit vector (``[1, 0, 1]`` — the Fig. 2 lower-bound reduction;
  accepted only for ``task="lower_bound"``, so a flat integer list can
  never be silently mistaken for a graph), or
* an existing :class:`Problem`

into one :class:`Problem` value.  Graph-like inputs are routed through
:func:`~repro.cograph.cotree_from_graph` *lazily*, so a non-cograph raises
:class:`~repro.cograph.NotACographError` only when a task actually needs the
cotree — which is what lets the ``recognition`` task answer ``False``
instead of blowing up.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Union

import numpy as np

from ..cograph import (
    BinaryCotree,
    Cotree,
    FlatCotree,
    Graph,
    NotACographError,
    cotree_from_graph,
    md_tree,
)
from ..core import LowerBoundInstance, or_instance_cotree
from ..io import cotree_from_text, load_json

__all__ = ["Problem", "as_problem", "SOURCE_FORMATS"]

#: every ``Problem.source_format`` value an adapter can produce.
SOURCE_FORMATS = ("problem", "cotree", "flat_cotree", "binary_cotree",
                  "graph", "edge_list", "adjacency", "text", "json", "bits",
                  "wire")

TreeLike = Union[Cotree, BinaryCotree, FlatCotree]


@dataclass
class Problem:
    """One adapted instance, ready for any registered task.

    Exactly one of ``tree`` / ``graph`` / ``instance`` is set at
    construction; :meth:`cotree` converts (and caches) on demand.

    Attributes
    ----------
    source_format:
        which adapter produced this problem (see :data:`SOURCE_FORMATS`).
    tree:
        the cotree, when the input already was one (or parsed text/JSON).
    graph:
        the explicit graph, when the input was graph-like.  Kept so the
        ``recognition`` task can answer without assuming cograph-ness.
    instance:
        the Fig. 2 :class:`~repro.core.LowerBoundInstance`, when the input
        was a bit vector.
    source:
        free-form origin note (e.g. the JSON file path).
    """

    source_format: str
    tree: Optional[TreeLike] = None
    graph: Optional[Graph] = None
    instance: Optional[LowerBoundInstance] = None
    source: Optional[str] = None
    _cached_tree: Optional[TreeLike] = field(default=None, repr=False)
    _cached_md: Optional[FlatCotree] = field(default=None, repr=False)

    def cotree(self) -> Union[Cotree, BinaryCotree]:
        """The instance's cotree as a :class:`Cotree` / ``BinaryCotree``,
        converting from a graph or a :class:`FlatCotree` if necessary.

        Raises
        ------
        NotACographError
            when the underlying graph is not a cograph.
        """
        if self._cached_tree is None:
            if isinstance(self.tree, FlatCotree):
                self._cached_tree = self.tree.to_cotree()
            elif self.tree is not None:
                self._cached_tree = self.tree
            elif self.instance is not None:
                self._cached_tree = self.instance.cotree
            elif self.graph is not None:
                self._cached_tree = cotree_from_graph(self.graph)
            else:  # pragma: no cover - constructors always set one
                raise ValueError("empty Problem")
        return self._cached_tree

    def pipeline_tree(self) -> TreeLike:
        """The form the solver pipeline should consume: the original
        :class:`FlatCotree` when the input already was flat (no conversion
        on the hot path), otherwise :meth:`cotree`."""
        if isinstance(self.tree, FlatCotree):
            return self.tree
        return self.cotree()

    def decomposition_tree(self) -> TreeLike:
        """The tree an MD-capable task should consume.

        Cograph inputs come back through exactly the same path as
        :meth:`pipeline_tree` — bit-identical answers, no new code on the
        common case.  A *non-cograph* graph instead gets its modular
        decomposition tree (:func:`~repro.cograph.md_tree`, cached), whose
        prime nodes the DP engine handles.  Non-graph inputs that are not
        cographs (there are none today) still raise
        :class:`~repro.cograph.NotACographError`.
        """
        if self._cached_md is not None:
            return self._cached_md
        if self.graph is None:
            return self.pipeline_tree()
        try:
            return self.pipeline_tree()
        except NotACographError:
            self._cached_md = md_tree(self.graph)
            return self._cached_md

    @property
    def num_vertices(self) -> int:
        """Number of vertices of the instance."""
        if self.tree is not None:
            return self.tree.num_vertices
        if self.instance is not None:
            return self.instance.cotree.num_vertices
        return self.graph.n

    def provenance(self) -> Dict[str, Any]:
        """The provenance fields every Solution records about its input."""
        out = {"source_format": self.source_format,
               "num_vertices": self.num_vertices}
        if self.source is not None:
            out["source"] = self.source
        return out


# --------------------------------------------------------------------------- #
# the funnel
# --------------------------------------------------------------------------- #

def as_problem(obj: Any, *, task: Optional[str] = None) -> Problem:
    """Adapt any supported instance description into a :class:`Problem`.

    See the module docstring for the accepted forms.  ``task`` (forwarded
    by :func:`~repro.api.solve`) only matters for flat integer sequences:
    they are read as lower-bound bit vectors for ``task="lower_bound"``
    and rejected otherwise, so a graph task can never silently solve the
    reduction gadget instead.  Raises :class:`ValueError` (or
    :class:`TypeError` for hopeless inputs) with a message that names
    every accepted form.
    """
    if isinstance(obj, Problem):
        return obj
    if isinstance(obj, BinaryCotree):
        return Problem(source_format="binary_cotree", tree=obj)
    if isinstance(obj, FlatCotree):
        return Problem(source_format="flat_cotree", tree=obj)
    if isinstance(obj, Cotree):
        return Problem(source_format="cotree", tree=obj)
    if isinstance(obj, Graph):
        return Problem(source_format="graph", graph=obj)
    if isinstance(obj, LowerBoundInstance):
        return Problem(source_format="bits", instance=obj)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return _from_wire(obj)
    if isinstance(obj, os.PathLike):
        return _from_json_path(os.fspath(obj))
    if isinstance(obj, str):
        return _from_string(obj)
    if isinstance(obj, dict):
        return _from_dict(obj)
    if isinstance(obj, np.ndarray):
        return _from_array(obj, task)
    if isinstance(obj, (list, tuple)):
        return _from_sequence(obj, task)
    raise TypeError(
        f"cannot interpret {type(obj).__name__!r} as a problem; accepted: "
        f"Cotree, BinaryCotree, Graph, edge list, adjacency dict, cotree "
        f"text like '(0 + (1 * 2))', binary wire bytes "
        f"(repro.io.wire.to_bytes), a JSON file path, a 0/1 bit vector, "
        f"LowerBoundInstance, or Problem")


# --------------------------------------------------------------------------- #
# per-form adapters
# --------------------------------------------------------------------------- #

def _from_wire(buf) -> Problem:
    """Binary wire bytes: decoded zero-copy, validated by header CRC +
    exact-length checks (a bad buffer raises ValueError, never crashes)."""
    from ..io.wire import from_bytes
    return Problem(source_format="wire", tree=from_bytes(buf))


def _from_string(text: str) -> Problem:
    stripped = text.strip()
    if not stripped:
        raise ValueError("empty string is not a problem; pass cotree text "
                         "like '(0 + (1 * 2))' or a JSON file path")
    if stripped.startswith("("):
        return Problem(source_format="text",
                       tree=cotree_from_text(stripped))
    # the filesystem wins over the single-vertex reading: a JSON file named
    # "123" must stay loadable, and a digit string that names no file still
    # parses as a single-vertex cotree below
    if os.path.exists(stripped):
        return _from_json_path(stripped)
    if stripped.isdigit():
        return Problem(source_format="text",
                       tree=cotree_from_text(stripped))
    raise ValueError(
        f"string {text!r} is neither cotree text (must start with '(' or "
        f"be a single vertex id) nor an existing JSON file path")


def _from_json_path(path: str) -> Problem:
    loaded = load_json(path)
    if isinstance(loaded, Cotree):
        return Problem(source_format="json", tree=loaded, source=path)
    if isinstance(loaded, Graph):
        return Problem(source_format="json", graph=loaded, source=path)
    if isinstance(loaded, dict):
        inner = _from_dict(loaded)
        inner.source_format = "json"
        inner.source = path
        return inner
    raise ValueError(
        f"JSON file {path!r} holds a {type(loaded).__name__}, which is a "
        f"result, not a problem; expected a serialised cotree or graph")


def _from_dict(data: dict) -> Problem:
    if "type" in data:
        # a serialised object from repro.io
        from ..io import cotree_from_json, graph_from_json
        kind = data["type"]
        if kind == "cotree":
            return Problem(source_format="json", tree=cotree_from_json(data))
        if kind == "graph":
            return Problem(source_format="json", graph=graph_from_json(data))
        raise ValueError(f"serialised {kind!r} is not a problem; expected "
                         f"'cotree' or 'graph'")
    # an adjacency mapping {vertex: neighbours}; JSON string keys and
    # one-sided listings accepted
    try:
        adj = {int(k): [int(v) for v in _iter(vs)] for k, vs in data.items()}
    except (TypeError, ValueError):
        raise ValueError(
            "dict input must be a serialised cotree/graph (with a 'type' "
            "key) or an adjacency mapping {vertex: [neighbours]}") from None
    return Problem(source_format="adjacency", graph=Graph.from_adjacency(adj))


def _from_array(arr: np.ndarray, task: Optional[str]) -> Problem:
    if arr.size == 0:
        # same friendly message as an empty list/tuple, instead of a raw
        # ``max() arg is an empty sequence`` out of _edge_list
        raise ValueError(_EMPTY_INPUT_MESSAGE)
    if arr.ndim == 2 and arr.shape[1] == 2:
        return _edge_array(arr)
    if arr.ndim == 1:
        return _bits(arr.tolist(), task)
    raise ValueError(f"array of shape {arr.shape} is not a problem; "
                     f"expected an (m, 2) edge list or a 1-d bit vector")


#: the one empty-input message, shared by the list, tuple and array paths.
_EMPTY_INPUT_MESSAGE = (
    "an empty sequence is ambiguous (empty edge list has no vertex "
    "count, empty bit vector has no bits); pass a Graph, an "
    "adjacency dict, or a cotree instead")


def _from_sequence(seq, task: Optional[str]) -> Problem:
    items = list(seq)
    if not items:
        raise ValueError(_EMPTY_INPUT_MESSAGE)
    if all(_is_int(x) for x in items):
        return _bits(items, task)
    if all(_is_pair(x) for x in items):
        return _edge_array(np.asarray([[int(u), int(v)] for u, v in items],
                                      dtype=np.int64))
    raise ValueError(
        "sequence input must be either an edge list (pairs, e.g. "
        "[(0, 1), (1, 2)]) or, for task='lower_bound', a flat 0/1 bit "
        "vector (e.g. [1, 0, 1])")


def _edge_array(edges: np.ndarray) -> Problem:
    """Vectorized edge-list adapter: validation, vertex count and adjacency
    construction are NumPy operations — no per-edge Python loop."""
    edges = np.asarray(edges, dtype=np.int64)
    if np.any(edges < 0):
        bad = edges[np.any(edges < 0, axis=1)][0]
        raise ValueError(
            f"edge list contains negative vertex id(s) (e.g. "
            f"({int(bad[0])}, {int(bad[1])})); vertices must be numbered "
            f"0, 1, 2, ...")
    n = int(edges.max()) + 1
    return Problem(source_format="edge_list",
                   graph=Graph.from_edge_array(n, edges))


def _bits(values, task: Optional[str]) -> Problem:
    # consult the registry's input_kind instead of hard-coding task names,
    # so out-of-tree bit-vector tasks inherit this adapter ("lower_bound"
    # stays accepted literally: adapters must work standalone, before any
    # task registration has happened)
    from .registry import TASKS
    spec = TASKS.get(task) if task is not None else None
    takes_bits = (spec.input_kind == "bits" if spec is not None
                  else task == "lower_bound")
    if not takes_bits:
        raise ValueError(
            "a flat integer sequence is only accepted as a 0/1 bit vector "
            "for bit-vector tasks such as task='lower_bound' (the Fig. 2 "
            "reduction); for a graph pass an edge list of pairs like "
            "[(0, 1), (1, 2)], an adjacency dict, or a Graph")
    if not all(int(v) in (0, 1) for v in values):
        raise ValueError(
            "lower-bound bit vectors must contain only 0/1 values")
    return Problem(source_format="bits",
                   instance=or_instance_cotree([int(v) for v in values]))


# --------------------------------------------------------------------------- #
# small predicates
# --------------------------------------------------------------------------- #

def _is_int(x: Any) -> bool:
    return isinstance(x, (int, np.integer)) and not isinstance(x, bool)


def _is_pair(x: Any) -> bool:
    if isinstance(x, (list, tuple, np.ndarray)):
        return len(x) == 2 and all(_is_int(v) for v in x)
    return False


def _iter(x: Any) -> Iterable:
    if isinstance(x, (list, tuple, set, frozenset, np.ndarray)):
        return x
    raise TypeError(f"adjacency values must be sequences, got {type(x)}")
