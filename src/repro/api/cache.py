"""An LRU cache of :class:`~repro.api.Solution` values.

Repeat traffic — the "millions of users" scenario of the ROADMAP — often
re-asks *identical* instances: the same cotree arriving as text, as JSON,
or with its children listed in a different order.  :class:`SolutionCache`
keys solved instances on a **canonical cotree form** (canonicalised, with
children sorted), so all those spellings hit the same entry, together with
the task name and the full option set (two configurations never share an
answer).

Wire a cache through :class:`~repro.api.SolveOptions`::

    cache = SolutionCache(maxsize=4096)
    solve(problem, cache=cache)          # miss: solves, stores
    solve(same_problem, cache=cache)     # hit: no pipeline runs

Hits and misses are reported in ``Solution.provenance["cache"]``.  The
cache lives in the *calling* process: the batch/stream fan-out checks it
before submitting work and stores results as they come back, so worker
processes never carry a copy.

Stored and returned solutions each have their own ``provenance`` dict,
but ``answer``/``cover`` are shared objects — treat them as immutable.

The cache is **thread-safe**: one lock serialises the LRU bookkeeping, so
the server (`repro.server`) can share a single cache between the event
loop and its batch worker threads.  It still must not cross *process*
boundaries — the stream fan-out keeps it parent-side for that reason.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..cograph import BinaryCotree, Cotree, FlatCotree, NotACographError
from ..cograph.flat import canonical_key

__all__ = ["SolutionCache", "canonical_cotree_key"]


def canonical_cotree_key(tree) -> Tuple:
    """A hashable canonical form of a cotree.

    Two cotrees get the same key iff they represent the same labelled
    cograph: the tree is canonicalised (unary nodes spliced, same-label
    children merged — properties (4) and (5)) and every node's children are
    ordered by the minimum vertex id of their subtree, so child order —
    which is meaningless for union/join — never splits the key.  Vertex ids
    *do* matter (covers name vertices).

    The computation is the iterative, array-based kernel of
    :func:`repro.cograph.flat.canonical_key`: no recursion (arbitrarily
    deep cotrees are safe — a depth-5000 caterpillar is a regression test)
    and ``O(n log n)`` array work instead of per-node Python tuples.
    """
    if not isinstance(tree, (Cotree, BinaryCotree, FlatCotree)):
        raise TypeError(f"expected a cotree, got {type(tree).__name__}")
    return canonical_key(tree)


class SolutionCache:
    """A bounded least-recently-used mapping of solved instances.

    Parameters
    ----------
    maxsize:
        entries kept; inserting past it evicts the least recently used
        (``get`` refreshes recency).  Must be positive.

    Attributes
    ----------
    hits, misses:
        lookup counters (``get`` found / did not find the key).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if int(maxsize) < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        # one lock around get/put/LRU bookkeeping: concurrent readers and
        # writers (the server's event loop + worker threads) never see a
        # half-updated recency order or torn counters
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # keying
    # ------------------------------------------------------------------ #

    def key_for(self, problem, task: str, options) -> Optional[Tuple]:
        """The cache key of one adapted problem, or ``None`` if uncacheable.

        Bit-vector (lower-bound) instances key on their bits; everything
        else keys on :func:`canonical_cotree_key` of the instance's cotree.
        A graph input that is not a cograph has no cotree — for an
        MD-capable task those key on the canonical form of the modular
        decomposition tree (prime quotients included, see
        :func:`repro.cograph.flat.canonical_key`); for every other task
        they return ``None`` and bypass the cache (the ``recognition``
        task still answers ``False`` for them).
        """
        if problem.instance is not None:
            problem_key: Tuple = (
                "bits", tuple(int(b) for b in problem.instance.bits))
        else:
            try:
                problem_key = canonical_cotree_key(problem.pipeline_tree())
            except NotACographError:
                from .registry import TASKS
                spec = TASKS.get(task)
                if spec is None or not spec.accepts_prime_modules:
                    return None
                problem_key = canonical_cotree_key(
                    problem.decomposition_tree())
        options_key = tuple(sorted(options.to_dict().items()))
        return (task, problem_key, options_key)

    # ------------------------------------------------------------------ #
    # the mapping
    # ------------------------------------------------------------------ #

    def get(self, key: Tuple):
        """The cached solution for ``key`` (refreshed as most recent), or
        ``None``.  Counts the lookup as a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Tuple, solution) -> None:
        """Store ``solution`` under ``key``, evicting the LRU entry when
        full.  The stored copy is machine-free and cache-free (so it
        pickles without dragging this cache along) and has its own
        ``provenance`` dict, so later mutations of the caller's solution
        never reach future hits."""
        entry = replace(
            solution, machine=None,
            options=solution.options.with_(cache=None),
            provenance=dict(solution.provenance))
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters keep running)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """``{"hits", "misses", "size", "maxsize"}`` as a plain dict."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "size": len(self._entries), "maxsize": self.maxsize}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SolutionCache(size={len(self._entries)}, "
                f"maxsize={self.maxsize}, hits={self.hits}, "
                f"misses={self.misses})")
