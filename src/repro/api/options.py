"""Typed, validated solver configuration.

:class:`SolveOptions` replaces the ``method`` / ``backend`` / ``mode`` /
``num_processors`` string soup that used to be spread across
``minimum_path_cover``, ``minimum_path_cover_parallel`` and ``solve_batch``.
It is a *frozen* dataclass: one immutable value describes a complete solver
configuration, and every incompatible combination is rejected at construction
time — never silently ignored.  The historical bug this fixes:
``minimum_path_cover(tree, method="sequential", backend="fast")`` used to
drop ``backend`` on the floor; now it raises :class:`ValueError`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Tuple, Union

from ..backends import BACKEND_NAMES
from ..pram import AccessMode
from .cache import SolutionCache

__all__ = ["SolveOptions", "METHOD_NAMES"]

#: the two algorithm families behind :func:`repro.api.solve`.
METHOD_NAMES = ("parallel", "sequential")


@dataclass(frozen=True)
class SolveOptions:
    """One immutable, validated solver configuration.

    Attributes
    ----------
    method:
        ``"parallel"`` (the paper's Theorem 5.3 pipeline — the default) or
        ``"sequential"`` (the Lin–Olariu–Pruesse reference algorithm).
    backend:
        execution backend for the parallel method: ``"pram"`` (simulate the
        paper's machine, with accounting and conflict checking), ``"fast"``
        (raw vectorized NumPy) or ``None`` (method default: ``"pram"``).
        Must stay ``None`` for ``method="sequential"``.
    num_processors:
        PRAM processor count override (``backend="pram"`` only); ``None``
        means the paper's ``ceil(n / log2 n)``.
    mode:
        PRAM access mode (``backend="pram"`` only); accepts an
        :class:`~repro.pram.AccessMode` or its string value, normalised to
        the enum.
    work_efficient:
        use the work-efficient primitive variants (``backend="pram"`` only:
        the fast backend always takes its direct vectorized shortcuts).
    validate:
        check every produced cover against the LCA adjacency oracle and the
        analytic path count before returning.
    record_steps:
        keep the per-step PRAM trace (``backend="pram"`` only).
    cache:
        a :class:`~repro.api.SolutionCache` consulted (and filled) by the
        front door — identical instances are answered without re-running
        anything.  Lives in the calling process only: it never crosses a
        process boundary and is excluded from :meth:`to_dict`.
    batch_small:
        batch/stream routing threshold: instances with at most this many
        vertices are diverted from the worker pool into single-core
        vectorized *forest sweeps* (:func:`~repro.api.solve_forest`) by
        :func:`~repro.api.solve_many` / :func:`~repro.api.solve_stream`.
        ``None`` (the default) disables the diversion.  Like ``cache``
        this is a *dispatch* knob, not an engine choice: it never changes
        any answer, is excluded from :meth:`to_dict`, and does not
        perturb cache keys.
    weights:
        per-vertex non-negative integer weights for the weighted DP tasks
        (``max_weight_independent_set`` / ``max_weight_clique``): entry
        ``i`` is vertex ``i``'s weight, so the length must equal the
        instance's vertex count.  Normalised to a tuple of ints; any
        sequence is accepted.  Weights *are* part of the problem, so they
        participate in :meth:`to_dict` (and therefore cache keys).  The
        front door rejects weights passed to a task that ignores them.
    """

    method: str = "parallel"
    backend: Optional[str] = None
    num_processors: Optional[int] = None
    mode: Union[AccessMode, str] = AccessMode.EREW
    work_efficient: bool = True
    validate: bool = False
    record_steps: bool = False
    cache: Optional[SolutionCache] = None
    batch_small: Optional[int] = None
    weights: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.method not in METHOD_NAMES:
            raise ValueError(f"unknown method {self.method!r}; "
                             f"use one of {METHOD_NAMES}")
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"use one of {tuple(BACKEND_NAMES)} or None")
        # normalise mode to the enum (raises ValueError on a bad string)
        object.__setattr__(self, "mode", AccessMode(self.mode))
        if self.cache is not None and not isinstance(self.cache,
                                                     SolutionCache):
            raise TypeError(f"cache must be a SolutionCache or None, "
                            f"got {type(self.cache).__name__}")
        if self.batch_small is not None:
            threshold = int(self.batch_small)
            if threshold < 1:
                raise ValueError(f"batch_small must be >= 1 or None, "
                                 f"got {self.batch_small!r}")
            object.__setattr__(self, "batch_small", threshold)
        if self.weights is not None:
            try:
                normalised = tuple(int(w) for w in self.weights)
            except (TypeError, ValueError):
                raise ValueError(
                    f"weights must be a sequence of integers or None, "
                    f"got {self.weights!r}") from None
            if any(w < 0 for w in normalised):
                bad = next(w for w in normalised if w < 0)
                raise ValueError(f"weights must be non-negative (the "
                                 f"weighted DP specs require it), got {bad}")
            object.__setattr__(self, "weights", normalised)

        if self.method == "sequential":
            bad = self._non_default_parallel_knobs()
            if self.backend is not None:
                bad.insert(0, f"backend={self.backend!r}")
            if bad:
                raise ValueError(
                    f"option(s) {', '.join(bad)} only apply to "
                    f"method='parallel'; they would be ignored by the "
                    f"sequential algorithm — remove them or switch methods")
        elif self.backend is not None and self.backend != "pram":
            bad = self._non_default_parallel_knobs()
            if bad:
                raise ValueError(
                    f"PRAM-only knob(s) {', '.join(bad)} have no effect "
                    f"with backend={self.backend!r}; they configure the "
                    f"simulated run (backend='pram')")

    # ------------------------------------------------------------------ #

    def _pram_only_knobs(self) -> list:
        bad = []
        if self.num_processors is not None:
            bad.append(f"num_processors={self.num_processors!r}")
        if self.mode is not AccessMode.EREW:
            bad.append(f"mode={self.mode.value!r}")
        if self.record_steps:
            bad.append("record_steps=True")
        return bad

    def _non_default_parallel_knobs(self) -> list:
        bad = self._pram_only_knobs()
        if not self.work_efficient:
            bad.append("work_efficient=False")
        return bad

    # ------------------------------------------------------------------ #

    @property
    def resolved_backend(self) -> str:
        """The backend name a solve will actually run on.

        ``"sequential"`` for the sequential method, else the explicit
        backend or the parallel default ``"pram"``.
        """
        if self.method == "sequential":
            return "sequential"
        return self.backend if self.backend is not None else "pram"

    def solver_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the parallel engine
        (:func:`repro.core.minimum_path_cover_parallel`)."""
        if self.method != "parallel":
            raise ValueError("solver_kwargs() is only meaningful for "
                             "method='parallel'")
        return {
            "backend": self.resolved_backend,
            "num_processors": self.num_processors,
            "mode": self.mode,
            "work_efficient": self.work_efficient,
            "validate": self.validate,
            "record_steps": self.record_steps,
        }

    def with_(self, **changes: Any) -> "SolveOptions":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dict (``mode`` as its string value; the
        dispatch-only knobs — the live ``cache`` object and the
        ``batch_small`` routing threshold — are excluded: neither changes
        what a solve computes)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)
               if f.name not in ("cache", "batch_small")}
        out["mode"] = self.mode.value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolveOptions":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SolveOptions field(s): "
                             f"{sorted(unknown)}")
        return cls(**data)
