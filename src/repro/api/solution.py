"""The unified result type of :func:`repro.api.solve`.

One :class:`Solution` replaces the three result shapes the library used to
return (:class:`~repro.cograph.PathCover` from ``minimum_path_cover``,
``ParallelPathCoverResult`` from the parallel engine, ``BatchResult`` from
``solve_batch``): whatever the task, a solve hands back the same record —
the task-specific ``answer``, the cover when one was built, the PRAM cost
report when the run accounted, per-stage wall-clock timings, the backend
name, and a ``provenance`` dict tying the result to its input.

``to_json_dict`` / ``from_json_dict`` round-trip everything except the live
PRAM machine, and :func:`repro.io.save_json` / :func:`repro.io.load_json`
understand the format.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from .._version import __version__ as _version
from ..cograph import PathCover
from ..io import cover_from_json, cover_to_json
from ..pram import CostReport, PRAM
from .options import SolveOptions

__all__ = ["Solution"]


@dataclass
class Solution:
    """Everything one solve produced.

    Attributes
    ----------
    task:
        the task name (``"path_cover"``, ``"hamiltonian_cycle"``, ...).
    answer:
        the task's primary result: a :class:`~repro.cograph.PathCover` for
        ``path_cover``; an ``int`` for ``path_cover_size``; a vertex list or
        ``None`` for the Hamiltonian witnesses; a ``bool`` for
        ``recognition``; a dict for ``lower_bound``.
    backend:
        name of the execution path that ran (``"pram"``, ``"fast"``,
        ``"sequential"``).
    options:
        the validated :class:`~repro.api.SolveOptions` of the run.
    cover:
        the minimum path cover, whenever the task built one.
    num_paths:
        size of the minimum path cover, whenever it is known.
    report:
        the PRAM cost report (``None`` unless the run accounted).
    stage_seconds:
        per-stage wall-clock of the pipeline (empty when no pipeline ran).
    provenance:
        where the instance came from and per-task extras (source format,
        vertex count, ``p_root``, exchange count, library version, batch
        index, and — when a :class:`~repro.api.SolutionCache` was
        consulted — ``"cache": "hit"``/``"miss"``).
    machine:
        the live simulated machine for re-scaling experiments; in-process
        PRAM runs only — never serialised, dropped by the batch fan-out.
    """

    task: str
    answer: Any
    backend: str
    options: SolveOptions
    cover: Optional[PathCover] = None
    num_paths: Optional[int] = None
    report: Optional[CostReport] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    machine: Optional[PRAM] = None

    def __post_init__(self) -> None:
        self.provenance.setdefault("repro_version", _version)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dict (drops the live ``machine``)."""
        return {
            "type": "solution",
            "task": self.task,
            "answer": _encode_answer(self.answer),
            "backend": self.backend,
            "options": self.options.to_dict(),
            "cover": cover_to_json(self.cover) if self.cover is not None
                     else None,
            "num_paths": self.num_paths,
            "report": self.report.to_json_dict() if self.report is not None
                      else None,
            "stage_seconds": dict(self.stage_seconds),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "Solution":
        """Inverse of :meth:`to_json_dict`."""
        if data.get("type") != "solution":
            raise ValueError("not a serialised solution")
        report = data.get("report")
        return cls(
            task=data["task"],
            answer=_decode_answer(data["answer"]),
            backend=data["backend"],
            options=SolveOptions.from_dict(data["options"]),
            cover=(cover_from_json(data["cover"])
                   if data.get("cover") is not None else None),
            num_paths=data.get("num_paths"),
            report=(CostReport.from_json_dict(report)
                    if report is not None else None),
            stage_seconds=dict(data.get("stage_seconds", {})),
            provenance=dict(data.get("provenance", {})),
        )

    def without_machine(self) -> "Solution":
        """A copy safe to pickle across process boundaries."""
        if self.machine is None:
            return self
        return replace(self, machine=None)

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #

    @property
    def ok(self) -> bool:
        """True unless the task answered in the negative (``None`` witness
        or ``False`` decision)."""
        return self.answer is not None and self.answer is not False

    @property
    def cache_status(self) -> Optional[str]:
        """``"hit"`` / ``"miss"`` when a solution cache was consulted,
        ``None`` when no cache was configured."""
        return self.provenance.get("cache")

    def summary(self) -> str:
        """One human-readable line about this solution."""
        bits = [f"task={self.task}", f"backend={self.backend}"]
        n = self.provenance.get("num_vertices")
        if n is not None:
            bits.append(f"n={n}")
        if self.num_paths is not None:
            bits.append(f"num_paths={self.num_paths}")
        if isinstance(self.answer, bool) or self.answer is None:
            bits.append(f"answer={self.answer!r}")
        if self.report is not None:
            bits.append(f"rounds={self.report.rounds}")
        if self.cache_status is not None:
            bits.append(f"cache={self.cache_status}")
        return "Solution(" + ", ".join(bits) + ")"


def _encode_answer(answer: Any) -> Any:
    if isinstance(answer, PathCover):
        return cover_to_json(answer)
    return answer


def _decode_answer(answer: Any) -> Any:
    if isinstance(answer, dict) and answer.get("type") == "path_cover":
        return cover_from_json(answer)
    return answer
