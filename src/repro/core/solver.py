"""The end-to-end time- and work-optimal path-cover solver (Theorem 5.3).

:func:`minimum_path_cover_parallel` chains the eight steps of Section 5 on a
single PRAM machine and returns both the cover and the machine's cost report,
so callers (examples, benchmarks, tests) can inspect the number of synchronous
rounds, the Brent-scheduled time for ``n / log n`` processors, and the total
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    Cotree,
    PathCover,
)
from ..pram import PRAM, AccessMode, CostReport, optimal_processor_count
from .binarize import binarize_parallel
from .brackets import generate_brackets
from .extract import extract_paths
from .leftist import leftist_reorder
from .path_trees import build_pseudo_forest, legalize_forest, remove_dummies
from .reduce import reduce_cotree

__all__ = ["ParallelPathCoverResult", "minimum_path_cover_parallel",
           "PathCoverSolver"]


@dataclass
class ParallelPathCoverResult:
    """Everything the parallel solver produces.

    Attributes
    ----------
    cover:
        the minimum path cover.
    num_paths:
        ``len(cover.paths)`` — equals ``p(root)``.
    p_root:
        the analytic count from the Lemma 2.4 recurrence (computed by the
        same run; always equals ``num_paths``).
    report:
        the PRAM cost report of the whole pipeline.
    machine:
        the machine itself (for re-scaling to other processor counts).
    exchanges:
        number of illegal-insert / legal-dummy exchanges Step 6 performed.
    """

    cover: PathCover
    num_paths: int
    p_root: int
    report: CostReport
    machine: PRAM
    exchanges: int


def minimum_path_cover_parallel(
    tree: Union[Cotree, BinaryCotree],
    *,
    machine: Optional[PRAM] = None,
    num_processors: Optional[int] = None,
    mode: Union[AccessMode, str] = AccessMode.EREW,
    work_efficient: bool = True,
    validate: bool = False,
    record_steps: bool = False,
) -> ParallelPathCoverResult:
    """Find and report a minimum path cover of a cograph, in parallel.

    Parameters
    ----------
    tree:
        the cograph's cotree (general or already binarized).  General cotrees
        must be canonical (every internal node with >= 2 children).
    machine:
        an existing :class:`~repro.pram.PRAM` to account on.  When omitted, a
        fresh EREW machine with ``ceil(n / log2 n)`` processors (the paper's
        Theorem 5.3 configuration) is created; pass ``num_processors`` and/or
        ``mode`` to override.
    work_efficient:
        use the work-efficient variants of the primitives (list ranking by
        contraction rather than Wyllie pointer jumping).
    validate:
        when True the produced cover is checked against the LCA adjacency
        oracle and against the analytic path count before returning
        (raises on failure).

    Returns
    -------
    ParallelPathCoverResult
    """
    if isinstance(tree, BinaryCotree):
        general: Optional[Cotree] = None
        binary_input: Optional[BinaryCotree] = tree
        n = tree.num_vertices
    else:
        general = tree
        binary_input = None
        n = tree.num_vertices

    if machine is None:
        p = num_processors if num_processors is not None \
            else optimal_processor_count(max(n, 2))
        machine = PRAM(p, mode, record_steps=record_steps)

    # trivial instances
    if n == 1:
        vertex = int((general or binary_input.to_cotree()).vertices[0])
        cover = PathCover([[vertex]])
        return ParallelPathCoverResult(cover=cover, num_paths=1, p_root=1,
                                       report=machine.report(),
                                       machine=machine, exchanges=0)

    # Step 1: binarize
    if binary_input is not None:
        binary = binary_input
    else:
        binary = binarize_parallel(machine, general, label="step1.binarize")

    # Step 2: leaf counts + leftist reordering
    leftist = leftist_reorder(machine, binary, work_efficient=work_efficient,
                              label="step2.leftist")

    # Step 3: p(u) + reduction
    reduced = reduce_cotree(machine, leftist, work_efficient=work_efficient,
                            label="step3.reduce")

    # Step 4: bracket sequence
    seq = generate_brackets(machine, reduced, label="step4.brackets")

    # Step 5: matching -> pseudo path trees
    forest = build_pseudo_forest(machine, seq, label="step5.pseudo")

    # Step 6: legalisation
    forest, exchanges = legalize_forest(machine, forest, reduced,
                                        work_efficient=work_efficient,
                                        label="step6.legalize")

    # Step 7: dummy removal
    forest = remove_dummies(machine, forest, label="step7.compress")

    # Step 8: extraction
    cover = extract_paths(machine, forest, work_efficient=work_efficient,
                          label="step8.extract")

    p_root = reduced.minimum_path_count()
    result = ParallelPathCoverResult(cover=cover, num_paths=cover.num_paths,
                                     p_root=p_root, report=machine.report(),
                                     machine=machine, exchanges=exchanges)

    if validate:
        oracle = CographAdjacencyOracle(leftist.tree)
        cover.validate(oracle, expected_num_vertices=n,
                       expected_num_paths=p_root)
    return result


class PathCoverSolver:
    """Object-oriented facade over :func:`minimum_path_cover_parallel`.

    Useful when solving many instances with the same machine configuration::

        solver = PathCoverSolver(mode="EREW", work_efficient=True)
        result = solver.solve(cotree)
    """

    def __init__(self, *, num_processors: Optional[int] = None,
                 mode: Union[AccessMode, str] = AccessMode.EREW,
                 work_efficient: bool = True, validate: bool = False,
                 record_steps: bool = False) -> None:
        self.num_processors = num_processors
        self.mode = mode
        self.work_efficient = work_efficient
        self.validate = validate
        self.record_steps = record_steps

    def solve(self, tree: Union[Cotree, BinaryCotree],
              machine: Optional[PRAM] = None) -> ParallelPathCoverResult:
        """Solve one instance; a fresh machine is created unless one is given."""
        return minimum_path_cover_parallel(
            tree, machine=machine, num_processors=self.num_processors,
            mode=self.mode, work_efficient=self.work_efficient,
            validate=self.validate, record_steps=self.record_steps)
