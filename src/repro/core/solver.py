"""The end-to-end time- and work-optimal path-cover solver (Theorem 5.3).

:func:`minimum_path_cover_parallel` runs the eight stages of Section 5 — now
organised as a named-stage :class:`~repro.core.pipeline.Pipeline` — on a
pluggable execution backend and returns the cover together with whatever
accounting the backend produced:

* ``backend="pram"`` (the default) simulates the paper's machine: the result
  carries the PRAM cost report (synchronous rounds, Brent-scheduled time for
  ``n / log n`` processors, total work) and the machine itself;
* ``backend="fast"`` runs the same pipeline as raw vectorized NumPy — same
  cover, no cost model, one to two orders of magnitude faster wall-clock
  (``benchmarks/bench_backends.py`` quantifies the gap).

Per-stage wall-clock timings are collected on every run and exposed as
``result.stage_seconds``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..backends import ExecutionContext, PRAMBackend, resolve_context
from ..cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    Cotree,
    FlatCotree,
    PathCover,
)
from ..pram import PRAM, AccessMode, CostReport, optimal_processor_count
from .pipeline import Pipeline

__all__ = ["ParallelPathCoverResult", "minimum_path_cover_parallel",
           "PathCoverSolver"]


@dataclass
class ParallelPathCoverResult:
    """Everything the parallel solver produces.

    Attributes
    ----------
    cover:
        the minimum path cover.
    num_paths:
        ``len(cover.paths)`` — equals ``p(root)``.
    p_root:
        the analytic count from the Lemma 2.4 recurrence (computed by the
        same run; always equals ``num_paths``).
    report:
        the PRAM cost report of the whole pipeline (``None`` under the fast
        backend, which does not account).
    machine:
        the machine itself, for re-scaling to other processor counts
        (``None`` under the fast backend).
    exchanges:
        number of illegal-insert / legal-dummy exchanges Step 6 performed.
    backend:
        name of the execution backend the run used (``"pram"`` / ``"fast"``).
    stage_seconds:
        wall-clock seconds per executed pipeline stage, in order.
    """

    cover: PathCover
    num_paths: int
    p_root: int
    report: Optional[CostReport]
    machine: Optional[PRAM]
    exchanges: int
    backend: str = "pram"
    stage_seconds: Dict[str, float] = field(default_factory=dict)


def _build_context(n: int, machine: Optional[PRAM],
                   backend: Union[None, str, ExecutionContext],
                   num_processors: Optional[int],
                   mode: Union[AccessMode, str],
                   record_steps: bool) -> ExecutionContext:
    """Resolve the solver's backend knobs into one execution context."""
    if machine is not None:
        if backend not in (None, "pram"):
            raise ValueError("pass either machine=... or backend=..., "
                             "not both")
        return PRAMBackend(machine)
    if backend in (None, "pram"):
        p = num_processors if num_processors is not None \
            else optimal_processor_count(max(n, 2))
        return PRAMBackend(PRAM(p, mode, record_steps=record_steps))
    # the machine-configuration knobs only make sense when this call builds
    # the machine; reject them rather than silently ignoring them
    machine_knobs = []
    if num_processors is not None:
        machine_knobs.append("num_processors")
    if record_steps:
        machine_knobs.append("record_steps")
    if AccessMode(mode) is not AccessMode.EREW:
        machine_knobs.append("mode")
    if machine_knobs:
        raise ValueError(
            f"machine knob(s) {', '.join(machine_knobs)} only apply when a "
            f"PRAM machine is created (backend='pram'); they have no effect "
            f"with backend={backend!r}")
    return resolve_context(backend)


def minimum_path_cover_parallel(
    tree: Union[Cotree, FlatCotree, BinaryCotree],
    *,
    machine: Optional[PRAM] = None,
    backend: Union[None, str, ExecutionContext] = None,
    num_processors: Optional[int] = None,
    mode: Union[AccessMode, str] = AccessMode.EREW,
    work_efficient: bool = True,
    validate: bool = False,
    record_steps: bool = False,
) -> ParallelPathCoverResult:
    """Find and report a minimum path cover of a cograph, in parallel.

    Parameters
    ----------
    tree:
        the cograph's cotree (general — :class:`Cotree` or
        :class:`FlatCotree` — or already binarized).  General cotrees must
        be canonical (every internal node with >= 2 children).
    machine:
        an existing :class:`~repro.pram.PRAM` to account on.  When omitted
        (and ``backend`` selects the PRAM path), a fresh EREW machine with
        ``ceil(n / log2 n)`` processors (the paper's Theorem 5.3
        configuration) is created; pass ``num_processors`` and/or ``mode``
        to override.
    backend:
        ``"pram"`` (default — simulate, account, conflict-check), ``"fast"``
        (raw vectorized NumPy, no accounting), or an
        :class:`~repro.backends.ExecutionContext` instance.
    work_efficient:
        use the work-efficient variants of the primitives (list ranking by
        contraction rather than Wyllie pointer jumping).
    validate:
        when True the produced cover is checked against the LCA adjacency
        oracle and against the analytic path count before returning
        (raises on failure).

    Returns
    -------
    ParallelPathCoverResult
    """
    n = tree.num_vertices
    ctx = _build_context(n, machine, backend, num_processors, mode,
                         record_steps)

    # trivial instances
    if n == 1:
        if isinstance(tree, BinaryCotree):
            vertex = int(tree.to_cotree().vertices[0])
        else:
            vertex = int(tree.vertices[0])
        cover = PathCover([[vertex]])
        return ParallelPathCoverResult(
            cover=cover, num_paths=1, p_root=1, report=ctx.report(),
            machine=ctx.machine, exchanges=0, backend=ctx.name)

    run = Pipeline.default().run(tree, ctx, work_efficient=work_efficient)
    state = run.state
    cover = state.cover
    p_root = state.reduced.minimum_path_count()

    result = ParallelPathCoverResult(
        cover=cover, num_paths=cover.num_paths, p_root=p_root,
        report=ctx.report(), machine=ctx.machine, exchanges=state.exchanges,
        backend=ctx.name, stage_seconds=run.stage_seconds)

    if validate:
        oracle = CographAdjacencyOracle(state.leftist.tree)
        cover.validate(oracle, expected_num_vertices=n,
                       expected_num_paths=p_root)
    return result


class PathCoverSolver:
    """Object-oriented facade over :func:`minimum_path_cover_parallel`.

    Useful when solving many instances with the same configuration::

        solver = PathCoverSolver(mode="EREW", work_efficient=True)
        result = solver.solve(cotree)

        fast = PathCoverSolver(backend="fast")      # throughput path
        result = fast.solve(cotree)
    """

    def __init__(self, *, num_processors: Optional[int] = None,
                 mode: Union[AccessMode, str] = AccessMode.EREW,
                 backend: Union[None, str] = None,
                 work_efficient: bool = True, validate: bool = False,
                 record_steps: bool = False) -> None:
        self.num_processors = num_processors
        self.mode = mode
        self.backend = backend
        self.work_efficient = work_efficient
        self.validate = validate
        self.record_steps = record_steps

    def solve(self, tree: Union[Cotree, FlatCotree, BinaryCotree],
              machine: Optional[PRAM] = None) -> ParallelPathCoverResult:
        """Solve one instance; a fresh context is created unless a machine
        is given."""
        return minimum_path_cover_parallel(
            tree, machine=machine, backend=self.backend,
            num_processors=self.num_processors,
            mode=self.mode, work_efficient=self.work_efficient,
            validate=self.validate, record_steps=self.record_steps)
