"""Step 2 — leaf counts ``L(u)`` and the leftist reordering (``Tb`` → ``Tbl``).

The paper requires that at every internal node the left subtree contains at
least as many leaves as the right subtree (``L(v) >= L(w)``); this is what
makes the 1-node recurrence ``p(u) = max(p(v) - L(w), 1)`` produce the
*minimum* number of paths (see the A1 ablation benchmark for what goes wrong
without it).

``L(u)`` is computed with the Euler-tour technique (Lemma 5.2) and the swap
itself is a single parallel step.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..backends import resolve_context
from ..cograph import BinaryCotree
from ..primitives import TreeNumbers, compute_tree_numbers

__all__ = ["LeftistCotree", "leftist_reorder"]


@dataclass
class LeftistCotree:
    """The leftist binarized cotree together with its tree numbering.

    Attributes
    ----------
    tree:
        the reordered :class:`~repro.cograph.BinaryCotree` (``Tbl(G)``).
    numbers:
        :class:`~repro.primitives.TreeNumbers` of ``tree`` (recomputed after
        the swap, so inorder/preorder reflect the leftist child order).
    leaf_count:
        alias for ``numbers.subtree_leaves`` — the paper's ``L(u)``.
    """

    tree: BinaryCotree
    numbers: TreeNumbers

    @property
    def leaf_count(self) -> np.ndarray:
        return self.numbers.subtree_leaves


def leftist_reorder(ctx, tree: BinaryCotree, *,
                    work_efficient: bool = True,
                    label: str = "leftist") -> LeftistCotree:
    """Compute ``L(u)`` and swap children so every node is leftist.

    Returns a :class:`LeftistCotree`; the input tree is not modified.
    """
    machine = resolve_context(ctx)

    # a BinaryForest carries all its roots; their tours are chained so the
    # numbering stays global but per-tree consistent
    forest_roots = getattr(tree, "roots", None)
    roots = [int(r) for r in forest_roots] if forest_roots is not None \
        else [tree.root]

    numbers = compute_tree_numbers(machine, tree.left, tree.right, tree.parent,
                                   roots, work_efficient=work_efficient,
                                   label=f"{label}.numbers")
    L = numbers.subtree_leaves
    internal = tree.internal_nodes
    out = tree.copy()
    kernels = getattr(machine, "kernels", None)
    if kernels is not None:
        # compiled tier: detect-and-swap in one in-place pass over the
        # internal nodes (out.copy() above owns its arrays)
        with machine.step(active=len(internal), label=f"{label}:swap"):
            kernels.leftist_swap(out.left, out.right, L, internal)
    else:
        # nodes violating the leftist condition
        viol = internal[L[tree.left[internal]] < L[tree.right[internal]]]
        if len(viol):
            left_arr = machine.array(out.left, name=f"{label}.left")
            right_arr = machine.array(out.right, name=f"{label}.right")
            with machine.step(active=len(viol), label=f"{label}:swap"):
                l = left_arr.gather(viol)
                r = right_arr.gather(viol)
                left_arr.scatter(viol, r)
                right_arr.scatter(viol, l)
            out.left = left_arr.data
            out.right = right_arr.data

    # renumber after the swap (inorder changes; L(u) and depth do not, so
    # the depths are handed back in)
    numbers2 = compute_tree_numbers(machine, out.left, out.right, out.parent,
                                    roots, work_efficient=work_efficient,
                                    known_depth=numbers.depth,
                                    label=f"{label}.renumber")
    return LeftistCotree(tree=out, numbers=numbers2)
