"""Hamiltonian path and Hamiltonian cycle queries on cographs.

The paper's introduction notes that the path-cover machinery answers both
questions with the same optimal bounds:

* a cograph has a **Hamiltonian path** iff its minimum path cover has exactly
  one path (``p(root) = 1``);
* a cograph has a **Hamiltonian cycle** iff, in addition, the vertices that
  close the cycle are available — for cographs the classic characterisation
  (Lin–Olariu–Pruesse / Adhar–Peng) is that the root must be a 1-node whose
  join can absorb one extra "bridge": with the leftist children ``v`` (left)
  and ``w`` (right), a Hamiltonian cycle exists iff ``n >= 3`` and
  ``p(v) <= L(w)`` — i.e. the join is rich enough to need no leftover path
  end (equivalently ``max(p(v) − L(w), 1)`` is reached at the cap **and**
  there is at least one spare vertex of ``G(w)`` beyond the ``p(v) − 1``
  bridges, which is exactly ``L(w) >= p(v)``).

Both deciders come in two flavours: a count-only one (cheap, used by the
benchmarks) and one that also returns the witness path / cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..cograph import (
    BinaryCotree,
    CographAdjacencyOracle,
    Cotree,
    PathCover,
    binarize_cotree,
    make_leftist,
    minimum_path_cover_size,
    path_cover_sizes_per_node,
)
from ..cograph.cotree import JOIN
from ..pram import PRAM
from .solver import minimum_path_cover_parallel

__all__ = ["has_hamiltonian_path", "has_hamiltonian_cycle",
           "hamiltonian_path", "hamiltonian_cycle", "HamiltonicityReport",
           "hamiltonicity_report"]


@dataclass
class HamiltonicityReport:
    """Summary of the Hamiltonicity structure of a cograph."""

    num_vertices: int
    min_path_cover: int
    has_path: bool
    has_cycle: bool


def _leftist_binary(tree: Union[Cotree, BinaryCotree]) -> BinaryCotree:
    if isinstance(tree, BinaryCotree):
        return make_leftist(tree)
    return make_leftist(binarize_cotree(tree))


def has_hamiltonian_path(tree: Union[Cotree, BinaryCotree]) -> bool:
    """True iff the cograph admits a Hamiltonian path (``p(root) = 1``)."""
    binary = _leftist_binary(tree)
    return int(path_cover_sizes_per_node(binary)[binary.root]) == 1


def has_hamiltonian_cycle(tree: Union[Cotree, BinaryCotree]) -> bool:
    """True iff the cograph admits a Hamiltonian cycle.

    Characterisation on the leftist binarized cotree: the root must be a
    1-node with ``p(v) <= L(w)`` (left child ``v``, right child ``w``) and the
    graph must have at least three vertices.
    """
    binary = _leftist_binary(tree)
    n = binary.num_vertices
    if n < 3:
        return False
    root = binary.root
    if binary.kind[root] != JOIN:
        return False
    p = path_cover_sizes_per_node(binary)
    L = binary.subtree_leaf_counts()
    return bool(p[binary.left[root]] <= L[binary.right[root]])


def _default_cover_solver(machine: Optional[PRAM], backend):
    """The cover solver the witness constructions run on: the parallel
    pipeline, bound to the caller's machine/backend choice."""
    def solver(tree):
        return minimum_path_cover_parallel(tree, machine=machine,
                                           backend=backend).cover
    return solver


def hamiltonian_path(tree: Union[Cotree, BinaryCotree], *,
                     machine: Optional[PRAM] = None,
                     backend=None,
                     cover_solver=None) -> Optional[List[int]]:
    """Return a Hamiltonian path (as a vertex list) or ``None``.

    By default uses the parallel solver, so the witness construction
    inherits the optimal bounds of Theorem 5.3; pass ``backend="fast"`` for
    the vectorized path, or ``cover_solver`` (any ``tree -> PathCover``
    callable, e.g. the sequential baseline) to swap the engine entirely.
    """
    if cover_solver is None:
        cover_solver = _default_cover_solver(machine, backend)
    cover = cover_solver(tree)
    if cover.num_paths != 1:
        return None
    return list(cover.paths[0])


def hamiltonian_cycle(tree: Union[Cotree, BinaryCotree], *,
                      machine: Optional[PRAM] = None,
                      backend=None,
                      cover_solver=None) -> Optional[List[int]]:
    """Return a Hamiltonian cycle (as a vertex list whose last vertex is
    adjacent to its first) or ``None``.

    Construction (the Case-2 argument of Section 2, closed into a cycle): at
    the root join ``A ∨ B`` (``A = G(v)`` the leftist side, ``B = G(w)``) a
    minimum path cover ``P_1 .. P_k`` of ``A`` has ``k = p(v) <= |B|`` paths;
    ``k`` vertices of ``B`` close the paths into a ring
    ``P_1 b_1 P_2 b_2 ... P_k b_k`` and every remaining ``B`` vertex is
    inserted between two consecutive ``A`` vertices (there are
    ``|A| - k >= |B| - k`` such slots because the tree is leftist).
    """
    binary = _leftist_binary(tree)
    if not has_hamiltonian_cycle(binary):
        return None
    root = binary.root
    a_root = int(binary.left[root])
    b_leaves = _leaf_vertices(binary, int(binary.right[root]))

    # minimum path cover of A = G(v), via the configured solver on the subtree
    if cover_solver is None:
        cover_solver = _default_cover_solver(machine, backend)
    sub, back = _subtree_binary(binary, a_root)
    sub_cover = cover_solver(sub)
    a_paths = [[back[v] for v in p] for p in sub_cover.paths]
    k = len(a_paths)
    if k > len(b_leaves):  # pragma: no cover - excluded by has_hamiltonian_cycle
        return None

    ring_b, spare_b = b_leaves[:k], b_leaves[k:]
    cycle: List[int] = []
    for path, b in zip(a_paths, ring_b):
        cycle.extend(path)
        cycle.append(b)

    if spare_b:
        # insert the spare B vertices into A-A adjacencies of the ring
        out: List[int] = []
        spare = list(spare_b)
        a_vertices = set(v for p in a_paths for v in p)
        for i, v in enumerate(cycle):
            out.append(v)
            nxt = cycle[(i + 1) % len(cycle)]
            if spare and v in a_vertices and nxt in a_vertices:
                out.append(spare.pop())
        if spare:  # pragma: no cover - leftist condition guarantees room
            return None
        cycle = out
    return cycle


def hamiltonicity_report(tree: Union[Cotree, BinaryCotree]) -> HamiltonicityReport:
    """Convenience bundle of the Hamiltonicity facts of a cograph."""
    binary = _leftist_binary(tree)
    p = int(path_cover_sizes_per_node(binary)[binary.root])
    return HamiltonicityReport(
        num_vertices=binary.num_vertices,
        min_path_cover=p,
        has_path=(p == 1),
        has_cycle=has_hamiltonian_cycle(binary),
    )


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #

def _leaf_vertices(binary: BinaryCotree, node: int) -> List[int]:
    out: List[int] = []
    stack = [node]
    while stack:
        u = stack.pop()
        if binary.kind[u] == 0:  # LEAF
            out.append(int(binary.leaf_vertex[u]))
        else:
            stack.append(int(binary.left[u]))
            stack.append(int(binary.right[u]))
    return out


def _subtree_binary(binary: BinaryCotree, node: int):
    """The binary cotree of the subgraph ``G(node)``, with nodes re-indexed
    and vertices renumbered ``0..k-1``; returns ``(subtree, back)`` where
    ``back[new_vertex] = original_vertex``."""
    # collect the subtree nodes
    order: List[int] = []
    stack = [int(node)]
    while stack:
        u = stack.pop()
        order.append(u)
        if binary.kind[u] != 0:  # not LEAF
            stack.append(int(binary.left[u]))
            stack.append(int(binary.right[u]))
    remap = {old: new for new, old in enumerate(order)}
    m = len(order)
    kind = np.array([binary.kind[u] for u in order], dtype=np.int8)
    left = np.array([remap.get(int(binary.left[u]), -1) if binary.left[u] != -1
                     else -1 for u in order], dtype=np.int64)
    right = np.array([remap.get(int(binary.right[u]), -1) if binary.right[u] != -1
                      else -1 for u in order], dtype=np.int64)
    original_vertices = [int(binary.leaf_vertex[u]) for u in order
                         if binary.kind[u] == 0]
    vertex_remap = {v: i for i, v in enumerate(original_vertices)}
    back = {i: v for v, i in vertex_remap.items()}
    leaf_vertex = np.array([vertex_remap.get(int(binary.leaf_vertex[u]), -1)
                            for u in order], dtype=np.int64)
    parent = np.full(m, -1, dtype=np.int64)
    for u in range(m):
        if left[u] != -1:
            parent[left[u]] = u
            parent[right[u]] = u
    sub = BinaryCotree(kind, left, right, parent, leaf_vertex, remap[int(node)])
    return sub, back
