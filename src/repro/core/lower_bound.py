"""Section 2 — the Ω(log n) CREW time lower bound, as executable code.

The paper reduces the OR problem of Cook, Dwork and Reischuk (Lemma 2.1) to
path-cover counting: from bits ``b_1 .. b_n`` it builds the two-level cotree
of Fig. 2 (a 0-root ``R`` with a 1-child ``u``; bit ``i``'s leaf hangs off
``u`` when ``b_i = 1`` and off ``R`` otherwise, plus the padding leaves ``x``
under ``R`` and ``y, z`` under ``u``).  Then

* ``OR(b) = 1``  iff  the path containing ``y`` has more than two vertices
* ``OR(b) = 1``  iff  the minimum path cover has fewer than ``n + 2`` paths,

so any algorithm that counts (or reports) a minimum path cover in ``o(log n)``
CREW time would compute OR in ``o(log n)`` time, contradicting Lemma 2.1
(Theorem 2.2).

This module provides the constructions and the two decision functions, plus a
measured counterpart to the lower bound: the number of CREW rounds a balanced
fan-in OR takes on the simulator (the optimal strategy), which the E1
benchmark reports as the matching upper-bound curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..backends import resolve_context
from ..cograph import Cotree, PathCover
from ..cograph.cotree import JOIN, LEAF, UNION
from ..pram import AccessMode
from ..primitives import total_sum

__all__ = [
    "or_instance_cotree",
    "or_from_path_count",
    "or_from_cover",
    "expected_path_count",
    "parallel_or_rounds",
    "LowerBoundInstance",
]


@dataclass
class LowerBoundInstance:
    """The Fig. 2 reduction for one bit-vector.

    Vertex layout: bit ``i``'s leaf is vertex ``i`` (``0 <= i < n``); the
    padding vertices are ``x = n``, ``y = n + 1`` and ``z = n + 2``.
    """

    bits: np.ndarray
    cotree: Cotree

    @property
    def n(self) -> int:
        return len(self.bits)

    @property
    def x(self) -> int:
        return self.n

    @property
    def y(self) -> int:
        return self.n + 1

    @property
    def z(self) -> int:
        return self.n + 2


def or_instance_cotree(bits: Sequence[int]) -> LowerBoundInstance:
    """Build the Fig. 2 cotree for a bit vector (parent-pointer style).

    The construction is O(1) depth with ``n`` processors: every leaf decides
    its parent independently of all others.
    """
    bits = np.asarray(list(bits), dtype=np.int64)
    if len(bits) == 0:
        raise ValueError("need at least one bit")
    if not np.all((bits == 0) | (bits == 1)):
        raise ValueError("bits must be 0/1")
    n = len(bits)
    # nodes: 0 = R (0-node), 1 = u (1-node), then n bit leaves, then x, y, z
    num_nodes = 2 + n + 3
    kind = np.full(num_nodes, LEAF, dtype=np.int64)
    kind[0] = UNION
    kind[1] = JOIN
    parent = np.full(num_nodes, -1, dtype=np.int64)
    parent[1] = 0
    leaf_nodes = 2 + np.arange(n)
    parent[leaf_nodes] = np.where(bits == 1, 1, 0)
    x_node, y_node, z_node = 2 + n, 2 + n + 1, 2 + n + 2
    parent[x_node] = 0
    parent[y_node] = 1
    parent[z_node] = 1
    leaf_vertex = np.full(num_nodes, -1, dtype=np.int64)
    leaf_vertex[leaf_nodes] = np.arange(n)
    leaf_vertex[x_node] = n
    leaf_vertex[y_node] = n + 1
    leaf_vertex[z_node] = n + 2
    tree = Cotree.from_parent_pointers(parent, kind, leaf_vertex)
    return LowerBoundInstance(bits=bits, cotree=tree)


def expected_path_count(bits: Sequence[int]) -> int:
    """The paper's formula: with ``k`` ones, the minimum path cover has
    ``n - k + 2`` paths."""
    bits = np.asarray(list(bits), dtype=np.int64)
    n = len(bits)
    k = int(bits.sum())
    return n - k + 2


def or_from_path_count(num_paths: int, n: int) -> int:
    """Decide OR from the size of a minimum path cover (Theorem 2.2)."""
    return int(num_paths < n + 2)


def or_from_cover(cover: PathCover, instance: LowerBoundInstance) -> int:
    """Decide OR from a reported cover: OR = 1 iff the path containing the
    padding vertex ``y`` has more than two vertices."""
    y = instance.y
    for path in cover.paths:
        if y in path:
            return int(len(path) > 2)
    raise ValueError("vertex y is missing from the cover")


def parallel_or_rounds(ctx, bits: Sequence[int]) -> int:
    """Compute OR of ``n`` bits by balanced fan-in on the given machine and
    return the result.

    On a CREW/EREW machine this takes ``ceil(log2 n)`` rounds — the matching
    upper bound for Lemma 2.1's Ω(log n); on a common-CRCW machine the same
    problem takes O(1) rounds (every 1-bit writes 1 to a single cell), which
    the E1 benchmark uses to show where the lower bound's model assumption
    bites.
    """
    bits = np.asarray(list(bits), dtype=np.int64)
    machine = resolve_context(ctx)
    mode = machine.machine.mode if machine.machine is not None else None
    if mode in (AccessMode.CRCW_COMMON, AccessMode.CRCW_ARBITRARY):
        out = machine.array(1, name="or.out")
        ones = np.flatnonzero(bits == 1)
        with machine.step(active=max(len(ones), 1), label="or:crcw-write"):
            if len(ones):
                out.scatter(np.zeros(len(ones), dtype=np.int64),
                            np.ones(len(ones), dtype=np.int64))
        return int(out.data[0])
    return int(total_sum(machine, bits, label="or.fanin") > 0)
