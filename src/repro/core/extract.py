"""Step 8 — read the minimum path cover off the path trees.

After dummy removal every tree of the forest is a *path tree*: its inorder
traversal is one path of the minimum path cover (Fig. 6).  The inorder
numbers come from the same Euler-tour machinery as everywhere else, after
which each vertex knows its path (the tree it belongs to) and its position on
that path, and the cover is assembled with one permutation scatter.
"""

from __future__ import annotations

import numpy as np

from ..backends import resolve_context
from ..cograph import PathCover
from ..primitives import compute_tree_numbers, prefix_sum
from .path_trees import PathForest

__all__ = ["extract_paths"]


def extract_paths(ctx, forest: PathForest, *,
                  work_efficient: bool = True,
                  label: str = "extract") -> PathCover:
    """Convert a dummy-free path forest into a :class:`PathCover`."""
    machine = resolve_context(ctx)
    num_real = forest.num_real
    parent = forest.parent[:num_real]
    left = forest.left[:num_real]
    right = forest.right[:num_real]
    if np.any(left >= num_real) or np.any(right >= num_real) \
            or np.any(parent >= num_real):  # pragma: no cover
        raise AssertionError("extract_paths called before dummy removal")

    roots = np.flatnonzero(parent == -1)
    if num_real == 0:
        return PathCover([])

    numbers = compute_tree_numbers(machine, left, right, parent, roots,
                                   work_efficient=work_efficient,
                                   label=f"{label}.numbers")
    inorder = numbers.inorder

    # path id of every vertex = index of its tree in the chained tour; the
    # chained inorder is contiguous per tree, so the boundaries are the
    # prefix sums of the root subtree sizes.
    sizes = numbers.subtree_size[roots]
    starts = prefix_sum(machine, sizes, inclusive=False,
                        label=f"{label}.starts")

    kernels = getattr(machine, "kernels", None)
    with machine.step(active=num_real, label=f"{label}:permute"):
        if kernels is not None:
            order = kernels.invert_permutation(inorder)
        else:
            order = np.empty(num_real, dtype=np.int64)
            order[inorder] = np.arange(num_real)

    # materialise the cover with C-level slicing: one tolist for the whole
    # permutation, then per-path list slices (no per-node Python work)
    flat = order.tolist()
    bounds = starts.tolist() + [num_real]
    paths = [flat[bounds[i]:bounds[i + 1]] for i in range(len(roots))]
    return PathCover(paths)
