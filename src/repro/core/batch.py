"""Batch solving: fan a set of instances out over processes.

The PRAM simulator answers "what does this cost on the paper's machine?";
the fast backend answers "what is the cover?" as quickly as NumPy allows.
:func:`solve_batch` adds the third axis — throughput across *instances* —
by solving many cotrees at once, optionally on a pool of worker processes
(CPython's GIL rules out thread-level parallelism for this workload, so the
fan-out uses ``multiprocessing`` via :class:`concurrent.futures`).

Results come back in input order as lightweight :class:`BatchResult`
records (cover + counts + per-stage timings), which keeps the payload
picklable and small — no machines or reports cross process boundaries.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from ..backends import BACKEND_NAMES
from ..cograph import BinaryCotree, Cotree, PathCover
from .solver import minimum_path_cover_parallel

__all__ = ["BatchResult", "solve_batch", "fan_out"]

TreeLike = Union[Cotree, BinaryCotree]


def fan_out(worker, payloads: List, *, jobs: Optional[int] = None,
            chunksize: Optional[int] = None) -> List:
    """Map ``worker`` over ``payloads``, optionally across processes.

    The shared fan-out engine behind :func:`solve_batch` and
    :func:`repro.api.solve_many`.  ``worker`` must be a module-level
    callable and every payload picklable.  ``jobs=None``/``1`` runs
    in-process, ``0`` means one worker per CPU; results come back in
    payload order.
    """
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs is None or jobs <= 1 or len(payloads) <= 1:
        return [worker(p) for p in payloads]
    jobs = min(jobs, len(payloads))
    if chunksize is None:
        chunksize = max(1, len(payloads) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(worker, payloads, chunksize=chunksize))


@dataclass
class BatchResult:
    """One instance's outcome within a batch.

    Attributes
    ----------
    index:
        position of the instance in the input sequence.
    cover:
        the minimum path cover.
    num_paths:
        ``len(cover.paths)``.
    p_root:
        the analytic Lemma 2.4 count (always equals ``num_paths``).
    backend:
        execution backend the instance was solved with.
    stage_seconds:
        per-stage wall-clock of the solve (empty for trivial instances).
    """

    index: int
    cover: PathCover
    num_paths: int
    p_root: int
    backend: str
    stage_seconds: Dict[str, float] = field(default_factory=dict)


def _solve_one(payload) -> BatchResult:
    """Worker body (module level so it pickles under multiprocessing)."""
    index, tree, backend, work_efficient, validate = payload
    result = minimum_path_cover_parallel(
        tree, backend=backend, work_efficient=work_efficient,
        validate=validate)
    return BatchResult(index=index, cover=result.cover,
                       num_paths=result.num_paths, p_root=result.p_root,
                       backend=result.backend,
                       stage_seconds=result.stage_seconds)


def solve_batch(trees: Iterable[TreeLike], *, backend: str = "fast",
                jobs: Optional[int] = None, work_efficient: bool = True,
                validate: bool = False,
                chunksize: Optional[int] = None) -> List[BatchResult]:
    """Solve a batch of cotrees, optionally across worker processes.

    Parameters
    ----------
    trees:
        the instances; consumed eagerly (results preserve this order).
    backend:
        ``"fast"`` (default — the throughput path) or ``"pram"``; must be a
        backend *name* because it has to cross process boundaries.
    jobs:
        worker processes.  ``None`` or ``1`` solves in-process (no pool);
        ``0`` means "one per CPU".  A pool only pays for itself when the
        per-instance work dwarfs the fork+pickle overhead, i.e. large
        instances; for many small trees keep ``jobs=1``.
    validate:
        validate every produced cover against the LCA adjacency oracle
        (raises on the first failure).
    chunksize:
        instances handed to a worker at a time (default: spread the batch
        evenly, at least 1).

    Returns
    -------
    list[BatchResult]
        one record per input tree, in input order.
    """
    if backend not in BACKEND_NAMES:
        raise ValueError(f"backend must be one of {BACKEND_NAMES} (a name, "
                         f"so it can cross process boundaries); "
                         f"got {backend!r}")
    payloads = [(i, tree, backend, work_efficient, validate)
                for i, tree in enumerate(trees)]
    return fan_out(_solve_one, payloads, jobs=jobs, chunksize=chunksize)
