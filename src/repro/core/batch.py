"""Batch and streaming fan-out: one engine behind every multi-instance call.

The PRAM simulator answers "what does this cost on the paper's machine?";
the fast backend answers "what is the cover?" as quickly as NumPy allows.
This module adds the third axis — throughput across *instances* — in two
shapes:

* :func:`stream_out` — the streaming engine.  It consumes an *iterable* of
  payloads lazily, keeps at most ``window`` payloads in flight
  (backpressure: a million-instance stream never materialises a
  million-payload list), and yields results in input order as they
  complete.  Work is fanned out over processes (CPython's GIL rules out
  thread-level parallelism for this workload, so the fan-out uses
  ``multiprocessing`` via :class:`concurrent.futures`).
* :func:`fan_out` — the eager wrapper: materialise the payload list, run
  the same engine with the window thrown wide open, return a list.

Sustained many-call traffic should hand both of them a :class:`WorkerPool`:
a persistent, reusable ``ProcessPoolExecutor`` whose workers stay warm
across calls, instead of paying pool startup on every batch.

Results come back in input order as lightweight picklable records — no
machines or reports cross process boundaries.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..backends import BACKEND_NAMES
from ..cograph import BinaryCotree, Cotree, PathCover
from .solver import minimum_path_cover_parallel

__all__ = ["BatchResult", "WorkerPool", "Resolved", "solve_batch",
           "fan_out", "stream_out", "resolve_jobs"]

TreeLike = Union[Cotree, BinaryCotree]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` knob to a worker count.

    ``None``/``1`` mean in-process (1), ``0`` means one worker per CPU,
    anything else is taken literally (and must be positive).
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


class WorkerPool:
    """A persistent process pool, reused across fan-out calls.

    Every per-call ``ProcessPoolExecutor`` pays interpreter startup and
    module imports in each worker; sustained traffic amortises that once by
    creating one :class:`WorkerPool` and passing it to
    :func:`repro.api.solve_many`, :func:`repro.api.solve_stream` or
    :func:`solve_batch`::

        with WorkerPool(jobs=4) as pool:
            for batch in request_batches:
                results = solve_batch(batch, pool=pool)

    ``jobs=0`` (the default) means one worker per CPU; ``jobs=1`` degrades
    to in-process execution (no processes are ever spawned), which makes
    the pool a no-op you can still pass around uniformly.

    The underlying executor is created lazily on first use and its workers
    survive until :meth:`close` (or the ``with`` block) — that is the whole
    point.  Pools are *not* picklable and must not be shared between
    processes; share them between calls instead.
    """

    def __init__(self, jobs: Optional[int] = 0) -> None:
        self.jobs = resolve_jobs(jobs)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    # ------------------------------------------------------------------ #

    @property
    def serial(self) -> bool:
        """True when the pool runs everything in-process (``jobs <= 1``)."""
        return self.jobs <= 1

    @property
    def executor(self) -> Optional[ProcessPoolExecutor]:
        """The lazily-created executor (``None`` for a serial pool)."""
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self.serial:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def warm_up(self) -> "WorkerPool":
        """Spin the worker processes up *now* instead of on first submit.

        Useful right before latency-sensitive traffic; returns ``self`` so
        it chains (``pool = WorkerPool(4).warm_up()``).
        """
        executor = self.executor
        if executor is not None:
            futures = [executor.submit(_noop) for _ in range(self.jobs)]
            for f in futures:
                f.result()
        return self

    def close(self) -> None:
        """Shut the workers down.  Idempotent; the pool is unusable after."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else \
            ("warm" if self._executor is not None else "cold")
        return f"WorkerPool(jobs={self.jobs}, {state})"


class Resolved:
    """A payload whose result is already known.

    :func:`stream_out` yields ``Resolved.value`` in order without invoking
    the worker (or crossing a process boundary).  This is how cache hits
    interleave with in-flight misses in :func:`repro.api.solve_stream`
    while keeping one fan-out code path.
    """

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value


def _noop() -> None:
    """Worker warm-up body (module level so it pickles)."""


def _apply_chunk(worker, chunk: List) -> List:
    """Run ``worker`` over one chunk of payloads (module level: pickles)."""
    return [worker(p) for p in chunk]


class _Done:
    """A completed pseudo-future wrapping already-available results."""

    __slots__ = ("_results",)

    def __init__(self, results: List) -> None:
        self._results = results

    def result(self) -> List:
        return self._results


def stream_out(worker, payloads: Iterable, *, jobs: Optional[int] = None,
               window: Optional[int] = None, chunksize: int = 1,
               pool: Optional[WorkerPool] = None) -> Iterator:
    """Stream ``worker`` over ``payloads`` lazily, in input order.

    The streaming engine behind :func:`fan_out`, :func:`solve_batch`,
    :func:`repro.api.solve_many` and :func:`repro.api.solve_stream`.

    Parameters
    ----------
    worker:
        a module-level callable (it crosses process boundaries).  Payloads
        wrapped in :class:`Resolved` bypass it entirely.
    payloads:
        any iterable — consumed lazily, never materialised in full.
    jobs:
        worker processes (``None``/``1`` in-process, ``0`` one per CPU).
        Ignored when ``pool`` is given.
    window:
        backpressure bound: at most this many payloads are drawn from the
        iterable but not yet yielded back (default ``4 * jobs * chunksize``,
        at least one chunk).  In-process runs are fully lazy (window 1).
    chunksize:
        payloads handed to a worker process per task (amortises pickling
        for small instances; default 1).
    pool:
        a persistent :class:`WorkerPool` to run on (workers stay warm for
        the next call); otherwise an ephemeral pool is created and torn
        down with the stream.

    Yields
    ------
    results in payload order, as they complete.
    """
    if pool is not None:
        n_jobs = pool.jobs
    else:
        n_jobs = resolve_jobs(jobs)

    if n_jobs <= 1:
        # in-process: fully lazy, one payload in flight at a time.
        for p in payloads:
            yield p.value if isinstance(p, Resolved) else worker(p)
        return

    chunksize = max(1, int(chunksize))
    if window is None:
        window = 4 * n_jobs * chunksize
    window = max(int(window), chunksize)

    owned = pool is None
    if owned:
        pool = WorkerPool(n_jobs)
    try:
        executor = pool.executor
        yield from _pump(worker, iter(payloads), executor,
                         window=window, chunksize=chunksize)
    finally:
        if owned:
            pool.close()


def _pump(worker, it: Iterator, executor, *, window: int,
          chunksize: int) -> Iterator:
    """The pooled streaming loop: fill the window, yield the oldest chunk."""
    pending: deque = deque()   # _Done / Future, in submission order
    buf: List = []             # unsubmitted payloads (a partial chunk)
    buffered = 0               # drawn from ``it`` but not yet yielded
    exhausted = False
    # an exception raised while *drawing* a payload must not discard the
    # in-flight work that precedes it: the valid prefix is drained in
    # order first, then the error propagates
    draw_error: Optional[Exception] = None

    def flush() -> None:
        if buf:
            pending.append(executor.submit(_apply_chunk, worker, list(buf)))
            buf.clear()

    while True:
        while not exhausted and buffered < window:
            try:
                p = next(it)
            except StopIteration:
                exhausted = True
                break
            except Exception as exc:
                draw_error = exc
                exhausted = True
                break
            buffered += 1
            if isinstance(p, Resolved):
                # keep ordering: everything buffered so far goes first
                flush()
                pending.append(_Done([p.value]))
            else:
                buf.append(p)
                if len(buf) >= chunksize:
                    flush()
        if exhausted:
            flush()
        if not pending:
            if exhausted:
                if draw_error is not None:
                    raise draw_error
                return
            continue  # pragma: no cover - fill loop always queues work
        for result in pending.popleft().result():
            buffered -= 1
            yield result


def fan_out(worker, payloads: Iterable, *, jobs: Optional[int] = None,
            chunksize: Optional[int] = None,
            pool: Optional[WorkerPool] = None) -> List:
    """Map ``worker`` over ``payloads``, optionally across processes.

    The eager wrapper over :func:`stream_out` (one fan-out code path):
    payloads are materialised, the window is the whole batch, and results
    come back as a list in payload order.  ``worker`` must be a
    module-level callable and every payload picklable.  ``jobs=None``/``1``
    runs in-process, ``0`` means one worker per CPU; passing a persistent
    :class:`WorkerPool` overrides ``jobs`` and keeps the workers warm for
    the next call.
    """
    payloads = list(payloads)
    n_jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
    if n_jobs <= 1 or len(payloads) <= 1:
        return [p.value if isinstance(p, Resolved) else worker(p)
                for p in payloads]
    n_jobs = min(n_jobs, len(payloads))
    if chunksize is None:
        chunksize = max(1, len(payloads) // (n_jobs * 4))
    return list(stream_out(worker, payloads, jobs=n_jobs,
                           window=max(1, len(payloads)),
                           chunksize=chunksize, pool=pool))


@dataclass
class BatchResult:
    """One instance's outcome within a batch.

    Attributes
    ----------
    index:
        position of the instance in the input sequence.
    cover:
        the minimum path cover.
    num_paths:
        ``len(cover.paths)``.
    p_root:
        the analytic Lemma 2.4 count (always equals ``num_paths``).
    backend:
        execution backend the instance was solved with.
    stage_seconds:
        per-stage wall-clock of the solve (empty for trivial instances).
    """

    index: int
    cover: PathCover
    num_paths: int
    p_root: int
    backend: str
    stage_seconds: Dict[str, float] = field(default_factory=dict)


def _solve_one(payload) -> BatchResult:
    """Worker body (module level so it pickles under multiprocessing)."""
    index, tree, backend, work_efficient, validate = payload
    result = minimum_path_cover_parallel(
        tree, backend=backend, work_efficient=work_efficient,
        validate=validate)
    return BatchResult(index=index, cover=result.cover,
                       num_paths=result.num_paths, p_root=result.p_root,
                       backend=result.backend,
                       stage_seconds=result.stage_seconds)


def solve_batch(trees: Iterable[TreeLike], *, backend: str = "fast",
                jobs: Optional[int] = None, work_efficient: bool = True,
                validate: bool = False, chunksize: Optional[int] = None,
                pool: Optional[WorkerPool] = None) -> List[BatchResult]:
    """Solve a batch of cotrees, optionally across worker processes.

    Parameters
    ----------
    trees:
        the instances; consumed eagerly (results preserve this order).
        For lazily-generated streams use :func:`repro.api.solve_stream`.
    backend:
        ``"fast"`` (default — the throughput path) or ``"pram"``; must be a
        backend *name* because it has to cross process boundaries.
    jobs:
        worker processes.  ``None`` or ``1`` solves in-process (no pool);
        ``0`` means "one per CPU".  A fresh pool only pays for itself when
        the per-instance work dwarfs the fork+pickle overhead; for
        sustained many-call traffic pass a persistent ``pool`` instead.
    validate:
        validate every produced cover against the LCA adjacency oracle
        (raises on the first failure).
    chunksize:
        instances handed to a worker at a time (default: spread the batch
        evenly, at least 1).
    pool:
        a persistent :class:`WorkerPool` (overrides ``jobs``; workers stay
        warm across calls).

    Returns
    -------
    list[BatchResult]
        one record per input tree, in input order.
    """
    if backend not in BACKEND_NAMES:
        raise ValueError(f"backend must be one of {BACKEND_NAMES} (a name, "
                         f"so it can cross process boundaries); "
                         f"got {backend!r}")
    payloads = [(i, tree, backend, work_efficient, validate)
                for i, tree in enumerate(trees)]
    return fan_out(_solve_one, payloads, jobs=jobs, chunksize=chunksize,
                   pool=pool)
