"""Batch and streaming fan-out: one engine behind every multi-instance call.

The PRAM simulator answers "what does this cost on the paper's machine?";
the fast backend answers "what is the cover?" as quickly as NumPy allows.
This module adds the third axis — throughput across *instances* — in two
shapes:

* :func:`stream_out` — the streaming engine.  It consumes an *iterable* of
  payloads lazily, keeps at most ``window`` payloads in flight
  (backpressure: a million-instance stream never materialises a
  million-payload list), and yields results in input order as they
  complete.  Work is fanned out over processes (CPython's GIL rules out
  thread-level parallelism for this workload, so the fan-out uses
  ``multiprocessing`` via :class:`concurrent.futures`).
* :func:`fan_out` — the eager wrapper: materialise the payload list, run
  the same engine with the window thrown wide open, return a list.

Sustained many-call traffic should hand both of them a :class:`WorkerPool`:
a persistent, reusable ``ProcessPoolExecutor`` whose workers stay warm
across calls, instead of paying pool startup on every batch.

The engine is **self-healing**: a worker process dying (OOM kill,
segfault, SIGKILL) no longer tears the stream down.  The broken executor
is rebuilt, lost in-flight chunks are resubmitted under a
:class:`~repro.core.retry.RetryPolicy` (capped exponential backoff with
jitter), and items that repeatedly kill workers are quarantined as
structured :class:`~repro.core.retry.ErrorOutcome` records *in their
ordered slot*.  ``RetryPolicy.off()`` restores the legacy fail-fast loop.

Results come back in input order as lightweight picklable records — no
machines or reports cross process boundaries.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..backends import BACKEND_NAMES
from ..cograph import BinaryCotree, Cotree, PathCover
from . import faults as _faults
from .retry import ErrorOutcome, RetryPolicy, WorkerCrashError
from .solver import minimum_path_cover_parallel

__all__ = ["BatchResult", "ErrorOutcome", "Resolved", "RetryPolicy",
           "WorkerCrashError", "WorkerPool", "solve_batch", "fan_out",
           "stream_out", "resolve_jobs"]

TreeLike = Union[Cotree, BinaryCotree]

#: Executor-breakage family: ``BrokenProcessPool`` (a worker died) is a
#: subclass of :class:`concurrent.futures.BrokenExecutor`.
_BROKEN = BrokenExecutor

_CRASH_MSG = "worker process died unexpectedly (BrokenProcessPool)"

#: Failure kinds the settle step retries.  ``deadline`` is deliberately
#: absent: an item past its deadline has no time left by definition.
_RETRYABLE = ("crash", "memory")


def _reset_worker_signals() -> None:
    """Executor initializer: detach forked workers from parent signal plumbing.

    Under the ``fork`` start method a worker inherits the parent's
    Python-level signal handlers *and* its ``signal.set_wakeup_fd`` self-pipe
    (asyncio installs one).  That combination is poisonous for healing: when
    a worker is SIGKILLed, ``ProcessPoolExecutor``'s broken-pool cleanup
    SIGTERMs the surviving siblings, whose inherited handler merely writes
    the signal number into the *parent's* wakeup pipe — so the parent's
    event loop sees a SIGTERM it was never sent and shuts the server down,
    while the sibling ignores the signal and lingers, still holding
    inherited fds (including the listening socket).  Restoring default
    dispositions here keeps signals aimed at a worker inside that worker.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread or platform quirk
        pass
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` knob to a worker count.

    ``None``/``1`` mean in-process (1), ``0`` means one worker per CPU,
    anything else is taken literally (and must be positive).
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


class WorkerPool:
    """A persistent, self-healing process pool, reused across fan-out calls.

    Every per-call ``ProcessPoolExecutor`` pays interpreter startup and
    module imports in each worker; sustained traffic amortises that once by
    creating one :class:`WorkerPool` and passing it to
    :func:`repro.api.solve_many`, :func:`repro.api.solve_stream` or
    :func:`solve_batch`::

        with WorkerPool(jobs=4) as pool:
            for batch in request_batches:
                results = solve_batch(batch, pool=pool)

    ``jobs=0`` (the default) means one worker per CPU; ``jobs=1`` degrades
    to in-process execution (no processes are ever spawned), which makes
    the pool a no-op you can still pass around uniformly.

    The underlying executor is created lazily on first use and its workers
    survive until :meth:`close` (or the ``with`` block) — that is the whole
    point.  When a worker dies the executor is *broken* beyond repair
    (``concurrent.futures`` semantics); :meth:`rebuild` swaps in a fresh
    one and bumps :attr:`restarts`, so the pool object itself stays valid
    across crashes.  Pools are *not* picklable and must not be shared
    between processes; share them between calls instead.
    """

    def __init__(self, jobs: Optional[int] = 0) -> None:
        self.jobs = resolve_jobs(jobs)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._lock = threading.RLock()
        #: executor rebuilds after worker crashes (lifetime total).
        self.restarts = 0
        #: item re-executions after a crash or retryable in-worker failure.
        self.retries = 0
        #: items degraded to :class:`ErrorOutcome` after exhausting retries.
        self.quarantined = 0

    # ------------------------------------------------------------------ #

    @property
    def serial(self) -> bool:
        """True when the pool runs everything in-process (``jobs <= 1``)."""
        return self.jobs <= 1

    @property
    def executor(self) -> Optional[ProcessPoolExecutor]:
        """The lazily-created executor (``None`` for a serial pool)."""
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self.serial:
            return None
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_reset_worker_signals)
            return self._executor

    def rebuild(self, broken: Optional[ProcessPoolExecutor] = None
                ) -> Optional[ProcessPoolExecutor]:
        """Replace a crashed executor with a fresh one and count the heal.

        Pass the executor you observed breaking as ``broken`` to make the
        call idempotent under concurrency: if another thread already
        healed the pool (the current executor is not ``broken``), nothing
        is replaced.  Returns the executor now in service (``None`` for a
        serial pool).
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self.serial:
            return None
        with self._lock:
            current = self._executor
            if broken is not None and current is not None \
                    and current is not broken:
                return current
            if current is not None:
                # the workers are already dead; don't wait on them
                current.shutdown(wait=False)
            self.restarts += 1
            if os.environ.get(_faults.FAULTS_ENV):
                # ``once`` fault plans only arm worker generation 0: stamp
                # the generation so freshly forked workers know theirs
                os.environ[_faults.GENERATION_ENV] = str(self.restarts)
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_reset_worker_signals)
            return self._executor

    def note_retry(self, n: int = 1) -> None:
        """Count ``n`` item re-executions (crash resubmit or in-worker)."""
        with self._lock:
            self.retries += n

    def note_quarantine(self, n: int = 1) -> None:
        """Count ``n`` items degraded to structured errors."""
        with self._lock:
            self.quarantined += n

    def health(self) -> Dict[str, int]:
        """Resilience counters for ``/healthz``, ``/metrics`` and logs."""
        with self._lock:
            return {"jobs": self.jobs, "restarts": self.restarts,
                    "retries": self.retries,
                    "quarantined": self.quarantined}

    def warm_up(self) -> "WorkerPool":
        """Spin the worker processes up *now* instead of on first submit.

        Useful right before latency-sensitive traffic; returns ``self`` so
        it chains (``pool = WorkerPool(4).warm_up()``).
        """
        executor = self.executor
        if executor is not None:
            futures = [executor.submit(_noop) for _ in range(self.jobs)]
            for f in futures:
                f.result()
        return self

    def close(self) -> None:
        """Shut the workers down.  Idempotent; the pool is unusable after."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else \
            ("warm" if self._executor is not None else "cold")
        return f"WorkerPool(jobs={self.jobs}, {state})"


class Resolved:
    """A payload whose result is already known.

    :func:`stream_out` yields ``Resolved.value`` in order without invoking
    the worker (or crossing a process boundary).  This is how cache hits
    interleave with in-flight misses in :func:`repro.api.solve_stream`
    while keeping one fan-out code path.
    """

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value


def _noop() -> None:
    """Worker warm-up body (module level so it pickles)."""


class _ItemFailure:
    """In-worker marker for one payload's retryable/degradable failure.

    Crosses the process boundary in the chunk's result slot so the parent
    can retry or quarantine *that item* without losing its neighbours.
    """

    __slots__ = ("kind", "error")

    def __init__(self, kind: str, error: str) -> None:
        self.kind = kind
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_ItemFailure({self.kind!r}, {self.error!r})"


def _apply_chunk(worker, chunk: List) -> List:
    """Run ``worker`` over one chunk of payloads (module level: pickles).

    Consults the process's armed :class:`~repro.core.faults.FaultPlan`
    (chaos testing) and degrades per-item ``MemoryError`` — the one
    in-worker failure the healing loop treats as retryable — to an
    :class:`_ItemFailure` marker instead of failing the whole chunk.
    Every other worker exception still propagates unchanged.
    """
    plan = _faults.active_plan()
    out: List = []
    for p in chunk:
        try:
            out.append(worker(p) if plan is None else plan.apply(worker, p))
        except MemoryError as exc:
            out.append(_ItemFailure("memory", f"MemoryError: {exc}"))
    return out


class _Done:
    """A completed pseudo-future wrapping already-available results."""

    __slots__ = ("_results",)

    def __init__(self, results: List) -> None:
        self._results = results

    def result(self, timeout: Optional[float] = None) -> List:
        return self._results


class _Entry:
    """One in-flight chunk: its future plus what is needed to re-run it."""

    __slots__ = ("future", "payloads", "attempts", "started")

    def __init__(self, future, payloads: List, attempts: List[int],
                 started: float) -> None:
        self.future = future
        self.payloads = payloads
        self.attempts = attempts     # per-item retry count, parallel list
        self.started = started       # first submission (deadline anchor)


def stream_out(worker, payloads: Iterable, *, jobs: Optional[int] = None,
               window: Optional[int] = None, chunksize: int = 1,
               pool: Optional[WorkerPool] = None,
               retry: Optional[RetryPolicy] = None) -> Iterator:
    """Stream ``worker`` over ``payloads`` lazily, in input order.

    The streaming engine behind :func:`fan_out`, :func:`solve_batch`,
    :func:`repro.api.solve_many` and :func:`repro.api.solve_stream`.

    Parameters
    ----------
    worker:
        a module-level callable (it crosses process boundaries).  Payloads
        wrapped in :class:`Resolved` bypass it entirely.
    payloads:
        any iterable — consumed lazily, never materialised in full.
    jobs:
        worker processes (``None``/``1`` in-process, ``0`` one per CPU).
        Ignored when ``pool`` is given.
    window:
        backpressure bound: at most this many payloads are drawn from the
        iterable but not yet yielded back (default ``4 * jobs * chunksize``,
        at least one chunk).  In-process runs are fully lazy (window 1).
    chunksize:
        payloads handed to a worker process per task (amortises pickling
        for small instances; default 1).
    pool:
        a persistent :class:`WorkerPool` to run on (workers stay warm for
        the next call); otherwise an ephemeral pool is created and torn
        down with the stream.
    retry:
        the :class:`RetryPolicy` governing worker-crash recovery, item
        retries, and deadlines.  ``None`` (default) heals with
        ``RetryPolicy()``; ``RetryPolicy.off()`` restores the legacy
        fail-fast loop where a crash raises ``BrokenProcessPool``.

    Yields
    ------
    results in payload order, as they complete.  Items whose retries are
    exhausted (or whose deadline expired) yield a structured
    :class:`ErrorOutcome` in their slot instead of a result.
    """
    if pool is not None:
        n_jobs = pool.jobs
    else:
        n_jobs = resolve_jobs(jobs)

    if n_jobs <= 1:
        # in-process: fully lazy, one payload in flight at a time.  No
        # processes → no crashes to heal; faults target workers only.
        for p in payloads:
            yield p.value if isinstance(p, Resolved) else worker(p)
        return

    policy = retry if retry is not None else RetryPolicy()
    chunksize = max(1, int(chunksize))
    if window is None:
        window = 4 * n_jobs * chunksize
    window = max(int(window), chunksize)

    owned = pool is None
    if owned:
        pool = WorkerPool(n_jobs)
    try:
        if policy.enabled:
            yield from _pump(worker, iter(payloads), pool,
                             window=window, chunksize=chunksize,
                             policy=policy)
        else:
            yield from _pump_fast(worker, iter(payloads), pool.executor,
                                  window=window, chunksize=chunksize)
    finally:
        if owned:
            pool.close()


def _submit(pool: WorkerPool, worker, payloads: List, attempts: List[int],
            started: Optional[float] = None) -> _Entry:
    """Submit one chunk, healing the pool if the executor is already dead."""
    for _ in range(3):
        executor = pool.executor
        try:
            future = executor.submit(_apply_chunk, worker, list(payloads))
        except _BROKEN:
            pool.rebuild(broken=executor)
            continue
        return _Entry(future, list(payloads), list(attempts),
                      started if started is not None else time.monotonic())
    raise RuntimeError(
        "worker pool kept breaking during submission (3 rebuilds)")


def _wait(entry: _Entry, policy: RetryPolicy) -> List:
    """Block for one entry's chunk results, enforcing the item deadline.

    A chunk past the deadline degrades to per-item ``deadline`` failures
    (its eventual worker result, if any, is discarded).  Worker crashes
    propagate as ``BrokenExecutor`` for the caller to heal.
    """
    remaining = policy.remaining(entry.started)
    if remaining is None:
        return entry.future.result()
    try:
        return entry.future.result(timeout=remaining)
    except _FuturesTimeout:
        entry.future.cancel()  # a still-queued chunk simply never runs
        return [_ItemFailure(
            "deadline", f"item exceeded deadline={policy.deadline}s")
            for _ in entry.payloads]


def _heal(pool: WorkerPool, pending: deque, worker,
          policy: RetryPolicy, crashes: int) -> None:
    """Rebuild a broken pool and reconstruct the in-flight window.

    Chunks that completed before the crash keep their results.  Lost
    chunks that were plausibly *running* when the worker died — the first
    ``pool.jobs`` of them, since at most that many run at once — are the
    suspects: their items are marked as crash failures so :func:`_settle`
    re-runs them one at a time with unambiguous blame.  Lost chunks that
    were still queued never executed, so they are resubmitted as-is
    (resubmission is not a retry: attempts are untouched).
    """
    pool.rebuild()
    policy.sleep(crashes)  # consecutive crashes back off exponentially
    suspects = pool.jobs
    replaced: deque = deque()
    for entry in pending:
        future = entry.future
        if isinstance(future, _Done):
            replaced.append(entry)
            continue
        if future.done():
            exc = future.exception()
            if exc is None or not isinstance(exc, _BROKEN):
                # a real result (or a real in-worker error) — deliver it
                replaced.append(entry)
                continue
        if suspects > 0:
            suspects -= 1
            marked = [_ItemFailure("crash", _CRASH_MSG)
                      for _ in entry.payloads]
            replaced.append(_Entry(_Done(marked), entry.payloads,
                                   entry.attempts, entry.started))
        else:
            replaced.append(_submit(pool, worker, entry.payloads,
                                    entry.attempts, started=entry.started))
    pending.clear()
    pending.extend(replaced)


def _settle(entry: _Entry, results: List, pool: WorkerPool, worker,
            policy: RetryPolicy) -> List:
    """Resolve a delivered chunk's failures: retry, then quarantine.

    Retryable failures (``crash``, ``memory``) re-run one item per
    submission, awaited serially — so when a retry breaks the pool again,
    the culprit item is unambiguous and innocents in the same chunk are
    never co-blamed.  Whatever still fails after ``policy.max_retries``
    attempts (and every non-retryable failure, e.g. ``deadline``) degrades
    to an :class:`ErrorOutcome` in the item's ordered slot.
    """
    out = list(results)
    attempts = list(entry.attempts)
    payloads = entry.payloads
    while True:
        todo = [i for i, r in enumerate(out)
                if isinstance(r, _ItemFailure) and r.kind in _RETRYABLE
                and attempts[i] < policy.max_retries]
        if not todo:
            break
        for i in todo:
            attempts[i] += 1
            pool.note_retry()
            policy.sleep(attempts[i])
            sub = _submit(pool, worker, [payloads[i]], [attempts[i]],
                          started=entry.started)
            try:
                out[i] = _wait(sub, policy)[0]
            except _BROKEN:
                pool.rebuild()
                out[i] = _ItemFailure("crash", _CRASH_MSG)
    for i, r in enumerate(out):
        if isinstance(r, _ItemFailure):
            pool.note_quarantine()
            out[i] = ErrorOutcome(error=r.error, kind=r.kind,
                                  attempts=attempts[i] + 1,
                                  payload=payloads[i])
    return out


def _pump(worker, it: Iterator, pool: WorkerPool, *, window: int,
          chunksize: int, policy: RetryPolicy) -> Iterator:
    """The self-healing streaming loop: fill the window, settle the oldest.

    Same shape as the legacy loop (:func:`_pump_fast`), but in-flight work
    is tracked as resubmittable :class:`_Entry` records: a
    ``BrokenProcessPool`` at the head triggers :func:`_heal` instead of
    tearing the stream down, and delivered chunks pass through
    :func:`_settle` so retry/quarantine outcomes land in order.
    """
    pending: deque = deque()   # _Entry records, in submission order
    buf: List = []             # unsubmitted payloads (a partial chunk)
    buffered = 0               # drawn from ``it`` but not yet yielded
    exhausted = False
    crashes = 0                # consecutive heals without progress
    # an exception raised while *drawing* a payload must not discard the
    # in-flight work that precedes it: the valid prefix is drained in
    # order first, then the error propagates
    draw_error: Optional[Exception] = None

    def flush() -> None:
        if buf:
            pending.append(_submit(pool, worker, buf, [0] * len(buf)))
            buf.clear()

    while True:
        while not exhausted and buffered < window:
            try:
                p = next(it)
            except StopIteration:
                exhausted = True
                break
            except Exception as exc:
                draw_error = exc
                exhausted = True
                break
            buffered += 1
            if isinstance(p, Resolved):
                # keep ordering: everything buffered so far goes first
                flush()
                pending.append(_Entry(_Done([p.value]), [None], [0],
                                      time.monotonic()))
            else:
                buf.append(p)
                if len(buf) >= chunksize:
                    flush()
        if exhausted:
            flush()
        if not pending:
            if exhausted:
                if draw_error is not None:
                    raise draw_error
                return
            continue  # pragma: no cover - fill loop always queues work
        entry = pending[0]
        try:
            results = _wait(entry, policy)
        except _BROKEN:
            crashes += 1
            _heal(pool, pending, worker, policy, crashes)
            continue
        pending.popleft()
        crashes = 0
        for result in _settle(entry, results, pool, worker, policy):
            buffered -= 1
            yield result


def _pump_fast(worker, it: Iterator, executor, *, window: int,
               chunksize: int) -> Iterator:
    """The legacy fail-fast loop (``RetryPolicy.off()``): no healing.

    A worker crash raises ``BrokenProcessPool`` out of the stream exactly
    as before the resilience layer existed.  This is also the zero-overhead
    baseline the E16 bench compares the healing loop against.
    """
    pending: deque = deque()   # _Done / Future, in submission order
    buf: List = []
    buffered = 0
    exhausted = False
    draw_error: Optional[Exception] = None

    def flush() -> None:
        if buf:
            pending.append(executor.submit(_apply_chunk, worker, list(buf)))
            buf.clear()

    while True:
        while not exhausted and buffered < window:
            try:
                p = next(it)
            except StopIteration:
                exhausted = True
                break
            except Exception as exc:
                draw_error = exc
                exhausted = True
                break
            buffered += 1
            if isinstance(p, Resolved):
                flush()
                pending.append(_Done([p.value]))
            else:
                buf.append(p)
                if len(buf) >= chunksize:
                    flush()
        if exhausted:
            flush()
        if not pending:
            if exhausted:
                if draw_error is not None:
                    raise draw_error
                return
            continue  # pragma: no cover - fill loop always queues work
        for result in pending.popleft().result():
            buffered -= 1
            if isinstance(result, _ItemFailure):
                # fail-fast semantics: an in-worker MemoryError propagates
                raise MemoryError(result.error)
            yield result


def fan_out(worker, payloads: Iterable, *, jobs: Optional[int] = None,
            chunksize: Optional[int] = None,
            pool: Optional[WorkerPool] = None,
            retry: Optional[RetryPolicy] = None) -> List:
    """Map ``worker`` over ``payloads``, optionally across processes.

    The eager wrapper over :func:`stream_out` (one fan-out code path):
    payloads are materialised, the window is the whole batch, and results
    come back as a list in payload order.  ``worker`` must be a
    module-level callable and every payload picklable.  ``jobs=None``/``1``
    runs in-process, ``0`` means one worker per CPU; passing a persistent
    :class:`WorkerPool` overrides ``jobs`` and keeps the workers warm for
    the next call.

    This is a strict path: an item quarantined by the healing engine
    raises :class:`WorkerCrashError` (callers that want per-item degraded
    errors stream instead).
    """
    payloads = list(payloads)
    n_jobs = pool.jobs if pool is not None else resolve_jobs(jobs)
    if n_jobs <= 1 or len(payloads) <= 1:
        return [p.value if isinstance(p, Resolved) else worker(p)
                for p in payloads]
    n_jobs = min(n_jobs, len(payloads))
    if chunksize is None:
        chunksize = max(1, len(payloads) // (n_jobs * 4))
    out = list(stream_out(worker, payloads, jobs=n_jobs,
                          window=max(1, len(payloads)),
                          chunksize=chunksize, pool=pool, retry=retry))
    for result in out:
        if isinstance(result, ErrorOutcome):
            raise WorkerCrashError(result)
    return out


@dataclass
class BatchResult:
    """One instance's outcome within a batch.

    Attributes
    ----------
    index:
        position of the instance in the input sequence.
    cover:
        the minimum path cover.
    num_paths:
        ``len(cover.paths)``.
    p_root:
        the analytic Lemma 2.4 count (always equals ``num_paths``).
    backend:
        execution backend the instance was solved with.
    stage_seconds:
        per-stage wall-clock of the solve (empty for trivial instances).
    """

    index: int
    cover: PathCover
    num_paths: int
    p_root: int
    backend: str
    stage_seconds: Dict[str, float] = field(default_factory=dict)


def _solve_one(payload) -> BatchResult:
    """Worker body (module level so it pickles under multiprocessing)."""
    index, tree, backend, work_efficient, validate = payload
    result = minimum_path_cover_parallel(
        tree, backend=backend, work_efficient=work_efficient,
        validate=validate)
    return BatchResult(index=index, cover=result.cover,
                       num_paths=result.num_paths, p_root=result.p_root,
                       backend=result.backend,
                       stage_seconds=result.stage_seconds)


def solve_batch(trees: Iterable[TreeLike], *, backend: str = "fast",
                jobs: Optional[int] = None, work_efficient: bool = True,
                validate: bool = False, chunksize: Optional[int] = None,
                pool: Optional[WorkerPool] = None) -> List[BatchResult]:
    """Solve a batch of cotrees, optionally across worker processes.

    Parameters
    ----------
    trees:
        the instances; consumed eagerly (results preserve this order).
        For lazily-generated streams use :func:`repro.api.solve_stream`.
    backend:
        ``"fast"`` (default — the throughput path) or ``"pram"``; must be a
        backend *name* because it has to cross process boundaries.
    jobs:
        worker processes.  ``None`` or ``1`` solves in-process (no pool);
        ``0`` means "one per CPU".  A fresh pool only pays for itself when
        the per-instance work dwarfs the fork+pickle overhead; for
        sustained many-call traffic pass a persistent ``pool`` instead.
    validate:
        validate every produced cover against the LCA adjacency oracle
        (raises on the first failure).
    chunksize:
        instances handed to a worker at a time (default: spread the batch
        evenly, at least 1).
    pool:
        a persistent :class:`WorkerPool` (overrides ``jobs``; workers stay
        warm across calls).

    Returns
    -------
    list[BatchResult]
        one record per input tree, in input order.
    """
    if backend not in BACKEND_NAMES:
        raise ValueError(f"backend must be one of {BACKEND_NAMES} (a name, "
                         f"so it can cross process boundaries); "
                         f"got {backend!r}")
    payloads = [(i, tree, backend, work_efficient, validate)
                for i, tree in enumerate(trees)]
    return fan_out(_solve_one, payloads, jobs=jobs, chunksize=chunksize,
                   pool=pool)
