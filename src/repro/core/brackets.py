"""Step 4 — generate the bracket sequence ``B(R)`` of the reduced cotree.

Every cograph vertex (and every dummy vertex) contributes a fixed pattern of
brackets; the concatenation order is the one induced by
``B(u) = B(v) · B(w)`` at 0-nodes and ``B(u) = B(v) · suffix(u)`` at 1-nodes
(Section 4 of the paper).  Concretely the sequence is a concatenation of
*blocks*, one per **emitter**:

* a primary vertex ``x`` emits ``x_p[  x_l(  x_r(``;
* an active 1-node ``u`` (Case 1, ``p(v) > L(w)``) emits, for each of its
  ``L(w)`` bridge vertices ``s_i``:  ``s_i^r]  s_i^l]  s_i^p[``;
* an active 1-node ``u`` (Case 2, ``p(v) <= L(w)``) emits the bridge pattern
  for its ``p(v) - 1`` bridge vertices, then one ``)`` per insert vertex
  (parent finders), then one ``)`` per dummy vertex, then one ``(`` per dummy
  vertex (child finders), then ``( (`` per insert vertex — exactly the
  dummy-augmented ``B(u)`` displayed at the end of Section 4.

Blocks are ordered by the preorder number of their *anchor* (the primary leaf
itself, or the 1-node's right child), which reproduces the recursive
concatenation order; offsets come from one prefix sum, and every bracket is
then written independently in O(1) — the whole step is ``O(log n)`` time and
``O(n)`` work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends import resolve_context
from ..cograph.cotree import JOIN, LEAF
from ..primitives import prefix_sum
from .reduce import ReducedCotree, VertexClass

__all__ = ["ROLE_P", "ROLE_L", "ROLE_R", "BracketSequence", "generate_brackets",
           "render_brackets"]

#: bracket roles (the superscripts p, l, r of the paper)
ROLE_P = 0
ROLE_L = 1
ROLE_R = 2


@dataclass
class BracketSequence:
    """The bracket sequence ``B(R)`` in structure-of-arrays form.

    ``vertex[i]`` is a cograph vertex id (``< num_real``) or a dummy id
    (``>= num_real``); ``role`` is one of :data:`ROLE_P` / :data:`ROLE_L` /
    :data:`ROLE_R`; ``is_square`` selects square vs round brackets and
    ``is_open`` opening vs closing ones.

    ``segment_of`` is ``None`` for single-instance sequences; for a packed
    forest it assigns every bracket position its instance index, so that the
    bracket matcher never pairs brackets across instances.
    """

    vertex: np.ndarray
    role: np.ndarray
    is_square: np.ndarray
    is_open: np.ndarray
    num_real: int
    num_dummies: int
    dummy_owner: np.ndarray      # owning active 1-node of each dummy
    dummy_ids: np.ndarray        # the dummy vertex ids (num_real + arange)
    segment_of: np.ndarray = None   # per-position instance index (forests)

    def __len__(self) -> int:
        return len(self.vertex)

    def total_nodes(self) -> int:
        """Real vertices plus dummies — the node universe of the path trees."""
        return self.num_real + self.num_dummies


def generate_brackets(ctx, reduced: ReducedCotree, *,
                      label: str = "brackets") -> BracketSequence:
    """Emit the bracket sequence of the reduced cotree."""
    machine = resolve_context(ctx)
    tree = reduced.tree
    n_nodes = tree.num_nodes
    n_vertices = tree.num_vertices
    kind = np.asarray(tree.kind, dtype=np.int64)
    pre = reduced.numbers.preorder
    p = reduced.p
    L = reduced.leaf_count

    leaves = tree.leaves
    leaf_vertex = np.asarray(tree.leaf_vertex)
    is_primary_leaf = np.zeros(n_nodes, dtype=bool)
    primary_vertices = np.flatnonzero(reduced.vertex_class == VertexClass.PRIMARY)
    # map vertex id -> leaf node id
    leaf_of_vertex = np.zeros(n_vertices, dtype=np.int64)
    leaf_of_vertex[leaf_vertex[leaves]] = leaves
    is_primary_leaf[leaf_of_vertex[primary_vertices]] = True

    active_joins = reduced.active_join_nodes()

    # ---- per-anchor block lengths ---------------------------------------- #
    # anchor of a primary leaf is the leaf node; anchor of an active 1-node
    # is its right child (the root of the flattened region), which keeps the
    # block in the position the recursion would put it.
    block_len_by_anchor = np.zeros(n_nodes, dtype=np.int64)
    block_len_by_anchor[is_primary_leaf] = 3
    if len(active_joins):
        p_v = p[tree.left[active_joins]]
        L_w = L[tree.right[active_joins]]
        case1 = p_v > L_w
        n_bridge = np.where(case1, L_w, p_v - 1)
        n_ins = np.where(case1, 0, L_w - p_v + 1)
        n_dum = np.where(case1, 0, 2 * p_v - 2)
        block_len = 3 * n_bridge + 3 * n_ins + 2 * n_dum
        block_len_by_anchor[tree.right[active_joins]] = block_len

    # ---- block offsets (prefix sum in preorder order) --------------------- #
    len_by_pre = np.zeros(n_nodes, dtype=np.int64)
    len_by_pre[pre] = block_len_by_anchor
    offset_by_pre = prefix_sum(machine, len_by_pre, inclusive=False,
                               label=f"{label}.offsets")
    block_start = np.zeros(n_nodes, dtype=np.int64)
    block_start[np.arange(n_nodes)] = offset_by_pre[pre]
    total = int(len_by_pre.sum())

    # ---- per-instance segmentation (packed forests) ----------------------- #
    # preorder numbers are chained per instance in roots order, so instance i
    # occupies one contiguous preorder interval and hence one contiguous
    # bracket interval; its boundaries fall out of the same offset prefix.
    forest_roots = getattr(tree, "roots", None)
    segment_of = None
    if forest_roots is not None:
        roots_arr = np.asarray(forest_roots, dtype=np.int64)
        sizes = reduced.numbers.subtree_size[roots_arr]
        pre_bounds = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=pre_bounds[1:])
        off = np.append(offset_by_pre, total)
        seg_bounds = off[pre_bounds]
        segment_of = np.repeat(np.arange(len(sizes), dtype=np.int64),
                               np.diff(seg_bounds))

    # ---- dummy id allocation ---------------------------------------------- #
    num_dummies_of = reduced.num_dummies_of
    dummies_of_joins = num_dummies_of[active_joins] if len(active_joins) else \
        np.zeros(0, dtype=np.int64)
    dummy_offsets = prefix_sum(machine, dummies_of_joins, inclusive=False,
                               label=f"{label}.dummies")
    total_dummies = int(dummies_of_joins.sum())
    dummy_owner = np.zeros(total_dummies, dtype=np.int64)
    if total_dummies:
        # owner of dummy j: the active join whose block it belongs to
        dummy_owner = np.repeat(active_joins, dummies_of_joins)
    dummy_ids = n_vertices + np.arange(total_dummies, dtype=np.int64)

    # ---- emit ------------------------------------------------------------- #
    out_vertex = np.full(total, -1, dtype=np.int64)
    out_role = np.zeros(total, dtype=np.int64)
    out_square = np.zeros(total, dtype=bool)
    out_open = np.zeros(total, dtype=bool)

    def emit(pos, vertex, role, square, open_):
        out_vertex[pos] = vertex
        out_role[pos] = role
        out_square[pos] = square
        out_open[pos] = open_

    # primary vertices: x_p[  x_l(  x_r(
    if len(primary_vertices):
        anchors = leaf_of_vertex[primary_vertices]
        start = block_start[anchors]
        with machine.step(active=len(primary_vertices), label=f"{label}:primary"):
            emit(start, primary_vertices, ROLE_P, True, True)
            emit(start + 1, primary_vertices, ROLE_L, False, True)
            emit(start + 2, primary_vertices, ROLE_R, False, True)

    # per-vertex data for bridge / insert vertices
    owner = reduced.vertex_owner
    rank = reduced.vertex_rank
    vclass = reduced.vertex_class

    bridge_vertices = np.flatnonzero(vclass == VertexClass.BRIDGE)
    if len(bridge_vertices):
        u = owner[bridge_vertices]
        anchors = tree.right[u]
        start = block_start[anchors] + 3 * rank[bridge_vertices]
        with machine.step(active=len(bridge_vertices), label=f"{label}:bridge"):
            # s_i^r]  s_i^l]  s_i^p[
            emit(start, bridge_vertices, ROLE_R, True, False)
            emit(start + 1, bridge_vertices, ROLE_L, True, False)
            emit(start + 2, bridge_vertices, ROLE_P, True, True)

    insert_vertices = np.flatnonzero(vclass == VertexClass.INSERT)
    if len(insert_vertices):
        u = owner[insert_vertices]
        p_v = p[tree.left[u]]
        L_w = L[tree.right[u]]
        n_bridge = p_v - 1
        n_ins = L_w - p_v + 1
        n_dum = 2 * p_v - 2
        anchors = tree.right[u]
        base = block_start[anchors] + 3 * n_bridge
        k = rank[insert_vertices] - n_bridge          # 0-based insert index
        with machine.step(active=len(insert_vertices), label=f"{label}:insert"):
            # parent finder t_i^p)
            emit(base + k, insert_vertices, ROLE_P, False, False)
            # child finders t_i^l(  t_i^r(  (after the dummy brackets)
            child_base = base + n_ins + 2 * n_dum
            emit(child_base + 2 * k, insert_vertices, ROLE_L, False, True)
            emit(child_base + 2 * k + 1, insert_vertices, ROLE_R, False, True)

    if total_dummies:
        u = dummy_owner
        p_v = p[tree.left[u]]
        L_w = L[tree.right[u]]
        n_bridge = p_v - 1
        n_ins = L_w - p_v + 1
        n_dum = 2 * p_v - 2
        anchors = tree.right[u]
        # j = index of the dummy within its owner's block
        j = np.arange(total_dummies, dtype=np.int64) - np.repeat(
            dummy_offsets, dummies_of_joins)
        base = block_start[anchors] + 3 * n_bridge + n_ins
        with machine.step(active=total_dummies, label=f"{label}:dummy"):
            # parent finder d_j^p)
            emit(base + j, dummy_ids, ROLE_P, False, False)
            # child finder d_j^r(
            emit(base + n_dum + j, dummy_ids, ROLE_R, False, True)

    if np.any(out_vertex < 0):  # pragma: no cover - structural invariant
        raise AssertionError("bracket sequence has unfilled positions")

    return BracketSequence(vertex=out_vertex, role=out_role,
                           is_square=out_square, is_open=out_open,
                           num_real=n_vertices, num_dummies=total_dummies,
                           dummy_owner=dummy_owner, dummy_ids=dummy_ids,
                           segment_of=segment_of)


def render_brackets(seq: BracketSequence, names=None) -> str:
    """Human-readable rendering, e.g. ``a^p[ a^l( a^r( b^p) ...`` — used by the
    figure-gallery example to reproduce the displayed sequence of Fig. 10."""
    role_names = {ROLE_P: "p", ROLE_L: "l", ROLE_R: "r"}
    parts = []
    for i in range(len(seq)):
        v = int(seq.vertex[i])
        if names is not None and v < len(names):
            name = str(names[v])
        elif v >= seq.num_real:
            name = f"d{v - seq.num_real + 1}"
        else:
            name = f"v{v}"
        if seq.is_square[i]:
            sym = "[" if seq.is_open[i] else "]"
        else:
            sym = "(" if seq.is_open[i] else ")"
        parts.append(f"{name}^{role_names[int(seq.role[i])]}{sym}")
    return " ".join(parts)
