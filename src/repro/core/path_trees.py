"""Steps 5–7 — pseudo path trees from bracket matching, legalisation, and
dummy removal.

* **Step 5** (:func:`build_pseudo_forest`): the square and the round brackets
  are matched independently (Lemma 5.1(3)); every matched pair is one edge of
  the pseudo path forest, with the bracket roles encoding the child side
  (``a^p[`` matched by ``b^l]`` makes ``a`` the left child of ``b``, and the
  round brackets mirror this with the parent on the open side).

* **Step 6** (:func:`legalize_forest`): an insert or dummy vertex is
  *illegal* when its inorder neighbour within its path tree is a bridge
  vertex of the same 1-node — exactly the ``2p(v) − 2`` bad slots of
  Section 3.  Illegal insert vertices are exchanged (together with their
  subtrees) with legal dummy vertices of the same 1-node.

* **Step 7** (:func:`remove_dummies`): dummy vertices (which by construction
  have at most one child, on the right) are spliced out, turning the pseudo
  path trees into genuine path trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..backends import resolve_context
from ..primitives import compute_tree_numbers, match_brackets, prefix_max, prefix_sum
from .brackets import ROLE_L, ROLE_P, ROLE_R, BracketSequence
from .reduce import ReducedCotree, VertexClass

__all__ = ["PathForest", "build_pseudo_forest", "legalize_forest",
           "remove_dummies"]


@dataclass
class PathForest:
    """A binary forest over the path-tree node universe (vertices + dummies).

    Node ids ``0 .. num_real-1`` are cograph vertices; ids
    ``num_real .. num_real+num_dummies-1`` are dummy vertices.
    """

    parent: np.ndarray
    left: np.ndarray
    right: np.ndarray
    num_real: int
    num_dummies: int
    dummy_owner: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.num_real + self.num_dummies

    def is_dummy(self, nodes) -> np.ndarray:
        return np.asarray(nodes) >= self.num_real

    def roots(self, include_dummies: bool = True) -> np.ndarray:
        """Nodes with no parent (in node-id order)."""
        r = np.flatnonzero(self.parent == -1)
        if not include_dummies:
            r = r[r < self.num_real]
        return r

    def copy(self) -> "PathForest":
        return PathForest(self.parent.copy(), self.left.copy(),
                          self.right.copy(), self.num_real, self.num_dummies,
                          self.dummy_owner.copy())


# --------------------------------------------------------------------------- #
# Step 5: matching -> pseudo forest
# --------------------------------------------------------------------------- #

def build_pseudo_forest(ctx, seq: BracketSequence, *,
                        block_prepass: bool = True,
                        label: str = "pseudo") -> PathForest:
    """Match the brackets and convert the matched pairs into tree edges."""
    machine = resolve_context(ctx)
    total_nodes = seq.total_nodes()
    parent = np.full(total_nodes, -1, dtype=np.int64)
    left = np.full(total_nodes, -1, dtype=np.int64)
    right = np.full(total_nodes, -1, dtype=np.int64)

    seg_all = getattr(seq, "segment_of", None)
    for square in (True, False):
        positions = np.flatnonzero(seq.is_square == square)
        if len(positions) == 0:
            continue
        sub_open = seq.is_open[positions]
        sub_match = match_brackets(machine, sub_open,
                                   block_prepass=block_prepass,
                                   segment_id=None if seg_all is None
                                   else seg_all[positions],
                                   label=f"{label}.match-{'sq' if square else 'rd'}")
        matched = np.flatnonzero(sub_match >= 0)
        if len(matched) == 0:
            continue
        # consider each matched *close* once; its partner is an open
        closes = matched[~sub_open[matched]]
        opens = sub_match[closes]
        close_pos = positions[closes]
        open_pos = positions[opens]
        with machine.step(active=len(closes), label=f"{label}:edges"):
            if square:
                # open is a^p[ , close is b^l] or b^r] : a is a child of b
                child = seq.vertex[open_pos]
                par = seq.vertex[close_pos]
                close_role = seq.role[close_pos]
                parent[child] = par
                left_mask = close_role == ROLE_L
                left[par[left_mask]] = child[left_mask]
                right[par[~left_mask]] = child[~left_mask]
            else:
                # open is a^l( or a^r( , close is b^p) : b is a child of a
                par = seq.vertex[open_pos]
                child = seq.vertex[close_pos]
                open_role = seq.role[open_pos]
                parent[child] = par
                left_mask = open_role == ROLE_L
                left[par[left_mask]] = child[left_mask]
                right[par[~left_mask]] = child[~left_mask]

    return PathForest(parent=parent, left=left, right=right,
                      num_real=seq.num_real, num_dummies=seq.num_dummies,
                      dummy_owner=seq.dummy_owner)


# --------------------------------------------------------------------------- #
# Step 6: legalisation
# --------------------------------------------------------------------------- #

def legalize_forest(ctx, forest: PathForest,
                    reduced: ReducedCotree, *, work_efficient: bool = True,
                    label: str = "legalize") -> Tuple[PathForest, int]:
    """Exchange illegal insert vertices with legal dummy vertices.

    Returns the legalised forest (a copy) and the number of exchanges made.
    """
    machine = resolve_context(ctx)
    forest = forest.copy()
    n_total = forest.num_nodes
    num_real = forest.num_real

    # node attributes over the forest universe
    node_owner = np.full(n_total, -1, dtype=np.int64)
    node_owner[:num_real] = reduced.vertex_owner
    if forest.num_dummies:
        node_owner[num_real:] = forest.dummy_owner
    node_class = np.full(n_total, -1, dtype=np.int64)
    node_class[:num_real] = reduced.vertex_class
    DUMMY = 3
    if forest.num_dummies:
        node_class[num_real:] = DUMMY

    movable = np.flatnonzero((node_class == VertexClass.INSERT) |
                             (node_class == DUMMY))
    if len(movable) == 0:
        return forest, 0

    roots = forest.roots()
    numbers = compute_tree_numbers(machine, forest.left, forest.right,
                                   forest.parent, roots,
                                   work_efficient=work_efficient,
                                   label=f"{label}.numbers")
    inorder = numbers.inorder
    node_at_pos = np.full(n_total, -1, dtype=np.int64)
    node_at_pos[inorder] = np.arange(n_total)

    # tree id of every inorder position (the tours of the roots are chained
    # in `roots` order, so tree sizes give the boundaries)
    tree_sizes = numbers.subtree_size[roots]
    tree_start = prefix_sum(machine, tree_sizes, inclusive=False,
                            label=f"{label}.boundaries")
    tree_id_of_pos = np.zeros(n_total, dtype=np.int64)
    tree_id_of_pos[tree_start] = 1
    tree_id_of_pos = np.cumsum(tree_id_of_pos) - 1

    # Legality must be judged on the inorder sequence *as it will look after
    # Step 7*, i.e. with dummy vertices skipped: a dummy hanging off an
    # insert would otherwise shield it from the bridge vertex it ends up next
    # to once the dummies are spliced out.  The nearest non-dummy node to the
    # left/right of every position is a prefix/suffix maximum.
    NEG = np.int64(-1)
    is_real_pos = node_at_pos < forest.num_real
    pos_if_real = np.where(is_real_pos, np.arange(n_total), NEG)
    # nearest real position strictly to the left of every position
    left_real = prefix_max(machine, pos_if_real, inclusive=False,
                           label=f"{label}.left-real")
    left_real = np.where(left_real >= 0, left_real, NEG)
    # nearest real position strictly to the right: the same scan on the
    # reversed sequence (reversed coordinate r <-> original n_total-1-r)
    rev_pos_if_real = np.where(is_real_pos[::-1], np.arange(n_total), NEG)
    rev_left = prefix_max(machine, rev_pos_if_real, inclusive=False,
                          label=f"{label}.right-real")
    vals = rev_left[::-1]
    right_real = np.where(vals >= 0, (n_total - 1) - vals, NEG)

    def real_neighbour(positions: np.ndarray, side_left: bool) -> np.ndarray:
        """Nearest non-dummy inorder neighbour within the same tree (or -1)."""
        q = left_real[positions] if side_left else right_real[positions]
        ok = (q >= 0) & (q < n_total)
        same = np.zeros(len(positions), dtype=bool)
        same[ok] = tree_id_of_pos[q[ok]] == tree_id_of_pos[positions[ok]]
        out = np.full(len(positions), -1, dtype=np.int64)
        out[ok & same] = node_at_pos[q[ok & same]]
        return out

    pos = inorder[movable]
    with machine.step(active=len(movable), label=f"{label}:check"):
        prev_nb = real_neighbour(pos, True)
        next_nb = real_neighbour(pos, False)

        def is_bad(nb):
            bad = np.zeros(len(movable), dtype=bool)
            ok = nb != -1
            bad[ok] = ((node_class[nb[ok]] == VertexClass.BRIDGE) &
                       (node_owner[nb[ok]] == node_owner[movable[ok]]))
            return bad

        illegal = is_bad(prev_nb) | is_bad(next_nb)

    is_insert = node_class[movable] == VertexClass.INSERT
    illegal_inserts = movable[illegal & is_insert]
    legal_dummies = movable[(~illegal) & (~is_insert)]

    if len(illegal_inserts) == 0:
        return forest, 0

    # pair the k-th illegal insert with the k-th legal dummy of the same
    # owner (ordered by inorder position); the counting argument of Section 4
    # guarantees enough legal dummies exist.  Segmented matching: with both
    # sides sorted by (owner, inorder), insert number j of an owner block
    # picks dummy number j of the same owner's block — two searchsorted
    # calls instead of a Python loop over owners.
    def sort_by_owner(nodes: np.ndarray) -> np.ndarray:
        order = np.lexsort((inorder[nodes], node_owner[nodes]))
        return nodes[order]

    ins_sorted = sort_by_owner(illegal_inserts)
    dum_sorted = sort_by_owner(legal_dummies)
    ins_owner = node_owner[ins_sorted]
    dum_owner = node_owner[dum_sorted]

    within_owner = np.arange(len(ins_sorted)) - \
        np.searchsorted(ins_owner, ins_owner, side="left")
    d_idx = np.searchsorted(dum_owner, ins_owner, side="left") + within_owner
    bad = d_idx >= len(dum_sorted)
    if not bad.all():
        ok = ~bad
        bad[ok] = dum_owner[d_idx[ok]] != ins_owner[ok]
    if np.any(bad):  # pragma: no cover - structural invariant
        owner = int(ins_owner[np.flatnonzero(bad)[0]])
        raise AssertionError(
            f"owner {owner}: more illegal inserts than legal dummies")
    x = ins_sorted
    d = dum_sorted[d_idx]

    # exchange positions (subtrees travel with their roots)
    parent = forest.parent
    left = forest.left
    right = forest.right
    with machine.step(active=len(x), label=f"{label}:swap"):
        px, pd = parent[x].copy(), parent[d].copy()
        x_is_left = (px != -1) & (left[np.maximum(px, 0)] == x)
        d_is_left = (pd != -1) & (left[np.maximum(pd, 0)] == d)
        parent[x], parent[d] = pd, px
        # re-point the child slots
        _set_child(left, right, pd, d_is_left, x)
        _set_child(left, right, px, x_is_left, d)

    return forest, int(len(x))


def _set_child(left: np.ndarray, right: np.ndarray, parents: np.ndarray,
               is_left: np.ndarray, children: np.ndarray) -> None:
    """Point ``parents``' left/right slots at ``children`` (vectorised)."""
    ok = parents != -1
    lmask = ok & is_left
    rmask = ok & ~is_left
    left[parents[lmask]] = children[lmask]
    right[parents[rmask]] = children[rmask]


# --------------------------------------------------------------------------- #
# Step 7: dummy removal
# --------------------------------------------------------------------------- #

def remove_dummies(ctx, forest: PathForest, *,
                   label: str = "compress") -> PathForest:
    """Splice every dummy vertex out of its path tree.

    A dummy has at most one child (always a right child, because a dummy
    emits only a ``d^r(`` bracket), so removal is path compression along
    dummy chains: the first non-dummy descendant takes the dummy's place.
    """
    machine = resolve_context(ctx)
    forest = forest.copy()
    num_real = forest.num_real
    if forest.num_dummies == 0:
        return forest

    is_dummy = np.arange(forest.num_nodes) >= num_real
    dummy_roots = np.flatnonzero((forest.parent == -1) & is_dummy)
    if len(dummy_roots):  # pragma: no cover - structural invariant
        raise AssertionError("a dummy vertex became a path-tree root")

    # replacement of a dummy: follow right-child links through dummies
    # (pointer-jumping compaction — O(log n) rounds, no per-node work)
    rep = machine.array(forest.right.copy(), name=f"{label}.rep")
    max_rounds = max(1, int(np.ceil(np.log2(max(forest.num_nodes, 2)))) + 1)
    dummies = np.flatnonzero(is_dummy)
    for _ in range(max_rounds):
        cur = rep.data[dummies]
        needs_jump = (cur != -1) & (cur >= num_real)
        if not needs_jump.any():
            break
        active = dummies[needs_jump]
        with machine.step(active=len(active), label=f"{label}:jump"):
            rep.scatter(active, rep.gather(rep.local(active)))

    # every real parent of a dummy child replaces that child by the dummy's
    # replacement (possibly -1)
    parent = forest.parent
    left = forest.left
    right = forest.right
    for side_name, child_arr in (("left", left), ("right", right)):
        holders = np.flatnonzero((child_arr != -1) & (child_arr >= num_real)
                                 & (np.arange(forest.num_nodes) < num_real))
        if len(holders) == 0:
            continue
        with machine.step(active=len(holders), label=f"{label}:splice-{side_name}"):
            new_child = rep.data[child_arr[holders]]
            child_arr[holders] = new_child
            ok = new_child != -1
            parent[new_child[ok]] = holders[ok]

    # detach all dummies
    with machine.step(active=forest.num_dummies, label=f"{label}:detach"):
        parent[num_real:] = -1
        left[num_real:] = -1
        right[num_real:] = -1
    return forest
