"""The paper's contribution: the time- and work-optimal parallel minimum
path cover algorithm for cographs (Sections 2–5), plus the lower-bound
construction and the Hamiltonicity corollaries.
"""

from .binarize import binarize_parallel
from .brackets import (
    ROLE_L,
    ROLE_P,
    ROLE_R,
    BracketSequence,
    generate_brackets,
    render_brackets,
)
from .dp import (
    BUILTIN_DPS,
    CHROMATIC_NUMBER_DP,
    CLIQUE_COVER_DP,
    COUNT_INDEPENDENT_SETS_DP,
    MAX_CLIQUE_DP,
    MAX_INDEPENDENT_SET_DP,
    PATH_COVER_SIZE_DP,
    Combine,
    CotreeDP,
    CotreeDPRun,
    class_assignment,
    run_cotree_dp,
    run_cotree_dp_sequential,
    selected_subtree_vertices,
)
from .extract import extract_paths
from .hamiltonian import (
    HamiltonicityReport,
    hamiltonian_cycle,
    hamiltonian_path,
    hamiltonicity_report,
    has_hamiltonian_cycle,
    has_hamiltonian_path,
)
from .leftist import LeftistCotree, leftist_reorder
from .lower_bound import (
    LowerBoundInstance,
    expected_path_count,
    or_from_cover,
    or_from_path_count,
    or_instance_cotree,
    parallel_or_rounds,
)
from .batch import (
    BatchResult,
    Resolved,
    WorkerPool,
    fan_out,
    resolve_jobs,
    solve_batch,
    stream_out,
)
from .faults import CORRUPT_SENTINEL, FaultPlan
from .retry import CircuitBreaker, ErrorOutcome, RetryPolicy, WorkerCrashError
from .path_trees import PathForest, build_pseudo_forest, legalize_forest, remove_dummies
from .pipeline import (
    STAGE_ORDER,
    Pipeline,
    PipelineError,
    PipelineRun,
    PipelineState,
    StageTiming,
)
from .reduce import ReducedCotree, VertexClass, reduce_cotree
from .solver import (
    ParallelPathCoverResult,
    PathCoverSolver,
    minimum_path_cover_parallel,
)

__all__ = [
    "binarize_parallel",
    "leftist_reorder", "LeftistCotree",
    "reduce_cotree", "ReducedCotree", "VertexClass",
    "generate_brackets", "render_brackets", "BracketSequence",
    "ROLE_P", "ROLE_L", "ROLE_R",
    "build_pseudo_forest", "legalize_forest", "remove_dummies", "PathForest",
    "extract_paths",
    "minimum_path_cover_parallel", "ParallelPathCoverResult", "PathCoverSolver",
    "Pipeline", "PipelineRun", "PipelineState", "PipelineError",
    "StageTiming", "STAGE_ORDER",
    "solve_batch", "BatchResult", "WorkerPool", "Resolved",
    "fan_out", "stream_out", "resolve_jobs",
    "RetryPolicy", "ErrorOutcome", "WorkerCrashError", "CircuitBreaker",
    "FaultPlan", "CORRUPT_SENTINEL",
    "or_instance_cotree", "or_from_path_count", "or_from_cover",
    "expected_path_count", "parallel_or_rounds", "LowerBoundInstance",
    "has_hamiltonian_path", "has_hamiltonian_cycle", "hamiltonian_path",
    "hamiltonian_cycle", "HamiltonicityReport", "hamiltonicity_report",
    "CotreeDP", "Combine", "CotreeDPRun",
    "run_cotree_dp", "run_cotree_dp_sequential",
    "selected_subtree_vertices", "class_assignment",
    "PATH_COVER_SIZE_DP", "MAX_CLIQUE_DP", "MAX_INDEPENDENT_SET_DP",
    "CHROMATIC_NUMBER_DP", "CLIQUE_COVER_DP", "COUNT_INDEPENDENT_SETS_DP",
    "BUILTIN_DPS",
]
