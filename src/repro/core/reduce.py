"""Step 3 — path-cover counts ``p(u)`` and the reduced cotree ``Tblr(G)``.

Two things happen here:

1. ``p(u)`` is computed for every node of the leftist binarized cotree by the
   tree-contraction evaluator (Lemma 2.4; see
   :mod:`repro.primitives.tree_contraction`).

2. The *reduction* of the paper (Fig. 5) is carried out: for every 1-node
   whose right subtree has not already been swallowed by a higher 1-node, the
   right subtree is conceptually flattened into ``L(w)`` leaves, which are
   classified as **bridge** or **insert** vertices.  Vertices outside every
   flattened region are **primary**.  We never materialise the flattened
   tree; instead we compute, for every cograph vertex, its class, its owning
   1-node and its rank within the owner's block — exactly the data the
   bracket generator (Step 4) needs.

The flattened regions are the subtrees hanging off *marked* nodes (nodes that
are the right child of a 1-node) having no marked proper ancestor; the
owner of such a region is the 1-node just above its root.  This is the
"topmost marked ancestor" computation of
:func:`repro.primitives.ancestors.topmost_marked_ancestor`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends import resolve_context
from ..cograph import BinaryCotree
from ..cograph.cotree import JOIN, LEAF, UNION
from ..primitives import (
    evaluate_max_plus_tree,
    prefix_sum,
    topmost_marked_ancestor,
)
from .leftist import LeftistCotree

__all__ = ["VertexClass", "ReducedCotree", "reduce_cotree"]


class VertexClass:
    """Vertex classification codes (per the paper's Section 2)."""

    PRIMARY = 0
    BRIDGE = 1
    INSERT = 2


@dataclass
class ReducedCotree:
    """The reduced leftist binarized cotree, in implicit (per-vertex) form.

    Attributes
    ----------
    tree:
        the leftist binarized cotree ``Tbl(G)`` (unchanged).
    p:
        ``p(u)`` for every node.
    leaf_count:
        ``L(u)`` for every node.
    active:
        boolean per node: ``True`` when the node is *not* inside a flattened
        region (it survives into ``Tblr``).
    owner_of_node:
        for every node inside a flattened region, the owning active 1-node;
        ``-1`` elsewhere.
    vertex_class:
        per cograph vertex: PRIMARY / BRIDGE / INSERT.
    vertex_owner:
        per cograph vertex: the owning active 1-node (``-1`` for primary
        vertices).
    vertex_rank:
        per cograph vertex: rank (0-based, left-to-right) within its owner's
        flattened block; ``-1`` for primary vertices.
    num_dummies_of:
        per node: number of dummy vertices contributed by this active 1-node
        (``2 p(v) - 2`` in Case 2, else 0).
    numbers:
        the tree numbering of ``Tbl(G)`` (shared with Step 2).
    """

    tree: BinaryCotree
    p: np.ndarray
    leaf_count: np.ndarray
    active: np.ndarray
    owner_of_node: np.ndarray
    vertex_class: np.ndarray
    vertex_owner: np.ndarray
    vertex_rank: np.ndarray
    num_dummies_of: np.ndarray
    numbers: object

    # -- convenience accessors (used by Step 4 and the tests) ------------- #

    def active_join_nodes(self) -> np.ndarray:
        """Active 1-nodes (the emitters of bracket suffix blocks)."""
        t = self.tree
        nodes = np.flatnonzero((np.asarray(t.kind) == JOIN) & self.active)
        return nodes

    def case1(self, u) -> np.ndarray:
        """Boolean: is the active 1-node ``u`` in Case 1 (``p(v) > L(w)``)?"""
        t = self.tree
        u = np.asarray(u, dtype=np.int64)
        return self.p[t.left[u]] > self.leaf_count[t.right[u]]

    def minimum_path_count(self) -> int:
        """``p(root)`` — the size of a minimum path cover."""
        return int(self.p[self.tree.root])


def reduce_cotree(ctx, leftist: LeftistCotree, *,
                  work_efficient: bool = True,
                  label: str = "reduce") -> ReducedCotree:
    """Compute ``p(u)``, the flattened regions and the vertex classification."""
    machine = resolve_context(ctx)
    tree = leftist.tree
    numbers = leftist.numbers
    n_nodes = tree.num_nodes
    n_vertices = tree.num_vertices
    kind = np.asarray(tree.kind, dtype=np.int64)
    L = numbers.subtree_leaves
    forest_roots = getattr(tree, "roots", None)
    roots = np.asarray(forest_roots, dtype=np.int64) if forest_roots is not None \
        else None

    # ---- p(u) by tree contraction (Lemma 2.4) --------------------------- #
    join_const = np.zeros(n_nodes, dtype=np.int64)
    internal = tree.internal_nodes
    join_const[internal] = L[tree.right[internal]]
    leaf_values = np.ones(n_nodes, dtype=np.int64)
    p = evaluate_max_plus_tree(machine, tree.left, tree.right, tree.parent,
                               roots if roots is not None else tree.root,
                               kind, join_const, leaf_values,
                               leaf_inorder=numbers.inorder,
                               label=f"{label}.p-values")

    # ---- flattened regions ---------------------------------------------- #
    # marked node = right child of a 1-node
    marked = np.zeros(n_nodes, dtype=bool)
    joins = np.flatnonzero(kind == JOIN)
    marked[tree.right[joins]] = True
    # Off the simulator the leftist stage's tour (same tree, same root) is
    # reused; the simulated path still builds its own so the PRAM cost
    # report accounts every step the paper's Step 3 performs.
    shared_tour = None if machine.simulates else numbers.tour
    root_list = [int(r) for r in roots] if roots is not None else [tree.root]
    top_mark = topmost_marked_ancestor(machine, tree.left, tree.right,
                                       tree.parent, root_list, marked,
                                       work_efficient=work_efficient,
                                       tour=shared_tour,
                                       label=f"{label}.regions")
    inside_region = top_mark != -1
    active = ~inside_region
    # region roots are marked nodes that are their own topmost mark; the
    # owner of the region is the 1-node just above the region root.
    owner_of_node = np.full(n_nodes, -1, dtype=np.int64)
    idx = np.flatnonzero(inside_region)
    owner_of_node[idx] = tree.parent[top_mark[idx]]

    # ---- per-vertex classification --------------------------------------- #
    leaves = tree.leaves
    leaf_vertex = np.asarray(tree.leaf_vertex)
    # rank of each leaf among all leaves in inorder
    inorder = numbers.inorder
    leaf_flag_by_inorder = np.zeros(n_nodes, dtype=np.int64)
    leaf_flag_by_inorder[inorder[leaves]] = 1
    leaf_rank_prefix = prefix_sum(machine, leaf_flag_by_inorder, inclusive=True,
                                  label=f"{label}.leafrank")
    leaf_rank = np.zeros(n_nodes, dtype=np.int64)
    leaf_rank[leaves] = leaf_rank_prefix[inorder[leaves]] - 1

    # number of leaves strictly to the left of each node's subtree
    tour = numbers.tour
    nodes_all = np.arange(n_nodes, dtype=np.int64)
    arc_vals = np.zeros(2 * n_nodes, dtype=np.int64)
    arc_vals[tour.enter(leaves)] = 1
    leaf_enter_prefix = tour.prefix_over_tour(machine, arc_vals, inclusive=False,
                                              label=f"{label}.leaves-before")
    leaves_before = leaf_enter_prefix[tour.enter(nodes_all)]

    vertex_class = np.full(n_vertices, VertexClass.PRIMARY, dtype=np.int64)
    vertex_owner = np.full(n_vertices, -1, dtype=np.int64)
    vertex_rank = np.full(n_vertices, -1, dtype=np.int64)

    region_leaves = leaves[inside_region[leaves]]
    if len(region_leaves):
        with machine.step(active=len(region_leaves), label=f"{label}:classify"):
            owners = owner_of_node[region_leaves]
            region_roots = top_mark[region_leaves]
            ranks = leaf_rank[region_leaves] - leaves_before[region_roots]
            verts = leaf_vertex[region_leaves]
            vertex_owner[verts] = owners
            vertex_rank[verts] = ranks
            p_v = p[tree.left[owners]]
            L_w = L[tree.right[owners]]
            is_case1 = p_v > L_w
            # Case 1: every region vertex bridges; Case 2: the first p(v)-1
            # bridge, the rest are inserted.
            bridge = is_case1 | (ranks < p_v - 1)
            vertex_class[verts] = np.where(bridge, VertexClass.BRIDGE,
                                           VertexClass.INSERT)

    # ---- dummy counts per active 1-node ---------------------------------- #
    num_dummies_of = np.zeros(n_nodes, dtype=np.int64)
    active_joins = np.flatnonzero((kind == JOIN) & active)
    if len(active_joins):
        p_v = p[tree.left[active_joins]]
        L_w = L[tree.right[active_joins]]
        case2 = p_v <= L_w
        num_dummies_of[active_joins] = np.where(case2, 2 * p_v - 2, 0)

    return ReducedCotree(tree=tree, p=p, leaf_count=L, active=active,
                         owner_of_node=owner_of_node,
                         vertex_class=vertex_class, vertex_owner=vertex_owner,
                         vertex_rank=vertex_rank,
                         num_dummies_of=num_dummies_of, numbers=numbers)
