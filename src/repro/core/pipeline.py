"""The eight-stage solver pipeline as a declarative, named-stage object.

The paper's Section 5 algorithm is a fixed chain

    binarize → leftist → reduce → brackets → pseudo → legalize
             → compress → extract

Historically every benchmark and ablation copy-pasted that chain and
commented out the stage under study.  :class:`Pipeline` replaces the
copy-paste: a pipeline is a *subsequence* of the canonical stage list, each
stage is a named function over a shared :class:`PipelineState`, and
:meth:`Pipeline.run` executes the selected stages on any execution backend
while collecting per-stage wall-clock timings.

Typical uses::

    Pipeline.default().run(tree)                    # the full solver
    Pipeline.until("reduce").run(tree, "pram")      # p(u) only, simulated
    Pipeline.default().without("legalize").run(t)   # the A2 ablation

The stage functions write their artefacts into the state (``state.reduced``,
``state.cover``, ...), so a partial run exposes exactly the intermediates the
caller asked for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..backends import ExecutionContext, resolve_context
from ..cograph import BinaryCotree, Cotree, FlatCotree, PathCover
from .binarize import binarize_parallel
from .brackets import BracketSequence, generate_brackets
from .extract import extract_paths
from .leftist import LeftistCotree, leftist_reorder
from .path_trees import PathForest, build_pseudo_forest, legalize_forest, \
    remove_dummies
from .reduce import ReducedCotree, reduce_cotree

__all__ = ["STAGE_ORDER", "PipelineState", "StageTiming", "Pipeline",
           "PipelineRun", "PipelineError"]

#: the canonical stage names, in the paper's Step 1..8 order
STAGE_ORDER: Tuple[str, ...] = (
    "binarize", "leftist", "reduce", "brackets",
    "pseudo", "legalize", "compress", "extract",
)


class PipelineError(ValueError):
    """Raised for invalid stage selections or missing prerequisites."""


@dataclass
class PipelineState:
    """Everything a pipeline run produces, stage by stage."""

    ctx: ExecutionContext
    work_efficient: bool = True
    general: Optional[Union[Cotree, FlatCotree]] = None
    binary: Optional[BinaryCotree] = None
    leftist: Optional[LeftistCotree] = None
    reduced: Optional[ReducedCotree] = None
    brackets: Optional[BracketSequence] = None
    forest: Optional[PathForest] = None
    exchanges: int = 0
    cover: Optional[PathCover] = None

    def require(self, attr: str, needed_by: str):
        value = getattr(self, attr)
        if value is None:
            raise PipelineError(
                f"stage {needed_by!r} needs {attr!r}, which no earlier stage "
                f"produced; include the producing stage in the pipeline")
        return value


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock of one executed stage."""

    name: str
    seconds: float


# --------------------------------------------------------------------------- #
# stage bodies (Step 1 .. Step 8)
# --------------------------------------------------------------------------- #

def _stage_binarize(state: PipelineState) -> None:
    if state.binary is None:   # a BinaryCotree input skips Step 1
        state.binary = binarize_parallel(state.ctx,
                                         state.require("general", "binarize"),
                                         label="step1.binarize")


def _stage_leftist(state: PipelineState) -> None:
    state.leftist = leftist_reorder(state.ctx,
                                    state.require("binary", "leftist"),
                                    work_efficient=state.work_efficient,
                                    label="step2.leftist")


def _stage_reduce(state: PipelineState) -> None:
    state.reduced = reduce_cotree(state.ctx,
                                  state.require("leftist", "reduce"),
                                  work_efficient=state.work_efficient,
                                  label="step3.reduce")


def _stage_brackets(state: PipelineState) -> None:
    state.brackets = generate_brackets(state.ctx,
                                       state.require("reduced", "brackets"),
                                       label="step4.brackets")


def _stage_pseudo(state: PipelineState) -> None:
    state.forest = build_pseudo_forest(state.ctx,
                                       state.require("brackets", "pseudo"),
                                       label="step5.pseudo")


def _stage_legalize(state: PipelineState) -> None:
    state.forest, state.exchanges = legalize_forest(
        state.ctx, state.require("forest", "legalize"),
        state.require("reduced", "legalize"),
        work_efficient=state.work_efficient, label="step6.legalize")


def _stage_compress(state: PipelineState) -> None:
    state.forest = remove_dummies(state.ctx,
                                  state.require("forest", "compress"),
                                  label="step7.compress")


def _stage_extract(state: PipelineState) -> None:
    state.cover = extract_paths(state.ctx,
                                state.require("forest", "extract"),
                                work_efficient=state.work_efficient,
                                label="step8.extract")


_STAGE_FUNCS: Dict[str, Callable[[PipelineState], None]] = {
    "binarize": _stage_binarize,
    "leftist": _stage_leftist,
    "reduce": _stage_reduce,
    "brackets": _stage_brackets,
    "pseudo": _stage_pseudo,
    "legalize": _stage_legalize,
    "compress": _stage_compress,
    "extract": _stage_extract,
}


# --------------------------------------------------------------------------- #
# the pipeline object
# --------------------------------------------------------------------------- #

@dataclass
class PipelineRun:
    """The outcome of one :meth:`Pipeline.run`."""

    state: PipelineState
    timings: List[StageTiming] = field(default_factory=list)

    @property
    def cover(self) -> Optional[PathCover]:
        return self.state.cover

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage wall-clock, in execution order."""
        return {t.name: t.seconds for t in self.timings}

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)


class Pipeline:
    """An ordered selection of solver stages.

    ``stages`` must be a subsequence of :data:`STAGE_ORDER` (stages can be
    dropped, not reordered).  Missing prerequisites are reported by the stage
    that needs them, at run time.
    """

    def __init__(self, stages: Sequence[str] = STAGE_ORDER) -> None:
        stages = tuple(stages)
        unknown = [s for s in stages if s not in _STAGE_FUNCS]
        if unknown:
            raise PipelineError(f"unknown stage(s) {unknown}; valid stages "
                                f"are {list(STAGE_ORDER)}")
        positions = [STAGE_ORDER.index(s) for s in stages]
        if sorted(positions) != positions or len(set(positions)) != len(positions):
            raise PipelineError(
                f"stages must be a subsequence of {list(STAGE_ORDER)}, "
                f"got {list(stages)}")
        self.stages = stages

    # -- declarative constructors ---------------------------------------- #

    @classmethod
    def default(cls) -> "Pipeline":
        """All eight stages — the full Theorem 5.3 solver."""
        return cls(STAGE_ORDER)

    @classmethod
    def until(cls, last_stage: str) -> "Pipeline":
        """The prefix of the pipeline up to and including ``last_stage``."""
        if last_stage not in STAGE_ORDER:
            raise PipelineError(f"unknown stage {last_stage!r}")
        idx = STAGE_ORDER.index(last_stage)
        return cls(STAGE_ORDER[:idx + 1])

    def without(self, *names: str) -> "Pipeline":
        """A copy with the named stages removed (for ablations)."""
        for name in names:
            if name not in STAGE_ORDER:
                raise PipelineError(f"unknown stage {name!r}")
        return Pipeline(tuple(s for s in self.stages if s not in names))

    # -- execution -------------------------------------------------------- #

    def run(self, tree: Union[Cotree, FlatCotree, BinaryCotree],
            ctx=None, *,
            work_efficient: bool = True,
            collect_timings: bool = True) -> PipelineRun:
        """Execute the selected stages on ``tree``.

        Parameters
        ----------
        tree:
            a general (canonical) cotree — as a :class:`Cotree` or, on the
            hot path, a :class:`FlatCotree` — or an already-binarized
            cotree (which makes the ``binarize`` stage a no-op).
        ctx:
            execution context — anything
            :func:`~repro.backends.resolve_context` accepts.
        collect_timings:
            record per-stage wall-clock in the returned run.
        """
        context = resolve_context(ctx)
        state = PipelineState(ctx=context, work_efficient=work_efficient)
        if isinstance(tree, BinaryCotree):
            state.binary = tree
        else:
            state.general = tree

        run = PipelineRun(state=state)
        for name in self.stages:
            t0 = time.perf_counter() if collect_timings else 0.0
            _STAGE_FUNCS[name](state)
            if collect_timings:
                run.timings.append(
                    StageTiming(name, time.perf_counter() - t0))
        return run

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pipeline({list(self.stages)})"
