"""The declarative bottom-up cotree-DP engine.

Nearly every classic cograph problem — minimum path cover size, maximum
clique, maximum independent set, chromatic number, clique cover, counting
independent sets — is the *same computation shape*: give every leaf a value,
then combine child values at 0-nodes (union) and 1-nodes (join), bottom-up.
This module captures that shape once:

* :class:`CotreeDP` is a declarative spec — a leaf initialiser plus one
  :class:`Combine` rule per internal-node kind (an optional elementwise
  ``prepare`` over child values, a set of named segmented reductions drawn
  from ``sum`` / ``max`` / ``min`` / ``prod``, and an optional elementwise
  ``finish``), with an optional witness reconstruction;
* :func:`run_cotree_dp` executes a spec level-wise over
  :class:`~repro.cograph.FlatCotree` CSR arrays on any execution backend.
  On the :class:`~repro.backends.FastBackend` each level is **loop-free**:
  the children of all the level's nodes are gathered with one fancy-index
  expression and reduced with one ``np.ufunc.reduceat`` call per named
  reduction.  On the :class:`~repro.backends.PRAMBackend` the same
  reductions run as ``ceil(log2 max_arity)`` accounted halving rounds per
  level, so every DP inherits the EREW cost model for free — the engine's
  time is ``O(height + sum_level log arity)``, the cost profile of the
  "naive level-by-level parallelisation" the paper discusses after
  Lemma 2.3 (the bracket pipeline exists precisely to beat this on deep
  trees; the engine is the general workhorse, not the headline algorithm);
* :func:`run_cotree_dp_sequential` is the one generic postorder reference
  evaluator (the ``method="sequential"`` path of the DP tasks) — no task
  carries a bespoke traversal of its own.

Outputs are bit-identical across all three execution paths (the reduction
operators are associative over exact integers), which
``tests/test_dp_engine.py`` pins for every built-in spec.

The built-in specs live at the bottom of the module; the engine is public,
so out-of-tree DPs get the backends, the witness helpers and the
``solve()`` front door (via :func:`repro.api.register_task`) for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from .._dfs import depth_by_doubling as _depth_by_doubling
from ..backends import ExecutionContext, resolve_context
from ..cograph import FlatCotree, as_flat_cotree
from ..cograph.cotree import JOIN, LEAF, UNION

__all__ = [
    "Combine",
    "CotreeDP",
    "CotreeDPRun",
    "run_cotree_dp",
    "run_cotree_dp_sequential",
    "selected_subtree_vertices",
    "class_assignment",
    "PATH_COVER_SIZE_DP",
    "MAX_CLIQUE_DP",
    "MAX_INDEPENDENT_SET_DP",
    "CHROMATIC_NUMBER_DP",
    "CLIQUE_COVER_DP",
    "COUNT_INDEPENDENT_SETS_DP",
    "BUILTIN_DPS",
]

#: the associative reduction operators a :class:`Combine` may name.
_REDUCE_UFUNCS: Dict[str, np.ufunc] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


@dataclass(frozen=True)
class Combine:
    """How one internal-node kind combines its children's DP values.

    Attributes
    ----------
    reduce:
        tuple of ``(output_name, op, source)`` triples: for every internal
        node of this kind, ``output_name`` becomes the segmented ``op``
        (``"sum"`` / ``"max"`` / ``"min"`` / ``"prod"``) of ``source`` over
        the node's children.  ``source`` is a DP field name or a derived
        array produced by ``prepare``.
    prepare:
        optional elementwise map over child values,
        ``prepare(child_values) -> dict of derived arrays`` (each aligned
        with the child arrays).  Runs as one parallel step.
    finish:
        optional elementwise map from the reduced outputs to the node's DP
        fields, ``finish(reduced) -> dict of field arrays``.  When omitted
        the reduction outputs must already carry the DP field names.
    """

    reduce: Tuple[Tuple[str, str, str], ...]
    prepare: Optional[Callable[[Dict[str, np.ndarray]],
                               Dict[str, np.ndarray]]] = None
    finish: Optional[Callable[[Dict[str, np.ndarray]],
                              Dict[str, np.ndarray]]] = None

    def __post_init__(self) -> None:
        for out, op, _src in self.reduce:
            if op not in _REDUCE_UFUNCS:
                raise ValueError(
                    f"unknown reduction {op!r} for output {out!r}; use one "
                    f"of {sorted(_REDUCE_UFUNCS)}")


@dataclass(frozen=True)
class CotreeDP:
    """A declarative bottom-up DP over cotrees.

    Attributes
    ----------
    name:
        spec name (used in step labels and error messages).
    fields:
        the per-node DP state — one array per field.
    leaf:
        ``leaf(vertex_ids) -> {field: array}`` — values of the leaf nodes,
        vectorized over all leaves at once.
    union / join:
        the :class:`Combine` rule of 0-nodes / 1-nodes.
    dtype:
        NumPy dtype of every field array (``object`` for unbounded
        integers, e.g. counting DPs).
    witness:
        optional ``witness(run) -> Any`` reconstruction executed by
        :meth:`CotreeDPRun.witness` (see :func:`selected_subtree_vertices`
        and :func:`class_assignment` for the two reusable shapes).
    """

    name: str
    fields: Tuple[str, ...]
    leaf: Callable[[np.ndarray], Dict[str, np.ndarray]]
    union: Combine
    join: Combine
    dtype: Any = np.int64
    witness: Optional[Callable[["CotreeDPRun"], Any]] = None


@dataclass
class CotreeDPRun:
    """The outcome of one DP execution: per-node values plus the context."""

    dp: CotreeDP
    tree: FlatCotree
    values: Dict[str, np.ndarray]
    depth: np.ndarray
    ctx: Optional[ExecutionContext] = None
    backend: str = "fast"

    def root(self, field_name: Optional[str] = None):
        """The DP value at the root (first declared field by default)."""
        name = field_name if field_name is not None else self.dp.fields[0]
        value = self.values[name][self.tree.root]
        return value if self.dp.dtype is object else int(value)

    def root_values(self, field_name: Optional[str] = None) -> np.ndarray:
        """Per-instance root values (length-1 unless the tree is a forest)."""
        name = field_name if field_name is not None else self.dp.fields[0]
        roots = getattr(self.tree, "roots", None)
        if roots is None:
            roots = np.asarray([self.tree.root], dtype=np.int64)
        return self.values[name][np.asarray(roots, dtype=np.int64)]

    def witness(self) -> Any:
        """Run the spec's witness reconstruction (``None`` when absent)."""
        if self.dp.witness is None:
            return None
        return self.dp.witness(self)


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #

def _gather_level_children(flat: FlatCotree, nodes: np.ndarray):
    """Contiguous per-node child segments for one level.

    Returns ``(child_nodes, seg_offsets)`` where ``child_nodes`` lists the
    children of every node in ``nodes`` back to back and ``seg_offsets``
    (length ``len(nodes) + 1``) delimits each node's block.  Pure index
    arithmetic — no Python loop over nodes.
    """
    starts = flat.child_offset[nodes]
    counts = flat.child_offset[nodes + 1] - starts
    seg_offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_offsets[1:])
    total = int(seg_offsets[-1])
    pos = (np.arange(total, dtype=np.int64)
           - np.repeat(seg_offsets[:-1], counts)
           + np.repeat(starts, counts))
    return flat.child_index[pos], seg_offsets


def _segmented_reduce(ctx: ExecutionContext, values: np.ndarray,
                      seg_offsets: np.ndarray, op: str,
                      label: str) -> np.ndarray:
    """Reduce each segment of ``values`` with ``op``.

    Fast path: one ``ufunc.reduceat`` call.  Simulated path: accounted
    pairwise halving rounds (``ceil(log2 max_segment)`` EREW steps, linear
    work).  Bit-identical outputs — the operators are associative over
    exact integers.
    """
    ufunc = _REDUCE_UFUNCS[op]
    if not ctx.simulates:
        return ufunc.reduceat(values, seg_offsets[:-1])
    counts = np.diff(seg_offsets)
    buf = values.copy()
    local = (np.arange(len(values), dtype=np.int64)
             - np.repeat(seg_offsets[:-1], counts))
    seg_len = np.repeat(counts, counts)
    h = 1
    max_len = int(counts.max()) if len(counts) else 0
    while h < max_len:
        idx = np.flatnonzero((local % (2 * h) == 0) & (local + h < seg_len))
        if len(idx):
            with ctx.step(active=len(idx), label=f"{label}:{op}-halve"):
                buf[idx] = ufunc(buf[idx], buf[idx + h])
        h *= 2
    return buf[seg_offsets[:-1]]


def _combine_level(ctx: ExecutionContext, dp: CotreeDP, flat: FlatCotree,
                   values: Dict[str, np.ndarray], nodes: np.ndarray,
                   combine: Combine, label: str) -> None:
    """Apply one :class:`Combine` to all same-kind nodes of one level."""
    child_nodes, seg_offsets = _gather_level_children(flat, nodes)
    child_values = {f: values[f][child_nodes] for f in dp.fields}
    if combine.prepare is not None:
        with ctx.step(active=len(child_nodes), label=f"{label}:prepare"):
            child_values.update(combine.prepare(child_values))
    reduced = {
        out: _segmented_reduce(ctx, child_values[src], seg_offsets, op,
                               label)
        for out, op, src in combine.reduce
    }
    if combine.finish is not None:
        with ctx.step(active=len(nodes), label=f"{label}:finish"):
            reduced = combine.finish(reduced)
    with ctx.step(active=len(nodes), label=f"{label}:store"):
        for f in dp.fields:
            values[f][nodes] = reduced[f]


def run_cotree_dp(dp: CotreeDP, tree, ctx=None, *,
                  label: Optional[str] = None) -> CotreeDPRun:
    """Execute a :class:`CotreeDP` bottom-up, level by level.

    Parameters
    ----------
    dp:
        the declarative spec.
    tree:
        a :class:`~repro.cograph.Cotree` / ``BinaryCotree`` /
        :class:`~repro.cograph.FlatCotree` (any shape — canonical form is
        not required, since union and join are associative).
    ctx:
        execution context — anything
        :func:`~repro.backends.resolve_context` accepts.  ``None`` runs on
        the shared fast backend.

    Returns
    -------
    CotreeDPRun
        per-node value arrays (indexed by the flat tree's node ids), the
        flat tree and the context the run accounted on.
    """
    context = resolve_context(ctx)
    flat = as_flat_cotree(tree)
    n = flat.num_nodes
    if n == 0:
        raise ValueError(f"cotree DP {dp.name!r} needs a non-empty cotree")
    tag = label if label is not None else f"dp.{dp.name}"

    values = {f: np.empty(n, dtype=dp.dtype) for f in dp.fields}
    leaves = flat.leaves
    # a packed forest shifts leaf_vertex globally; feed the initialiser the
    # instances' original ids so every instance sees what a solo run would
    leaf_ids = getattr(flat, "leaf_vertex_local", flat.leaf_vertex)
    with context.step(active=len(leaves), label=f"{tag}:leaves"):
        leaf_values = dp.leaf(leaf_ids[leaves])
        for f in dp.fields:
            values[f][leaves] = leaf_values[f]

    depth = _depth_by_doubling(flat.parent)
    internal = flat.internal_nodes
    if len(internal):
        order = internal[np.argsort(-depth[internal], kind="stable")]
        level_starts = np.flatnonzero(
            np.diff(depth[order], prepend=depth[order[0]] + 1))
        bounds = np.append(level_starts, len(order))
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            level_nodes = order[lo:hi]
            d = int(depth[level_nodes[0]])
            for kind, combine in ((UNION, dp.union), (JOIN, dp.join)):
                sel = level_nodes[flat.kind[level_nodes] == kind]
                if len(sel):
                    _combine_level(context, dp, flat, values, sel, combine,
                                   f"{tag}:L{d}")
    return CotreeDPRun(dp=dp, tree=flat, values=values, depth=depth,
                       ctx=context, backend=context.name)


def run_cotree_dp_sequential(dp: CotreeDP, tree) -> CotreeDPRun:
    """The generic sequential reference evaluator (plain postorder).

    One Python loop over the nodes serves every spec — the DP tasks'
    ``method="sequential"`` path and the parity oracle of the engine
    tests.  Values are bit-identical to :func:`run_cotree_dp`.
    """
    flat = as_flat_cotree(tree)
    n = flat.num_nodes
    if n == 0:
        raise ValueError(f"cotree DP {dp.name!r} needs a non-empty cotree")
    values = {f: np.empty(n, dtype=dp.dtype) for f in dp.fields}
    leaves = flat.leaves
    leaf_ids = getattr(flat, "leaf_vertex_local", flat.leaf_vertex)
    leaf_values = dp.leaf(leaf_ids[leaves])
    for f in dp.fields:
        values[f][leaves] = leaf_values[f]

    depth = _depth_by_doubling(flat.parent)
    internal = flat.internal_nodes
    order = internal[np.argsort(-depth[internal], kind="stable")]
    for u in order.tolist():
        combine = dp.union if flat.kind[u] == UNION else dp.join
        kids = flat.children_of(u)
        child_values = {f: values[f][kids] for f in dp.fields}
        if combine.prepare is not None:
            child_values.update(combine.prepare(child_values))
        reduced = {out: _REDUCE_UFUNCS[op].reduce(child_values[src])
                   for out, op, src in combine.reduce}
        if combine.finish is not None:
            # finish is written vectorized; feed it length-1 arrays
            reduced = {k: np.asarray([v], dtype=dp.dtype)
                       for k, v in reduced.items()}
            reduced = {k: v[0] for k, v in combine.finish(reduced).items()}
        for f in dp.fields:
            values[f][u] = reduced[f]
    return CotreeDPRun(dp=dp, tree=flat, values=values, depth=depth,
                       ctx=None, backend="sequential")


# --------------------------------------------------------------------------- #
# witness reconstruction helpers
# --------------------------------------------------------------------------- #

def _levels_top_down(run: CotreeDPRun):
    """Internal nodes grouped by depth, shallowest first."""
    flat, depth = run.tree, run.depth
    internal = flat.internal_nodes
    if not len(internal):
        return []
    order = internal[np.argsort(depth[internal], kind="stable")]
    level_starts = np.flatnonzero(
        np.diff(depth[order], prepend=depth[order[0]] - 1))
    bounds = np.append(level_starts, len(order))
    return [order[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]


def _step(run: CotreeDPRun, active: int, label: str):
    """An accounted step scope when the run has a context (no-op otherwise)."""
    from contextlib import nullcontext
    if run.ctx is None:
        return nullcontext()
    return run.ctx.step(active=active, label=label)


def selected_subtree_vertices(run: CotreeDPRun, pick_at: int,
                              field_name: str) -> np.ndarray:
    """Witness for extremal-set DPs: the vertex set realising the root value.

    Top-down selection: the root is selected; a selected node of kind
    ``pick_at`` keeps exactly one child maximising ``field_name`` (its
    value equals the node's own, so the witness realises the optimum);
    every other selected internal node keeps all children.  With
    ``pick_at=UNION`` this reconstructs a maximum clique (a clique lives
    inside one union part but spans all join parts); ``pick_at=JOIN``
    dually reconstructs a maximum independent set.

    Ties break towards the smallest child node id on every backend
    (the argmax is a max over ``value * num_nodes - child_id`` packed
    keys), so witnesses are backend-independent.
    """
    flat = run.tree
    n = flat.num_nodes
    value = run.values[field_name]

    # chosen child per pick_at node, via one packed segmented argmax
    chosen = np.full(n, -1, dtype=np.int64)
    pick_nodes = np.flatnonzero((flat.kind != LEAF) & (flat.kind == pick_at))
    if len(pick_nodes):
        child_nodes, seg_offsets = _gather_level_children(flat, pick_nodes)
        with _step(run, len(child_nodes), f"dp.{run.dp.name}:witness-pack"):
            packed = value[child_nodes] * np.int64(n) + (
                np.int64(n - 1) - child_nodes)
        best = _segmented_reduce(
            run.ctx if run.ctx is not None else resolve_context(None),
            packed, seg_offsets, "max", f"dp.{run.dp.name}:witness-argmax")
        chosen[pick_nodes] = np.int64(n - 1) - best % np.int64(n)

    selected = np.zeros(n, dtype=bool)
    roots = getattr(flat, "roots", None)
    if roots is None:
        selected[flat.root] = True
    else:
        roots = np.asarray(roots, dtype=np.int64)
        selected[roots[roots >= 0]] = True
    for level_nodes in _levels_top_down(run):
        sel = level_nodes[selected[level_nodes]]
        if not len(sel):
            continue
        child_nodes, _ = _gather_level_children(flat, sel)
        with _step(run, len(child_nodes), f"dp.{run.dp.name}:witness-select"):
            parents = flat.parent[child_nodes]
            keep = (flat.kind[parents] != pick_at) | \
                (chosen[parents] == child_nodes)
            selected[child_nodes[keep]] = True

    picked_leaves = flat.leaves[selected[flat.leaves]]
    return np.sort(flat.leaf_vertex[picked_leaves])


def class_assignment(run: CotreeDPRun, accumulate_at: int,
                     field_name: str) -> np.ndarray:
    """Witness for partition DPs: a class index per vertex.

    Top-down offset pass: every node receives a class-id offset (root 0);
    at nodes of kind ``accumulate_at`` the children get *disjoint* id
    ranges (each shifted by the exclusive prefix sum of its earlier
    siblings' ``field_name`` values), at the other kind all children share
    the parent's offset.  A leaf's class is its offset.

    With ``accumulate_at=JOIN`` and the chromatic-number field this is a
    proper colouring with exactly ``chi(G)`` colours (adjacent vertices
    have a join LCA, whose children occupy disjoint colour ranges); with
    ``accumulate_at=UNION`` and the clique-cover field it is a partition
    into ``theta(G)`` cliques (same-class vertices always meet at a join).
    """
    flat = run.tree
    n = flat.num_nodes
    value = run.values[field_name]

    # exclusive prefix of sibling values, per child slot of the CSR array
    sib_prefix = np.zeros(len(flat.child_index), dtype=np.int64)
    if len(flat.child_index):
        with _step(run, len(flat.child_index),
                   f"dp.{run.dp.name}:witness-sibling-prefix"):
            vals = value[flat.child_index].astype(np.int64, copy=False)
            glob = np.cumsum(vals)
            excl = glob - vals
            starts = flat.child_offset[:-1]
            counts = np.diff(flat.child_offset)
            base = np.repeat(excl[starts[counts > 0]], counts[counts > 0])
            sib_prefix = excl - base

    # slot index of every node under its parent (CSR position)
    slot_of = np.full(n, -1, dtype=np.int64)
    slot_of[flat.child_index] = np.arange(len(flat.child_index),
                                          dtype=np.int64)

    offset = np.zeros(n, dtype=np.int64)
    for level_nodes in _levels_top_down(run):
        child_nodes, _ = _gather_level_children(flat, level_nodes)
        with _step(run, len(child_nodes), f"dp.{run.dp.name}:witness-offset"):
            parents = flat.parent[child_nodes]
            shift = np.where(flat.kind[parents] == accumulate_at,
                             sib_prefix[slot_of[child_nodes]], 0)
            offset[child_nodes] = offset[parents] + shift

    leaves = flat.leaves
    classes = np.empty(flat.num_vertices, dtype=np.int64)
    classes[flat.leaf_vertex[leaves]] = offset[leaves]
    return classes


# --------------------------------------------------------------------------- #
# the built-in specs
# --------------------------------------------------------------------------- #

def _ones_leaf(fields: Tuple[str, ...]):
    def leaf(vertex_ids: np.ndarray) -> Dict[str, np.ndarray]:
        one = np.ones(len(vertex_ids), dtype=np.int64)
        return {f: one for f in fields}
    return leaf


#: Lemma 2.4 generalised to arbitrary-arity cotrees: ``p`` at a 0-node is
#: the sum over children; at a 1-node it is ``max(1, max_j (p_j + L_j) - L)``
#: — the multiway closed form of the leftist fold ``max(p(v) - L(w), 1)``
#: (fold the children in non-increasing leaf-count order and the clamps
#: telescope; every other child's term is a valid lower bound by the
#: connector-counting argument, so the max over children is exact).
PATH_COVER_SIZE_DP = CotreeDP(
    name="path_cover_size",
    fields=("p", "L"),
    leaf=_ones_leaf(("p", "L")),
    union=Combine(reduce=(("p", "sum", "p"), ("L", "sum", "L"))),
    join=Combine(
        prepare=lambda cv: {"p_plus_L": cv["p"] + cv["L"]},
        reduce=(("best", "max", "p_plus_L"), ("L", "sum", "L")),
        finish=lambda red: {"p": np.maximum(red["best"] - red["L"], 1),
                            "L": red["L"]},
    ),
)

#: omega: a clique lives inside one part of a union (max) and spans every
#: part of a join (sum).
MAX_CLIQUE_DP = CotreeDP(
    name="max_clique",
    fields=("omega",),
    leaf=_ones_leaf(("omega",)),
    union=Combine(reduce=(("omega", "max", "omega"),)),
    join=Combine(reduce=(("omega", "sum", "omega"),)),
    witness=lambda run: selected_subtree_vertices(run, UNION, "omega"),
)

#: alpha: dual of omega — sum across union parts, max across join parts.
MAX_INDEPENDENT_SET_DP = CotreeDP(
    name="max_independent_set",
    fields=("alpha",),
    leaf=_ones_leaf(("alpha",)),
    union=Combine(reduce=(("alpha", "sum", "alpha"),)),
    join=Combine(reduce=(("alpha", "max", "alpha"),)),
    witness=lambda run: selected_subtree_vertices(run, JOIN, "alpha"),
)

#: chi: cographs are perfect, and the cotree shows it constructively —
#: union parts can reuse colours (max), join parts need disjoint palettes
#: (sum); the witness assigns the disjoint colour ranges top-down.
CHROMATIC_NUMBER_DP = CotreeDP(
    name="chromatic_number",
    fields=("chi",),
    leaf=_ones_leaf(("chi",)),
    union=Combine(reduce=(("chi", "max", "chi"),)),
    join=Combine(reduce=(("chi", "sum", "chi"),)),
    witness=lambda run: class_assignment(run, JOIN, "chi"),
)

#: theta: clique-cover number = chi of the complement, and complementing a
#: cograph just swaps the node labels — so the rules swap too.
CLIQUE_COVER_DP = CotreeDP(
    name="clique_cover",
    fields=("theta",),
    leaf=_ones_leaf(("theta",)),
    union=Combine(reduce=(("theta", "sum", "theta"),)),
    join=Combine(reduce=(("theta", "max", "theta"),)),
    witness=lambda run: class_assignment(run, UNION, "theta"),
)


def _count_leaf(vertex_ids: np.ndarray) -> Dict[str, np.ndarray]:
    # Python ints (dtype=object): independent-set counts grow past 2**63
    # around n = 63, so the field must never silently wrap.
    return {"count": np.array([2] * len(vertex_ids), dtype=object)}


#: counts include the empty set: a union multiplies the per-part counts,
#: a join allows at most one part to contribute (sum the non-empty counts,
#: re-add the shared empty set).
COUNT_INDEPENDENT_SETS_DP = CotreeDP(
    name="count_independent_sets",
    fields=("count",),
    leaf=_count_leaf,
    union=Combine(reduce=(("count", "prod", "count"),)),
    join=Combine(
        prepare=lambda cv: {"nonempty": cv["count"] - 1},
        reduce=(("total", "sum", "nonempty"),),
        finish=lambda red: {"count": red["total"] + 1},
    ),
    dtype=object,
)

#: every built-in spec, for the parity tests and the docs.
BUILTIN_DPS: Tuple[CotreeDP, ...] = (
    PATH_COVER_SIZE_DP,
    MAX_CLIQUE_DP,
    MAX_INDEPENDENT_SET_DP,
    CHROMATIC_NUMBER_DP,
    CLIQUE_COVER_DP,
    COUNT_INDEPENDENT_SETS_DP,
)
