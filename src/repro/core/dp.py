"""The declarative bottom-up cotree-DP engine.

Nearly every classic cograph problem — minimum path cover size, maximum
clique, maximum independent set, chromatic number, clique cover, counting
independent sets — is the *same computation shape*: give every leaf a value,
then combine child values at 0-nodes (union) and 1-nodes (join), bottom-up.
This module captures that shape once:

* :class:`CotreeDP` is a declarative spec — a leaf initialiser plus one
  :class:`Combine` rule per internal-node kind (an optional elementwise
  ``prepare`` over child values, a set of named segmented reductions drawn
  from ``sum`` / ``max`` / ``min`` / ``prod``, and an optional elementwise
  ``finish``), with an optional witness reconstruction;
* :func:`run_cotree_dp` executes a spec level-wise over
  :class:`~repro.cograph.FlatCotree` CSR arrays on any execution backend.
  On the :class:`~repro.backends.FastBackend` each level is **loop-free**:
  the children of all the level's nodes are gathered with one fancy-index
  expression and reduced with one ``np.ufunc.reduceat`` call per named
  reduction.  On the :class:`~repro.backends.PRAMBackend` the same
  reductions run as ``ceil(log2 max_arity)`` accounted halving rounds per
  level, so every DP inherits the EREW cost model for free — the engine's
  time is ``O(height + sum_level log arity)``, the cost profile of the
  "naive level-by-level parallelisation" the paper discusses after
  Lemma 2.3 (the bracket pipeline exists precisely to beat this on deep
  trees; the engine is the general workhorse, not the headline algorithm);
* :func:`run_cotree_dp_sequential` is the one generic postorder reference
  evaluator (the ``method="sequential"`` path of the DP tasks) — no task
  carries a bespoke traversal of its own.

Outputs are bit-identical across all three execution paths (the reduction
operators are associative over exact integers), which
``tests/test_dp_engine.py`` pins for every built-in spec.

The built-in specs live at the bottom of the module; the engine is public,
so out-of-tree DPs get the backends, the witness helpers and the
``solve()`` front door (via :func:`repro.api.register_task`) for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from .._dfs import depth_by_doubling as _depth_by_doubling
from ..backends import ExecutionContext, resolve_context
from ..cograph import FlatCotree, as_flat_cotree
from ..cograph.cotree import JOIN, LEAF, PRIME, UNION
from ..cograph.md import SPIDER_THIN

__all__ = [
    "Combine",
    "PrimeCombine",
    "CotreeDP",
    "CotreeDPRun",
    "run_cotree_dp",
    "run_cotree_dp_sequential",
    "selected_subtree_vertices",
    "class_assignment",
    "MAX_GENERIC_PRIME",
    "PATH_COVER_SIZE_DP",
    "MAX_CLIQUE_DP",
    "MAX_INDEPENDENT_SET_DP",
    "CHROMATIC_NUMBER_DP",
    "CLIQUE_COVER_DP",
    "COUNT_INDEPENDENT_SETS_DP",
    "max_weight_independent_set_dp",
    "max_weight_clique_dp",
    "BUILTIN_DPS",
]

#: arity cap of the generic (non-spider) prime combine: the brute force
#: enumerates ``2**arity`` child subsets, so it is exact and fast up to
#: here and refused beyond (P4-sparse inputs never hit it — their primes
#: are all spider-flagged and run closed-form).
MAX_GENERIC_PRIME: int = 16

#: the associative reduction operators a :class:`Combine` may name.
_REDUCE_UFUNCS: Dict[str, np.ufunc] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


@dataclass(frozen=True)
class Combine:
    """How one internal-node kind combines its children's DP values.

    Attributes
    ----------
    reduce:
        tuple of ``(output_name, op, source)`` triples: for every internal
        node of this kind, ``output_name`` becomes the segmented ``op``
        (``"sum"`` / ``"max"`` / ``"min"`` / ``"prod"``) of ``source`` over
        the node's children.  ``source`` is a DP field name or a derived
        array produced by ``prepare``.
    prepare:
        optional elementwise map over child values,
        ``prepare(child_values) -> dict of derived arrays`` (each aligned
        with the child arrays).  Runs as one parallel step.
    finish:
        optional elementwise map from the reduced outputs to the node's DP
        fields, ``finish(reduced) -> dict of field arrays``.  When omitted
        the reduction outputs must already carry the DP field names.
    """

    reduce: Tuple[Tuple[str, str, str], ...]
    prepare: Optional[Callable[[Dict[str, np.ndarray]],
                               Dict[str, np.ndarray]]] = None
    finish: Optional[Callable[[Dict[str, np.ndarray]],
                              Dict[str, np.ndarray]]] = None

    def __post_init__(self) -> None:
        for out, op, _src in self.reduce:
            if op not in _REDUCE_UFUNCS:
                raise ValueError(
                    f"unknown reduction {op!r} for output {out!r}; use one "
                    f"of {sorted(_REDUCE_UFUNCS)}")


@dataclass(frozen=True)
class PrimeCombine:
    """How :data:`~repro.cograph.cotree.PRIME` nodes combine their children.

    A prime node's children are the maximal strong modules of a modular
    decomposition tree; its packed quotient edges say which child pairs are
    fully joined.  For the extremal single-field DPs this module ships, the
    node value is::

        max over subsets X of children, X independent (select =
        "independent") or a clique (select = "clique") in the quotient,
        of  sum(value[c] for c in X)

    which is exact for max-(weight-)independent-set (an IS picks an
    independent set of modules and an IS inside each) and dually for
    max-(weight-)clique.  Child values must be **non-negative** (true for
    the built-in specs: weights are validated ``>= 0``), so supersets never
    hurt and the closed forms below are tight.

    Execution: spider-flagged primes (the P4-sparse case) evaluate a
    closed form over the ``[s_1..s_k, k_1..k_k, (r)]`` child layout —
    ``O(k)`` work, vectorized across all spiders of a level; generic primes
    run a vectorized bitmask brute force over all ``2**arity`` subsets,
    batched per arity across the level, refused above
    :data:`MAX_GENERIC_PRIME` children.  The winning subset (smallest
    encoding on ties, identically on every backend) is recorded in
    ``CotreeDPRun.prime_choice`` for the witness pass.
    """

    select: str

    def __post_init__(self) -> None:
        if self.select not in ("independent", "clique"):
            raise ValueError(f"PrimeCombine select must be 'independent' or "
                             f"'clique', got {self.select!r}")


@dataclass(frozen=True)
class CotreeDP:
    """A declarative bottom-up DP over cotrees.

    Attributes
    ----------
    name:
        spec name (used in step labels and error messages).
    fields:
        the per-node DP state — one array per field.
    leaf:
        ``leaf(vertex_ids) -> {field: array}`` — values of the leaf nodes,
        vectorized over all leaves at once.
    union / join:
        the :class:`Combine` rule of 0-nodes / 1-nodes.
    prime:
        optional :class:`PrimeCombine` rule for prime nodes of modular
        decomposition trees.  Specs without one are cograph-only: the
        engine raises when such a spec meets a prime node.  Requires a
        single-field spec.
    dtype:
        NumPy dtype of every field array (``object`` for unbounded
        integers, e.g. counting DPs).
    witness:
        optional ``witness(run) -> Any`` reconstruction executed by
        :meth:`CotreeDPRun.witness` (see :func:`selected_subtree_vertices`
        and :func:`class_assignment` for the two reusable shapes).
    """

    name: str
    fields: Tuple[str, ...]
    leaf: Callable[[np.ndarray], Dict[str, np.ndarray]]
    union: Combine
    join: Combine
    dtype: Any = np.int64
    witness: Optional[Callable[["CotreeDPRun"], Any]] = None
    prime: Optional[PrimeCombine] = None

    def __post_init__(self) -> None:
        if self.prime is not None and len(self.fields) != 1:
            raise ValueError(f"cotree DP {self.name!r}: the prime combine "
                             f"supports single-field specs only")


@dataclass
class CotreeDPRun:
    """The outcome of one DP execution: per-node values plus the context."""

    dp: CotreeDP
    tree: FlatCotree
    values: Dict[str, np.ndarray]
    depth: np.ndarray
    ctx: Optional[ExecutionContext] = None
    backend: str = "fast"
    #: per-node winning selection of prime nodes (``None`` on prime-free
    #: trees): the best subset's bitmask for generic primes, ``-1`` (base
    #: option) or the winning pair index for spider primes.
    prime_choice: Optional[np.ndarray] = None

    def root(self, field_name: Optional[str] = None):
        """The DP value at the root (first declared field by default)."""
        name = field_name if field_name is not None else self.dp.fields[0]
        value = self.values[name][self.tree.root]
        return value if self.dp.dtype is object else int(value)

    def root_values(self, field_name: Optional[str] = None) -> np.ndarray:
        """Per-instance root values (length-1 unless the tree is a forest)."""
        name = field_name if field_name is not None else self.dp.fields[0]
        roots = getattr(self.tree, "roots", None)
        if roots is None:
            roots = np.asarray([self.tree.root], dtype=np.int64)
        return self.values[name][np.asarray(roots, dtype=np.int64)]

    def witness(self) -> Any:
        """Run the spec's witness reconstruction (``None`` when absent)."""
        if self.dp.witness is None:
            return None
        return self.dp.witness(self)


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #

def _gather_level_children(flat: FlatCotree, nodes: np.ndarray):
    """Contiguous per-node child segments for one level.

    Returns ``(child_nodes, seg_offsets)`` where ``child_nodes`` lists the
    children of every node in ``nodes`` back to back and ``seg_offsets``
    (length ``len(nodes) + 1``) delimits each node's block.  Pure index
    arithmetic — no Python loop over nodes.
    """
    starts = flat.child_offset[nodes]
    counts = flat.child_offset[nodes + 1] - starts
    seg_offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_offsets[1:])
    total = int(seg_offsets[-1])
    pos = (np.arange(total, dtype=np.int64)
           - np.repeat(seg_offsets[:-1], counts)
           + np.repeat(starts, counts))
    return flat.child_index[pos], seg_offsets


def _segmented_reduce(ctx: ExecutionContext, values: np.ndarray,
                      seg_offsets: np.ndarray, op: str,
                      label: str) -> np.ndarray:
    """Reduce each segment of ``values`` with ``op``.

    Fast path: one ``ufunc.reduceat`` call.  Simulated path: accounted
    pairwise halving rounds (``ceil(log2 max_segment)`` EREW steps, linear
    work).  Bit-identical outputs — the operators are associative over
    exact integers.
    """
    ufunc = _REDUCE_UFUNCS[op]
    if not ctx.simulates:
        kernels = getattr(ctx, "kernels", None)
        if kernels is not None and values.dtype != object:
            # compiled tier (KernelBackend): one fused pass per segment —
            # reduceat semantics, so fallback mode is bit-identical
            return kernels.segment_reduce(values, seg_offsets, op)
        return ufunc.reduceat(values, seg_offsets[:-1])
    counts = np.diff(seg_offsets)
    buf = values.copy()
    local = (np.arange(len(values), dtype=np.int64)
             - np.repeat(seg_offsets[:-1], counts))
    seg_len = np.repeat(counts, counts)
    h = 1
    max_len = int(counts.max()) if len(counts) else 0
    while h < max_len:
        idx = np.flatnonzero((local % (2 * h) == 0) & (local + h < seg_len))
        if len(idx):
            with ctx.step(active=len(idx), label=f"{label}:{op}-halve"):
                buf[idx] = ufunc(buf[idx], buf[idx + h])
        h *= 2
    return buf[seg_offsets[:-1]]


def _combine_level(ctx: ExecutionContext, dp: CotreeDP, flat: FlatCotree,
                   values: Dict[str, np.ndarray], nodes: np.ndarray,
                   combine: Combine, label: str) -> None:
    """Apply one :class:`Combine` to all same-kind nodes of one level."""
    kernels = getattr(ctx, "kernels", None)
    if (kernels is not None and combine.prepare is None
            and all(values[src].dtype != object
                    for _out, _op, src in combine.reduce)):
        # fully fused level sweep (KernelBackend, prepare-free combines):
        # gather + segmented reduce collapse into one pass per output field,
        # with no child-position arithmetic and no gathered temporaries
        reduced = {
            out: kernels.level_gather_reduce(values[src], flat.child_offset,
                                             flat.child_index, nodes, op)
            for out, op, src in combine.reduce
        }
    else:
        child_nodes, seg_offsets = _gather_level_children(flat, nodes)
        child_values = {f: values[f][child_nodes] for f in dp.fields}
        if combine.prepare is not None:
            with ctx.step(active=len(child_nodes), label=f"{label}:prepare"):
                child_values.update(combine.prepare(child_values))
        reduced = {
            out: _segmented_reduce(ctx, child_values[src], seg_offsets, op,
                                   label)
            for out, op, src in combine.reduce
        }
    if combine.finish is not None:
        with ctx.step(active=len(nodes), label=f"{label}:finish"):
            reduced = combine.finish(reduced)
    with ctx.step(active=len(nodes), label=f"{label}:store"):
        for f in dp.fields:
            values[f][nodes] = reduced[f]


_NEG = np.int64(-(2 ** 62))     # "impossible" sentinel below any real score


def _check_prime_support(dp: CotreeDP, flat) -> Optional[np.ndarray]:
    """``None`` for prime-free trees, else the choice array to fill —
    raising when the spec cannot run on modular decomposition trees."""
    if not getattr(flat, "has_primes", False):
        return None
    if dp.prime is None:
        raise ValueError(
            f"cotree DP {dp.name!r} has no prime combine: it is exact on "
            f"cographs only, but the input is a modular decomposition tree "
            f"with prime nodes")
    return np.full(flat.num_nodes, -2, dtype=np.int64)


def _prime_values(flat: FlatCotree, value: np.ndarray, nodes: np.ndarray,
                  select: str, ctx: Optional[ExecutionContext],
                  label: str) -> Tuple[np.ndarray, np.ndarray]:
    """Values and winning choices of the prime nodes in ``nodes``.

    One shared implementation for the level-vectorized runner, the PRAM
    runner (``ctx`` accounts the steps) and the sequential reference
    (``ctx=None``), so all three are bit-identical by construction.
    """
    from contextlib import nullcontext

    def step(active: int, tag: str):
        return nullcontext() if ctx is None else \
            ctx.step(active=active, label=f"{label}:{tag}")

    out_val = np.empty(len(nodes), dtype=np.int64)
    out_choice = np.empty(len(nodes), dtype=np.int64)
    spider_flag = flat.spider[nodes]
    sp = np.flatnonzero(spider_flag > 0)
    ge = np.flatnonzero(spider_flag == 0)

    if len(sp):
        v, c = _spider_prime_values(flat, value, nodes[sp], select, ctx,
                                    step)
        out_val[sp] = v
        out_choice[sp] = c
    if len(ge):
        v, c = _generic_prime_values(flat, value, nodes[ge], select, step)
        out_val[ge] = v
        out_choice[ge] = c
    return out_val, out_choice


def _spider_prime_values(flat: FlatCotree, value: np.ndarray,
                         nodes: np.ndarray, select: str,
                         ctx: Optional[ExecutionContext],
                         step) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-form spider combine, vectorized across all spiders of a level.

    Children are laid out ``[s_1..s_k, k_1..k_k, (r)]``.  With non-negative
    child values the optimum is either the *base* option (choice ``-1``:
    all feet plus the head for ``independent``, the whole body plus the
    head for ``clique``) or one *pair* option ``i`` (swap foot/body ``i``
    in or out).  Ties prefer the base option, then the smallest pair.
    """
    rctx = ctx if ctx is not None else resolve_context(None)
    child_nodes, seg = _gather_level_children(flat, nodes)
    counts = np.diff(seg)
    k = counts // 2
    has_head = (counts % 2) == 1
    cv = value[child_nodes].astype(np.int64, copy=False)
    with step(len(child_nodes), "spider-classify"):
        local = (np.arange(len(child_nodes), dtype=np.int64)
                 - np.repeat(seg[:-1], counts))
        kk = np.repeat(k, counts)
        is_foot = local < kk
        is_body = ~is_foot & (local < 2 * kk)
        thin = flat.spider[nodes] == SPIDER_THIN
        thin_c = np.repeat(thin, counts)
    rv = np.zeros(len(nodes), dtype=np.int64)
    rv[has_head] = cv[seg[1:][has_head] - 1]
    sum_s = _segmented_reduce(rctx, np.where(is_foot, cv, 0), seg, "sum",
                              "spider-sumS")
    sum_k = _segmented_reduce(rctx, np.where(is_body, cv, 0), seg, "sum",
                              "spider-sumK")
    with step(len(child_nodes), "spider-pair-terms"):
        # per body slot: the pair option's variable term (foot at pos - k)
        foot_v = np.zeros_like(cv)
        bpos = np.flatnonzero(is_body)
        foot_v[bpos] = cv[bpos - kk[bpos]]
        if select == "independent":
            term = np.where(thin_c, cv - foot_v, cv + foot_v)
        else:
            term = np.where(thin_c, cv + foot_v, foot_v - cv)
        # packed segmented argmax over body slots only (smallest pair wins
        # ties; M > every local slot keeps the packing monotone in term)
        m_pack = np.int64(int(counts.max()) + 1) if len(counts) else \
            np.int64(1)
        packed = np.where(is_body, term * m_pack + (m_pack - 1 - local),
                          _NEG)
    best_packed = _segmented_reduce(rctx, packed, seg, "max", "spider-pair")
    with step(len(nodes), "spider-finish"):
        slot = m_pack - 1 - best_packed % m_pack
        pair_term = (best_packed - (m_pack - 1 - slot)) // m_pack
        pair_i = slot - k                     # body slot -> pair index
        if select == "independent":
            base = sum_s + rv
            pair_total = np.where(thin, sum_s + pair_term, pair_term)
        else:
            base = sum_k + rv
            pair_total = np.where(thin, pair_term, sum_k + pair_term)
        have_pair = best_packed > _NEG
        pair_total = np.where(have_pair, pair_total, _NEG)
        out_val = np.maximum(base, pair_total)
        out_choice = np.where(base >= pair_total, np.int64(-1), pair_i)
    return out_val, out_choice


def _generic_prime_values(flat: FlatCotree, value: np.ndarray,
                          nodes: np.ndarray, select: str,
                          step) -> Tuple[np.ndarray, np.ndarray]:
    """Exact bitmask brute force over each prime's quotient, batched by
    arity: one ``(primes, 2**m)`` score table per arity group, one
    ``argmax`` (first maximum = smallest subset mask on ties)."""
    counts = (flat.child_offset[nodes + 1] - flat.child_offset[nodes])
    out_val = np.empty(len(nodes), dtype=np.int64)
    out_choice = np.empty(len(nodes), dtype=np.int64)
    too_big = counts > MAX_GENERIC_PRIME
    if too_big.any():
        u = int(nodes[too_big][0])
        raise ValueError(
            f"prime node {u} has {int(counts[too_big][0])} children; the "
            f"generic prime combine enumerates child subsets and is capped "
            f"at {MAX_GENERIC_PRIME} (spider primes have no cap)")
    for m in np.unique(counts).tolist():
        grp = np.flatnonzero(counts == m)
        gn = nodes[grp]
        p = len(gn)
        # per-slot neighbour bitmasks of every quotient in the group
        adj = np.zeros((p, m), dtype=np.int64)
        starts = flat.q_offset[gn]
        widths = flat.q_offset[gn + 1] - starts
        rows = np.repeat(np.arange(p, dtype=np.int64), widths)
        pos = (np.arange(int(widths.sum()), dtype=np.int64)
               - np.repeat(np.cumsum(widths) - widths, widths)
               + np.repeat(starts, widths))
        eu = flat.q_edge_u[pos]
        ev = flat.q_edge_v[pos]
        np.bitwise_or.at(adj, (rows, eu), np.int64(1) << ev)
        np.bitwise_or.at(adj, (rows, ev), np.int64(1) << eu)
        if select == "clique":
            full = np.int64((1 << m) - 1)
            adj = ~adj & (full ^ (np.int64(1) << np.arange(m)))
        masks = np.arange(1 << m, dtype=np.int64)
        child = flat.child_index[
            (flat.child_offset[gn][:, None]
             + np.arange(m, dtype=np.int64)[None, :])]
        vals = value[child].astype(np.int64, copy=False)
        with step(p * (1 << m) * m, "prime-bruteforce"):
            bits = ((masks[None, :] >> np.arange(m)[:, None]) & 1) \
                .astype(np.int64)                       # (m, 2**m)
            sums = vals @ bits                          # (p, 2**m)
            bad = np.zeros((p, 1 << m), dtype=bool)
            for i in range(m):
                has_i = (masks >> i) & 1
                bad |= (has_i[None, :] != 0) & \
                    ((adj[:, i:i + 1] & masks[None, :]) != 0)
            score = np.where(bad, np.int64(-1), sums)
            best = np.argmax(score, axis=1)
            out_val[grp] = score[np.arange(p), best]
            out_choice[grp] = masks[best]
    return out_val, out_choice


def run_cotree_dp(dp: CotreeDP, tree, ctx=None, *,
                  label: Optional[str] = None) -> CotreeDPRun:
    """Execute a :class:`CotreeDP` bottom-up, level by level.

    Parameters
    ----------
    dp:
        the declarative spec.
    tree:
        a :class:`~repro.cograph.Cotree` / ``BinaryCotree`` /
        :class:`~repro.cograph.FlatCotree` (any shape — canonical form is
        not required, since union and join are associative).
    ctx:
        execution context — anything
        :func:`~repro.backends.resolve_context` accepts.  ``None`` runs on
        the shared fast backend.

    Returns
    -------
    CotreeDPRun
        per-node value arrays (indexed by the flat tree's node ids), the
        flat tree and the context the run accounted on.
    """
    context = resolve_context(ctx)
    flat = as_flat_cotree(tree)
    n = flat.num_nodes
    if n == 0:
        raise ValueError(f"cotree DP {dp.name!r} needs a non-empty cotree")
    tag = label if label is not None else f"dp.{dp.name}"

    values = {f: np.empty(n, dtype=dp.dtype) for f in dp.fields}
    leaves = flat.leaves
    # a packed forest shifts leaf_vertex globally; feed the initialiser the
    # instances' original ids so every instance sees what a solo run would
    leaf_ids = getattr(flat, "leaf_vertex_local", flat.leaf_vertex)
    with context.step(active=len(leaves), label=f"{tag}:leaves"):
        leaf_values = dp.leaf(leaf_ids[leaves])
        for f in dp.fields:
            values[f][leaves] = leaf_values[f]

    prime_choice = _check_prime_support(dp, flat)
    depth = _depth_by_doubling(flat.parent)
    internal = flat.internal_nodes
    if len(internal):
        order = internal[np.argsort(-depth[internal], kind="stable")]
        level_starts = np.flatnonzero(
            np.diff(depth[order], prepend=depth[order[0]] + 1))
        bounds = np.append(level_starts, len(order))
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            level_nodes = order[lo:hi]
            d = int(depth[level_nodes[0]])
            for kind, combine in ((UNION, dp.union), (JOIN, dp.join)):
                sel = level_nodes[flat.kind[level_nodes] == kind]
                if len(sel):
                    _combine_level(context, dp, flat, values, sel, combine,
                                   f"{tag}:L{d}")
            if prime_choice is not None:
                sel = level_nodes[flat.kind[level_nodes] == PRIME]
                if len(sel):
                    vals, choices = _prime_values(
                        flat, values[dp.fields[0]], sel,
                        dp.prime.select, context, f"{tag}:L{d}")
                    with context.step(active=len(sel),
                                      label=f"{tag}:L{d}:store"):
                        values[dp.fields[0]][sel] = vals
                        prime_choice[sel] = choices
    return CotreeDPRun(dp=dp, tree=flat, values=values, depth=depth,
                       ctx=context, backend=context.name,
                       prime_choice=prime_choice)


def run_cotree_dp_sequential(dp: CotreeDP, tree) -> CotreeDPRun:
    """The generic sequential reference evaluator (plain postorder).

    One Python loop over the nodes serves every spec — the DP tasks'
    ``method="sequential"`` path and the parity oracle of the engine
    tests.  Values are bit-identical to :func:`run_cotree_dp`.
    """
    flat = as_flat_cotree(tree)
    n = flat.num_nodes
    if n == 0:
        raise ValueError(f"cotree DP {dp.name!r} needs a non-empty cotree")
    values = {f: np.empty(n, dtype=dp.dtype) for f in dp.fields}
    leaves = flat.leaves
    leaf_ids = getattr(flat, "leaf_vertex_local", flat.leaf_vertex)
    leaf_values = dp.leaf(leaf_ids[leaves])
    for f in dp.fields:
        values[f][leaves] = leaf_values[f]

    prime_choice = _check_prime_support(dp, flat)
    depth = _depth_by_doubling(flat.parent)
    internal = flat.internal_nodes
    order = internal[np.argsort(-depth[internal], kind="stable")]
    for u in order.tolist():
        if flat.kind[u] == PRIME:
            sel = np.asarray([u], dtype=np.int64)
            vals, choices = _prime_values(flat, values[dp.fields[0]], sel,
                                          dp.prime.select, None,
                                          f"dp.{dp.name}")
            values[dp.fields[0]][u] = vals[0]
            prime_choice[u] = choices[0]
            continue
        combine = dp.union if flat.kind[u] == UNION else dp.join
        kids = flat.children_of(u)
        child_values = {f: values[f][kids] for f in dp.fields}
        if combine.prepare is not None:
            child_values.update(combine.prepare(child_values))
        reduced = {out: _REDUCE_UFUNCS[op].reduce(child_values[src])
                   for out, op, src in combine.reduce}
        if combine.finish is not None:
            # finish is written vectorized; feed it length-1 arrays
            reduced = {k: np.asarray([v], dtype=dp.dtype)
                       for k, v in reduced.items()}
            reduced = {k: v[0] for k, v in combine.finish(reduced).items()}
        for f in dp.fields:
            values[f][u] = reduced[f]
    return CotreeDPRun(dp=dp, tree=flat, values=values, depth=depth,
                       ctx=None, backend="sequential",
                       prime_choice=prime_choice)


# --------------------------------------------------------------------------- #
# witness reconstruction helpers
# --------------------------------------------------------------------------- #

def _levels_top_down(run: CotreeDPRun):
    """Internal nodes grouped by depth, shallowest first."""
    flat, depth = run.tree, run.depth
    internal = flat.internal_nodes
    if not len(internal):
        return []
    order = internal[np.argsort(depth[internal], kind="stable")]
    level_starts = np.flatnonzero(
        np.diff(depth[order], prepend=depth[order[0]] - 1))
    bounds = np.append(level_starts, len(order))
    return [order[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]


def _step(run: CotreeDPRun, active: int, label: str):
    """An accounted step scope when the run has a context (no-op otherwise)."""
    from contextlib import nullcontext
    if run.ctx is None:
        return nullcontext()
    return run.ctx.step(active=active, label=label)


def selected_subtree_vertices(run: CotreeDPRun, pick_at: int,
                              field_name: str) -> np.ndarray:
    """Witness for extremal-set DPs: the vertex set realising the root value.

    Top-down selection: the root is selected; a selected node of kind
    ``pick_at`` keeps exactly one child maximising ``field_name`` (its
    value equals the node's own, so the witness realises the optimum);
    every other selected internal node keeps all children.  With
    ``pick_at=UNION`` this reconstructs a maximum clique (a clique lives
    inside one union part but spans all join parts); ``pick_at=JOIN``
    dually reconstructs a maximum independent set.

    Ties break towards the smallest child node id on every backend
    (the argmax is a max over ``value * num_nodes - child_id`` packed
    keys), so witnesses are backend-independent.
    """
    flat = run.tree
    n = flat.num_nodes
    value = run.values[field_name]

    # chosen child per pick_at node, via one packed segmented argmax
    chosen = np.full(n, -1, dtype=np.int64)
    pick_nodes = np.flatnonzero((flat.kind != LEAF) & (flat.kind == pick_at))
    if len(pick_nodes):
        child_nodes, seg_offsets = _gather_level_children(flat, pick_nodes)
        with _step(run, len(child_nodes), f"dp.{run.dp.name}:witness-pack"):
            packed = value[child_nodes] * np.int64(n) + (
                np.int64(n - 1) - child_nodes)
        best = _segmented_reduce(
            run.ctx if run.ctx is not None else resolve_context(None),
            packed, seg_offsets, "max", f"dp.{run.dp.name}:witness-argmax")
        chosen[pick_nodes] = np.int64(n - 1) - best % np.int64(n)

    has_primes = getattr(flat, "has_primes", False)
    slot_of = None
    if has_primes:
        slot_of = np.full(n, -1, dtype=np.int64)
        slot_of[flat.child_index] = (
            np.arange(len(flat.child_index), dtype=np.int64)
            - np.repeat(flat.child_offset[:-1], np.diff(flat.child_offset)))

    selected = np.zeros(n, dtype=bool)
    roots = getattr(flat, "roots", None)
    if roots is None:
        selected[flat.root] = True
    else:
        roots = np.asarray(roots, dtype=np.int64)
        selected[roots[roots >= 0]] = True
    for level_nodes in _levels_top_down(run):
        sel = level_nodes[selected[level_nodes]]
        if not len(sel):
            continue
        child_nodes, _ = _gather_level_children(flat, sel)
        with _step(run, len(child_nodes), f"dp.{run.dp.name}:witness-select"):
            parents = flat.parent[child_nodes]
            keep = (flat.kind[parents] != pick_at) | \
                (chosen[parents] == child_nodes)
            if has_primes:
                pk = flat.kind[parents] == PRIME
                if pk.any():
                    keep[pk] = _prime_keep(run, child_nodes[pk],
                                           parents[pk], slot_of)
            selected[child_nodes[keep]] = True

    picked_leaves = flat.leaves[selected[flat.leaves]]
    return np.sort(flat.leaf_vertex[picked_leaves])


def _prime_keep(run: CotreeDPRun, children: np.ndarray, parents: np.ndarray,
                slot_of: np.ndarray) -> np.ndarray:
    """Which children of selected prime nodes join the witness set.

    Decodes ``run.prime_choice``: a subset bitmask for generic primes; for
    spider primes choice ``-1`` is the base option (all feet + head for
    ``independent``, body + head for ``clique``) and choice ``i`` the pair
    option (see :func:`_spider_prime_values`).
    """
    flat = run.tree
    if run.prime_choice is None:  # pragma: no cover - engine always records
        raise ValueError("witness on a primed tree needs a DP run with "
                         "recorded prime choices")
    choice = run.prime_choice[parents]
    slot = slot_of[children]
    spider = flat.spider[parents]
    k = (flat.child_offset[parents + 1] - flat.child_offset[parents]) // 2
    keep = np.zeros(len(children), dtype=bool)

    generic = spider == 0
    keep[generic] = ((choice[generic] >> slot[generic]) & 1).astype(bool)

    sp = ~generic
    if sp.any():
        thin = spider == SPIDER_THIN
        base = choice == -1
        is_foot = slot < k
        is_body = ~is_foot & (slot < 2 * k)
        is_head = slot == 2 * k
        if run.dp.prime.select == "independent":
            base_keep = is_foot | is_head
            pair_keep = np.where(
                thin,
                (is_foot & (slot != choice)) | (slot == k + choice),
                (slot == choice) | (slot == k + choice))
        else:
            base_keep = is_body | is_head
            pair_keep = np.where(
                thin,
                (slot == choice) | (slot == k + choice),
                (is_body & (slot != k + choice)) | (slot == choice))
        keep[sp] = np.where(base, base_keep, pair_keep)[sp]
    return keep


def class_assignment(run: CotreeDPRun, accumulate_at: int,
                     field_name: str) -> np.ndarray:
    """Witness for partition DPs: a class index per vertex.

    Top-down offset pass: every node receives a class-id offset (root 0);
    at nodes of kind ``accumulate_at`` the children get *disjoint* id
    ranges (each shifted by the exclusive prefix sum of its earlier
    siblings' ``field_name`` values), at the other kind all children share
    the parent's offset.  A leaf's class is its offset.

    With ``accumulate_at=JOIN`` and the chromatic-number field this is a
    proper colouring with exactly ``chi(G)`` colours (adjacent vertices
    have a join LCA, whose children occupy disjoint colour ranges); with
    ``accumulate_at=UNION`` and the clique-cover field it is a partition
    into ``theta(G)`` cliques (same-class vertices always meet at a join).
    """
    flat = run.tree
    n = flat.num_nodes
    value = run.values[field_name]
    if getattr(flat, "has_primes", False):
        raise ValueError(f"dp.{run.dp.name}: class-assignment witnesses "
                         f"have no prime-node rule; cograph inputs only")

    # exclusive prefix of sibling values, per child slot of the CSR array
    sib_prefix = np.zeros(len(flat.child_index), dtype=np.int64)
    if len(flat.child_index):
        with _step(run, len(flat.child_index),
                   f"dp.{run.dp.name}:witness-sibling-prefix"):
            vals = value[flat.child_index].astype(np.int64, copy=False)
            glob = np.cumsum(vals)
            excl = glob - vals
            starts = flat.child_offset[:-1]
            counts = np.diff(flat.child_offset)
            base = np.repeat(excl[starts[counts > 0]], counts[counts > 0])
            sib_prefix = excl - base

    # slot index of every node under its parent (CSR position)
    slot_of = np.full(n, -1, dtype=np.int64)
    slot_of[flat.child_index] = np.arange(len(flat.child_index),
                                          dtype=np.int64)

    offset = np.zeros(n, dtype=np.int64)
    for level_nodes in _levels_top_down(run):
        child_nodes, _ = _gather_level_children(flat, level_nodes)
        with _step(run, len(child_nodes), f"dp.{run.dp.name}:witness-offset"):
            parents = flat.parent[child_nodes]
            shift = np.where(flat.kind[parents] == accumulate_at,
                             sib_prefix[slot_of[child_nodes]], 0)
            offset[child_nodes] = offset[parents] + shift

    leaves = flat.leaves
    classes = np.empty(flat.num_vertices, dtype=np.int64)
    classes[flat.leaf_vertex[leaves]] = offset[leaves]
    return classes


# --------------------------------------------------------------------------- #
# the built-in specs
# --------------------------------------------------------------------------- #

def _ones_leaf(fields: Tuple[str, ...]):
    def leaf(vertex_ids: np.ndarray) -> Dict[str, np.ndarray]:
        one = np.ones(len(vertex_ids), dtype=np.int64)
        return {f: one for f in fields}
    return leaf


#: Lemma 2.4 generalised to arbitrary-arity cotrees: ``p`` at a 0-node is
#: the sum over children; at a 1-node it is ``max(1, max_j (p_j + L_j) - L)``
#: — the multiway closed form of the leftist fold ``max(p(v) - L(w), 1)``
#: (fold the children in non-increasing leaf-count order and the clamps
#: telescope; every other child's term is a valid lower bound by the
#: connector-counting argument, so the max over children is exact).
PATH_COVER_SIZE_DP = CotreeDP(
    name="path_cover_size",
    fields=("p", "L"),
    leaf=_ones_leaf(("p", "L")),
    union=Combine(reduce=(("p", "sum", "p"), ("L", "sum", "L"))),
    join=Combine(
        prepare=lambda cv: {"p_plus_L": cv["p"] + cv["L"]},
        reduce=(("best", "max", "p_plus_L"), ("L", "sum", "L")),
        finish=lambda red: {"p": np.maximum(red["best"] - red["L"], 1),
                            "L": red["L"]},
    ),
)

#: omega: a clique lives inside one part of a union (max), spans every
#: part of a join (sum), and picks a quotient clique at a prime node.
MAX_CLIQUE_DP = CotreeDP(
    name="max_clique",
    fields=("omega",),
    leaf=_ones_leaf(("omega",)),
    union=Combine(reduce=(("omega", "max", "omega"),)),
    join=Combine(reduce=(("omega", "sum", "omega"),)),
    prime=PrimeCombine(select="clique"),
    witness=lambda run: selected_subtree_vertices(run, UNION, "omega"),
)

#: alpha: dual of omega — sum across union parts, max across join parts,
#: a quotient independent set at a prime node.
MAX_INDEPENDENT_SET_DP = CotreeDP(
    name="max_independent_set",
    fields=("alpha",),
    leaf=_ones_leaf(("alpha",)),
    union=Combine(reduce=(("alpha", "sum", "alpha"),)),
    join=Combine(reduce=(("alpha", "max", "alpha"),)),
    prime=PrimeCombine(select="independent"),
    witness=lambda run: selected_subtree_vertices(run, JOIN, "alpha"),
)


def _weight_leaf(weights: np.ndarray, field: str):
    w = np.ascontiguousarray(np.asarray(weights, dtype=np.int64))

    def leaf(vertex_ids: np.ndarray) -> Dict[str, np.ndarray]:
        return {field: w[vertex_ids]}
    return leaf


def max_weight_independent_set_dp(weights) -> CotreeDP:
    """Spec factory: maximum-weight independent set with per-vertex integer
    weights (``weights[v]`` for leaf vertex ``v``, validated non-negative
    by the task layer).  Same combine shape as the unit-weight spec — only
    the leaf initialiser changes — so it runs on modular decomposition
    trees too."""
    return CotreeDP(
        name="max_weight_independent_set",
        fields=("alpha",),
        leaf=_weight_leaf(weights, "alpha"),
        union=Combine(reduce=(("alpha", "sum", "alpha"),)),
        join=Combine(reduce=(("alpha", "max", "alpha"),)),
        prime=PrimeCombine(select="independent"),
        witness=lambda run: selected_subtree_vertices(run, JOIN, "alpha"),
    )


def max_weight_clique_dp(weights) -> CotreeDP:
    """Spec factory: maximum-weight clique (dual of
    :func:`max_weight_independent_set_dp`)."""
    return CotreeDP(
        name="max_weight_clique",
        fields=("omega",),
        leaf=_weight_leaf(weights, "omega"),
        union=Combine(reduce=(("omega", "max", "omega"),)),
        join=Combine(reduce=(("omega", "sum", "omega"),)),
        prime=PrimeCombine(select="clique"),
        witness=lambda run: selected_subtree_vertices(run, UNION, "omega"),
    )

#: chi: cographs are perfect, and the cotree shows it constructively —
#: union parts can reuse colours (max), join parts need disjoint palettes
#: (sum); the witness assigns the disjoint colour ranges top-down.
CHROMATIC_NUMBER_DP = CotreeDP(
    name="chromatic_number",
    fields=("chi",),
    leaf=_ones_leaf(("chi",)),
    union=Combine(reduce=(("chi", "max", "chi"),)),
    join=Combine(reduce=(("chi", "sum", "chi"),)),
    witness=lambda run: class_assignment(run, JOIN, "chi"),
)

#: theta: clique-cover number = chi of the complement, and complementing a
#: cograph just swaps the node labels — so the rules swap too.
CLIQUE_COVER_DP = CotreeDP(
    name="clique_cover",
    fields=("theta",),
    leaf=_ones_leaf(("theta",)),
    union=Combine(reduce=(("theta", "sum", "theta"),)),
    join=Combine(reduce=(("theta", "max", "theta"),)),
    witness=lambda run: class_assignment(run, UNION, "theta"),
)


def _count_leaf(vertex_ids: np.ndarray) -> Dict[str, np.ndarray]:
    # Python ints (dtype=object): independent-set counts grow past 2**63
    # around n = 63, so the field must never silently wrap.
    return {"count": np.array([2] * len(vertex_ids), dtype=object)}


#: counts include the empty set: a union multiplies the per-part counts,
#: a join allows at most one part to contribute (sum the non-empty counts,
#: re-add the shared empty set).
COUNT_INDEPENDENT_SETS_DP = CotreeDP(
    name="count_independent_sets",
    fields=("count",),
    leaf=_count_leaf,
    union=Combine(reduce=(("count", "prod", "count"),)),
    join=Combine(
        prepare=lambda cv: {"nonempty": cv["count"] - 1},
        reduce=(("total", "sum", "nonempty"),),
        finish=lambda red: {"count": red["total"] + 1},
    ),
    dtype=object,
)

#: every built-in spec, for the parity tests and the docs.
BUILTIN_DPS: Tuple[CotreeDP, ...] = (
    PATH_COVER_SIZE_DP,
    MAX_CLIQUE_DP,
    MAX_INDEPENDENT_SET_DP,
    CHROMATIC_NUMBER_DP,
    CLIQUE_COVER_DP,
    COUNT_INDEPENDENT_SETS_DP,
)
