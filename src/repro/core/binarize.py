"""Step 1 — binarize the cotree (``T(G)`` → ``Tb(G)``), PRAM-costed.

Every internal node with ``k >= 3`` children is replaced by a left-deep chain
of ``k - 1`` binary nodes carrying the same label (Fig. 3).  In parallel this
is an id-allocation problem: prefix sums over the child counts give every
original node the block of new node ids its chain occupies, after which each
child can compute its new parent (and each chain node its children) with O(1)
work, independently of all others.

The output is identical to the sequential
:func:`repro.cograph.binary.binarize_cotree` (the tests assert this); the
point of this module is that the transformation costs ``O(log n)`` time and
``O(n)`` work on the simulator, matching the citation of [1] in Section 5 of
the paper.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..backends import resolve_context
from ..cograph import BinaryCotree, Cotree, CotreeError, FlatCotree
from ..cograph.cotree import LEAF
from ..primitives import prefix_sum

__all__ = ["binarize_parallel"]


def binarize_parallel(ctx, tree: Union[Cotree, FlatCotree], *,
                      label: str = "binarize") -> BinaryCotree:
    """Binarize a (canonical) cotree with PRAM accounting.

    Parameters
    ----------
    ctx:
        execution context (or a raw PRAM machine / backend name / ``None``).
    tree:
        the input cotree — a :class:`Cotree` or, on the hot path, a
        :class:`FlatCotree` whose CSR arrays are consumed directly; every
        internal node must have at least two children.

    Returns
    -------
    BinaryCotree
        the binarized cotree ``Tb(G)``.
    """
    machine = resolve_context(ctx)
    kernels = getattr(machine, "kernels", None)
    flat = FlatCotree.from_cotree(tree)
    n_old = flat.num_nodes
    if flat.num_vertices == 0:
        raise CotreeError("cannot binarize an empty cotree")

    kind_old = np.asarray(flat.kind, dtype=np.int64)
    child_count = flat.degrees()
    internal = kind_old != LEAF
    # trusted internal routes (canonicalize output, wire loads with a
    # verified checksum) set pre_validated: skip the full-array re-scan
    if not getattr(flat, "pre_validated", False) \
            and np.any(internal & (child_count < 2)):
        raise CotreeError("binarize_parallel requires every internal node to "
                          "have at least two children (canonicalize first)")

    # CSR layout of the children lists: child_index[child_offset[u]:...+k]
    child_offset_incl = prefix_sum(machine, child_count, inclusive=True,
                                   label=f"{label}.csr")
    child_offset = child_offset_incl - child_count
    total_children = int(child_offset_incl[-1]) if n_old else 0
    child_index = flat.child_index
    # position among siblings: index within the CSR segment
    child_pos_of = np.zeros(n_old, dtype=np.int64)
    if kernels is not None:
        child_pos_of[child_index] = kernels.segment_arange(child_count)
    else:
        child_pos_of[child_index] = np.arange(total_children, dtype=np.int64) \
            - np.repeat(child_offset, child_count)
    with machine.step(active=max(1, len(child_index)), label=f"{label}:csr-fill"):
        pass  # the flattening above is one O(1)-depth scatter per child

    # Each internal node u with k children contributes k-1 chain nodes; leaves
    # contribute one node.  Allocate new ids: leaves first keep a compact
    # id block, then chains (any consistent scheme works; we keep original
    # leaves' relative order so vertex ids are easy to track).
    contribution = np.where(internal, child_count - 1, 1)
    alloc_incl = prefix_sum(machine, contribution, inclusive=True,
                            label=f"{label}.alloc")
    first_new_id = alloc_incl - contribution
    n_new = int(alloc_incl[-1])

    kind_new = np.zeros(n_new, dtype=np.int8)
    left_new = np.full(n_new, -1, dtype=np.int64)
    right_new = np.full(n_new, -1, dtype=np.int64)
    leaf_vertex_new = np.full(n_new, -1, dtype=np.int64)

    # "representative" of an original node: the new id of its chain's top
    # (for internal nodes the last chain node; for leaves their own new id).
    rep = np.where(internal, first_new_id + contribution - 1, first_new_id)

    with machine.step(active=n_old, label=f"{label}:emit-nodes"):
        # leaves keep their vertex ids; chain nodes inherit their original
        # node's label in the wiring step below.
        leaf_nodes = np.flatnonzero(~internal)
        kind_new[rep[leaf_nodes]] = LEAF
        leaf_vertex_new[rep[leaf_nodes]] = flat.leaf_vertex[leaf_nodes]

    # chain wiring: for original internal node u with children c_0..c_{k-1}
    # and chain nodes q_0..q_{k-2} (= first_new_id[u] .. rep[u]):
    #   left(q_0)  = rep[c_0],  right(q_0) = rep[c_1]
    #   left(q_j)  = q_{j-1},   right(q_j) = rep[c_{j+1}]   (j >= 1)
    # Every child c of u knows its position i = child_pos_of[c], so each
    # child writes exactly one child pointer: this is one parallel step over
    # all children.
    parent_old = flat.parent
    all_children = np.flatnonzero(parent_old != -1)
    with machine.step(active=max(1, len(all_children)), label=f"{label}:wire"):
        u_of = parent_old[all_children]
        i_of = child_pos_of[all_children]
        q0 = first_new_id[u_of]
        target = np.where(i_of == 0, q0, q0 + i_of - 1)
        side_left = i_of == 0
        left_new[target[side_left]] = rep[all_children[side_left]]
        right_new[target[~side_left]] = rep[all_children[~side_left]]
        # internal chain links: q_j's left child is q_{j-1}; each internal
        # node u with k >= 3 children contributes links at offsets 1..k-2
        # (one flat arange minus a per-segment base recovers the offsets).
        internal_nodes = np.flatnonzero(internal)
        link_counts = np.maximum(child_count[internal_nodes] - 2, 0)
        if link_counts.sum():
            link_base = np.repeat(first_new_id[internal_nodes], link_counts)
            if kernels is not None:
                js = kernels.segment_arange(link_counts) + 1
            else:
                seg_start = np.repeat(np.cumsum(link_counts) - link_counts,
                                      link_counts)
                js = np.arange(int(link_counts.sum()), dtype=np.int64) - \
                    seg_start + 1
            left_new[link_base + js] = link_base + js - 1
        chain_counts = (child_count - 1)[internal_nodes]
        kinds_chain = np.repeat(kind_old[internal_nodes], chain_counts)
        if internal_nodes.size:
            chain_base = np.repeat(first_new_id[internal_nodes], chain_counts)
            if kernels is not None:
                chain_ids = chain_base + kernels.segment_arange(chain_counts)
            else:
                chain_seg = np.repeat(np.cumsum(chain_counts) - chain_counts,
                                      chain_counts)
                chain_ids = chain_base + \
                    np.arange(int(chain_counts.sum()),
                              dtype=np.int64) - chain_seg
        else:
            chain_ids = np.empty(0, dtype=np.int64)
        kind_new[chain_ids] = kinds_chain.astype(np.int8)

    parent_new = np.full(n_new, -1, dtype=np.int64)
    has_l = np.flatnonzero(left_new != -1)
    has_r = np.flatnonzero(right_new != -1)
    with machine.step(active=len(has_l) + len(has_r), label=f"{label}:parents"):
        parent_new[left_new[has_l]] = has_l
        parent_new[right_new[has_r]] = has_r

    root_new = int(rep[flat.root])
    old_roots = getattr(flat, "roots", None)
    if old_roots is not None:
        # forest input: keep the per-instance root map (the structural
        # validate below is single-root-only, but the forest path runs on
        # the fast backend, which skips it)
        from ..cograph.forest import BinaryForest
        old_roots = np.asarray(old_roots, dtype=np.int64)
        if np.any(old_roots < 0):
            raise CotreeError("cannot binarize a forest with empty instances")
        out = BinaryForest(kind_new, left_new, right_new, parent_new,
                           leaf_vertex_new, root_new,
                           roots=rep[old_roots])
        return out
    out = BinaryCotree(kind_new, left_new, right_new, parent_new,
                       leaf_vertex_new, root_new)
    if machine.simulates:
        # the defensive structural check is a sequential Python traversal;
        # the fidelity path keeps it, the throughput path trusts the
        # construction (the parity tests cross-check the two).
        out.validate()
    return out
