"""Deterministic fault injection inside worker processes.

Chaos testing needs failures that are *reproducible*: "the worker dies on
its 3rd task", "payload #7 always SIGKILLs whoever runs it", "item #4
takes 800ms".  A :class:`FaultPlan` encodes such a script; the worker
entrypoint (:func:`repro.core.batch._apply_chunk`) consults
:func:`active_plan` around every payload it executes.

Plans cross process boundaries through the environment: the parent sets
``REPRO_FAULTS`` to the plan's JSON before the pool forks, and every
worker (which inherits the environment at fork time) picks it up on its
first task.  Two trigger axes are supported per fault:

* ``*_task`` — the Nth payload *this worker process* executes (1-based),
  e.g. ``{"kill_task": 3}``: every first-generation worker dies on its
  third task.  Models age-correlated failures (leaks, OOM creep).
* ``*_index`` — the payload whose leading element (its stream/batch
  index) equals N, e.g. ``{"kill_index": 7, "once": false}``: a *poison
  item* that kills any worker that ever touches it.

``once`` (default ``true``) limits a plan to worker **generation 0**:
:meth:`repro.core.batch.WorkerPool.rebuild` exports
``REPRO_FAULT_GENERATION`` with the restart count, so workers forked
after the first heal run fault-free — the "transient crash, transparent
recovery" scenario.  ``"once": false`` keeps the plan armed across
rebuilds — the poison/quarantine scenario.

Faults: ``kill`` (SIGKILL the worker mid-task), ``memory`` (raise
``MemoryError``), ``delay`` (sleep ``delay_seconds``), ``corrupt``
(replace the result with :data:`CORRUPT_SENTINEL`).
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["CORRUPT_SENTINEL", "FAULTS_ENV", "GENERATION_ENV", "FaultPlan",
           "active_plan", "clear_active_plan"]

FAULTS_ENV = "REPRO_FAULTS"
GENERATION_ENV = "REPRO_FAULT_GENERATION"

#: What a ``corrupt`` fault replaces the worker's result with — a value no
#: legitimate worker returns, so callers can detect and degrade it.
CORRUPT_SENTINEL = "__repro-fault-corrupted-result__"

_FIELDS = ("kill_task", "kill_index", "memory_task", "memory_index",
           "delay_task", "delay_index", "corrupt_task", "corrupt_index")


@dataclass
class FaultPlan:
    """One deterministic failure script for worker processes.

    All triggers are optional; ``*_task`` counts this worker's executed
    payloads from 1, ``*_index`` matches ``payload[0]`` (the stream/batch
    index) when the payload is an indexed tuple.  Instances are stateful
    (they count tasks) — one per worker process, via :func:`active_plan`.
    """

    kill_task: Optional[int] = None
    kill_index: Optional[int] = None
    memory_task: Optional[int] = None
    memory_index: Optional[int] = None
    delay_task: Optional[int] = None
    delay_index: Optional[int] = None
    delay_seconds: float = 0.1
    corrupt_task: Optional[int] = None
    corrupt_index: Optional[int] = None
    once: bool = True

    def __post_init__(self) -> None:
        self._seen = 0
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if all(getattr(self, f) is None for f in _FIELDS):
            raise ValueError(
                f"FaultPlan needs at least one trigger ({', '.join(_FIELDS)})")

    # ------------------------------------------------------------- wire --

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` JSON object."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{FAULTS_ENV} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ValueError(f"{FAULTS_ENV} must be a JSON object, "
                             f"got {type(raw).__name__}")
        known = set(_FIELDS) | {"delay_seconds", "once"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan field(s): {sorted(unknown)}")
        return cls(**raw)

    def to_json(self) -> str:
        """The inverse of :meth:`from_json` (for tests and CLI plumbing)."""
        payload: Dict[str, Any] = {
            f: getattr(self, f) for f in _FIELDS
            if getattr(self, f) is not None}
        if self.delay_task is not None or self.delay_index is not None:
            payload["delay_seconds"] = self.delay_seconds
        payload["once"] = self.once
        return json.dumps(payload)

    # ---------------------------------------------------------- firing --

    @staticmethod
    def payload_index(payload: Any) -> Optional[int]:
        """The stream/batch index of a payload, if it carries one."""
        if isinstance(payload, tuple) and payload and \
                isinstance(payload[0], int):
            return payload[0]
        return None

    def _matches(self, task_rule: Optional[int], index_rule: Optional[int],
                 task_no: int, index: Optional[int]) -> bool:
        if task_rule is not None and task_no == task_rule:
            return True
        return index_rule is not None and index is not None \
            and index == index_rule

    def apply(self, worker: Callable[[Any], Any], payload: Any) -> Any:
        """Run ``worker(payload)`` under this plan's fault script."""
        import time as _time
        self._seen += 1
        task_no = self._seen
        index = self.payload_index(payload)
        if self._matches(self.kill_task, self.kill_index, task_no, index):
            # die the way production workers die: uncatchable, mid-task
            os.kill(os.getpid(), signal.SIGKILL)
        if self._matches(self.memory_task, self.memory_index, task_no, index):
            raise MemoryError(
                f"injected fault: memory (task #{task_no}, index {index})")
        if self._matches(self.delay_task, self.delay_index, task_no, index):
            _time.sleep(self.delay_seconds)
        result = worker(payload)
        if self._matches(self.corrupt_task, self.corrupt_index,
                         task_no, index):
            return CORRUPT_SENTINEL
        return result


# One plan instance per worker process.  ``fork`` copies the parent's
# module state, so the cache is keyed by PID: a forked child with the
# parent's cache entry re-parses (and re-counts) for itself.
_cache: Tuple[int, Optional[str], Optional[FaultPlan]] = (-1, None, None)


def active_plan() -> Optional[FaultPlan]:
    """This process's armed :class:`FaultPlan`, or ``None``.

    Reads ``REPRO_FAULTS`` once per process (per env value) and caches the
    stateful plan instance.  Plans with ``once=true`` are inert in worker
    generations > 0 (``REPRO_FAULT_GENERATION``, stamped by
    ``WorkerPool.rebuild``).
    """
    global _cache
    text = os.environ.get(FAULTS_ENV)
    pid = os.getpid()
    if _cache[0] == pid and _cache[1] == text:
        return _cache[2]
    plan: Optional[FaultPlan] = None
    if text:
        plan = FaultPlan.from_json(text)
        if plan.once and int(os.environ.get(GENERATION_ENV, "0") or "0") > 0:
            plan = None
    _cache = (pid, text, plan)
    return plan


def clear_active_plan() -> None:
    """Drop the per-process plan cache (tests re-arm plans mid-process)."""
    global _cache
    _cache = (-1, None, None)
