"""Resilience primitives: retry policies, structured failure records and a
circuit breaker.

The streaming engine (:mod:`repro.core.batch`) and the HTTP service
(:mod:`repro.server`) both treat worker death, slow items and poison
inputs as routine events.  The vocabulary for that lives here:

* :class:`RetryPolicy` — how often and how fast to retry a lost or failed
  item: capped exponential backoff with jitter, plus an optional per-item
  wall-clock deadline.
* :class:`ErrorOutcome` — the structured record an item degrades to when
  its retries are exhausted (quarantine) or its deadline expires.  It
  flows through :func:`repro.core.batch.stream_out` *in the item's ordered
  slot*, so a crashed worker never disturbs stream order.
* :class:`WorkerCrashError` — raised by the strict (``on_error="fail"``)
  paths when an :class:`ErrorOutcome` surfaces.
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine the server consults before dispatching solve traffic.

Everything here is dependency-free (stdlib only) and import-cycle-free:
``batch`` and ``faults`` import *from* this module, never the reverse.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = ["CircuitBreaker", "ErrorOutcome", "RetryPolicy",
           "WorkerCrashError"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the streaming engine retries lost or failed items.

    Attributes
    ----------
    max_retries:
        retries per *item* beyond its first execution.  ``0`` means a
        crashed item is quarantined immediately (the pool itself is still
        rebuilt and unaffected items still re-run — resubmitting work that
        never started is not a retry).
    base_delay / max_delay / jitter:
        capped exponential backoff: retry ``k`` sleeps
        ``min(base_delay * 2**(k-1), max_delay)``, stretched by up to
        ``jitter`` (a fraction) of itself so a thundering herd of healed
        streams does not resubmit in lockstep.
    deadline:
        optional per-item wall-clock budget in seconds, measured from the
        item's first submission.  An item that exceeds it degrades to an
        :class:`ErrorOutcome` of kind ``"deadline"`` (never retried — its
        time is up by definition).
    enabled:
        ``False`` restores the legacy fail-fast streaming loop (a worker
        crash raises ``BrokenProcessPool`` out of the stream).  Build one
        with :meth:`off`.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0:
            raise ValueError(
                f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    @classmethod
    def off(cls) -> "RetryPolicy":
        """The escape hatch: no healing, legacy fail-fast semantics."""
        return cls(max_retries=0, base_delay=0.0, max_delay=0.0,
                   jitter=0.0, enabled=False)

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based); 0.0 for attempt 0."""
        if attempt <= 0 or self.base_delay <= 0:
            return 0.0
        delay = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        if self.jitter:
            delay *= 1.0 + random.random() * self.jitter
        return delay

    def sleep(self, attempt: int) -> None:
        """Block for :meth:`delay_for` seconds (no-op when it is 0)."""
        delay = self.delay_for(attempt)
        if delay > 0:
            time.sleep(delay)

    def remaining(self, started: float) -> Optional[float]:
        """Seconds left of ``deadline`` for an item first submitted at
        monotonic time ``started`` (``None`` when no deadline is set)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - (time.monotonic() - started))


class ErrorOutcome:
    """A structured failure delivered in an item's ordered stream slot.

    ``kind`` is the failure taxonomy entry (see DESIGN.md):

    * ``"crash"`` — the item's worker process died (SIGKILL, segfault)
      and its retries are exhausted;
    * ``"memory"`` — the item raised :class:`MemoryError` in-worker on
      every attempt;
    * ``"deadline"`` — the item exceeded :attr:`RetryPolicy.deadline`;
    * ``"corrupt"`` — the worker returned a value of the wrong shape
      (detected by the caller, e.g. :func:`repro.api.solve_stream`).

    ``attempts`` counts total executions (first run included); ``payload``
    is the original payload when available, so callers can recover e.g.
    the batch index.
    """

    __slots__ = ("error", "kind", "attempts", "payload")

    def __init__(self, error: str, kind: str, attempts: int = 1,
                 payload: Any = None) -> None:
        self.error = error
        self.kind = kind
        self.attempts = attempts
        self.payload = payload

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (payload elided — it may not serialise)."""
        return {"error": self.error, "error_kind": self.kind,
                "attempts": self.attempts}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ErrorOutcome(kind={self.kind!r}, attempts={self.attempts}, "
                f"error={self.error!r})")


class WorkerCrashError(RuntimeError):
    """An :class:`ErrorOutcome` surfaced on a strict (``fail``) path."""

    def __init__(self, outcome: ErrorOutcome) -> None:
        super().__init__(
            f"worker item failed ({outcome.kind}) after "
            f"{outcome.attempts} attempt(s): {outcome.error}")
        self.outcome = outcome


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    ``record_failure`` after ``threshold`` consecutive failures opens the
    breaker; while open, :meth:`allow` rejects everything until
    ``cooldown`` seconds have passed, then admits exactly one half-open
    probe at a time.  A probe success closes the breaker, a failure
    re-opens it (and restarts the cooldown).  Thread-safe; the clock is
    injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: int = 5, cooldown: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.opened_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # lock held.  An open breaker past its cooldown *is* half-open —
        # reads must agree with what allow() would do next.
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.cooldown):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request proceed right now?  (Claims the half-open probe.)"""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                self._state = self.HALF_OPEN
                if not self._probing:
                    self._probing = True
                    return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = (self._state == self.HALF_OPEN
                       or self._failures >= self.threshold)
            if tripped:
                if self._state != self.OPEN:
                    self.opened_total += 1
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False

    def retry_after(self) -> float:
        """Seconds until the next half-open probe (0.0 when not open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self.cooldown
                       - (self._clock() - self._opened_at))

    def snapshot(self) -> Dict[str, Any]:
        """State for /healthz and /metrics."""
        with self._lock:
            return {"state": self._effective_state(),
                    "consecutive_failures": self._failures,
                    "threshold": self.threshold,
                    "cooldown_seconds": self.cooldown,
                    "opened_total": self.opened_total}
