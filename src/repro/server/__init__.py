"""``repro.server`` — the async HTTP/JSON service layer.

The ROADMAP's "millions of users" north star needs a long-running process,
not a CLI: this subpackage serves the whole solve stack over HTTP/1.1 +
JSON, stdlib-only (asyncio), with the production plumbing a real service
needs — env-driven :class:`Settings`, structured logging with request ids,
field-level request validation, a shared warm worker pool and thread-safe
solution cache, admission control (bounded queue → 429), per-request
timeouts (504), ``/healthz`` + ``/metrics``, and graceful drain on
SIGTERM/SIGINT.

Endpoints::

    POST /v1/solve          {"problem": ..., "task": ..., "options": {...}}
    POST /v1/solve_batch    [records...]  or  {"problems": [...], ...}
    GET  /healthz
    GET  /metrics

Run it::

    python -m repro serve --port 8080 --jobs 4
    REPRO_PORT=8080 REPRO_QUEUE_LIMIT=256 python -m repro serve

Embed it::

    from repro.server import ReproServer, Settings
    async with ReproServer(Settings(port=0, jobs=1)) as server:
        ...  # server.port is bound; server.app.dispatch() for tests
"""

from .app import HTTPError, Response, ServerApp
from .logging_config import configure_logging, get_logger, new_request_id
from .metrics import LatencyHistogram, Metrics
from .runner import ReproServer, serve
from .schemas import (
    SchemaError,
    SolveRequest,
    parse_batch_request,
    parse_solve_request,
)
from .settings import Settings

__all__ = [
    "ReproServer", "serve", "Settings", "ServerApp", "Response",
    "HTTPError", "Metrics", "LatencyHistogram", "SchemaError",
    "SolveRequest", "parse_solve_request", "parse_batch_request",
    "configure_logging", "get_logger", "new_request_id",
]
