"""Server lifecycle: boot, run, drain, exit.

:class:`ReproServer` wraps one :class:`~repro.server.app.ServerApp` plus
its listening socket, with an explicit async lifecycle (``await start()``
/ ``await stop()``) that tests, benchmarks and embedders drive directly.
:func:`serve` is the blocking production entry point behind
``python -m repro serve``: it installs SIGTERM/SIGINT handlers and runs
the graceful-shutdown sequence —

1. stop accepting connections (close the listening socket);
2. refuse newly-arriving work on live keep-alive connections (503);
3. wait up to ``shutdown_timeout`` for in-flight requests to drain;
4. close lingering connections, shut the worker pool down, flush logs.

A second signal during the drain skips straight to the hard teardown.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Optional

from .app import ServerApp
from .logging_config import configure_logging, flush_logging, get_logger
from .settings import Settings

__all__ = ["ReproServer", "serve"]


class ReproServer:
    """One listening server around a :class:`ServerApp`.

    >>> server = ReproServer(Settings(port=0, jobs=1))   # doctest: +SKIP
    >>> await server.start()                             # doctest: +SKIP
    >>> server.port                                      # doctest: +SKIP
    54321
    """

    def __init__(self, settings: Optional[Settings] = None, *,
                 app: Optional[ServerApp] = None) -> None:
        self.settings = settings if settings is not None else \
            Settings.from_env()
        self.app = app if app is not None else ServerApp(self.settings)
        self.log = get_logger()
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------ #

    @property
    def port(self) -> Optional[int]:
        """The bound port (resolves ``port=0``), or ``None`` before
        :meth:`start`."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> "ReproServer":
        """Bind the socket and start serving; returns ``self``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self.app.handle_connection,
            self.settings.host, self.settings.port)
        self.log.info("listening", extra={
            "event": "listening", "host": self.settings.host,
            "port": self.port, "jobs": self.app.pool.jobs,
            "queue_limit": self.settings.queue_limit})
        return self

    async def stop(self, *, drain_timeout: Optional[float] = None) -> bool:
        """Graceful shutdown; returns ``True`` when fully drained."""
        if self._server is None:
            return True
        timeout = drain_timeout if drain_timeout is not None \
            else self.settings.shutdown_timeout
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        self.app.begin_drain()
        drained = await self.app.drain(timeout)
        self.log.info("drained" if drained else "drain timed out", extra={
            "event": "shutdown", "drained": drained,
            "abandoned": self.app.admitted})
        self.app.close_connections()
        self.app.close()
        flush_logging()
        return drained

    async def serve_until(self, stop_event: asyncio.Event) -> bool:
        """Start, run until ``stop_event`` fires, then stop gracefully."""
        await self.start()
        await stop_event.wait()
        return await self.stop()

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()


async def _serve_async(settings: Settings) -> int:
    server = ReproServer(settings)
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _request_stop(signame: str) -> None:
        if stop_event.is_set():     # second signal: abandon the drain
            server.log.warning("forced shutdown", extra={
                "event": "shutdown", "signal": signame})
            for task in asyncio.all_tasks(loop):
                task.cancel()
            return
        server.log.info("shutdown requested", extra={
            "event": "shutdown", "signal": signame})
        stop_event.set()

    for signame in ("SIGTERM", "SIGINT"):
        try:
            loop.add_signal_handler(getattr(signal, signame),
                                    _request_stop, signame)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass                    # non-Unix event loops

    drained = await server.serve_until(stop_event)
    return 0 if drained else 1


def serve(settings: Optional[Settings] = None) -> int:
    """Blocking entry point: configure logging, run until SIGTERM/SIGINT.

    Returns the process exit code (0 = clean drain).
    """
    settings = settings if settings is not None else Settings.from_env()
    configure_logging(settings)
    try:
        return asyncio.run(_serve_async(settings))
    except (KeyboardInterrupt, asyncio.CancelledError):  # pragma: no cover
        return 1
