"""Service metrics: counters, gauges and latency histograms.

Everything the ``/metrics`` endpoint exposes lives here, collected behind
one lock so the event loop, the batch worker threads and the scrape all
see a consistent snapshot.  The exposition is Prometheus-flavoured text —
``name{label="value"} number`` lines with ``# HELP`` / ``# TYPE``
preambles — which both a human with ``curl`` and a real scraper can read.

Latency is tracked per task as a fixed-bucket histogram (sub-millisecond
to minutes, log-spaced); quantiles (p50/p95/p99) are estimated from the
bucket counts at scrape time, so recording an observation is O(buckets)
with no sample retention.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, List, Optional, Tuple

from .._version import __version__

__all__ = ["Metrics", "LatencyHistogram"]

#: histogram bucket upper bounds, in seconds (log-spaced, 0.5ms .. 120s).
DEFAULT_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

#: the quantiles exposed per task.
QUANTILES = (0.5, 0.95, 0.99)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation.

    Not locked by itself — :class:`Metrics` serialises access.
    """

    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf overflow bucket
        self.total = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, seconds)] += 1
        self.total += 1
        self.sum += seconds

    def quantile(self, q: float) -> Optional[float]:
        """The upper bound of the bucket holding the q-quantile (``None``
        with no observations; the last finite bound for the overflow
        bucket)."""
        if self.total == 0:
            return None
        rank = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]  # pragma: no cover - loop always reaches


class Metrics:
    """The server's one metrics registry (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests_total: Dict[Tuple[str, str], int] = {}
        self.latency: Dict[str, LatencyHistogram] = {}
        self.rejected_total = 0       # 429s (also counted in requests_total)
        self.timeouts_total = 0       # 504s (also counted in requests_total)
        self.internal_errors_total = 0   # 500s (structured or unexpected)
        self.breaker_rejections_total = 0  # 503s from an open breaker
        # gauges, maintained by the app layer
        self.in_flight = 0
        self.queue_depth = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def observe_request(self, task: str, status: int,
                        seconds: float) -> None:
        """Count one finished request and record its latency."""
        with self._lock:
            key = (task, str(int(status)))
            self.requests_total[key] = self.requests_total.get(key, 0) + 1
            if status == 429:
                self.rejected_total += 1
            elif status == 504:
                self.timeouts_total += 1
            elif status == 500:
                self.internal_errors_total += 1
            hist = self.latency.get(task)
            if hist is None:
                hist = self.latency[task] = LatencyHistogram()
            hist.observe(seconds)

    def set_gauges(self, *, in_flight: int, queue_depth: int) -> None:
        with self._lock:
            self.in_flight = in_flight
            self.queue_depth = queue_depth

    def record_breaker_rejection(self) -> None:
        """Count one request turned away by an open circuit breaker."""
        with self._lock:
            self.breaker_rejections_total += 1

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #

    def render(self, cache_stats: Optional[Dict[str, int]] = None,
               pool_health: Optional[Dict[str, int]] = None,
               breaker: Optional[Dict[str, object]] = None) -> str:
        """The ``/metrics`` text exposition.

        ``pool_health`` is :meth:`repro.core.WorkerPool.health` and
        ``breaker`` is :meth:`repro.core.CircuitBreaker.snapshot`; both
        are optional so the registry stays usable standalone.
        """
        with self._lock:
            lines: List[str] = []

            def header(name: str, kind: str, help_text: str) -> None:
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")

            header("repro_info", "gauge", "Build information.")
            lines.append(f'repro_info{{version="{__version__}"}} 1')
            header("repro_uptime_seconds", "gauge",
                   "Seconds since the server started.")
            lines.append(f"repro_uptime_seconds "
                         f"{time.time() - self.started_at:.3f}")

            header("repro_requests_total", "counter",
                   "Finished requests by task and HTTP status.")
            for (task, status), count in sorted(self.requests_total.items()):
                lines.append(f'repro_requests_total{{task="{task}",'
                             f'status="{status}"}} {count}')
            header("repro_rejected_total", "counter",
                   "Requests refused by admission control (429).")
            lines.append(f"repro_rejected_total {self.rejected_total}")
            header("repro_timeouts_total", "counter",
                   "Requests that hit the per-request timeout (504).")
            lines.append(f"repro_timeouts_total {self.timeouts_total}")
            header("repro_internal_errors_total", "counter",
                   "Requests answered 500 (worker crash after retries, "
                   "or an unexpected exception).")
            lines.append(f"repro_internal_errors_total "
                         f"{self.internal_errors_total}")
            header("repro_breaker_rejections_total", "counter",
                   "Requests refused by an open circuit breaker (503).")
            lines.append(f"repro_breaker_rejections_total "
                         f"{self.breaker_rejections_total}")

            header("repro_in_flight", "gauge",
                   "Requests currently executing.")
            lines.append(f"repro_in_flight {self.in_flight}")
            header("repro_queue_depth", "gauge",
                   "Requests admitted but not yet executing.")
            lines.append(f"repro_queue_depth {self.queue_depth}")

            if cache_stats is not None:
                hits = cache_stats.get("hits", 0)
                misses = cache_stats.get("misses", 0)
                lookups = hits + misses
                header("repro_cache_hits_total", "counter",
                       "Solution-cache hits.")
                lines.append(f"repro_cache_hits_total {hits}")
                header("repro_cache_misses_total", "counter",
                       "Solution-cache misses.")
                lines.append(f"repro_cache_misses_total {misses}")
                header("repro_cache_hit_rate", "gauge",
                       "hits / (hits + misses) since start.")
                rate = (hits / lookups) if lookups else 0.0
                lines.append(f"repro_cache_hit_rate {rate:.6f}")
                header("repro_cache_size", "gauge",
                       "Entries currently cached.")
                lines.append(f"repro_cache_size "
                             f"{cache_stats.get('size', 0)}")

            if pool_health is not None:
                header("repro_pool_restarts_total", "counter",
                       "Worker-pool executor rebuilds after crashes.")
                lines.append(f"repro_pool_restarts_total "
                             f"{pool_health.get('restarts', 0)}")
                header("repro_pool_retries_total", "counter",
                       "Item re-executions after worker failures.")
                lines.append(f"repro_pool_retries_total "
                             f"{pool_health.get('retries', 0)}")
                header("repro_pool_quarantined_total", "counter",
                       "Items degraded to structured errors after "
                       "exhausting retries.")
                lines.append(f"repro_pool_quarantined_total "
                             f"{pool_health.get('quarantined', 0)}")
                header("repro_pool_workers", "gauge",
                       "Configured solver worker processes.")
                lines.append(f"repro_pool_workers "
                             f"{pool_health.get('jobs', 0)}")

            if breaker is not None:
                # one-hot state gauge, the idiomatic Prometheus encoding
                header("repro_breaker_state", "gauge",
                       "Circuit-breaker state (one-hot).")
                current = breaker.get("state")
                for state in ("closed", "open", "half_open"):
                    flag = 1 if state == current else 0
                    lines.append(
                        f'repro_breaker_state{{state="{state}"}} {flag}')
                header("repro_breaker_opened_total", "counter",
                       "Times the circuit breaker has opened.")
                lines.append(f"repro_breaker_opened_total "
                             f"{breaker.get('opened_total', 0)}")
                header("repro_breaker_consecutive_failures", "gauge",
                       "Consecutive solve failures seen by the breaker.")
                lines.append(f"repro_breaker_consecutive_failures "
                             f"{breaker.get('consecutive_failures', 0)}")

            header("repro_request_seconds", "summary",
                   "Request latency quantiles by task (histogram "
                   "estimate).")
            for task in sorted(self.latency):
                hist = self.latency[task]
                for q in QUANTILES:
                    value = hist.quantile(q)
                    if value is not None:
                        lines.append(
                            f'repro_request_seconds{{task="{task}",'
                            f'quantile="{q}"}} {value:.6g}')
                lines.append(f'repro_request_seconds_count{{task="{task}"}} '
                             f'{hist.total}')
                lines.append(f'repro_request_seconds_sum{{task="{task}"}} '
                             f'{hist.sum:.6f}')
            return "\n".join(lines) + "\n"
