"""Environment-driven service configuration.

One frozen :class:`Settings` value describes a complete server deployment,
exactly like :class:`~repro.api.SolveOptions` describes a complete solver
configuration: every field is validated at construction time, and the whole
thing is immutable so a running server can never be half-reconfigured.

Configuration comes from three layers, later ones winning::

    defaults  <  REPRO_* environment variables  <  CLI flags

``Settings.from_env()`` reads the environment (the production path — a
container sets ``REPRO_PORT=8080`` and nothing else changes), and
``python -m repro serve --port 9000`` layers explicit flags on top via
:meth:`Settings.with_`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional

__all__ = ["Settings", "ENV_PREFIX"]

#: every recognised environment variable starts with this.
ENV_PREFIX = "REPRO_"

#: accepted ``log_format`` values.
LOG_FORMATS = ("kv", "json")

_LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")


@dataclass(frozen=True)
class Settings:
    """One immutable, validated server configuration.

    Attributes
    ----------
    host / port:
        listen address.  ``port=0`` asks the OS for a free port (tests and
        benchmarks use this; the chosen port is logged and exposed on the
        runner).
    jobs:
        solver worker processes behind the shared warm
        :class:`~repro.core.WorkerPool`.  ``0`` means one per CPU; ``1``
        degrades to in-process execution offloaded to a thread (the event
        loop is never blocked either way).
    queue_limit:
        admission bound: the maximum number of requests admitted but not
        yet answered (queued + executing).  A request arriving past it is
        refused with ``429 Too Many Requests`` + ``Retry-After`` instead
        of growing an unbounded backlog — overload degrades, never OOMs.
    cache_size:
        entries of the shared :class:`~repro.api.SolutionCache` (``0``
        disables caching).
    batch_small:
        forest-sweep routing threshold for ``/v1/solve_batch`` (instances
        of at most this many vertices are swept vectorized instead of
        fanned out; ``0`` disables the diversion).
    max_batch:
        maximum records accepted by one ``/v1/solve_batch`` body.
    request_timeout:
        seconds a single solve (or one batch) may run before the request
        is answered ``504 Gateway Timeout``.
    shutdown_timeout:
        seconds the graceful shutdown waits for in-flight requests to
        drain before giving up.
    max_body_bytes:
        request bodies above this are refused with ``413``.
    retries:
        how many times one request's solve is re-run after its worker
        process dies (``BrokenProcessPool``) or raises ``MemoryError``;
        the pool is rebuilt between attempts.  ``0`` fails fast with a
        structured 500.
    retry_backoff:
        base of the capped exponential backoff (seconds) between those
        attempts — and between stream resubmissions in batch routes.
    breaker_threshold:
        consecutive solve failures (5xx) that open the circuit breaker;
        while open, ``/v1/*`` answers ``503`` + ``Retry-After`` without
        touching the pool.  ``0`` disables the breaker.
    breaker_cooldown:
        seconds an open breaker waits before letting one half-open probe
        through (success closes it, failure re-opens it).
    log_level / log_format:
        structured-logging knobs (``kv`` = ``key=value`` lines, ``json``
        = one JSON object per line).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int = 0
    queue_limit: int = 64
    cache_size: int = 1024
    batch_small: int = 64
    max_batch: int = 4096
    request_timeout: float = 30.0
    shutdown_timeout: float = 10.0
    max_body_bytes: int = 1 << 20
    retries: int = 2
    retry_backoff: float = 0.05
    breaker_threshold: int = 5
    breaker_cooldown: float = 5.0
    log_level: str = "INFO"
    log_format: str = "kv"

    def __post_init__(self) -> None:
        _check_int(self, "port", minimum=0, maximum=65535)
        _check_int(self, "jobs", minimum=0)
        _check_int(self, "queue_limit", minimum=1)
        _check_int(self, "cache_size", minimum=0)
        _check_int(self, "batch_small", minimum=0)
        _check_int(self, "max_batch", minimum=1)
        _check_int(self, "max_body_bytes", minimum=1)
        _check_int(self, "retries", minimum=0)
        _check_int(self, "breaker_threshold", minimum=0)
        _check_float(self, "request_timeout", minimum_exclusive=0.0)
        _check_float(self, "shutdown_timeout", minimum=0.0)
        _check_float(self, "retry_backoff", minimum=0.0)
        _check_float(self, "breaker_cooldown", minimum_exclusive=0.0)
        level = str(self.log_level).upper()
        if level not in _LOG_LEVELS:
            raise ValueError(f"log_level must be one of {_LOG_LEVELS}, "
                             f"got {self.log_level!r}")
        object.__setattr__(self, "log_level", level)
        if self.log_format not in LOG_FORMATS:
            raise ValueError(f"log_format must be one of {LOG_FORMATS}, "
                             f"got {self.log_format!r}")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None,
                 **overrides: Any) -> "Settings":
        """Build settings from ``REPRO_*`` environment variables.

        Every field is read from ``REPRO_<FIELD_UPPERCASED>`` (e.g.
        ``REPRO_PORT``, ``REPRO_QUEUE_LIMIT``, ``REPRO_LOG_FORMAT``) when
        present; keyword ``overrides`` (the CLI flags) win over both the
        environment and the defaults.  ``overrides`` set to ``None`` are
        ignored, so flag plumbing can forward unset argparse values
        verbatim.  A malformed variable raises :class:`ValueError` naming
        the variable, not a stack trace from deep inside a cast.
        """
        environ = os.environ if environ is None else environ
        values: Dict[str, Any] = {}
        for f in fields(cls):
            var = ENV_PREFIX + f.name.upper()
            raw = environ.get(var)
            if raw is None:
                continue
            if f.type in ("int", int):
                try:
                    values[f.name] = int(raw)
                except ValueError:
                    raise ValueError(
                        f"{var} must be an integer, got {raw!r}") from None
            elif f.type in ("float", float):
                try:
                    values[f.name] = float(raw)
                except ValueError:
                    raise ValueError(
                        f"{var} must be a number, got {raw!r}") from None
            else:
                values[f.name] = raw
        for name, value in overrides.items():
            if value is not None:
                values[name] = value
        unknown = set(values) - {f.name for f in fields(cls)}
        if unknown:  # pragma: no cover - overrides come from our own CLI
            raise ValueError(f"unknown Settings field(s): {sorted(unknown)}")
        return cls(**values)

    def with_(self, **changes: Any) -> "Settings":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-serialisable dict (for logs and ``/healthz``)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


def _check_int(obj: Settings, name: str, *, minimum: int,
               maximum: Optional[int] = None) -> None:
    value = getattr(obj, name)
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be an integer, "
                         f"got {getattr(obj, name)!r}") from None
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None else \
            f"in [{minimum}, {maximum}]"
        raise ValueError(f"{name} must be {bound}, got {value}")
    object.__setattr__(obj, name, value)


def _check_float(obj: Settings, name: str, *, minimum: float = None,
                 minimum_exclusive: float = None) -> None:
    value = getattr(obj, name)
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, "
                         f"got {getattr(obj, name)!r}") from None
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    if minimum_exclusive is not None and value <= minimum_exclusive:
        raise ValueError(f"{name} must be > {minimum_exclusive}, "
                         f"got {value}")
    object.__setattr__(obj, name, value)
