"""The service application: router, handlers and HTTP/1.1 plumbing.

:class:`ServerApp` is the heart of ``repro.server``: it owns the shared
solver infrastructure (one warm :class:`~repro.core.WorkerPool`, one
thread-safe :class:`~repro.api.SolutionCache`, one
:class:`~repro.server.metrics.Metrics` registry) and dispatches the four
endpoints:

* ``POST /v1/solve`` — one problem, body mirroring a ``solve --stream``
  JSONL record (problem + task + options);
* ``POST /v1/solve_batch`` — a list of records, routed through
  :func:`~repro.api.solve_many`'s ``batch_small`` forest dispatch;
* ``GET /healthz`` — liveness + version + backends + registered tasks;
* ``GET /metrics`` — text exposition of counters/gauges/latency.

Both solve endpoints also accept ``Content-Type:
application/octet-stream`` bodies carrying the zero-copy binary wire
format (:mod:`repro.io.wire`): one buffer for ``/v1/solve``,
length-prefixed frames for ``/v1/solve_batch``, with ``task``/``options``
in the query string.

Robustness is structural, not bolted on:

* **Admission control** — at most ``queue_limit`` requests are admitted
  (queued + executing); a request past that is answered ``429`` with
  ``Retry-After`` immediately, so overload sheds load instead of growing
  an unbounded backlog.
* **The event loop never solves anything** — CPU-bound work is offloaded
  to the worker pool (process pool for ``jobs > 1``, a thread for the
  in-process degenerate case), bounded by an execution semaphore sized to
  the pool.
* **Per-request timeouts** — a solve that exceeds ``request_timeout``
  (including its time in the queue) is answered ``504``.
* **Graceful drain** — :meth:`begin_drain` refuses new work with ``503``
  while in-flight requests run to completion; :meth:`drain` waits for the
  last one.
* **Self-healing workers** — a solve whose worker process dies
  (``BrokenProcessPool``) or OOMs rebuilds the pool and re-runs, up to
  ``Settings.retries`` times with exponential backoff, before answering
  a structured 500; pool restart/retry counters surface in ``/healthz``
  and ``/metrics``.
* **Circuit breaker** — ``Settings.breaker_threshold`` consecutive solve
  failures open the breaker: ``/v1/*`` answers ``503`` + ``Retry-After``
  without touching the pool until a half-open probe succeeds.

The HTTP layer is a deliberately small stdlib-only HTTP/1.1 subset
(request line + headers + ``Content-Length`` bodies, keep-alive): the
package stays importable and deployable with zero new dependencies.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..api import SolutionCache, SolveOptions, solve, solve_many, task_names
from ..api.registry import TASKS
from ..api.solution import Solution
from ..api.solve import _from_cache
from ..core import faults as _faults
from ..core.batch import WorkerPool
from ..core.retry import CircuitBreaker, RetryPolicy
from .._version import __version__
from .logging_config import get_logger, new_request_id, request_id_var
from .metrics import Metrics
from .schemas import (
    SchemaError,
    SolveRequest,
    parse_batch_request,
    parse_solve_request,
    parse_wire_batch_request,
    parse_wire_solve_request,
)
from .settings import Settings

__all__ = ["ServerApp", "HTTPError", "Response"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 501: "Not Implemented",
            503: "Service Unavailable", 504: "Gateway Timeout"}


class HTTPError(Exception):
    """An error response: status + message + optional field errors."""

    def __init__(self, status: int, message: str, *,
                 errors: Optional[List[Dict[str, str]]] = None,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.errors = errors
        self.headers = headers or {}


@dataclass
class Response:
    """One finished HTTP response (also the in-process test interface)."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (tests and clients)."""
        return json.loads(self.body.decode("utf8"))


def _run_solve(payload: Tuple) -> Solution:
    problem, task, options = payload
    return solve(problem, task, options=options).without_machine()


def _solve_payload(payload: Tuple) -> Solution:
    """Worker body for one solve (module level so it pickles).

    Consults the process's armed :class:`~repro.core.faults.FaultPlan`
    like the streaming engine's worker entrypoint does, so chaos tests
    can kill/delay the single-solve offload path too.
    """
    plan = _faults.active_plan()
    if plan is not None:
        return plan.apply(_run_solve, payload)
    return _run_solve(payload)


class ServerApp:
    """The application behind every endpoint (transport-independent).

    The HTTP plumbing lives in :meth:`handle_connection`; everything else
    — routing, validation, admission, offload, caching, metrics — goes
    through :meth:`dispatch`, which tests can call directly without a
    socket.
    """

    def __init__(self, settings: Settings, *,
                 pool: Optional[WorkerPool] = None,
                 cache: Optional[SolutionCache] = None) -> None:
        self.settings = settings
        self.log = get_logger()
        self.metrics = Metrics()
        self.pool = pool if pool is not None else WorkerPool(settings.jobs)
        if cache is not None:
            self.cache: Optional[SolutionCache] = cache
        else:
            self.cache = (SolutionCache(settings.cache_size)
                          if settings.cache_size > 0 else None)
        self._admitted = 0            # queued + executing
        self._in_flight = 0           # executing
        self._draining = False
        # crash-recovery policy for offloaded solves and batch streams
        self.retry_policy = RetryPolicy(
            max_retries=settings.retries,
            base_delay=settings.retry_backoff,
            max_delay=max(2.0, settings.retry_backoff))
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(threshold=settings.breaker_threshold,
                           cooldown=settings.breaker_cooldown)
            if settings.breaker_threshold > 0 else None)
        self._exec_sem: Optional[asyncio.Semaphore] = None
        self._idle: Optional[asyncio.Event] = None
        self._connections: set = set()
        # a dedicated thread executor for in-process solves and batch
        # workers: sharing the loop's default executor with an embedding
        # application could starve either side
        self._threads = ThreadPoolExecutor(
            max_workers=max(2, self.pool.jobs),
            thread_name_prefix="repro-server")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def admitted(self) -> int:
        return self._admitted

    def _ensure_async_state(self) -> None:
        """Create loop-bound primitives lazily, inside the running loop."""
        if self._exec_sem is None:
            self._exec_sem = asyncio.Semaphore(self.pool.jobs)
            self._idle = asyncio.Event()
            self._idle.set()

    def begin_drain(self) -> None:
        """Stop admitting work (new requests get 503); idempotent."""
        self._draining = True
        if self._idle is not None and self._admitted == 0:
            self._idle.set()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted request finished.

        Returns ``True`` when the server drained, ``False`` on timeout
        (in-flight work is then abandoned to the process teardown).
        """
        self._ensure_async_state()
        if self._admitted == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        """Release owned resources (pool + thread executor); idempotent."""
        if not self.pool.closed:
            self.pool.close()
        self._threads.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # admission + offload
    # ------------------------------------------------------------------ #

    def _admit(self) -> None:
        if self._draining:
            raise HTTPError(503, "server is draining; not accepting work")
        if self._admitted >= self.settings.queue_limit:
            raise HTTPError(
                429, f"admission queue full "
                     f"(queue_limit={self.settings.queue_limit})",
                headers={"Retry-After": "1"})
        self._admitted += 1
        self._idle.clear()
        self._update_gauges()

    def _release(self) -> None:
        self._admitted -= 1
        if self._admitted == 0:
            self._idle.set()
        self._update_gauges()

    def _update_gauges(self) -> None:
        self.metrics.set_gauges(
            in_flight=self._in_flight,
            queue_depth=max(0, self._admitted - self._in_flight))

    async def _offload(self, fn, *args, use_pool: bool) -> Any:
        """Run CPU-bound work off the event loop, bounded by the
        execution semaphore (never more than ``pool.jobs`` at once).

        ``use_pool=True`` sends a picklable module-level callable to the
        worker processes (a thread for the in-process degenerate case);
        ``use_pool=False`` runs on a thread regardless — the batch worker
        is a bound method that fans into the pool *itself*.

        Pool-bound work self-heals: a worker process dying mid-solve
        (``BrokenProcessPool``) or raising ``MemoryError`` rebuilds the
        executor and re-runs the call, up to ``Settings.retries`` times
        with backoff, before degrading to a structured 500.
        """
        async with self._exec_sem:
            self._in_flight += 1
            self._update_gauges()
            try:
                loop = asyncio.get_running_loop()
                if not use_pool or self.pool.serial:
                    return await loop.run_in_executor(
                        self._threads, fn, *args)
                attempt = 0
                while True:
                    executor = self.pool.executor
                    try:
                        return await loop.run_in_executor(
                            executor, fn, *args)
                    except (BrokenExecutor, MemoryError) as exc:
                        kind = "crash" if isinstance(exc, BrokenExecutor) \
                            else "memory"
                        if kind == "crash":
                            self.pool.rebuild(broken=executor)
                        attempt += 1
                        self.log.warning(
                            "worker failure", extra={
                                "event": "worker_failure", "kind": kind,
                                "attempt": attempt,
                                "pool_restarts": self.pool.restarts})
                        if attempt > self.settings.retries:
                            raise HTTPError(
                                500, f"worker {kind} persisted through "
                                     f"{attempt} attempt(s); pool rebuilt "
                                     f"(restarts={self.pool.restarts})"
                            ) from None
                        self.pool.note_retry()
                        await asyncio.sleep(
                            self.retry_policy.delay_for(attempt))
            finally:
                self._in_flight -= 1
                self._update_gauges()

    async def _admitted_call(self, fn, *args, use_pool: bool = True) -> Any:
        """Admission + semaphore + timeout around one offloaded call."""
        self._ensure_async_state()
        self._admit()
        try:
            return await asyncio.wait_for(
                self._offload(fn, *args, use_pool=use_pool),
                self.settings.request_timeout)
        except asyncio.TimeoutError:
            raise HTTPError(
                504, f"request exceeded "
                     f"request_timeout={self.settings.request_timeout}s"
            ) from None
        finally:
            self._release()

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #

    def _healthz_body(self) -> Dict[str, Any]:
        # one entry per registered task: the per-task capability surface
        # (input kind, exactly-solved graph classes, weight support) comes
        # straight from the registry, so out-of-tree tasks report too
        tasks = {name: {"input_kind": TASKS[name].input_kind,
                        "graph_classes": list(TASKS[name].graph_classes),
                        "uses_weights": TASKS[name].uses_weights,
                        "summary": TASKS[name].summary}
                 for name in task_names()}
        from ..backends import BACKEND_NAMES
        from ..kernels import kernel_status
        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "backends": {"available": list(BACKEND_NAMES),
                         "kernel": kernel_status()},
            "tasks": tasks,
            "jobs": self.pool.jobs,
            "queue": {"limit": self.settings.queue_limit,
                      "admitted": self._admitted,
                      "in_flight": self._in_flight},
            "pool": self.pool.health(),
            "breaker": (self.breaker.snapshot()
                        if self.breaker is not None else None),
            "cache": self.cache.stats() if self.cache is not None else None,
            "uptime_seconds": round(
                time.time() - self.metrics.started_at, 3),
        }

    async def _handle_solve(self, req: SolveRequest) -> Solution:
        worker_opts = req.options
        key = None
        if self.cache is not None:
            key = self.cache.key_for(req.problem, req.task, worker_opts)
            if key is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    return _from_cache(hit, req.problem)
        solution = await self._admitted_call(
            _solve_payload, (req.problem, req.task, worker_opts))
        for name, value in req.problem.provenance().items():
            solution.provenance.setdefault(name, value)
        solution.provenance.setdefault(
            "route", "serial" if self.pool.serial else "pool")
        if key is not None:
            solution.provenance["cache"] = "miss"
            self.cache.put(key, solution)
        return solution

    def _batch_worker(self, requests: List[SolveRequest]) -> List[Dict]:
        """Solve one validated batch (runs on a worker thread).

        Records are grouped by (task, options) and each group goes through
        :func:`~repro.api.solve_many` with the server's shared cache and
        the ``batch_small`` forest routing, so tiny instances are swept
        vectorized and big ones fan out over the warm pool.  Results come
        back in request order.  Worker crashes heal under the server's
        retry policy; a record whose retries are exhausted comes back as
        a structured error solution (``backend="error"``) in its slot
        instead of failing the whole batch.
        """
        threshold = self.settings.batch_small or None
        groups: Dict[Tuple, List[int]] = {}
        for i, req in enumerate(requests):
            group_key = (req.task,
                         tuple(sorted(req.options.to_dict().items())))
            groups.setdefault(group_key, []).append(i)
        out: List[Optional[Dict]] = [None] * len(requests)
        for indices in groups.values():
            first = requests[indices[0]]
            options = first.options.with_(cache=self.cache,
                                          batch_small=threshold)
            pool = None if self.pool.serial else self.pool
            solutions = solve_many([requests[i].problem for i in indices],
                                   first.task, options=options, pool=pool,
                                   retry=self.retry_policy,
                                   on_error="emit")
            for i, solution in zip(indices, solutions):
                solution.provenance["batch_index"] = i
                out[i] = solution.to_json_dict()
        return out

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    async def dispatch(self, method: str, target: str,
                       body: bytes = b"",
                       headers: Optional[Dict[str, str]] = None) -> Response:
        """Route one request; always returns a :class:`Response`.

        This is the whole app without the socket: tests drive it
        in-process, :meth:`handle_connection` drives it from the wire.
        A ``Content-Type: application/octet-stream`` header switches the
        solve endpoints to the binary wire-format body.
        """
        path, _, query = target.partition("?")
        binary_body = (headers or {}).get(
            "content-type", "").startswith("application/octet-stream")
        started = time.perf_counter()
        task_label = {"/healthz": "healthz", "/metrics": "metrics",
                      "/v1/solve_batch": "solve_batch"}.get(path, "-")
        solving = path in ("/v1/solve", "/v1/solve_batch")
        breaker_open = False
        try:
            if solving and self.breaker is not None \
                    and not self.breaker.allow():
                breaker_open = True
                retry_after = max(1, math.ceil(self.breaker.retry_after()))
                self.metrics.record_breaker_rejection()
                raise HTTPError(
                    503, f"circuit breaker is open after repeated solve "
                         f"failures; retry in {retry_after}s",
                    headers={"Retry-After": str(retry_after)})
            if path == "/healthz":
                if method != "GET":
                    raise HTTPError(405, "use GET")
                response = _json_response(200, self._healthz_body())
            elif path == "/metrics":
                if method != "GET":
                    raise HTTPError(405, "use GET")
                stats = self.cache.stats() if self.cache is not None \
                    else None
                breaker_state = (self.breaker.snapshot()
                                 if self.breaker is not None else None)
                response = Response(
                    200, {"Content-Type":
                          "text/plain; version=0.0.4; charset=utf-8"},
                    self.metrics.render(
                        stats, pool_health=self.pool.health(),
                        breaker=breaker_state).encode("utf8"))
            elif path == "/v1/solve":
                if method != "POST":
                    raise HTTPError(405, "use POST")
                if self._draining:   # even cache hits refuse during drain
                    raise HTTPError(503, "server is draining; "
                                         "not accepting work")
                req = (parse_wire_solve_request(body, query) if binary_body
                       else parse_solve_request(_parse_json_body(body)))
                task_label = req.task
                solution = await self._handle_solve(req)
                solution.provenance.setdefault(
                    "request_id", request_id_var.get())
                response = _json_response(200, solution.to_json_dict())
            elif path == "/v1/solve_batch":
                if method != "POST":
                    raise HTTPError(405, "use POST")
                if binary_body:
                    requests = parse_wire_batch_request(
                        body, query, max_batch=self.settings.max_batch)
                else:
                    requests = parse_batch_request(
                        _parse_json_body(body),
                        max_batch=self.settings.max_batch)
                solutions = await self._admitted_call(
                    self._batch_worker, requests, use_pool=False)
                response = _json_response(
                    200, {"count": len(solutions), "solutions": solutions})
            else:
                raise HTTPError(404, f"no route for {path!r}")
        except SchemaError as exc:
            response = _error_response(HTTPError(
                400, "request failed validation", errors=exc.errors))
        except HTTPError as exc:
            response = _error_response(exc)
        except Exception as exc:
            self.log.exception("unhandled error", extra={"path": path})
            # never a bodyless 500: the client gets a structured JSON
            # error carrying the request id it can quote back at us
            response = _error_response(HTTPError(
                500, f"internal server error "
                     f"({type(exc).__name__}); see server logs"))
        duration = time.perf_counter() - started
        if solving and self.breaker is not None and not breaker_open:
            # drain/admission 503s and client errors are not solver
            # failures; 5xx outcomes of real solve attempts are
            if response.status >= 500 and response.status != 503:
                self.breaker.record_failure()
            elif 200 <= response.status < 300:
                self.breaker.record_success()
        if path.startswith("/v1/") or path in ("/healthz", "/metrics"):
            self.metrics.observe_request(task_label, response.status,
                                         duration)
        self.log.info(
            "request", extra={
                "event": "request", "method": method, "path": path,
                "status": response.status, "task": task_label,
                "duration_ms": round(duration * 1000, 3)})
        return response

    # ------------------------------------------------------------------ #
    # the wire
    # ------------------------------------------------------------------ #

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One client connection: parse, dispatch, respond, keep alive."""
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await _read_request(
                        reader, max_body=self.settings.max_body_bytes)
                except _ProtocolError as exc:
                    response = _error_response(
                        HTTPError(exc.status, exc.message))
                    _write_response(writer, response, close=True)
                    await writer.drain()
                    break
                if parsed is None:      # clean EOF between requests
                    break
                method, target, headers, body = parsed
                rid = new_request_id()
                token = request_id_var.set(rid)
                try:
                    response = await self.dispatch(method, target, body,
                                                   headers)
                finally:
                    request_id_var.reset(token)
                response.headers.setdefault("X-Request-Id", rid)
                close = (self._draining
                         or headers.get("connection", "").lower() == "close")
                _write_response(writer, response, close=close)
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                        # client went away mid-request
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError,
                    asyncio.CancelledError):  # pragma: no cover
                # loop teardown may cancel us mid-close; the transport is
                # closed either way, so ending quietly is correct here
                pass

    def close_connections(self) -> None:
        """Force-close lingering keep-alive connections (post-drain)."""
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()


# --------------------------------------------------------------------------- #
# HTTP helpers
# --------------------------------------------------------------------------- #

class _ProtocolError(Exception):
    """A malformed request that gets one error response, then a close."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _parse_json_body(body: bytes) -> Any:
    if not body:
        raise HTTPError(400, "request body is required (a JSON document)")
    try:
        return json.loads(body.decode("utf8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HTTPError(400, f"request body is not valid JSON: {exc}") \
            from None


def _json_response(status: int, data: Any) -> Response:
    return Response(status, {"Content-Type": "application/json"},
                    (json.dumps(data) + "\n").encode("utf8"))


def _error_response(exc: HTTPError) -> Response:
    payload: Dict[str, Any] = {"error": {"status": exc.status,
                                         "message": exc.message,
                                         "request_id":
                                             request_id_var.get()}}
    if exc.errors:
        payload["error"]["details"] = exc.errors
    response = _json_response(exc.status, payload)
    response.headers.update(exc.headers)
    return response


async def _read_request(reader: asyncio.StreamReader, *, max_body: int,
                        ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise _ProtocolError(400, "request line too long") from None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise _ProtocolError(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _ProtocolError(400, "header line too long") from None
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise _ProtocolError(400, "truncated headers")
        if len(headers) >= 100:
            raise _ProtocolError(400, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise _ProtocolError(400, f"malformed header {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise _ProtocolError(501, "chunked bodies are not supported; "
                                  "send Content-Length")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
        if length < 0:
            raise ValueError
    except ValueError:
        raise _ProtocolError(400, f"bad Content-Length {length_text!r}") \
            from None
    if length > max_body:
        raise _ProtocolError(413, f"body of {length} bytes exceeds "
                                  f"max_body_bytes={max_body}")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


def _write_response(writer: asyncio.StreamWriter, response: Response, *,
                    close: bool) -> None:
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    headers = dict(response.headers)
    headers.setdefault("Content-Type", "application/json")
    headers["Content-Length"] = str(len(response.body))
    headers["Connection"] = "close" if close else "keep-alive"
    head.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                 + response.body)
