"""Structured logging for the service layer.

Every log line the server emits is machine-parseable in one of two shapes,
chosen by ``Settings.log_format``:

* ``kv`` — one ``key=value`` line per record::

    ts=2026-08-08T12:00:00.123Z level=INFO logger=repro.server \
        request_id=a1b2c3d4e5f6 event=request method=POST path=/v1/solve \
        status=200 task=path_cover duration_ms=4.2

* ``json`` — the same fields as one JSON object per line.

The request id rides a :mod:`contextvars` variable: the connection handler
sets it once per request and every record logged anywhere inside that
request — schemas, cache, pool dispatch — carries it automatically, so one
``grep request_id=...`` reconstructs a request's whole story.
"""

from __future__ import annotations

import contextvars
import json
import logging
import secrets
import sys
import time
from typing import Any, Optional

from .settings import Settings

__all__ = ["configure_logging", "get_logger", "flush_logging",
           "new_request_id", "request_id_var", "KeyValueFormatter",
           "JsonFormatter"]

#: the ambient request id of the current task/thread ("-" outside requests).
request_id_var: "contextvars.ContextVar[str]" = contextvars.ContextVar(
    "repro_request_id", default="-")

#: the server's logger namespace.
LOGGER_NAME = "repro.server"

#: LogRecord attributes that are plumbing, not payload — everything else
#: passed via ``extra=`` becomes a structured field on the line.
_RESERVED = frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None)).keys()) | {"message", "asctime",
                                            "request_id", "taskName"}


def new_request_id() -> str:
    """A fresh 12-hex-char request id (unique enough to grep by)."""
    return secrets.token_hex(6)


def _utc_ts(record: logging.LogRecord) -> str:
    t = time.gmtime(record.created)
    return (time.strftime("%Y-%m-%dT%H:%M:%S", t)
            + f".{int(record.msecs):03d}Z")


def _structured_fields(record: logging.LogRecord) -> dict:
    return {key: value for key, value in vars(record).items()
            if key not in _RESERVED}


class _RequestIdFilter(logging.Filter):
    """Stamp every record with the ambient request id."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.request_id = request_id_var.get()
        return True


def _kv_escape(value: Any) -> str:
    text = str(value)
    if text == "" or any(c in text for c in ' ="\n\t'):
        return json.dumps(text)
    return text


class KeyValueFormatter(logging.Formatter):
    """``key=value`` lines; values with spaces/quotes are JSON-quoted."""

    def format(self, record: logging.LogRecord) -> str:
        pairs = [("ts", _utc_ts(record)),
                 ("level", record.levelname),
                 ("logger", record.name),
                 ("request_id", getattr(record, "request_id", "-")),
                 ("msg", record.getMessage())]
        pairs.extend(sorted(_structured_fields(record).items()))
        line = " ".join(f"{k}={_kv_escape(v)}" for k, v in pairs)
        if record.exc_info:
            line += " exc=" + json.dumps(self.formatException(record.exc_info))
        return line


class JsonFormatter(logging.Formatter):
    """One JSON object per line, same fields as the ``kv`` shape."""

    def format(self, record: logging.LogRecord) -> str:
        data = {"ts": _utc_ts(record),
                "level": record.levelname,
                "logger": record.name,
                "request_id": getattr(record, "request_id", "-"),
                "msg": record.getMessage()}
        data.update(_structured_fields(record))
        if record.exc_info:
            data["exc"] = self.formatException(record.exc_info)
        return json.dumps(data, default=str)


def configure_logging(settings: Settings,
                      stream: Optional[Any] = None) -> logging.Logger:
    """Configure and return the ``repro.server`` logger.

    Idempotent: reconfiguring replaces the previous handler instead of
    stacking a second one (a test suite may boot many servers).  The
    logger does not propagate to the root logger, so embedding the server
    in a larger application never double-logs.
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(settings.log_level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(JsonFormatter() if settings.log_format == "json"
                         else KeyValueFormatter())
    handler.addFilter(_RequestIdFilter())
    logger.addHandler(handler)
    return logger


def get_logger() -> logging.Logger:
    """The server's logger (configured or not)."""
    return logging.getLogger(LOGGER_NAME)


def flush_logging() -> None:
    """Flush every handler of the server logger (the shutdown path)."""
    for handler in logging.getLogger(LOGGER_NAME).handlers:
        try:
            handler.flush()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
